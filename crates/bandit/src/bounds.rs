//! Closed-form evaluation of the paper's regret upper bounds.
//!
//! Theorem 1 bounds the β-regret of the β-approximation learning policy:
//!
//! ```text
//! sup R_β(n) ≤ (1/β)·N·K
//!            + ( √(e·K) + 16/(e·β)·(1+N)·N³ ) · n^{2/3}
//!            + (1/β)·( 1 + 4·√(K·N²)/(e·β²) ) · N²·K · n^{5/6}
//! ```
//!
//! Theorem 5 is the practical variant with airtime fraction θ and
//! β = θ·α. These evaluators regenerate the bound curves plotted against
//! measured regret in the `regret_bounds` bench binary.

use std::f64::consts::E;

/// Theorem 1 right-hand side.
///
/// * `n` — horizon (rounds)
/// * `n_users` — `N`
/// * `k` — arm count `K = N·M`
/// * `beta` — oracle approximation factor (≥ 1)
///
/// # Panics
///
/// Panics if any argument is non-positive or `beta < 1`.
pub fn theorem1(n: u64, n_users: usize, k: usize, beta: f64) -> f64 {
    assert!(n > 0 && n_users > 0 && k > 0, "positive sizes required");
    assert!(beta >= 1.0, "beta must be at least 1");
    let n = n as f64;
    let nn = n_users as f64;
    let k = k as f64;
    let term0 = nn * k / beta;
    let term1 = ((E * k).sqrt() + 16.0 / (E * beta) * (1.0 + nn) * nn.powi(3)) * n.powf(2.0 / 3.0);
    let term2 = (1.0 / beta)
        * (1.0 + 4.0 * (k * nn * nn).sqrt() / (E * beta * beta))
        * nn.powi(2)
        * k
        * n.powf(5.0 / 6.0);
    term0 + term1 + term2
}

/// Theorem 5 right-hand side: the practical regret bound
/// `sup θ·R_{θα}(n)` with airtime fraction `theta` and approximation
/// factor `alpha` of the strategy-decision algorithm.
///
/// # Panics
///
/// Panics if sizes are non-positive, `alpha < 1`, or `theta ∉ (0, 1]`.
pub fn theorem5(n: u64, n_users: usize, k: usize, alpha: f64, theta: f64) -> f64 {
    assert!(n > 0 && n_users > 0 && k > 0, "positive sizes required");
    assert!(alpha >= 1.0, "alpha must be at least 1");
    assert!(theta > 0.0 && theta <= 1.0, "theta in (0, 1]");
    let n = n as f64;
    let nn = n_users as f64;
    let k = k as f64;
    let beta = theta * alpha;
    let term0 = nn * k / alpha;
    let term1 =
        (theta * (E * k).sqrt() + 16.0 / (E * alpha) * (1.0 + nn) * nn.powi(3)) * n.powf(2.0 / 3.0);
    let term2 = (1.0 / alpha)
        * (1.0 + 4.0 * (k * nn * nn).sqrt() / (E * beta * beta))
        * nn.powi(2)
        * k
        * n.powf(5.0 / 6.0);
    term0 + term1 + term2
}

/// The growth-bound identity of Theorem 2: in the extended graph `H` the
/// robust PTAS achieves ratio `ρ` with `ρ^r ≤ M·(2r+1)²`; this returns the
/// implied `ρ` for a given radius `r` and channel count `m`, i.e.
/// `(M·(2r+1)²)^{1/r}`.
///
/// # Panics
///
/// Panics if `r == 0` or `m == 0`.
pub fn theorem2_rho(m: usize, r: usize) -> f64 {
    assert!(r > 0, "radius must be positive");
    assert!(m > 0, "channel count must be positive");
    let base = m as f64 * ((2 * r + 1) as f64).powi(2);
    base.powf(1.0 / r as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_is_sublinear_in_n() {
        // Bound/n must shrink as n grows — the zero-regret property.
        let per_round = |n: u64| theorem1(n, 10, 30, 2.0) / n as f64;
        assert!(per_round(1_000_000) < per_round(10_000));
        assert!(per_round(100_000_000) < per_round(1_000_000));
    }

    #[test]
    fn theorem1_monotone_in_sizes() {
        assert!(theorem1(1000, 20, 60, 2.0) > theorem1(1000, 10, 30, 2.0));
        assert!(theorem1(1000, 10, 30, 1.0) > theorem1(1000, 10, 30, 4.0));
    }

    #[test]
    fn theorem5_reduces_toward_theorem1_at_theta_one() {
        // At θ = 1 the practical bound with α = β matches Theorem 1's
        // structure (identical leading terms).
        let t5 = theorem5(1000, 10, 30, 2.0, 1.0);
        let t1 = theorem1(1000, 10, 30, 2.0);
        assert!((t5 - t1).abs() / t1 < 1e-9);
    }

    #[test]
    fn theorem5_grows_as_theta_shrinks() {
        // Less airtime ⇒ worse effective bound (β = θα shrinks).
        let tight = theorem5(1000, 10, 30, 2.0, 1.0);
        let loose = theorem5(1000, 10, 30, 2.0, 0.25);
        assert!(loose > tight);
    }

    #[test]
    fn theorem2_rho_matches_hand_computation() {
        // M=3, r=2: (3·25)^(1/2) = √75.
        assert!((theorem2_rho(3, 2) - 75f64.sqrt()).abs() < 1e-12);
        // More channels ⇒ larger rho at fixed r.
        assert!(theorem2_rho(10, 2) > theorem2_rho(3, 2));
        // Larger r ⇒ smaller rho (better ratio achievable).
        assert!(theorem2_rho(3, 4) < theorem2_rho(3, 2));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn theorem1_rejects_beta_below_one() {
        let _ = theorem1(10, 1, 1, 0.9);
    }
}
