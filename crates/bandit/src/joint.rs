//! The naive joint-strategy formulation the paper argues against.
//!
//! Taking "an arm [to be] a strategy consisting of decisions from each of
//! the N users" gives `O(M^N)` arms (Section I). [`JointUcb1`] implements
//! that formulation faithfully: it enumerates every **maximal** independent
//! set of the extended conflict graph (restricting to maximal sets loses
//! nothing, since weights are non-negative) and runs plain UCB1 over them.
//! Its per-round time and memory are linear in the number of strategies —
//! exponential in `N` — which is exactly the blowup the `decision_time`
//! bench demonstrates.

use mhca_graph::Graph;
use serde::{Deserialize, Serialize};

/// Enumerates all maximal independent sets of `graph` via Bron–Kerbosch
/// (with pivoting) on the complement, using `u128` vertex masks.
///
/// # Panics
///
/// Panics if `graph.n() > 128` — this formulation is only meant for the
/// tiny instances where it is tractable at all.
pub fn maximal_independent_sets(graph: &Graph) -> Vec<Vec<usize>> {
    let n = graph.n();
    assert!(n <= 128, "joint enumeration limited to 128 vertices");
    if n == 0 {
        return vec![vec![]];
    }
    // Complement adjacency: candidates that can still join an IS with v.
    let full: u128 = if n == 128 { !0 } else { (1u128 << n) - 1 };
    let nonadj: Vec<u128> = (0..n)
        .map(|v| {
            let mut mask = full & !(1u128 << v);
            for &u in graph.neighbors(v) {
                mask &= !(1u128 << u);
            }
            mask
        })
        .collect();
    let mut out = Vec::new();
    bron_kerbosch(&nonadj, full, 0, &mut Vec::new(), &mut out);
    out
}

fn bron_kerbosch(
    nonadj: &[u128],
    mut p: u128,
    mut x: u128,
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p == 0 && x == 0 {
        let mut set = current.clone();
        set.sort_unstable();
        out.push(set);
        return;
    }
    // Pivot: vertex of P ∪ X with most "complement-neighbors" in P.
    let pux = p | x;
    let pivot = iter_bits(pux)
        .max_by_key(|&u| (p & nonadj[u]).count_ones())
        .expect("P ∪ X non-empty");
    let candidates = p & !nonadj[pivot];
    for v in iter_bits(candidates).collect::<Vec<_>>() {
        let bit = 1u128 << v;
        current.push(v);
        bron_kerbosch(nonadj, p & nonadj[v], x & nonadj[v], current, out);
        current.pop();
        p &= !bit;
        x |= bit;
    }
}

fn iter_bits(mut mask: u128) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let b = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(b)
        }
    })
}

/// UCB1 over whole strategies — the `O(M^N)`-arm baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointUcb1 {
    strategies: Vec<Vec<usize>>,
    means: Vec<f64>,
    counts: Vec<u64>,
    t: u64,
    reward_scale: f64,
}

impl JointUcb1 {
    /// Builds the strategy arms by enumerating all maximal independent
    /// sets of `graph` (of the extended conflict graph `H`).
    ///
    /// `reward_scale` normalizes strategy rewards into `[0, 1]` for the
    /// UCB1 confidence radius (pass the maximum achievable strategy
    /// throughput, e.g. `N · max-rate`).
    ///
    /// # Panics
    ///
    /// Panics if `graph.n() > 128` or `reward_scale <= 0`.
    pub fn new(graph: &Graph, reward_scale: f64) -> Self {
        assert!(reward_scale > 0.0, "reward scale must be positive");
        let strategies = maximal_independent_sets(graph);
        let n_arms = strategies.len();
        JointUcb1 {
            strategies,
            means: vec![0.0; n_arms],
            counts: vec![0; n_arms],
            t: 0,
            reward_scale,
        }
    }

    /// Number of strategy arms (exponential in `N` in general).
    pub fn n_strategies(&self) -> usize {
        self.strategies.len()
    }

    /// The vertex set of strategy `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn strategy(&self, idx: usize) -> &[usize] {
        &self.strategies[idx]
    }

    /// Selects the next strategy by UCB1 (unplayed strategies first, in
    /// index order). Advances the internal round counter.
    pub fn select(&mut self) -> usize {
        self.t += 1;
        if let Some(unplayed) = self.counts.iter().position(|&c| c == 0) {
            return unplayed;
        }
        let ln_t = (self.t as f64).ln();
        (0..self.n_strategies())
            .map(|i| {
                let bonus = (2.0 * ln_t / self.counts[i] as f64).sqrt();
                (i, self.means[i] / self.reward_scale + bonus)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite index"))
            .expect("at least one strategy")
            .0
    }

    /// Records the observed total reward of strategy `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `reward` is not finite.
    pub fn update(&mut self, idx: usize, reward: f64) {
        assert!(reward.is_finite(), "reward must be finite");
        let c = self.counts[idx];
        self.means[idx] = (self.means[idx] * c as f64 + reward) / (c + 1) as f64;
        self.counts[idx] = c + 1;
    }

    /// Observed mean reward of strategy `idx`.
    pub fn mean(&self, idx: usize) -> f64 {
        self.means[idx]
    }

    /// Play count of strategy `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    #[test]
    fn mis_enumeration_on_path3() {
        // Path 0-1-2: maximal ISs are {1} and {0,2}.
        let g = topology::line(3);
        let mut sets = maximal_independent_sets(&g);
        sets.sort();
        assert_eq!(sets, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn mis_enumeration_on_complete_graph() {
        let g = topology::complete(4);
        let mut sets = maximal_independent_sets(&g);
        sets.sort();
        assert_eq!(sets, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn mis_enumeration_on_empty_graph() {
        let g = topology::independent(3);
        let sets = maximal_independent_sets(&g);
        assert_eq!(sets, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn mis_count_grows_exponentially_on_matchings() {
        // A perfect matching of k edges has 2^k maximal ISs.
        for k in 1..=6 {
            let edges: Vec<_> = (0..k).map(|i| (2 * i, 2 * i + 1)).collect();
            let g = Graph::from_edges(2 * k, &edges);
            assert_eq!(maximal_independent_sets(&g).len(), 1 << k);
        }
    }

    #[test]
    fn every_enumerated_set_is_maximal_and_independent() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let n = rng.gen_range(1..=10);
            let mut g = Graph::builder(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen::<f64>() < 0.4 {
                        g.add_edge(u, v);
                    }
                }
            }
            let g = g.build();
            for set in maximal_independent_sets(&g) {
                assert!(g.is_independent(&set));
                // Maximality: every vertex outside conflicts with the set.
                for v in 0..n {
                    if !set.contains(&v) {
                        assert!(
                            set.iter().any(|&u| g.has_edge(u, v)),
                            "set {set:?} not maximal (can add {v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ucb1_finds_the_best_strategy() {
        // Path 0-1-2 with deterministic rewards: {0,2} pays 2, {1} pays 1.
        let g = topology::line(3);
        let mut ucb = JointUcb1::new(&g, 2.0);
        for _ in 0..200 {
            let idx = ucb.select();
            let reward = if ucb.strategy(idx) == [0, 2] {
                2.0
            } else {
                1.0
            };
            ucb.update(idx, reward);
        }
        let best = (0..ucb.n_strategies())
            .max_by_key(|&i| ucb.count(i))
            .unwrap();
        assert_eq!(ucb.strategy(best), &[0, 2]);
    }

    #[test]
    fn unplayed_strategies_are_tried_first() {
        let g = topology::line(3);
        let mut ucb = JointUcb1::new(&g, 2.0);
        let a = ucb.select();
        ucb.update(a, 1.0);
        let b = ucb.select();
        assert_ne!(a, b, "second round must try the other strategy");
    }

    use mhca_graph::Graph;
}
