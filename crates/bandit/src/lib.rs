//! Combinatorial multi-armed bandit policies and regret accounting.
//!
//! The paper formulates multi-hop channel access as a *linearly
//! combinatorial* MAB: each virtual vertex of the extended conflict graph
//! `H` is an arm (`K = N·M` arms), a round plays an independent set of
//! arms, and the played set's reward is the sum of the member arms'
//! observations (semi-bandit feedback: every played arm's value is
//! observed, Eqs. (5)–(6)).
//!
//! Provided policies, all sharing the [`IndexPolicy`] interface (they emit
//! per-arm index weights, which a MWIS oracle turns into a strategy):
//!
//! * [`policies::CsUcb`] — the paper's learning policy (Algorithm 1,
//!   Eq. (3), from Zhou & Li arXiv:1307.5438): regret `O(n^{5/6})` with **no**
//!   `1/Δ_min` dependence, valid under any `1/β`-approximate oracle
//!   (Theorem 1).
//! * [`policies::Llr`] — the LLR baseline the paper compares against
//!   (Gai–Krishnamachari–Jain 2012).
//! * [`policies::EpsilonGreedy`], [`policies::Random`],
//!   [`policies::Oracle`] — standard controls.
//! * [`joint::JointUcb1`] — the naive formulation the paper argues
//!   against: one UCB1 arm per feasible strategy, `O(M^N)` arms.
//!
//! [`regret::RegretTracker`] implements the paper's regret (Eq. (1)),
//! β-regret, and practical (θ-scaled) regret of Section IV-E;
//! [`bounds`] evaluates the Theorem 1 and Theorem 5 upper bounds.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod bounds;
pub mod joint;
pub mod policies;
pub mod regret;
pub mod state;
pub mod stats;
pub mod thompson;

pub use policies::IndexPolicy;
pub use regret::RegretTracker;
pub use state::{StateError, StateMap, StateValue};
pub use stats::ArmStats;
