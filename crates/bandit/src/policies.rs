//! Index policies: per-arm weights consumed by a MWIS oracle.

use crate::state::{StateError, StateMap};
use crate::stats::ArmStats;
use rand::RngCore;
use std::fmt::Debug;

/// A learning policy that maps current arm statistics to per-arm *index
/// weights*. The strategy played in a round is whatever the (approximate)
/// MWIS oracle returns on those weights — the separation the paper exploits
/// to get `O(MN)` learning state plus a pluggable `1/β`-approximate solver
/// (Theorem 1).
///
/// `t` is the 1-based round number. Policies may use the RNG (ε-greedy,
/// random) and internal mutable state.
pub trait IndexPolicy: Debug {
    /// Writes the index weight per arm for round `t` into `out`, which is
    /// cleared first. This is the hot-path entry point: implementations
    /// must not allocate beyond `out`'s own (amortized) growth, so a
    /// caller reusing one buffer across rounds pays zero steady-state
    /// allocation for index computation.
    fn indices_into(&mut self, t: u64, stats: &ArmStats, rng: &mut dyn RngCore, out: &mut Vec<f64>);

    /// Index weight per arm for round `t`, allocating a fresh vector
    /// (convenience over [`IndexPolicy::indices_into`]).
    fn indices(&mut self, t: u64, stats: &ArmStats, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut out = Vec::with_capacity(stats.k());
        self.indices_into(t, stats, rng, &mut out);
        out
    }

    /// Short name used in experiment outputs.
    fn name(&self) -> &'static str;

    /// Per-observation hook: called once for every `(arm, value)` the
    /// semi-bandit feedback reveals, *in addition to* the shared
    /// [`ArmStats`] update. Stationary policies ignore it (default no-op);
    /// non-stationary policies (e.g. [`DiscountedCsUcb`]) maintain their
    /// own decayed statistics here.
    fn observe(&mut self, _arm: usize, _value: f64) {}

    /// Writes the policy's *internal mutable state* into `out` so a
    /// mid-run checkpoint can resume the policy bit-identically. Policies
    /// whose only learning state is the shared [`ArmStats`] and the RNG
    /// stream (CS-UCB, LLR, Thompson, ε-greedy, random, oracle) have
    /// nothing of their own to record — the default writes nothing.
    /// Configuration (ε, γ, σ, bonuses) is *not* state: the restoring
    /// side rebuilds the policy from its spec first.
    fn snapshot_state(&self, _out: &mut StateMap) {}

    /// Restores state captured by [`IndexPolicy::snapshot_state`] into a
    /// freshly built policy of the same spec. The default accepts an
    /// empty map (stateless policies).
    fn restore_state(&mut self, _state: &StateMap) -> Result<(), StateError> {
        Ok(())
    }
}

/// The paper's learning policy (Algorithm 1 / Eq. (3)):
///
/// ```text
/// w_k(t+1) = µ̃_k(t) + sqrt( max( ln( t^{2/3} / (K·m_k) ), 0 ) / m_k )
/// ```
///
/// Arms never played get `exploration_bonus`, which should exceed any
/// reachable index so unexplored arms are pulled into early strategies
/// (the paper starts all weights at 0 and seeds the first rounds randomly;
/// a deterministic large bonus achieves the same coverage without the
/// extra protocol phase).
#[derive(Debug, Clone, PartialEq)]
pub struct CsUcb {
    /// Index granted to arms with `m_k = 0`.
    pub exploration_bonus: f64,
}

impl CsUcb {
    /// Policy with the given bonus for unplayed arms.
    ///
    /// A sound choice is `2·max-rate` (in the observation scale): strictly
    /// above any mean-plus-confidence index an explored arm can reach once
    /// the log term has decayed.
    pub fn new(exploration_bonus: f64) -> Self {
        CsUcb { exploration_bonus }
    }
}

impl IndexPolicy for CsUcb {
    fn indices_into(
        &mut self,
        t: u64,
        stats: &ArmStats,
        _rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        let k = stats.k() as f64;
        out.clear();
        out.extend((0..stats.k()).map(|arm| {
            let m = stats.count(arm);
            if m == 0 {
                self.exploration_bonus
            } else {
                let m = m as f64;
                let inner = (2.0 / 3.0) * (t as f64).ln() - (k * m).ln();
                stats.mean(arm) + (inner.max(0.0) / m).sqrt()
            }
        }));
    }

    fn name(&self) -> &'static str {
        "cs-ucb"
    }
}

/// The LLR policy of Gai–Krishnamachari–Jain (the paper's baseline,
/// reference 11):
///
/// ```text
/// w_k(t) = µ̃_k + sqrt( (L+1)·ln t / m_k )
/// ```
///
/// where `L` is the maximum strategy cardinality (at most `N` here).
#[derive(Debug, Clone, PartialEq)]
pub struct Llr {
    /// Maximum number of arms a strategy can play at once.
    pub l: usize,
    /// Index granted to arms with `m_k = 0`.
    pub exploration_bonus: f64,
}

impl Llr {
    /// LLR with strategy-size bound `l`.
    pub fn new(l: usize, exploration_bonus: f64) -> Self {
        Llr {
            l,
            exploration_bonus,
        }
    }
}

impl IndexPolicy for Llr {
    fn indices_into(
        &mut self,
        t: u64,
        stats: &ArmStats,
        _rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend((0..stats.k()).map(|arm| {
            let m = stats.count(arm);
            if m == 0 {
                self.exploration_bonus
            } else {
                let bonus = ((self.l as f64 + 1.0) * (t as f64).ln() / m as f64).sqrt();
                stats.mean(arm) + bonus
            }
        }));
    }

    fn name(&self) -> &'static str {
        "llr"
    }
}

/// ε-greedy: with probability `epsilon` the round's indices are uniform
/// random (pure exploration), otherwise the plain observed means
/// (pure exploitation).
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonGreedy {
    /// Exploration probability per round.
    pub epsilon: f64,
    /// Index granted to arms with `m_k = 0` during exploitation rounds.
    pub exploration_bonus: f64,
}

impl EpsilonGreedy {
    /// ε-greedy policy.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn new(epsilon: f64, exploration_bonus: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon in [0,1]");
        EpsilonGreedy {
            epsilon,
            exploration_bonus,
        }
    }
}

impl IndexPolicy for EpsilonGreedy {
    fn indices_into(
        &mut self,
        _t: u64,
        stats: &ArmStats,
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        let explore = rand::Rng::gen::<f64>(rng) < self.epsilon;
        out.clear();
        out.extend((0..stats.k()).map(|arm| {
            if explore {
                rand::Rng::gen::<f64>(rng)
            } else if stats.count(arm) == 0 {
                self.exploration_bonus
            } else {
                stats.mean(arm)
            }
        }));
    }

    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }
}

/// Uniform-random indices each round — the no-learning control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Random;

impl IndexPolicy for Random {
    fn indices_into(
        &mut self,
        _t: u64,
        stats: &ArmStats,
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend((0..stats.k()).map(|_| rand::Rng::gen::<f64>(rng)));
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Genie policy: indices are the true means, so the oracle solves the
/// paper's Eq. (2) directly. Defines the regret baseline `R_1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Oracle {
    /// True per-arm means `µ_k`.
    pub means: Vec<f64>,
}

impl Oracle {
    /// Genie with the given true means.
    pub fn new(means: Vec<f64>) -> Self {
        Oracle { means }
    }
}

impl IndexPolicy for Oracle {
    fn indices_into(
        &mut self,
        _t: u64,
        stats: &ArmStats,
        _rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(self.means.len(), stats.k(), "mean vector length");
        out.clear();
        out.extend_from_slice(&self.means);
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// Discounted CS-UCB for non-stationary (e.g. adversarial or drifting)
/// channels — the paper's Section VII future-work direction.
///
/// Maintains exponentially discounted per-arm statistics (the D-UCB
/// construction): at each strategy decision all accumulated weight decays
/// by `gamma`, so observations older than `~1/(1−γ)` decisions fade out
/// and the policy re-explores channels whose quality may have changed.
/// The index keeps the CS-UCB shape with the discounted effective counts:
///
/// ```text
/// w_k = X̄_γ(k) + sqrt( max( ln(n_γ^{2/3} / (K·N_γ(k)) ), 0 ) / N_γ(k) )
/// ```
///
/// With `gamma = 1` this degenerates to plain [`CsUcb`] statistics
/// (modulo using its own counters instead of the shared ones).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscountedCsUcb {
    /// Discount factor `γ ∈ (0, 1]` applied once per decision.
    pub gamma: f64,
    /// Index granted to arms with no effective observations.
    pub exploration_bonus: f64,
    weighted_sum: Vec<f64>,
    weight: Vec<f64>,
    total_weight: f64,
}

impl DiscountedCsUcb {
    /// Discounted CS-UCB over `k` arms.
    ///
    /// # Panics
    ///
    /// Panics if `gamma ∉ (0, 1]`.
    pub fn new(k: usize, gamma: f64, exploration_bonus: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma in (0, 1]");
        DiscountedCsUcb {
            gamma,
            exploration_bonus,
            weighted_sum: vec![0.0; k],
            weight: vec![0.0; k],
            total_weight: 0.0,
        }
    }

    /// Effective (discounted) play count of `arm`.
    pub fn effective_count(&self, arm: usize) -> f64 {
        self.weight[arm]
    }

    /// Discounted mean of `arm` (0 with no effective observations).
    pub fn discounted_mean(&self, arm: usize) -> f64 {
        if self.weight[arm] <= 0.0 {
            0.0
        } else {
            self.weighted_sum[arm] / self.weight[arm]
        }
    }
}

impl IndexPolicy for DiscountedCsUcb {
    fn indices_into(
        &mut self,
        _t: u64,
        stats: &ArmStats,
        _rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(stats.k(), self.weight.len(), "arm count mismatch");
        // One decay step per decision.
        for x in &mut self.weighted_sum {
            *x *= self.gamma;
        }
        for x in &mut self.weight {
            *x *= self.gamma;
        }
        self.total_weight *= self.gamma;
        let k = self.weight.len() as f64;
        let n_eff = self.total_weight.max(1.0);
        out.clear();
        out.extend((0..self.weight.len()).map(|arm| {
            let m = self.weight[arm];
            if m < 1e-9 {
                self.exploration_bonus
            } else {
                let inner = (2.0 / 3.0) * n_eff.ln() - (k * m).ln();
                self.discounted_mean(arm) + (inner.max(0.0) / m).sqrt()
            }
        }));
    }

    fn name(&self) -> &'static str {
        "discounted-cs-ucb"
    }

    fn observe(&mut self, arm: usize, value: f64) {
        self.weighted_sum[arm] += value;
        self.weight[arm] += 1.0;
        self.total_weight += 1.0;
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        out.put_f64_vec("weighted_sum", self.weighted_sum.clone());
        out.put_f64_vec("weight", self.weight.clone());
        out.put_f64("total_weight", self.total_weight);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        let k = self.weight.len();
        self.weighted_sum = state.get_f64_vec_exact("weighted_sum", k)?;
        self.weight = state.get_f64_vec_exact("weight", k)?;
        self.total_weight = state.get_f64("total_weight")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn stats_with(counts_means: &[(u64, f64)]) -> ArmStats {
        let mut s = ArmStats::new(counts_means.len());
        for (arm, &(m, mu)) in counts_means.iter().enumerate() {
            for _ in 0..m {
                s.update(arm, mu); // constant observations give mean = mu
            }
        }
        s
    }

    #[test]
    fn cs_ucb_unplayed_gets_bonus() {
        let mut p = CsUcb::new(99.0);
        let s = ArmStats::new(2);
        let idx = p.indices(1, &s, &mut rng());
        assert_eq!(idx, vec![99.0, 99.0]);
    }

    #[test]
    fn cs_ucb_clamps_negative_log() {
        // With K·m large and t small, ln(t^{2/3}/(K·m)) < 0 → index = mean.
        let mut p = CsUcb::new(99.0);
        let s = stats_with(&[(100, 0.5), (100, 0.7)]);
        let idx = p.indices(2, &s, &mut rng());
        assert!((idx[0] - 0.5).abs() < 1e-12, "idx {}", idx[0]);
        assert!((idx[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cs_ucb_bonus_positive_for_large_t() {
        // With t huge and m small, the confidence term is active.
        let mut p = CsUcb::new(99.0);
        let s = stats_with(&[(1, 0.5)]);
        let idx = p.indices(1_000_000, &s, &mut rng());
        let expect =
            0.5 + (((2.0 / 3.0) * (1_000_000f64).ln() - (1.0f64).ln()).max(0.0) / 1.0).sqrt();
        assert!((idx[0] - expect).abs() < 1e-12);
        assert!(idx[0] > 0.5);
    }

    #[test]
    fn cs_ucb_confidence_shrinks_with_plays() {
        let mut p = CsUcb::new(99.0);
        let few = stats_with(&[(2, 0.5)]);
        let many = stats_with(&[(50, 0.5)]);
        let t = 10_000;
        let idx_few = p.indices(t, &few, &mut rng())[0];
        let idx_many = p.indices(t, &many, &mut rng())[0];
        assert!(idx_few > idx_many);
    }

    #[test]
    fn llr_formula() {
        let mut p = Llr::new(4, 99.0);
        let s = stats_with(&[(9, 0.3)]);
        let t = 100;
        let idx = p.indices(t, &s, &mut rng())[0];
        let expect = 0.3 + ((5.0 * (100f64).ln()) / 9.0).sqrt();
        assert!((idx - expect).abs() < 1e-12);
    }

    #[test]
    fn llr_bonus_larger_than_cs_ucb_late() {
        // LLR's (L+1)·ln t bonus dominates CS-UCB's clamped (2/3)ln t − ln(K·m)
        // for equal stats — the over-exploration the paper criticizes.
        let s = stats_with(&[(10, 0.5), (10, 0.5)]);
        let t = 1000;
        let llr = Llr::new(5, 9.0).indices(t, &s, &mut rng())[0];
        let cs = CsUcb::new(9.0).indices(t, &s, &mut rng())[0];
        assert!(llr > cs, "llr {llr} vs cs {cs}");
    }

    #[test]
    fn epsilon_zero_is_pure_exploitation() {
        let mut p = EpsilonGreedy::new(0.0, 42.0);
        let s = stats_with(&[(3, 0.9), (0, 0.0)]);
        let idx = p.indices(5, &s, &mut rng());
        assert!((idx[0] - 0.9).abs() < 1e-12);
        assert_eq!(idx[1], 42.0);
    }

    #[test]
    fn epsilon_one_is_pure_exploration() {
        let mut p = EpsilonGreedy::new(1.0, 42.0);
        let s = stats_with(&[(3, 0.9)]);
        let idx = p.indices(5, &s, &mut rng());
        assert!(idx[0] != 0.9); // random draw, not the mean
        assert!((0.0..=1.0).contains(&idx[0]));
    }

    #[test]
    fn oracle_returns_true_means() {
        let mut p = Oracle::new(vec![0.1, 0.2]);
        let s = ArmStats::new(2);
        assert_eq!(p.indices(1, &s, &mut rng()), vec![0.1, 0.2]);
    }

    #[test]
    fn random_indices_in_unit_range() {
        let mut p = Random;
        let s = ArmStats::new(8);
        let idx = p.indices(1, &s, &mut rng());
        assert!(idx.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CsUcb::new(1.0).name(), "cs-ucb");
        assert_eq!(Llr::new(1, 1.0).name(), "llr");
        assert_eq!(EpsilonGreedy::new(0.1, 1.0).name(), "epsilon-greedy");
        assert_eq!(Random.name(), "random");
        assert_eq!(Oracle::new(vec![]).name(), "oracle");
        assert_eq!(
            DiscountedCsUcb::new(1, 0.9, 1.0).name(),
            "discounted-cs-ucb"
        );
    }

    #[test]
    fn observe_default_is_noop_for_stationary_policies() {
        let mut p = CsUcb::new(2.0);
        p.observe(0, 0.9); // must not panic or change behavior
        let s = ArmStats::new(1);
        assert_eq!(p.indices(1, &s, &mut rng()), vec![2.0]);
    }

    #[test]
    fn discounted_mean_tracks_recent_observations() {
        let mut p = DiscountedCsUcb::new(1, 0.5, 2.0);
        let s = ArmStats::new(1);
        // Old value 0.2, then decay via two decisions, then fresh 0.8s.
        p.observe(0, 0.2);
        let _ = p.indices(1, &s, &mut rng());
        let _ = p.indices(2, &s, &mut rng());
        p.observe(0, 0.8);
        p.observe(0, 0.8);
        // Discounted mean is dominated by the fresh 0.8 observations.
        assert!(p.discounted_mean(0) > 0.7, "mean {}", p.discounted_mean(0));
    }

    #[test]
    fn discounted_effective_count_decays() {
        let mut p = DiscountedCsUcb::new(2, 0.9, 2.0);
        let s = ArmStats::new(2);
        p.observe(0, 0.5);
        assert!((p.effective_count(0) - 1.0).abs() < 1e-12);
        let _ = p.indices(1, &s, &mut rng());
        assert!((p.effective_count(0) - 0.9).abs() < 1e-12);
        // Unobserved arm keeps the exploration bonus.
        let idx = p.indices(2, &s, &mut rng());
        assert_eq!(idx[1], 2.0);
    }

    #[test]
    fn gamma_one_never_forgets() {
        let mut p = DiscountedCsUcb::new(1, 1.0, 2.0);
        let s = ArmStats::new(1);
        for _ in 0..10 {
            p.observe(0, 0.4);
            let _ = p.indices(1, &s, &mut rng());
        }
        assert!((p.effective_count(0) - 10.0).abs() < 1e-9);
        assert!((p.discounted_mean(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn discounted_rejects_bad_gamma() {
        let _ = DiscountedCsUcb::new(1, 0.0, 1.0);
    }
}
