//! Regret accounting: Eq. (1) regret, β-regret, and the practical
//! (θ-scaled) regret of Section IV-E.

use crate::state::{StateError, StateMap};
use serde::{Deserialize, Serialize};

/// Tracks the reward history of one policy run and derives the paper's
/// regret notions.
///
/// Conventions (all rates in the same unit, e.g. kbps):
///
/// * `optimal` is `R_1`, the expected per-round throughput of the best
///   *fixed* strategy (the exact MWIS under true means, Eq. (2)).
/// * `beta ≥ 1` is the oracle approximation factor; the β-regret target is
///   `R_1/β`.
/// * `theta ∈ (0, 1]` is the airtime fraction `t_d/t_a` of Section IV-E;
///   effective throughput is `θ·R_x(t)`.
///
/// Per round the caller records the *expected* throughput `λ_x` of the
/// strategy it played (sum of true means — this is what Eq. (1)'s
/// expectation evaluates to) and the *observed* throughput (sum of
/// realized rates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretTracker {
    optimal: f64,
    beta: f64,
    theta: f64,
    expected_sum: f64,
    observed_sum: f64,
    rounds: u64,
    cumulative_regret: Vec<f64>,
    cumulative_beta_regret: Vec<f64>,
}

impl RegretTracker {
    /// Tracker for a run against optimum `optimal = R_1`, oracle factor
    /// `beta`, airtime fraction `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `optimal < 0`, `beta < 1`, or `theta ∉ (0, 1]`.
    pub fn new(optimal: f64, beta: f64, theta: f64) -> Self {
        assert!(optimal >= 0.0, "optimal must be non-negative");
        assert!(beta >= 1.0, "beta must be at least 1");
        assert!(theta > 0.0 && theta <= 1.0, "theta in (0, 1]");
        RegretTracker {
            optimal,
            beta,
            theta,
            expected_sum: 0.0,
            observed_sum: 0.0,
            rounds: 0,
            cumulative_regret: Vec::new(),
            cumulative_beta_regret: Vec::new(),
        }
    }

    /// Records one round: the played strategy's expected throughput
    /// `λ_x = Σ µ` and observed throughput `Σ ξ`.
    pub fn record(&mut self, expected: f64, observed: f64) {
        self.rounds += 1;
        self.expected_sum += expected;
        self.observed_sum += observed;
        let n = self.rounds as f64;
        self.cumulative_regret
            .push(n * self.optimal - self.expected_sum);
        self.cumulative_beta_regret
            .push(n * self.optimal / self.beta - self.expected_sum);
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Eq. (1): `n·R_1 − Σ λ_x(t)` after the last recorded round.
    pub fn regret(&self) -> f64 {
        *self.cumulative_regret.last().unwrap_or(&0.0)
    }

    /// β-regret: `n·R_1/β − Σ λ_x(t)` (negative once the policy beats the
    /// `1/β` target, as in the paper's Fig. 7(b)).
    pub fn beta_regret(&self) -> f64 {
        *self.cumulative_beta_regret.last().unwrap_or(&0.0)
    }

    /// Per-round practical regret after `n` rounds:
    /// `R_1 − θ·(Σ observed)/n` — the gap between the genie's expected
    /// throughput and the achieved *effective* (airtime-scaled) throughput.
    /// This is the quantity Fig. 7(a) plots.
    pub fn practical_regret(&self) -> f64 {
        if self.rounds == 0 {
            self.optimal
        } else {
            self.optimal - self.theta * self.observed_sum / self.rounds as f64
        }
    }

    /// Per-round practical β-regret: `R_1/β − θ·(Σ observed)/n`
    /// (Fig. 7(b); converges negative when effective throughput beats the
    /// `1/β` target).
    pub fn practical_beta_regret(&self) -> f64 {
        if self.rounds == 0 {
            self.optimal / self.beta
        } else {
            self.optimal / self.beta - self.theta * self.observed_sum / self.rounds as f64
        }
    }

    /// Average observed (un-scaled) throughput per round.
    pub fn average_observed(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.observed_sum / self.rounds as f64
        }
    }

    /// Average expected throughput per round.
    pub fn average_expected(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.expected_sum / self.rounds as f64
        }
    }

    /// Full cumulative-regret series (index `i` = after round `i+1`).
    pub fn regret_series(&self) -> &[f64] {
        &self.cumulative_regret
    }

    /// Full cumulative β-regret series.
    pub fn beta_regret_series(&self) -> &[f64] {
        &self.cumulative_beta_regret
    }

    /// The configured optimum `R_1`.
    pub fn optimal(&self) -> f64 {
        self.optimal
    }

    /// The configured airtime fraction θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The configured oracle factor β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Writes the accumulated reward history into `out` (checkpoint).
    /// The configuration (`optimal`, `beta`, `theta`) is *not* recorded —
    /// the restoring side rebuilds the tracker from the run config via
    /// [`RegretTracker::new`] and then calls
    /// [`RegretTracker::restore_state`].
    pub fn snapshot_state(&self, out: &mut StateMap) {
        out.put_u64("rounds", self.rounds);
        out.put_f64("expected_sum", self.expected_sum);
        out.put_f64("observed_sum", self.observed_sum);
        out.put_f64_vec("cumulative_regret", self.cumulative_regret.clone());
        out.put_f64_vec(
            "cumulative_beta_regret",
            self.cumulative_beta_regret.clone(),
        );
    }

    /// Restores history captured by [`RegretTracker::snapshot_state`]
    /// into a tracker built with the same configuration.
    pub fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        let rounds = state.get_u64("rounds")?;
        let n = usize::try_from(rounds)
            .map_err(|_| StateError::invalid("rounds", "round count overflows usize"))?;
        self.rounds = rounds;
        self.expected_sum = state.get_f64("expected_sum")?;
        self.observed_sum = state.get_f64("observed_sum")?;
        self.cumulative_regret = state.get_f64_vec_exact("cumulative_regret", n)?;
        self.cumulative_beta_regret = state.get_f64_vec_exact("cumulative_beta_regret", n)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_play_has_zero_regret() {
        let mut t = RegretTracker::new(10.0, 2.0, 0.5);
        for _ in 0..5 {
            t.record(10.0, 10.0);
        }
        assert!(t.regret().abs() < 1e-12);
        // β-regret goes negative: 5·(10/2) − 50 = −25.
        assert!((t.beta_regret() + 25.0).abs() < 1e-12);
    }

    #[test]
    fn suboptimal_play_accumulates_regret_linearly() {
        let mut t = RegretTracker::new(10.0, 1.0, 1.0);
        for _ in 0..4 {
            t.record(7.0, 7.0);
        }
        assert!((t.regret() - 12.0).abs() < 1e-12);
        assert_eq!(t.regret_series().len(), 4);
        assert!((t.regret_series()[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn practical_regret_reflects_theta() {
        let mut t = RegretTracker::new(10.0, 2.0, 0.5);
        t.record(10.0, 10.0);
        // Effective throughput 5 ⇒ practical regret 10 − 5 = 5.
        assert!((t.practical_regret() - 5.0).abs() < 1e-12);
        // Practical β-regret: 10/2 − 5 = 0.
        assert!(t.practical_beta_regret().abs() < 1e-12);
    }

    #[test]
    fn averages() {
        let mut t = RegretTracker::new(10.0, 1.0, 1.0);
        t.record(4.0, 3.0);
        t.record(6.0, 9.0);
        assert!((t.average_expected() - 5.0).abs() < 1e-12);
        assert!((t.average_observed() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_defaults() {
        let t = RegretTracker::new(8.0, 2.0, 0.5);
        assert_eq!(t.regret(), 0.0);
        assert_eq!(t.practical_regret(), 8.0);
        assert_eq!(t.practical_beta_regret(), 4.0);
        assert_eq!(t.rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_below_one_rejected() {
        let _ = RegretTracker::new(1.0, 0.5, 1.0);
    }
}
