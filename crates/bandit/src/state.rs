//! Snapshot currency for mid-run checkpointing.
//!
//! A [`StateMap`] is an *ordered* list of `(key, value)` pairs holding the
//! resumable state of one component — a policy's decayed statistics, the
//! regret tracker's sums, the runner's RNG position. Components write
//! snapshots with the `put_*` methods and read them back with the `get_*`
//! methods; the service layer serializes the map to the checkpoint file
//! (encoding every `f64` by its exact bit pattern, so restore is
//! bit-identical — see `mhca_service::checkpoint`).
//!
//! Keys are flat strings. Component composition uses dotted prefixes:
//! [`StateMap::put_nested`] folds a child map in under `"<prefix>."`, and
//! [`StateMap::extract_nested`] pulls it back out. Insertion order is
//! preserved end to end, which keeps serialized checkpoints byte-stable
//! across snapshot/restore cycles.

use std::fmt;

/// One value in a [`StateMap`].
#[derive(Debug, Clone, PartialEq)]
pub enum StateValue {
    /// Unsigned counter (round numbers, play counts, stream positions).
    U64(u64),
    /// Floating-point scalar, restored bit-exactly.
    F64(f64),
    /// Vector of counters.
    U64Vec(Vec<u64>),
    /// Vector of floats, restored bit-exactly element-wise.
    F64Vec(Vec<f64>),
}

impl StateValue {
    /// Human-readable type tag, used in error messages and serialization.
    pub fn type_name(&self) -> &'static str {
        match self {
            StateValue::U64(_) => "u64",
            StateValue::F64(_) => "f64",
            StateValue::U64Vec(_) => "u64vec",
            StateValue::F64Vec(_) => "f64vec",
        }
    }
}

/// A restore failed: a key was missing or held the wrong type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateError {
    /// The offending key.
    pub key: String,
    /// What went wrong.
    pub message: String,
}

impl StateError {
    fn missing(key: &str) -> Self {
        StateError {
            key: key.to_string(),
            message: "missing key".to_string(),
        }
    }

    fn wrong_type(key: &str, want: &str, got: &str) -> Self {
        StateError {
            key: key.to_string(),
            message: format!("expected {want}, found {got}"),
        }
    }

    /// A restore error not tied to key lookup (length mismatch, invalid
    /// value).
    pub fn invalid(key: &str, message: impl Into<String>) -> Self {
        StateError {
            key: key.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state key `{}`: {}", self.key, self.message)
    }
}

impl std::error::Error for StateError {}

/// Ordered `(key, value)` snapshot of one resumable component.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateMap {
    entries: Vec<(String, StateValue)>,
}

impl StateMap {
    /// Empty map.
    pub fn new() -> Self {
        StateMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StateValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Appends `(key, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already present — duplicate keys would make the
    /// checkpoint ambiguous.
    pub fn put(&mut self, key: impl Into<String>, value: StateValue) {
        let key = key.into();
        assert!(
            self.get(&key).is_none(),
            "duplicate state key `{key}` in snapshot"
        );
        self.entries.push((key, value));
    }

    /// Appends a `u64` entry.
    pub fn put_u64(&mut self, key: impl Into<String>, value: u64) {
        self.put(key, StateValue::U64(value));
    }

    /// Appends an `f64` entry (restored bit-exactly).
    pub fn put_f64(&mut self, key: impl Into<String>, value: f64) {
        self.put(key, StateValue::F64(value));
    }

    /// Appends a `u64` vector entry.
    pub fn put_u64_vec(&mut self, key: impl Into<String>, value: impl Into<Vec<u64>>) {
        self.put(key, StateValue::U64Vec(value.into()));
    }

    /// Appends an `f64` vector entry (restored bit-exactly element-wise).
    pub fn put_f64_vec(&mut self, key: impl Into<String>, value: impl Into<Vec<f64>>) {
        self.put(key, StateValue::F64Vec(value.into()));
    }

    /// Looks up `key`, `None` when absent.
    pub fn get(&self, key: &str) -> Option<&StateValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Reads a `u64` entry.
    pub fn get_u64(&self, key: &str) -> Result<u64, StateError> {
        match self.get(key) {
            Some(StateValue::U64(v)) => Ok(*v),
            Some(other) => Err(StateError::wrong_type(key, "u64", other.type_name())),
            None => Err(StateError::missing(key)),
        }
    }

    /// Reads an `f64` entry.
    pub fn get_f64(&self, key: &str) -> Result<f64, StateError> {
        match self.get(key) {
            Some(StateValue::F64(v)) => Ok(*v),
            Some(other) => Err(StateError::wrong_type(key, "f64", other.type_name())),
            None => Err(StateError::missing(key)),
        }
    }

    /// Reads a `u64` vector entry as a slice.
    pub fn get_u64_slice(&self, key: &str) -> Result<&[u64], StateError> {
        match self.get(key) {
            Some(StateValue::U64Vec(v)) => Ok(v),
            Some(other) => Err(StateError::wrong_type(key, "u64vec", other.type_name())),
            None => Err(StateError::missing(key)),
        }
    }

    /// Reads an `f64` vector entry as a slice.
    pub fn get_f64_slice(&self, key: &str) -> Result<&[f64], StateError> {
        match self.get(key) {
            Some(StateValue::F64Vec(v)) => Ok(v),
            Some(other) => Err(StateError::wrong_type(key, "f64vec", other.type_name())),
            None => Err(StateError::missing(key)),
        }
    }

    /// Reads a `u64` vector entry of exactly `len` elements.
    pub fn get_u64_vec_exact(&self, key: &str, len: usize) -> Result<Vec<u64>, StateError> {
        let v = self.get_u64_slice(key)?;
        if v.len() != len {
            return Err(StateError::invalid(
                key,
                format!("expected {len} elements, found {}", v.len()),
            ));
        }
        Ok(v.to_vec())
    }

    /// Reads an `f64` vector entry of exactly `len` elements.
    pub fn get_f64_vec_exact(&self, key: &str, len: usize) -> Result<Vec<f64>, StateError> {
        let v = self.get_f64_slice(key)?;
        if v.len() != len {
            return Err(StateError::invalid(
                key,
                format!("expected {len} elements, found {}", v.len()),
            ));
        }
        Ok(v.to_vec())
    }

    /// Folds `child` in under `"<prefix>."` — every child key `k` becomes
    /// `"<prefix>.k"`, preserving order.
    pub fn put_nested(&mut self, prefix: &str, child: StateMap) {
        for (k, v) in child.entries {
            self.put(format!("{prefix}.{k}"), v);
        }
    }

    /// Extracts the child map stored under `"<prefix>."`, stripping the
    /// prefix. Empty when no keys match.
    pub fn extract_nested(&self, prefix: &str) -> StateMap {
        let dotted = format!("{prefix}.");
        let entries = self
            .entries
            .iter()
            .filter(|(k, _)| k.starts_with(&dotted))
            .map(|(k, v)| (k[dotted.len()..].to_string(), v.clone()))
            .collect();
        StateMap { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_type() {
        let mut m = StateMap::new();
        m.put_u64("rounds", 42);
        m.put_f64("sum", -0.0);
        m.put_u64_vec("counts", vec![1, 2, 3]);
        m.put_f64_vec("means", vec![0.5, f64::MIN_POSITIVE]);
        assert_eq!(m.get_u64("rounds").unwrap(), 42);
        assert_eq!(m.get_f64("sum").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(m.get_u64_slice("counts").unwrap(), &[1, 2, 3]);
        assert_eq!(m.get_f64_slice("means").unwrap(), &[0.5, f64::MIN_POSITIVE]);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn missing_and_mistyped_keys_error() {
        let mut m = StateMap::new();
        m.put_u64("a", 1);
        assert_eq!(m.get_u64("b").unwrap_err().message, "missing key");
        assert!(m.get_f64("a").unwrap_err().message.contains("expected f64"));
        assert!(m.get_u64_vec_exact("a", 2).is_err());
    }

    #[test]
    fn exact_length_vec_reads_enforce_length() {
        let mut m = StateMap::new();
        m.put_f64_vec("v", vec![1.0, 2.0]);
        assert_eq!(m.get_f64_vec_exact("v", 2).unwrap(), vec![1.0, 2.0]);
        let err = m.get_f64_vec_exact("v", 3).unwrap_err();
        assert!(err.message.contains("expected 3 elements"));
    }

    #[test]
    #[should_panic(expected = "duplicate state key")]
    fn duplicate_keys_rejected() {
        let mut m = StateMap::new();
        m.put_u64("k", 1);
        m.put_u64("k", 2);
    }

    #[test]
    fn nesting_round_trips_and_preserves_order() {
        let mut child = StateMap::new();
        child.put_u64("flood", 7);
        child.put_f64_vec("w", vec![0.25]);
        let mut parent = StateMap::new();
        parent.put_u64("t", 100);
        parent.put_nested("loss", child.clone());
        assert_eq!(parent.get_u64("loss.flood").unwrap(), 7);
        let back = parent.extract_nested("loss");
        assert_eq!(back, child);
        assert!(parent.extract_nested("absent").is_empty());
    }
}
