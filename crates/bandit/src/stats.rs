//! Per-arm sufficient statistics and the update rules (5)–(6).

use serde::{Deserialize, Serialize};

/// Running statistics for `K` arms: observed mean `µ̃_k` and play count
/// `m_k`, updated exactly as the paper's Eqs. (5) and (6):
///
/// ```text
/// µ̃_k(t) = (µ̃_k(t−1)·m_k(t−1) + ξ_k(t)) / m_k(t)   if k played,
/// m_k(t) = m_k(t−1) + 1                              if k played,
/// ```
///
/// both unchanged otherwise. Storage is `O(K) = O(MN)` — the paper's
/// headline space saving over the `O(M^N)` joint formulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmStats {
    means: Vec<f64>,
    counts: Vec<u64>,
}

impl ArmStats {
    /// Fresh statistics for `k` arms (all means 0, all counts 0).
    pub fn new(k: usize) -> Self {
        ArmStats {
            means: vec![0.0; k],
            counts: vec![0; k],
        }
    }

    /// Rebuilds statistics from previously captured parts (checkpoint
    /// restore). The vectors must be exactly as returned by
    /// [`ArmStats::means`] / [`ArmStats::counts`].
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_parts(means: Vec<f64>, counts: Vec<u64>) -> Self {
        assert_eq!(means.len(), counts.len(), "means/counts length mismatch");
        ArmStats { means, counts }
    }

    /// Number of arms `K`.
    pub fn k(&self) -> usize {
        self.means.len()
    }

    /// Observed mean `µ̃_k` (0 before the first play).
    pub fn mean(&self, arm: usize) -> f64 {
        self.means[arm]
    }

    /// Play count `m_k`.
    pub fn count(&self, arm: usize) -> u64 {
        self.counts[arm]
    }

    /// All means (slice view).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// All counts (slice view).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Records one observation of `arm` — Eqs. (5)–(6).
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `value` is not finite.
    pub fn update(&mut self, arm: usize, value: f64) {
        assert!(value.is_finite(), "observation must be finite");
        let m = self.counts[arm];
        self.means[arm] = (self.means[arm] * m as f64 + value) / (m + 1) as f64;
        self.counts[arm] = m + 1;
    }

    /// Records a batch of `(arm, value)` observations (semi-bandit
    /// feedback of one round).
    pub fn update_batch(&mut self, observations: &[(usize, f64)]) {
        for &(arm, value) in observations {
            self.update(arm, value);
        }
    }

    /// Arms never played so far.
    pub fn unplayed(&self) -> Vec<usize> {
        (0..self.k()).filter(|&a| self.counts[a] == 0).collect()
    }

    /// Total plays across all arms.
    pub fn total_plays(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = ArmStats::new(3);
        assert_eq!(s.k(), 3);
        assert_eq!(s.mean(0), 0.0);
        assert_eq!(s.count(2), 0);
        assert_eq!(s.unplayed(), vec![0, 1, 2]);
    }

    #[test]
    fn running_mean_equals_arithmetic_mean() {
        let mut s = ArmStats::new(1);
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for &x in &xs {
            s.update(0, x);
        }
        let expect = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((s.mean(0) - expect).abs() < 1e-12);
        assert_eq!(s.count(0), xs.len() as u64);
    }

    #[test]
    fn unplayed_arms_untouched_by_updates() {
        let mut s = ArmStats::new(3);
        s.update(1, 2.0);
        assert_eq!(s.mean(0), 0.0);
        assert_eq!(s.count(0), 0);
        assert_eq!(s.unplayed(), vec![0, 2]);
    }

    #[test]
    fn batch_update_matches_sequential() {
        let mut a = ArmStats::new(2);
        let mut b = ArmStats::new(2);
        let obs = [(0, 1.0), (1, 2.0), (0, 3.0)];
        a.update_batch(&obs);
        for &(arm, v) in &obs {
            b.update(arm, v);
        }
        assert_eq!(a, b);
        assert_eq!(a.total_plays(), 3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_observation_rejected() {
        let mut s = ArmStats::new(1);
        s.update(0, f64::NAN);
    }
}
