//! Gaussian Thompson sampling for the combinatorial semi-bandit.
//!
//! A Bayesian alternative to the paper's UCB-style index: each arm's index
//! is a posterior *sample* rather than an upper confidence bound. With a
//! `N(µ̃_k, σ²/(m_k+1))` posterior (Gaussian likelihood, improper flat
//! prior), the sampled indices plug straight into the same MWIS oracle —
//! randomized optimism instead of deterministic optimism. Not part of the
//! paper; included as a modern baseline for the policy benches.

use crate::{policies::IndexPolicy, stats::ArmStats};
use rand::RngCore;

/// Gaussian Thompson sampling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianThompson {
    /// Observation noise scale σ (in normalized reward units).
    pub sigma: f64,
    /// Index granted to arms never played (forces initial exploration,
    /// like the UCB policies' bonus).
    pub exploration_bonus: f64,
}

impl GaussianThompson {
    /// Thompson sampler with observation noise `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn new(sigma: f64, exploration_bonus: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        GaussianThompson {
            sigma,
            exploration_bonus,
        }
    }

    /// Box–Muller standard normal from a dynamic RNG.
    fn standard_normal(rng: &mut dyn RngCore) -> f64 {
        let u1: f64 = 1.0 - rand::Rng::gen::<f64>(rng);
        let u2: f64 = rand::Rng::gen::<f64>(rng);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl IndexPolicy for GaussianThompson {
    fn indices_into(
        &mut self,
        _t: u64,
        stats: &ArmStats,
        rng: &mut dyn RngCore,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend((0..stats.k()).map(|arm| {
            let m = stats.count(arm);
            if m == 0 {
                self.exploration_bonus
            } else {
                let std = self.sigma / ((m + 1) as f64).sqrt();
                stats.mean(arm) + std * Self::standard_normal(rng)
            }
        }));
    }

    fn name(&self) -> &'static str {
        "gaussian-thompson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn stats_with_plays(plays: &[(u64, f64)]) -> ArmStats {
        let mut s = ArmStats::new(plays.len());
        for (arm, &(m, mu)) in plays.iter().enumerate() {
            for _ in 0..m {
                s.update(arm, mu);
            }
        }
        s
    }

    #[test]
    fn unplayed_arms_get_the_bonus() {
        let mut p = GaussianThompson::new(0.1, 9.0);
        let s = ArmStats::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.indices(1, &s, &mut rng), vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn posterior_concentrates_with_plays() {
        let mut p = GaussianThompson::new(0.2, 9.0);
        let few = stats_with_plays(&[(2, 0.5)]);
        let many = stats_with_plays(&[(2000, 0.5)]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut spread = |s: &ArmStats, rng: &mut StdRng| {
            let xs: Vec<f64> = (0..200).map(|t| p.indices(t, s, rng)[0]).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let sd_few = spread(&few, &mut rng);
        let sd_many = spread(&many, &mut rng);
        assert!(
            sd_many < sd_few / 5.0,
            "posterior should concentrate: few {sd_few}, many {sd_many}"
        );
    }

    #[test]
    fn samples_center_on_the_mean() {
        let mut p = GaussianThompson::new(0.3, 9.0);
        let s = stats_with_plays(&[(10, 0.7)]);
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..2000).map(|t| p.indices(t, &s, &mut rng)[0]).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.7).abs() < 0.02, "sample mean {mean}");
    }

    #[test]
    fn identifies_best_arm_in_simple_bandit() {
        // Single-node, 3-channel bandit: the arm with the highest mean
        // should collect the majority of plays.
        let mut p = GaussianThompson::new(0.1, 2.0);
        let mut stats = ArmStats::new(3);
        let means = [0.3, 0.8, 0.5];
        let mut rng = StdRng::seed_from_u64(3);
        let mut plays = [0u64; 3];
        for t in 1..=500 {
            let idx = p.indices(t, &stats, &mut rng);
            let arm = (0..3)
                .max_by(|&a, &b| idx[a].partial_cmp(&idx[b]).unwrap())
                .unwrap();
            plays[arm] += 1;
            // Noisy observation around the true mean.
            let noise = 0.05 * GaussianThompson::standard_normal(&mut rng);
            stats.update(arm, (means[arm] + noise).clamp(0.0, 1.0));
        }
        assert!(
            plays[1] > plays[0] + plays[2],
            "best arm underplayed: {plays:?}"
        );
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn rejects_nonpositive_sigma() {
        let _ = GaussianThompson::new(0.0, 1.0);
    }
}
