//! Property-based tests for the bandit substrate.

use mhca_bandit::{
    bounds,
    joint::maximal_independent_sets,
    policies::{CsUcb, EpsilonGreedy, IndexPolicy, Llr, Oracle},
    ArmStats, RegretTracker,
};
use mhca_graph::Graph;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn running_mean_is_exact(values in proptest::collection::vec(0.0f64..10.0, 1..50)) {
        let mut stats = ArmStats::new(1);
        for &v in &values {
            stats.update(0, v);
        }
        let expect = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((stats.mean(0) - expect).abs() < 1e-9);
        prop_assert_eq!(stats.count(0), values.len() as u64);
    }

    #[test]
    fn indices_are_finite_and_at_least_the_mean(
        k in 1usize..20,
        t in 1u64..100_000,
        plays in 1u64..100,
    ) {
        let mut stats = ArmStats::new(k);
        for arm in 0..k {
            for _ in 0..plays {
                stats.update(arm, (arm as f64) / k as f64);
            }
        }
        let mut rng = StdRng::seed_from_u64(0);
        for policy in [
            &mut CsUcb::new(2.0) as &mut dyn IndexPolicy,
            &mut Llr::new(k, 2.0),
        ] {
            let idx = policy.indices(t, &stats, &mut rng);
            prop_assert_eq!(idx.len(), k);
            for (arm, &x) in idx.iter().enumerate() {
                prop_assert!(x.is_finite());
                prop_assert!(x >= stats.mean(arm) - 1e-12, "optimism violated");
            }
        }
    }

    #[test]
    fn cs_ucb_index_decreases_with_more_plays(t in 100u64..1_000_000) {
        let mut few = ArmStats::new(1);
        let mut many = ArmStats::new(1);
        for _ in 0..3 {
            few.update(0, 0.5);
        }
        for _ in 0..300 {
            many.update(0, 0.5);
        }
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = CsUcb::new(2.0);
        let a = p.indices(t, &few, &mut rng)[0];
        let b = p.indices(t, &many, &mut rng)[0];
        prop_assert!(a >= b - 1e-12);
    }

    #[test]
    fn oracle_and_epsilon_zero_agree_on_played_arms(means in proptest::collection::vec(0.01f64..1.0, 1..10)) {
        let k = means.len();
        let mut stats = ArmStats::new(k);
        for (arm, &mu) in means.iter().enumerate() {
            stats.update(arm, mu); // mean equals mu after one constant play
        }
        let mut rng = StdRng::seed_from_u64(0);
        let oracle_idx = Oracle::new(means.clone()).indices(5, &stats, &mut rng);
        let greedy_idx = EpsilonGreedy::new(0.0, 9.9).indices(5, &stats, &mut rng);
        for arm in 0..k {
            prop_assert!((oracle_idx[arm] - greedy_idx[arm]).abs() < 1e-12);
        }
    }

    #[test]
    fn regret_identities(optimal in 1.0f64..100.0, rewards in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let mut tr = RegretTracker::new(optimal, 2.0, 0.5);
        for &r in &rewards {
            tr.record(r.min(optimal), r);
        }
        let n = rewards.len() as f64;
        // Cumulative regret identity.
        let sum_expected: f64 = rewards.iter().map(|&r| r.min(optimal)).sum();
        prop_assert!((tr.regret() - (n * optimal - sum_expected)).abs() < 1e-6);
        // β-regret is regret shifted by n·R1(1 − 1/β).
        let shift = n * optimal * (1.0 - 1.0 / 2.0);
        prop_assert!((tr.regret() - tr.beta_regret() - shift).abs() < 1e-6);
        // Practical regret uses observed × θ.
        let avg_obs = rewards.iter().sum::<f64>() / n;
        prop_assert!((tr.practical_regret() - (optimal - 0.5 * avg_obs)).abs() < 1e-6);
    }

    #[test]
    fn theorem1_bound_is_positive_and_sublinear(n_users in 1usize..30, m in 1usize..10, beta in 1.0f64..10.0) {
        let k = n_users * m;
        let b1 = bounds::theorem1(1_000, n_users, k, beta);
        let b2 = bounds::theorem1(1_000_000, n_users, k, beta);
        prop_assert!(b1 > 0.0 && b2 > 0.0);
        prop_assert!(b2 / 1_000_000.0 < b1 / 1_000.0, "per-round bound must shrink");
    }

    #[test]
    fn mis_enumeration_matches_brute_force_count(n in 1usize..8, edge_mask in any::<u32>()) {
        let mut g = Graph::builder(n);
        let mut bit = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                if edge_mask >> (bit % 32) & 1 == 1 {
                    g.add_edge(u, v);
                }
                bit += 1;
            }
        }
        let g = g.build();
        let listed = maximal_independent_sets(&g);
        // Brute force: a set is a maximal IS iff independent and no vertex
        // can be added.
        let mut count = 0;
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if !g.is_independent(&set) {
                continue;
            }
            let maximal = (0..n).all(|v| {
                set.contains(&v) || set.iter().any(|&u| g.has_edge(u, v))
            });
            if maximal {
                count += 1;
            }
        }
        prop_assert_eq!(listed.len(), count);
    }
}

// ---- Policy-state round-trip battery (PR 8).
//
// Every IndexPolicy must checkpoint mid-stream and continue
// bit-identically: snapshot the policy's internal state and the RNG
// stream position after `warmup` rounds, rebuild a fresh policy from the
// same spec, restore, and verify the next `cont` rounds produce the same
// index bits as the uninterrupted policy. ArmStats is shared state and
// travels alongside (the runner checkpoints it separately).

mod roundtrip {
    use super::*;
    use mhca_bandit::policies::{DiscountedCsUcb, Random};
    use mhca_bandit::thompson::GaussianThompson;
    use mhca_bandit::StateMap;

    /// One fresh instance per policy kind, as `PolicySpec::build` makes
    /// them (configuration comes from the spec, never the checkpoint).
    fn zoo(k: usize) -> Vec<Box<dyn IndexPolicy>> {
        let means: Vec<f64> = (0..k).map(|a| (a as f64 + 0.5) / k as f64).collect();
        vec![
            Box::new(CsUcb::new(2.0)),
            Box::new(Llr::new(k, 2.0)),
            Box::new(GaussianThompson::new(0.5, 2.0)),
            Box::new(DiscountedCsUcb::new(k, 0.97, 2.0)),
            Box::new(EpsilonGreedy::new(0.1, 2.0)),
            Box::new(Random),
            Box::new(Oracle::new(means)),
        ]
    }

    /// Deterministic pseudo-observation for round `t`, arm `a`.
    fn obs(t: u64, a: usize) -> f64 {
        ((t.wrapping_mul(31) + a as u64) % 7) as f64 / 7.0
    }

    /// Drives `rounds` rounds: indices, then an observation on every arm.
    fn drive(
        policy: &mut dyn IndexPolicy,
        stats: &mut ArmStats,
        rng: &mut StdRng,
        t0: u64,
        rounds: u64,
        record: &mut Vec<Vec<f64>>,
    ) {
        let k = stats.k();
        for t in t0..t0 + rounds {
            record.push(policy.indices(t, stats, rng));
            for a in 0..k {
                let v = obs(t, a);
                stats.update(a, v);
                policy.observe(a, v);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn every_policy_roundtrips_bit_identically(
            k in 2usize..9,
            warmup in 1u64..60,
            cont in 1u64..40,
            seed in 0u64..1 << 48,
        ) {
            for (which, mut policy) in zoo(k).into_iter().enumerate() {
                let mut stats = ArmStats::new(k);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut scratch = Vec::new();
                drive(policy.as_mut(), &mut stats, &mut rng, 1, warmup, &mut scratch);

                // Checkpoint: policy state + RNG stream position (+ the
                // shared ArmStats, cloned as the runner would restore it).
                let mut state = StateMap::new();
                policy.snapshot_state(&mut state);
                let rng_state = rng.state();
                let stats_at_ck = stats.clone();

                // Uninterrupted continuation.
                let mut a = Vec::new();
                drive(policy.as_mut(), &mut stats, &mut rng, 1 + warmup, cont, &mut a);

                // Fresh policy of the same spec, restored, continued.
                let mut fresh = zoo(k).remove(which);
                fresh.restore_state(&state).unwrap();
                let mut stats2 = stats_at_ck;
                let mut rng2 = StdRng::from_state(rng_state);
                let mut b = Vec::new();
                drive(fresh.as_mut(), &mut stats2, &mut rng2, 1 + warmup, cont, &mut b);

                prop_assert_eq!(a.len(), b.len());
                for (ia, ib) in a.iter().zip(&b) {
                    for (va, vb) in ia.iter().zip(ib) {
                        prop_assert_eq!(
                            va.to_bits(),
                            vb.to_bits(),
                            "policy {} diverged after restore",
                            policy.name()
                        );
                    }
                }
            }
        }
    }
}
