//! Criterion bench: ablations of the design choices DESIGN.md calls out.
//!
//! * mini-round budget D (1, 2, 4, 8) — decision cost vs the Fig. 6
//!   convergence observation;
//! * local solver (exact enumeration vs greedy vs auto) — the paper's
//!   "more efficient constant approximation" remark;
//! * radius r (1 vs 2) — the ρ^r ≤ M·(2r+1)² trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhca_core::{DistributedPtas, DistributedPtasConfig, LocalSolver, Network};
use std::hint::black_box;

fn bench_miniround_budget(c: &mut Criterion) {
    let net = Network::random(80, 5, 5.0, 0.1, 400);
    let weights = net.channels().means();
    let mut group = c.benchmark_group("ablation_minirounds");
    group.sample_size(10);
    for &d in &[1usize, 2, 4, 8] {
        let cfg = DistributedPtasConfig::default()
            .with_r(2)
            .with_max_minirounds(Some(d));
        group.bench_function(BenchmarkId::from_parameter(d), |b| {
            let mut ptas = DistributedPtas::new(net.h(), cfg);
            b.iter(|| black_box(ptas.decide(&weights)))
        });
    }
    group.finish();
}

fn bench_local_solver(c: &mut Criterion) {
    let net = Network::random(80, 5, 5.0, 0.1, 401);
    let weights = net.channels().means();
    let mut group = c.benchmark_group("ablation_local_solver");
    group.sample_size(10);
    let solvers = [
        ("exact", LocalSolver::Exact),
        ("greedy", LocalSolver::Greedy),
        (
            "auto14",
            LocalSolver::Auto {
                max_exact_groups: 14,
            },
        ),
    ];
    for (name, solver) in solvers {
        let cfg = DistributedPtasConfig::default()
            .with_r(2)
            .with_max_minirounds(Some(4))
            .with_local_solver(solver);
        group.bench_function(name, |b| {
            let mut ptas = DistributedPtas::new(net.h(), cfg);
            b.iter(|| black_box(ptas.decide(&weights)))
        });
    }
    group.finish();
}

fn bench_radius(c: &mut Criterion) {
    let net = Network::random(80, 5, 5.0, 0.1, 402);
    let weights = net.channels().means();
    let mut group = c.benchmark_group("ablation_radius");
    group.sample_size(10);
    for &r in &[1usize, 2, 3] {
        let cfg = DistributedPtasConfig::default()
            .with_r(r)
            .with_max_minirounds(Some(4));
        group.bench_function(BenchmarkId::from_parameter(r), |b| {
            let mut ptas = DistributedPtas::new(net.h(), cfg);
            b.iter(|| black_box(ptas.decide(&weights)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_miniround_budget,
    bench_local_solver,
    bench_radius
);
criterion_main!(benches);
