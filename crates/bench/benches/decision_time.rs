//! Criterion bench: strategy-decision time.
//!
//! The paper's complexity pitch: the distributed decision costs
//! `O(D·m·ρ^r)` per round — independent of N per vertex — while the naive
//! joint-strategy formulation pays time linear in its `O(M^N)` arm count.
//! This bench measures (a) `DistributedPtas::decide` across N and r,
//! (b) joint-UCB1 arm enumeration + selection blowup with N on a matching
//! (where the strategy count is exactly 2^(N/2)), and (c) the WB phase of
//! one Algorithm 2 round — the per-round `(2r+1)`-hop weight broadcast
//! from the previous round's winners — on the 100-node, 3-channel network
//! the `BENCH_PR1.json` regression numbers are pinned to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhca_bandit::joint::JointUcb1;
use mhca_core::{DistributedPtas, DistributedPtasConfig, Network};
use mhca_graph::Graph;
use mhca_sim::{Flood, FloodEngine};
use std::hint::black_box;

fn bench_wb_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("wb_flood");
    let net = Network::random(100, 3, 5.0, 0.1, 77);
    let r = DistributedPtasConfig::default().r;
    let means = net.channels().means();
    let mut ptas = DistributedPtas::new(net.h(), DistributedPtasConfig::default());
    let winners = ptas.decide(&means).winners;
    let floods: Vec<Flood<()>> = winners
        .iter()
        .map(|&v| Flood {
            origin: v,
            ttl: 2 * r + 1,
            payload: (),
        })
        .collect();
    group.bench_function(BenchmarkId::new("round_broadcast", "100x3"), |b| {
        // Full delivery into reusable inboxes (the general-purpose path).
        let mut engine = FloodEngine::new(net.h().graph());
        let mut inboxes = Vec::new();
        b.iter(|| {
            engine.deliver_into(&floods, &mut inboxes);
            black_box(inboxes.len())
        })
    });
    group.bench_function(BenchmarkId::new("counters_only", "100x3"), |b| {
        // Accounting-only broadcast — the WB phase exactly as `run_policy`
        // performs it per round.
        let mut engine = FloodEngine::new(net.h().graph());
        b.iter(|| {
            engine.broadcast_only(&floods);
            black_box(engine.counters().transmissions)
        })
    });
    group.finish();
}

fn bench_distributed_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_distributed");
    group.sample_size(10);
    // n = 400 is the PR-4 regression size (BENCH_PR4.json pins the
    // incremental dirty-ball decide phase to ≥ 3× there); see the
    // `decide_profile` binary for the incremental-vs-rescan breakdown.
    for &n in &[50usize, 100, 200, 400] {
        let net = Network::random(n, 5, 5.0, 0.1, 300 + n as u64);
        let weights = net.channels().means();
        for &r in &[1usize, 2] {
            let cfg = DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(Some(4));
            group.bench_function(BenchmarkId::new(format!("r{r}"), n), |b| {
                let mut ptas = DistributedPtas::new(net.h(), cfg);
                b.iter(|| black_box(ptas.decide(&weights)))
            });
        }
    }
    group.finish();
}

fn bench_joint_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_joint_ucb1");
    // Perfect matchings: k edges ⇒ exactly 2^k maximal strategies, an
    // honest stand-in for the O(M^N) arm count of the naive formulation.
    for &k in &[8usize, 12, 16] {
        let edges: Vec<_> = (0..k).map(|i| (2 * i, 2 * i + 1)).collect();
        let g = Graph::from_edges(2 * k, &edges);
        group.bench_function(BenchmarkId::new("enumerate_and_select", 2 * k), |b| {
            b.iter(|| {
                let mut ucb = JointUcb1::new(&g, 2.0 * k as f64);
                let idx = ucb.select();
                ucb.update(idx, 1.0);
                black_box(ucb.n_strategies())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distributed_decide,
    bench_joint_blowup,
    bench_wb_flood
);
criterion_main!(benches);
