//! Criterion bench: strategy-decision time.
//!
//! The paper's complexity pitch: the distributed decision costs
//! `O(D·m·ρ^r)` per round — independent of N per vertex — while the naive
//! joint-strategy formulation pays time linear in its `O(M^N)` arm count.
//! This bench measures (a) `DistributedPtas::decide` across N and r,
//! (b) joint-UCB1 arm enumeration + selection blowup with N on a matching
//! (where the strategy count is exactly 2^(N/2)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhca_bandit::joint::JointUcb1;
use mhca_core::{DistributedPtas, DistributedPtasConfig, Network};
use mhca_graph::Graph;
use std::hint::black_box;

fn bench_distributed_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_distributed");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let net = Network::random(n, 5, 5.0, 0.1, 300 + n as u64);
        let weights = net.channels().means();
        for &r in &[1usize, 2] {
            let cfg = DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(Some(4));
            group.bench_function(BenchmarkId::new(format!("r{r}"), n), |b| {
                let mut ptas = DistributedPtas::new(net.h(), cfg);
                b.iter(|| black_box(ptas.decide(&weights)))
            });
        }
    }
    group.finish();
}

fn bench_joint_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_joint_ucb1");
    // Perfect matchings: k edges ⇒ exactly 2^k maximal strategies, an
    // honest stand-in for the O(M^N) arm count of the naive formulation.
    for &k in &[8usize, 12, 16] {
        let mut g = Graph::new(2 * k);
        for i in 0..k {
            g.add_edge(2 * i, 2 * i + 1);
        }
        group.bench_function(BenchmarkId::new("enumerate_and_select", 2 * k), |b| {
            b.iter(|| {
                let mut ucb = JointUcb1::new(&g, 2.0 * k as f64);
                let idx = ucb.select();
                ucb.update(idx, 1.0);
                black_box(ucb.n_strategies())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed_decide, bench_joint_blowup);
criterion_main!(benches);
