//! Criterion bench: MWIS solver runtimes on unit-disk instances.
//!
//! Compares the exact branch-and-bound (the ground-truth/LocalLeader
//! solver), the greedy baselines, and the centralized robust PTAS across
//! instance sizes. The exact solver is only run at sizes where it is the
//! intended tool (ground truth for Fig. 7-scale instances).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhca_graph::{unit_disk, ExtendedConflictGraph};
use mhca_mwis::{exact, greedy, robust_ptas};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

struct Instance {
    h: ExtendedConflictGraph,
    weights: Vec<f64>,
    groups: Vec<usize>,
    allowed: Vec<usize>,
}

fn instance(n: usize, m: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, _) = unit_disk::random_with_average_degree(n, 4.0, &mut rng);
    let h = ExtendedConflictGraph::new(&g, m);
    let weights: Vec<f64> = (0..h.n_vertices())
        .map(|_| rng.gen_range(0.1..1.0))
        .collect();
    let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / m).collect();
    let allowed: Vec<usize> = (0..h.n_vertices()).collect();
    Instance {
        h,
        weights,
        groups,
        allowed,
    }
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwis_exact");
    for &(n, m) in &[(10usize, 3usize), (15, 3), (20, 3)] {
        let inst = instance(n, m, 100 + n as u64);
        group.bench_with_input(
            BenchmarkId::new("grouped_bb", format!("{n}x{m}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(exact::solve_grouped(
                        inst.h.graph(),
                        &inst.weights,
                        &inst.allowed,
                        &inst.groups,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_greedy_and_ptas(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwis_approx");
    for &(n, m) in &[(50usize, 5usize), (100, 5), (200, 5)] {
        let inst = instance(n, m, 200 + n as u64);
        group.bench_with_input(
            BenchmarkId::new("greedy_max_weight", format!("{n}x{m}")),
            &inst,
            |b, inst| b.iter(|| black_box(greedy::max_weight(inst.h.graph(), &inst.weights))),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_weight_degree", format!("{n}x{m}")),
            &inst,
            |b, inst| b.iter(|| black_box(greedy::weight_degree(inst.h.graph(), &inst.weights))),
        );
        let cfg = robust_ptas::Config::with_epsilon_and_max_r(0.5, 2);
        group.bench_with_input(
            BenchmarkId::new("robust_ptas_r2", format!("{n}x{m}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(robust_ptas::solve_grouped(
                        inst.h.graph(),
                        &inst.weights,
                        &cfg,
                        &inst.groups,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_greedy_and_ptas);
criterion_main!(benches);
