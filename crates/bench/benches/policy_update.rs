//! Criterion bench: per-round learning cost.
//!
//! The paper's storage/computation claim: the vertex-level formulation
//! costs `O(MN)` per round (index computation + estimate updates) instead
//! of `O(M^N)`. This bench measures index computation for CS-UCB and LLR
//! across arm counts, and the Eq. (5)–(6) batch update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhca_bandit::{
    policies::{CsUcb, IndexPolicy, Llr},
    ArmStats,
};
use mhca_core::{
    runner::{run_policy, Algorithm2Config},
    Network,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn bench_round_loop(c: &mut Criterion) {
    // End-to-end Algorithm 2 rounds (WB phase + decision + updates) on the
    // 100-node, 3-channel regression network of BENCH_PR1.json.
    let mut group = c.benchmark_group("algorithm2_rounds");
    group.sample_size(10);
    let net = Network::random(100, 3, 5.0, 0.1, 77);
    let cfg = Algorithm2Config::default().with_horizon(64);
    group.bench_function(BenchmarkId::new("run_policy_cs_ucb", "100x3x64"), |b| {
        b.iter(|| black_box(run_policy(&net, &cfg, &mut CsUcb::new(2.0))))
    });
    group.finish();
}

fn prepared_stats(k: usize, seed: u64) -> ArmStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = ArmStats::new(k);
    for arm in 0..k {
        for _ in 0..(1 + arm % 7) {
            stats.update(arm, rng.gen_range(0.0..1.0));
        }
    }
    stats
}

fn bench_indices(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_indices");
    for &k in &[100usize, 1000, 10_000] {
        let stats = prepared_stats(k, k as u64);
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("cs_ucb", k), &stats, |b, stats| {
            let mut p = CsUcb::new(2.0);
            b.iter(|| black_box(p.indices(1000, stats, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("llr", k), &stats, |b, stats| {
            let mut p = Llr::new(100, 2.0);
            b.iter(|| black_box(p.indices(1000, stats, &mut rng)))
        });
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_updates");
    for &selected in &[10usize, 100, 1000] {
        let mut rng = StdRng::seed_from_u64(2);
        let observations: Vec<(usize, f64)> = (0..selected)
            .map(|i| (i, rng.gen_range(0.0..1.0)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("eq5_eq6_batch", selected),
            &observations,
            |b, obs| {
                b.iter(|| {
                    let mut stats = ArmStats::new(1000.max(selected));
                    stats.update_batch(obs);
                    black_box(stats.total_plays())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_indices, bench_updates, bench_round_loop);
criterion_main!(benches);
