//! Criterion bench: per-round learning cost.
//!
//! The paper's storage/computation claim: the vertex-level formulation
//! costs `O(MN)` per round (index computation + estimate updates) instead
//! of `O(M^N)`. This bench measures index computation for CS-UCB and LLR
//! across arm counts, and the Eq. (5)–(6) batch update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mhca_bandit::{
    policies::{CsUcb, IndexPolicy, Llr},
    ArmStats,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn prepared_stats(k: usize, seed: u64) -> ArmStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = ArmStats::new(k);
    for arm in 0..k {
        for _ in 0..(1 + arm % 7) {
            stats.update(arm, rng.gen_range(0.0..1.0));
        }
    }
    stats
}

fn bench_indices(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_indices");
    for &k in &[100usize, 1000, 10_000] {
        let stats = prepared_stats(k, k as u64);
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("cs_ucb", k), &stats, |b, stats| {
            let mut p = CsUcb::new(2.0);
            b.iter(|| black_box(p.indices(1000, stats, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("llr", k), &stats, |b, stats| {
            let mut p = Llr::new(100, 2.0);
            b.iter(|| black_box(p.indices(1000, stats, &mut rng)))
        });
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_updates");
    for &selected in &[10usize, 100, 1000] {
        let mut rng = StdRng::seed_from_u64(2);
        let observations: Vec<(usize, f64)> = (0..selected)
            .map(|i| (i, rng.gen_range(0.0..1.0)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("eq5_eq6_batch", selected),
            &observations,
            |b, obs| {
                b.iter(|| {
                    let mut stats = ArmStats::new(1000.max(selected));
                    stats.update_batch(obs);
                    black_box(stats.total_plays())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_indices, bench_updates);
criterion_main!(benches);
