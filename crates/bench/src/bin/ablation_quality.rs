//! Quality ablations of the design parameters DESIGN.md calls out:
//! how mini-round budget D, radius r, the local solver, and channel noise
//! σ affect the *achieved weight/throughput* (the timing counterpart
//! lives in `benches/ablation.rs`).
//!
//! Run with: `cargo run --release -p mhca-bench --bin ablation_quality`

use mhca_bandit::policies::CsUcb;
use mhca_bench::csv_row;
use mhca_core::{
    runner::{run_policy, Algorithm2Config},
    DistributedPtas, DistributedPtasConfig, LocalSolver, Network,
};

fn decision_weight(net: &Network, cfg: DistributedPtasConfig) -> f64 {
    let w = net.channels().means();
    let mut ptas = DistributedPtas::new(net.h(), cfg);
    let out = ptas.decide(&w);
    out.winners.iter().map(|&v| w[v]).sum()
}

fn main() {
    let net = Network::random(80, 5, 3.5, 0.1, 500);
    let full = decision_weight(
        &net,
        DistributedPtasConfig::default().with_max_minirounds(None),
    );

    println!("# (a) mini-round budget D vs fraction of full-run weight (r=2)");
    csv_row(&["d", "weight_kbps", "fraction_of_full"]);
    for d in [1usize, 2, 3, 4, 6, 8] {
        let w = decision_weight(
            &net,
            DistributedPtasConfig::default().with_max_minirounds(Some(d)),
        );
        csv_row(&[
            format!("{d}"),
            format!("{w:.0}"),
            format!("{:.3}", w / full),
        ]);
    }

    println!();
    println!("# (b) radius r vs weight (D=4; larger r = better local optima, fewer leaders)");
    csv_row(&["r", "weight_kbps"]);
    for r in [1usize, 2, 3] {
        let w = decision_weight(
            &net,
            DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(Some(4)),
        );
        csv_row(&[format!("{r}"), format!("{w:.0}")]);
    }

    println!();
    println!("# (c) local solver vs weight (r=2, D=4)");
    csv_row(&["solver", "weight_kbps"]);
    for (name, solver) in [
        ("exact", LocalSolver::Exact),
        ("greedy", LocalSolver::Greedy),
        ("local_search", LocalSolver::LocalSearch { max_passes: 10 }),
        (
            "auto14",
            LocalSolver::Auto {
                max_exact_groups: 14,
            },
        ),
    ] {
        let w = decision_weight(
            &net,
            DistributedPtasConfig::default()
                .with_max_minirounds(Some(4))
                .with_local_solver(solver),
        );
        csv_row(&[name.to_string(), format!("{w:.0}")]);
    }

    println!();
    println!("# (d) channel noise sigma vs learning quality (15x3, 600 slots)");
    csv_row(&["sigma_frac", "cs_ucb_expected_kbps", "optimum_kbps"]);
    for sigma in [0.0f64, 0.05, 0.1, 0.2, 0.4] {
        let net = Network::random_connected(15, 3, 3.5, sigma, 501);
        let opt = net.optimal().weight;
        let cfg = Algorithm2Config::default().with_horizon(600);
        let run = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        csv_row(&[
            format!("{sigma}"),
            format!("{:.0}", run.average_expected_kbps),
            format!("{opt:.0}"),
        ]);
    }
    println!();
    println!("# expected: (a) fraction ~1 by D=4; (b) r=2 >= r=1; (c) exact >=");
    println!("# local_search >= greedy; (d) learning quality degrades gently with sigma");
}
