//! Measures the Section IV-C complexity claims of the distributed
//! strategy decision:
//!
//! * per-vertex communication is `O(r² + D)` — independent of N;
//! * per-vertex storage is `O(m)` (the (2r+1)-ball size), independent of N;
//! * decision time is dominated by local MWIS work, not network size.
//!
//! Run with: `cargo run --release -p mhca-bench --bin complexity`

use mhca_bench::csv_row;
use mhca_core::experiments::complexity;

fn main() {
    let ns = [25, 50, 100, 200];
    let rs = [1, 2];
    eprintln!("measuring decision communication for N in {ns:?}, r in {rs:?} ...");
    let pts = complexity(&ns, 5, &rs, 5.0, 4, 91);
    csv_row(&[
        "n",
        "m_channels",
        "r",
        "minirounds",
        "mean_tx_per_vertex",
        "max_tx_per_vertex",
        "timeslots",
        "mean_ball_size",
    ]);
    for p in &pts {
        csv_row(&[
            format!("{}", p.n),
            format!("{}", p.m),
            format!("{}", p.r),
            format!("{}", p.minirounds),
            format!("{:.2}", p.mean_tx_per_vertex),
            format!("{}", p.max_tx_per_vertex),
            format!("{}", p.timeslots),
            format!("{:.1}", p.mean_ball_size),
        ]);
    }
    println!();
    println!("# expected: mean_tx_per_vertex roughly flat in N at fixed r");
    println!("# (the paper's O(r^2 + D) per-vertex message bound), and");
    println!("# mean_ball_size flat in N (the O(m) space bound).");
}
