//! Measures the Section IV-C complexity claims of the distributed
//! strategy decision:
//!
//! * per-vertex communication is `O(r² + D)` — independent of N;
//! * per-vertex storage is `O(m)` (the (2r+1)-ball size), independent of N;
//! * decision time is dominated by local MWIS work, not network size.
//!
//! Thin wrapper over `mhca_core::experiments::run_complexity` +
//! `mhca_bench::report`; the `complexity` registry scenario of
//! `mhca-campaign run` executes the same experiment multi-seed.
//!
//! Run with: `cargo run --release -p mhca-bench --bin complexity`

use mhca_bench::report;
use mhca_core::experiments::{run_complexity, ComplexityConfig};

fn main() {
    let cfg = ComplexityConfig::default();
    eprintln!(
        "measuring decision communication for N in {:?}, r in {:?} ...",
        cfg.ns, cfg.rs
    );
    let pts = run_complexity(&cfg);
    report::render_complexity(&pts, &mut std::io::stdout().lock()).expect("stdout write");
}
