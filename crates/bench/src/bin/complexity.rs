//! Measures the Section IV-C complexity claims of the distributed
//! strategy decision:
//!
//! * per-vertex communication is `O(r² + D)` — independent of N;
//! * per-vertex storage is `O(m)` (the (2r+1)-ball size), independent of N;
//! * decision time is dominated by local MWIS work, not network size.
//!
//! Thin wrapper over the unified experiment engine
//! (`mhca_core::experiment`) + `mhca_bench::report`; the `complexity`
//! registry scenario of `mhca-campaign run` executes the same experiment
//! multi-seed.
//!
//! Run with: `cargo run --release -p mhca-bench --bin complexity`

use mhca_bench::report;
use mhca_core::experiment::{run_experiment, ComplexityExperiment};
use mhca_core::experiments::ComplexityConfig;
use mhca_core::ObserverSet;

fn main() {
    let cfg = ComplexityConfig::default();
    eprintln!(
        "measuring decision communication for N in {:?}, r in {:?} ...",
        cfg.ns, cfg.rs
    );
    let seed = cfg.seed;
    let out = run_experiment(&ComplexityExperiment(cfg), seed, ObserverSet::new());
    report::render_experiment(&out.data, &mut std::io::stdout().lock()).expect("stdout write");
}
