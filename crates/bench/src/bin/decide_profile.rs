//! Profiles the decide phase: incremental dirty-ball leader election vs
//! the full-rescan reference, across network sizes and radii, emitting
//! per-phase counters and wall-clock percentiles (p50/p99 from
//! [`mhca_telemetry::LogHistogram`]) as JSON (`BENCH_PR4.json`).
//!
//! Both paths run in one process on identical networks and weights, so
//! the speedup column is a true paired comparison (same machine, same
//! cache state, same inputs). Alongside wall time the profile records the
//! per-phase work counters that explain it: leader-election ball scans
//! (`*_scanned` — the term the dirty set shrinks), the `O(1)` pending
//! verdicts and blocked-count decrements unique to the incremental path,
//! and the flood-phase communication totals (identical across paths by
//! construction — the differential test battery pins this).
//!
//! The `--pr6` flag switches to the large-N grid instead: serial vs
//! partition-parallel (tiled) decide up to `n = 50_000`, with per-phase
//! nanosecond breakdowns ([`mhca_core::DecidePhaseNs`]), halo sizes, and
//! the table→BFS fallback counter, emitted as `BENCH_PR6.json`. The
//! partitioned outcome is asserted byte-identical to the serial one at
//! every grid point (and to the full-rescan oracle where it is run).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p mhca-bench --bin decide_profile              # full grid -> BENCH_PR4.json
//! cargo run --release -p mhca-bench --bin decide_profile -- --quick   # small grid, CI smoke
//! cargo run --release -p mhca-bench --bin decide_profile -- --out target/decide.json
//! cargo run --release -p mhca-bench --bin decide_profile -- --pr6     # large-N grid -> BENCH_PR6.json
//! cargo run --release -p mhca-bench --bin decide_profile -- --pr6 --quick
//! ```

use mhca_core::{DecidePhaseNs, DecisionOutcome, DistributedPtas, DistributedPtasConfig, Network};
use mhca_telemetry::{LogHistogram, Provenance};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured grid point.
struct ProfilePoint {
    n: usize,
    m: usize,
    r: usize,
    minirounds: usize,
    rescan_wall: LogHistogram,
    incremental_wall: LogHistogram,
    incremental_phases: PhaseHists,
    rescan_scanned: u64,
    incremental_scanned: u64,
    fast_skips: u64,
    dirty_decrements: u64,
    decide_transmissions: u64,
    decide_timeslots: u64,
}

/// Per-phase latency histograms over the timed decide calls.
struct PhaseHists {
    election: LogHistogram,
    broadcast: LogHistogram,
    mwis: LogHistogram,
    sweep: LogHistogram,
}

impl PhaseHists {
    fn new() -> Self {
        PhaseHists {
            election: LogHistogram::new(),
            broadcast: LogHistogram::new(),
            mwis: LogHistogram::new(),
            sweep: LogHistogram::new(),
        }
    }

    fn record(&mut self, p: &DecidePhaseNs) {
        self.election.record(p.election_ns);
        self.broadcast.record(p.broadcast_ns);
        self.mwis.record(p.mwis_ns);
        self.sweep.record(p.sweep_ns);
    }

    /// `{"election": {"p50_ns": …, "p99_ns": …}, …}` over the sampled calls.
    fn json(&self) -> String {
        let q = |h: &LogHistogram| format!("{{\"p50_ns\": {}, \"p99_ns\": {}}}", h.p50(), h.p99());
        format!(
            "{{\"election\": {}, \"broadcast\": {}, \"mwis\": {}, \"sweep\": {}}}",
            q(&self.election),
            q(&self.broadcast),
            q(&self.mwis),
            q(&self.sweep)
        )
    }
}

/// `{"host_threads": …, "rustc": "…", "git_commit": "…"}` — the same
/// stamp `mhca-campaign` writes into `manifest.json`.
fn provenance_json() -> String {
    let p = Provenance::capture();
    format!(
        "{{\"host_threads\": {}, \"rustc\": \"{}\", \"git_commit\": \"{}\"}}",
        p.host_threads, p.rustc, p.git_commit
    )
}

/// Times `calls` individual decide calls on `engine`, recording wall
/// nanoseconds per call and (when the engine profiles phases) the
/// per-phase breakdown of each call.
fn sample_engine(
    engine: &mut DistributedPtas<'_>,
    weights: &[f64],
    out: &mut DecisionOutcome,
    calls: usize,
    rescan: bool,
) -> (LogHistogram, PhaseHists) {
    let mut wall = LogHistogram::new();
    let mut phases = PhaseHists::new();
    for _ in 0..calls {
        let start = Instant::now();
        if rescan {
            engine.decide_into_rescan(weights, out);
        } else {
            engine.decide_into(weights, out);
        }
        wall.record(start.elapsed().as_nanos() as u64);
        phases.record(&engine.phase_ns());
    }
    (wall, phases)
}

fn profile(n: usize, m: usize, r: usize, samples: usize, iters: usize) -> ProfilePoint {
    let net = Network::random(n, m, 5.0, 0.1, 300 + n as u64);
    let weights = net.channels().means();
    let cfg = DistributedPtasConfig::default()
        .with_r(r)
        .with_max_minirounds(Some(4));
    let mut out = DecisionOutcome::default();
    let calls = samples * iters;

    let mut incremental = DistributedPtas::new(net.h(), cfg);
    incremental.set_profile_phases(true);
    incremental.decide_into(&weights, &mut out); // warm pools + tables
    let (incremental_wall, incremental_phases) =
        sample_engine(&mut incremental, &weights, &mut out, calls, false);
    let inc_stats = incremental.scan_stats();
    let minirounds = out.minirounds_used;
    let decide_transmissions = out.counters.transmissions;
    let decide_timeslots = out.counters.timeslots;

    let mut rescan = DistributedPtas::new(net.h(), cfg);
    rescan.decide_into_rescan(&weights, &mut out);
    let (rescan_wall, _) = sample_engine(&mut rescan, &weights, &mut out, calls, true);
    let re_stats = rescan.scan_stats();
    assert_eq!(
        out.counters.transmissions, decide_transmissions,
        "paths diverged — the parity battery should have caught this"
    );

    ProfilePoint {
        n,
        m,
        r,
        minirounds,
        rescan_wall,
        incremental_wall,
        incremental_phases,
        rescan_scanned: re_stats.candidates_scanned,
        incremental_scanned: inc_stats.candidates_scanned,
        fast_skips: inc_stats.fast_skips,
        dirty_decrements: inc_stats.dirty_decrements,
        decide_transmissions,
        decide_timeslots,
    }
}

// ---------------------------------------------------------------------------
// PR 6: large-N serial vs partition-parallel grid.
// ---------------------------------------------------------------------------

/// Flood-table entry cap for the large-N grid: 2^25 packed `u32` entries
/// (128 MiB). The point of the compact layout is that lossless floods stay
/// table scans at `n = 5×10^4`; `fallback_floods` in the emitted JSON
/// proves whether they did.
const PR6_TABLE_ENTRY_CAP: usize = 1 << 25;

/// One measured large-N grid point.
struct Pr6Point {
    n: usize,
    m: usize,
    r: usize,
    partitions: usize,
    h_vertices: usize,
    minirounds: usize,
    serial_wall: LogHistogram,
    partitioned_wall: LogHistogram,
    rescan_wall: Option<LogHistogram>,
    serial_phases: PhaseHists,
    partitioned_phases: PhaseHists,
    halo_entries: usize,
    fallback_floods: u64,
    decide_transmissions: u64,
}

fn profile_pr6(
    n: usize,
    m: usize,
    r: usize,
    partitions: usize,
    samples: usize,
    iters: usize,
    with_rescan: bool,
) -> Pr6Point {
    let net = Network::random(n, m, 5.0, 0.1, 300 + n as u64);
    let weights = net.channels().means();
    let base = DistributedPtasConfig::default()
        .with_r(r)
        .with_max_minirounds(Some(4));
    let mut out = DecisionOutcome::default();

    let calls = samples * iters;

    // Serial reference first; dropped before the partitioned engine is
    // built so only one ball CSR is resident at a time at n = 5×10^4.
    let mut serial = DistributedPtas::new(net.h(), base);
    serial.set_table_entry_cap(PR6_TABLE_ENTRY_CAP);
    serial.set_profile_phases(true);
    serial.decide_into(&weights, &mut out); // warm pools + tables
    let (serial_wall, serial_phases) = sample_engine(&mut serial, &weights, &mut out, calls, false);
    let expect = out.clone();
    drop(serial);

    let mut tiled = DistributedPtas::new(net.h(), base.with_partitions(partitions));
    tiled.set_table_entry_cap(PR6_TABLE_ENTRY_CAP);
    tiled.set_profile_phases(true);
    tiled.decide_into(&weights, &mut out);
    assert_eq!(
        out, expect,
        "partitioned decide diverged from serial at n={n} r={r} p={partitions}"
    );
    let (partitioned_wall, partitioned_phases) =
        sample_engine(&mut tiled, &weights, &mut out, calls, false);
    let halo_entries = tiled.partition().map_or(0, |p| p.halo_entries());
    drop(tiled);

    let rescan_wall = with_rescan.then(|| {
        let mut rescan = DistributedPtas::new(net.h(), base);
        rescan.set_table_entry_cap(PR6_TABLE_ENTRY_CAP);
        rescan.decide_into_rescan(&weights, &mut out);
        assert_eq!(
            out, expect,
            "rescan oracle diverged from serial at n={n} r={r}"
        );
        sample_engine(&mut rescan, &weights, &mut out, calls, true).0
    });

    Pr6Point {
        n,
        m,
        r,
        partitions,
        h_vertices: net.h().n_vertices(),
        minirounds: expect.minirounds_used,
        serial_wall,
        partitioned_wall,
        rescan_wall,
        serial_phases,
        partitioned_phases,
        halo_entries,
        fallback_floods: expect.fallback_floods,
        decide_transmissions: expect.counters.transmissions,
    }
}

fn run_pr6(quick: bool, out_path: &str) {
    // (n, r, samples, iters, rescan-oracle?): r = 2 (the paper's radius)
    // through n = 10^4, r = 1 on the two largest sizes to keep the
    // (2r+1)-ball tables affordable; the rescan oracle is O(survivors)
    // per mini-round, so it is only timed on the small end.
    let grid: &[(usize, usize, usize, usize, bool)] = if quick {
        &[(2_000, 1, 3, 1, true), (10_000, 1, 3, 1, false)]
    } else {
        &[
            (1_000, 2, 5, 3, true),
            (5_000, 2, 5, 2, true),
            (10_000, 2, 3, 2, false),
            (20_000, 1, 3, 1, false),
            (50_000, 1, 3, 1, false),
        ]
    };
    let (m, partitions) = (2usize, 4usize);

    let mut points = Vec::new();
    for &(n, r, samples, iters, with_rescan) in grid {
        eprintln!("profiling large-N n={n} m={m} r={r} partitions={partitions} ...");
        let p = profile_pr6(n, m, r, partitions, samples, iters, with_rescan);
        eprintln!(
            "  serial p50 {:>13} ns  partitioned p50 {:>13} ns  ratio {:.2}x  \
             halo {}  fallback_floods {}",
            p.serial_wall.p50(),
            p.partitioned_wall.p50(),
            p.serial_wall.p50() as f64 / p.partitioned_wall.p50().max(1) as f64,
            p.halo_entries,
            p.fallback_floods,
        );
        points.push(p);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"description\": \"PR 6 regression numbers: partition-parallel decide on the \
         large-N grid. Each point runs the serial incremental decide and the tiled \
         (core+halo stripe) decide on the same network and weights; *_ns are p50 \
         wall-clock per decision from a log-bucketed latency histogram (<=6.25% relative \
         error; *_p99_ns is the same histogram's p99), ratio = serial_ns / \
         partitioned_ns. Outcomes are asserted byte-identical in-process at every point \
         (and against the full-rescan oracle where rescan_ns is non-null). Per-phase \
         breakdowns come from DecidePhaseNs recorded on every profiled decision \
         (p50/p99 per phase). fallback_floods counts decide floods that silently fell \
         back from the compact ball table to live BFS — 0 means the 2^25-entry cap held \
         and lossless floods stayed table scans.\",\n",
    );
    json.push_str(
        "  \"workload\": \"Network::random(n, 2, 5.0, 0.1, 300 + n): unit-disk, 2 channels, \
         average conflict degree 5, max_minirounds 4; 4 tiles, one scoped worker thread \
         per tile; release profile, single process. The serial/partitioned ratio is \
         machine-conditional — on a single-core host the tiled path pays thread overhead \
         for no parallel speedup; see BENCHMARKS.md 'Large-N' for the honest read.\",\n",
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"provenance\": {},", provenance_json());
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let rescan = p
            .rescan_wall
            .as_ref()
            .map_or("null".to_string(), |h| h.p50().to_string());
        let rescan_p99 = p
            .rescan_wall
            .as_ref()
            .map_or("null".to_string(), |h| h.p99().to_string());
        let _ = writeln!(
            json,
            "    {{\"id\": \"large_n/r{}/{}\", \"n\": {}, \"m\": {}, \"r\": {}, \
             \"partitions\": {}, \"h_vertices\": {}, \"minirounds\": {}, \
             \"serial_ns\": {}, \"serial_p99_ns\": {}, \
             \"partitioned_ns\": {}, \"partitioned_p99_ns\": {}, \"ratio\": {:.2}, \
             \"rescan_ns\": {}, \"rescan_p99_ns\": {}, \
             \"serial_phase_ns\": {}, \"partitioned_phase_ns\": {}, \
             \"halo_entries\": {}, \"fallback_floods\": {}, \"decide_transmissions\": {}}}{}",
            p.r,
            p.n,
            p.n,
            p.m,
            p.r,
            p.partitions,
            p.h_vertices,
            p.minirounds,
            p.serial_wall.p50(),
            p.serial_wall.p99(),
            p.partitioned_wall.p50(),
            p.partitioned_wall.p99(),
            p.serial_wall.p50() as f64 / p.partitioned_wall.p50().max(1) as f64,
            rescan,
            rescan_p99,
            p.serial_phases.json(),
            p.partitioned_phases.json(),
            p.halo_entries,
            p.fallback_floods,
            p.decide_transmissions,
            comma,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write profile JSON");
    eprintln!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pr6 = args.iter().any(|a| a == "--pr6");
    let out_path = match args.iter().position(|a| a == "--out") {
        // A missing value must not silently fall back to clobbering the
        // committed regression artifact.
        Some(i) => args
            .get(i + 1)
            .expect("--out requires a path argument")
            .clone(),
        None if pr6 => "BENCH_PR6.json".to_string(),
        None => "BENCH_PR4.json".to_string(),
    };

    if pr6 {
        run_pr6(quick, &out_path);
        return;
    }

    let (ns, samples, iters): (&[usize], usize, usize) = if quick {
        (&[50, 100], 5, 3)
    } else {
        (&[100, 200, 400, 800], 9, 5)
    };
    let m = 5;

    let mut points = Vec::new();
    for &n in ns {
        for r in [1usize, 2] {
            eprintln!("profiling n={n} m={m} r={r} ...");
            let p = profile(n, m, r, samples, iters);
            eprintln!(
                "  rescan p50 {:>12} ns  incremental p50 {:>12} ns  speedup {:.2}x  \
                 scans {} -> {}",
                p.rescan_wall.p50(),
                p.incremental_wall.p50(),
                p.rescan_wall.p50() as f64 / p.incremental_wall.p50().max(1) as f64,
                p.rescan_scanned,
                p.incremental_scanned,
            );
            points.push(p);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"description\": \"PR 4 regression numbers: incremental dirty-ball leader \
         election in the decide phase. Each grid point runs DistributedPtas::decide_into \
         (incremental blocked-count election, counters-only floods) and \
         DistributedPtas::decide_into_rescan (the full-rescan reference, bit-identical \
         outcomes pinned by tests/decide_parity.rs) on the same network and weights; \
         *_ns are p50 wall-clock per decision from a log-bucketed latency histogram \
         (<=6.25% relative error; *_p99_ns is the same histogram's p99), speedup = \
         rescan_ns / incremental_ns; incremental_phase_ns carries per-phase p50/p99. \
         Scanned counters are (2r+1)-ball candidate evaluations per decision (at most \
         two per vertex on the incremental path, one per survivor per mini-round on the \
         reference); fast_skips and dirty_decrements are the incremental path's O(1) \
         bookkeeping.\",\n",
    );
    json.push_str(
        "  \"workload\": \"Network::random(n, 5, 5.0, 0.1, 300 + n): unit-disk, 5 channels, \
         average conflict degree 5, max_minirounds 4 (the decision_distributed bench \
         family); release profile, single process, paired measurement.\",\n",
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"provenance\": {},", provenance_json());
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"id\": \"decision_distributed/r{}/{}\", \"n\": {}, \"m\": {}, \"r\": {}, \
             \"minirounds\": {}, \"rescan_ns\": {}, \"rescan_p99_ns\": {}, \
             \"incremental_ns\": {}, \"incremental_p99_ns\": {}, \"speedup\": {:.2}, \
             \"incremental_phase_ns\": {}, \
             \"rescan_scanned\": {}, \"incremental_scanned\": {}, \
             \"fast_skips\": {}, \"dirty_decrements\": {}, \"decide_transmissions\": {}, \
             \"decide_timeslots\": {}}}{}",
            p.r,
            p.n,
            p.n,
            p.m,
            p.r,
            p.minirounds,
            p.rescan_wall.p50(),
            p.rescan_wall.p99(),
            p.incremental_wall.p50(),
            p.incremental_wall.p99(),
            p.rescan_wall.p50() as f64 / p.incremental_wall.p50().max(1) as f64,
            p.incremental_phases.json(),
            p.rescan_scanned,
            p.incremental_scanned,
            p.fast_skips,
            p.dirty_decrements,
            p.decide_transmissions,
            p.decide_timeslots,
            comma,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write profile JSON");
    eprintln!("wrote {out_path}");
}
