//! Profiles the decide phase: incremental dirty-ball leader election vs
//! the full-rescan reference, across network sizes and radii, emitting
//! per-phase counters and wall-clock medians as JSON (`BENCH_PR4.json`).
//!
//! Both paths run in one process on identical networks and weights, so
//! the speedup column is a true paired comparison (same machine, same
//! cache state, same inputs). Alongside wall time the profile records the
//! per-phase work counters that explain it: leader-election ball scans
//! (`*_scanned` — the term the dirty set shrinks), the `O(1)` pending
//! verdicts and blocked-count decrements unique to the incremental path,
//! and the flood-phase communication totals (identical across paths by
//! construction — the differential test battery pins this).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p mhca-bench --bin decide_profile              # full grid -> BENCH_PR4.json
//! cargo run --release -p mhca-bench --bin decide_profile -- --quick   # small grid, CI smoke
//! cargo run --release -p mhca-bench --bin decide_profile -- --out target/decide.json
//! ```

use mhca_core::{DecisionOutcome, DistributedPtas, DistributedPtasConfig, Network};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured grid point.
struct ProfilePoint {
    n: usize,
    m: usize,
    r: usize,
    minirounds: usize,
    rescan_ns: f64,
    incremental_ns: f64,
    rescan_scanned: u64,
    incremental_scanned: u64,
    fast_skips: u64,
    dirty_decrements: u64,
    decide_transmissions: u64,
    decide_timeslots: u64,
}

/// Median wall-clock nanoseconds per call of `f`, over `samples` samples
/// of `iters` calls each.
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    medians.sort_by(|a, b| a.total_cmp(b));
    medians[medians.len() / 2]
}

fn profile(n: usize, m: usize, r: usize, samples: usize, iters: usize) -> ProfilePoint {
    let net = Network::random(n, m, 5.0, 0.1, 300 + n as u64);
    let weights = net.channels().means();
    let cfg = DistributedPtasConfig::default()
        .with_r(r)
        .with_max_minirounds(Some(4));
    let mut out = DecisionOutcome::default();

    let mut incremental = DistributedPtas::new(net.h(), cfg);
    incremental.decide_into(&weights, &mut out); // warm pools + tables
    let incremental_ns = median_ns(samples, iters, || {
        incremental.decide_into(&weights, &mut out);
    });
    let inc_stats = incremental.scan_stats();
    let minirounds = out.minirounds_used;
    let decide_transmissions = out.counters.transmissions;
    let decide_timeslots = out.counters.timeslots;

    let mut rescan = DistributedPtas::new(net.h(), cfg);
    rescan.decide_into_rescan(&weights, &mut out);
    let rescan_ns = median_ns(samples, iters, || {
        rescan.decide_into_rescan(&weights, &mut out);
    });
    let re_stats = rescan.scan_stats();
    assert_eq!(
        out.counters.transmissions, decide_transmissions,
        "paths diverged — the parity battery should have caught this"
    );

    ProfilePoint {
        n,
        m,
        r,
        minirounds,
        rescan_ns,
        incremental_ns,
        rescan_scanned: re_stats.candidates_scanned,
        incremental_scanned: inc_stats.candidates_scanned,
        fast_skips: inc_stats.fast_skips,
        dirty_decrements: inc_stats.dirty_decrements,
        decide_transmissions,
        decide_timeslots,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        // A missing value must not silently fall back to clobbering the
        // committed regression artifact.
        Some(i) => args
            .get(i + 1)
            .expect("--out requires a path argument")
            .clone(),
        None => "BENCH_PR4.json".to_string(),
    };

    let (ns, samples, iters): (&[usize], usize, usize) = if quick {
        (&[50, 100], 5, 3)
    } else {
        (&[100, 200, 400, 800], 9, 5)
    };
    let m = 5;

    let mut points = Vec::new();
    for &n in ns {
        for r in [1usize, 2] {
            eprintln!("profiling n={n} m={m} r={r} ...");
            let p = profile(n, m, r, samples, iters);
            eprintln!(
                "  rescan {:>12.0} ns  incremental {:>12.0} ns  speedup {:.2}x  \
                 scans {} -> {}",
                p.rescan_ns,
                p.incremental_ns,
                p.rescan_ns / p.incremental_ns,
                p.rescan_scanned,
                p.incremental_scanned,
            );
            points.push(p);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"description\": \"PR 4 regression numbers: incremental dirty-ball leader \
         election in the decide phase. Each grid point runs DistributedPtas::decide_into \
         (incremental blocked-count election, counters-only floods) and \
         DistributedPtas::decide_into_rescan (the full-rescan reference, bit-identical \
         outcomes pinned by tests/decide_parity.rs) on the same network and weights; \
         *_ns are median wall-clock per decision, speedup = rescan_ns / incremental_ns. \
         Scanned counters are (2r+1)-ball candidate evaluations per decision (at most \
         two per vertex on the incremental path, one per survivor per mini-round on the \
         reference); fast_skips and dirty_decrements are the incremental path's O(1) \
         bookkeeping.\",\n",
    );
    json.push_str(
        "  \"workload\": \"Network::random(n, 5, 5.0, 0.1, 300 + n): unit-disk, 5 channels, \
         average conflict degree 5, max_minirounds 4 (the decision_distributed bench \
         family); release profile, single process, paired measurement.\",\n",
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"id\": \"decision_distributed/r{}/{}\", \"n\": {}, \"m\": {}, \"r\": {}, \
             \"minirounds\": {}, \"rescan_ns\": {:.1}, \"incremental_ns\": {:.1}, \
             \"speedup\": {:.2}, \"rescan_scanned\": {}, \"incremental_scanned\": {}, \
             \"fast_skips\": {}, \"dirty_decrements\": {}, \"decide_transmissions\": {}, \
             \"decide_timeslots\": {}}}{}",
            p.r,
            p.n,
            p.n,
            p.m,
            p.r,
            p.minirounds,
            p.rescan_ns,
            p.incremental_ns,
            p.rescan_ns / p.incremental_ns,
            p.rescan_scanned,
            p.incremental_scanned,
            p.fast_skips,
            p.dirty_decrements,
            p.decide_transmissions,
            p.decide_timeslots,
            comma,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write profile JSON");
    eprintln!("wrote {out_path}");
}
