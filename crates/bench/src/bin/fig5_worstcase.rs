//! Regenerates the Fig. 5 observation: on a linear network with strictly
//! decreasing weights, Algorithm 3 run to completion needs Θ(N)
//! mini-rounds — the worst case motivating the constant cap D.
//!
//! Thin wrapper over `mhca_core::experiments::run_fig5` +
//! `mhca_bench::report`; the `fig5` registry scenario of `mhca-campaign
//! run` executes the same experiment.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig5_worstcase`

use mhca_bench::report;
use mhca_core::experiments::{run_fig5, Fig5Config};

fn main() {
    let points = run_fig5(&Fig5Config::default());
    report::render_fig5(&points, &mut std::io::stdout().lock()).expect("stdout write");
}
