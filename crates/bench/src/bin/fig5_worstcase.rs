//! Regenerates the Fig. 5 observation: on a linear network with strictly
//! decreasing weights, Algorithm 3 run to completion needs Θ(N)
//! mini-rounds — the worst case motivating the constant cap D.
//!
//! Thin wrapper over the unified experiment engine
//! (`mhca_core::experiment`) + `mhca_bench::report`; the `fig5` registry
//! scenario of `mhca-campaign run` executes the same experiment.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig5_worstcase`

use mhca_bench::report;
use mhca_core::experiment::{run_experiment, Fig5Experiment};
use mhca_core::experiments::Fig5Config;
use mhca_core::ObserverSet;

fn main() {
    let out = run_experiment(
        &Fig5Experiment(Fig5Config::default()),
        0,
        ObserverSet::new(),
    );
    report::render_experiment(&out.data, &mut std::io::stdout().lock()).expect("stdout write");
}
