//! Regenerates the Fig. 5 observation: on a linear network with strictly
//! decreasing weights, Algorithm 3 run to completion needs Θ(N)
//! mini-rounds — the worst case motivating the constant cap D.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig5_worstcase`

use mhca_bench::csv_row;
use mhca_core::experiments::fig5_worstcase;

fn main() {
    let ns = [10, 20, 40, 80, 160, 320];
    csv_row(&["n", "minirounds_to_completion", "minirounds_over_n"]);
    for p in fig5_worstcase(&ns, 1) {
        csv_row(&[
            format!("{}", p.n),
            format!("{}", p.minirounds_used),
            format!("{:.3}", p.minirounds_used as f64 / p.n as f64),
        ]);
    }
    println!();
    println!("# the ratio minirounds/n should be roughly constant (linear growth)");
}
