//! Regenerates Fig. 6: summed weight of all output independent sets as
//! mini-rounds advance, for N×M ∈ {50,100,200}×{5,10} random networks.
//!
//! Expected shape (paper): every line converges to a fixed value after a
//! handful of mini-rounds regardless of network size — the Theorem 4
//! claim that a constant D suffices on random networks.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig6`

use mhca_bench::csv_row;
use mhca_core::experiments::{fig6, Fig6Config};

fn main() {
    let cfg = Fig6Config::default();
    eprintln!(
        "running fig6: sizes {:?}, avg degree {}, r={} ...",
        cfg.sizes, cfg.avg_degree, cfg.r
    );
    let series = fig6(&cfg);

    let mut header = vec!["miniround".to_string()];
    header.extend(series.iter().map(|s| format!("{}x{}", s.n, s.m)));
    csv_row(&header);
    for i in 0..cfg.minirounds {
        let mut row = vec![format!("{}", i + 1)];
        row.extend(
            series
                .iter()
                .map(|s| format!("{:.1}", s.weight_by_miniround[i])),
        );
        csv_row(&row);
    }
    println!();
    println!("# convergence mini-round per size (paper: ~4)");
    for s in &series {
        println!("# {}x{}: converged_at={}", s.n, s.m, s.converged_at);
    }
}
