//! Regenerates Fig. 6: summed weight of all output independent sets as
//! mini-rounds advance, for N×M ∈ {50,100,200}×{5,10} random networks.
//!
//! Expected shape (paper): every line converges to a fixed value after a
//! handful of mini-rounds regardless of network size — the Theorem 4
//! claim that a constant D suffices on random networks.
//!
//! Thin wrapper over the unified experiment engine
//! (`mhca_core::experiment`) + `mhca_bench::report`; the `fig6` registry
//! scenario of `mhca-campaign run` executes the same experiment
//! multi-seed.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig6`

use mhca_bench::report;
use mhca_core::experiment::{run_experiment, Fig6Experiment};
use mhca_core::experiments::Fig6Config;
use mhca_core::ObserverSet;

fn main() {
    let cfg = Fig6Config::default();
    eprintln!(
        "running fig6: sizes {:?}, topology {}, r={} ...",
        cfg.sizes,
        cfg.topology.label(),
        cfg.r
    );
    let seed = cfg.seed;
    let out = run_experiment(&Fig6Experiment(cfg), seed, ObserverSet::new());
    report::render_experiment(&out.data, &mut std::io::stdout().lock()).expect("stdout write");
}
