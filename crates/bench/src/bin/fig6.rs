//! Regenerates Fig. 6: summed weight of all output independent sets as
//! mini-rounds advance, for N×M ∈ {50,100,200}×{5,10} random networks.
//!
//! Expected shape (paper): every line converges to a fixed value after a
//! handful of mini-rounds regardless of network size — the Theorem 4
//! claim that a constant D suffices on random networks.
//!
//! Thin wrapper: the config comes from `mhca_core::experiments`, the
//! rendering from `mhca_bench::report`. The `fig6` registry scenario of
//! `mhca-campaign run` executes the same experiment multi-seed.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig6`

use mhca_bench::report;
use mhca_core::experiments::{fig6, Fig6Config};

fn main() {
    let cfg = Fig6Config::default();
    eprintln!(
        "running fig6: sizes {:?}, topology {}, r={} ...",
        cfg.sizes,
        cfg.topology.label(),
        cfg.r
    );
    let series = fig6(&cfg);
    report::render_fig6(&cfg, &series, &mut std::io::stdout().lock()).expect("stdout write");
}
