//! Regenerates Fig. 7: practical regret (a) and practical β-regret (b)
//! of Algorithm 2 versus the LLR policy, every-slot updates, on a random
//! connected 15-user × 3-channel network whose optimum is computed by
//! branch-and-bound (the paper's brute-force 7282.90 kbps instance).
//!
//! Expected shape (paper): both regrets decrease over time; Algorithm 2
//! stays below LLR; the β-regret converges to a *negative* value.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig7`

use mhca_bench::{csv_row, sample_indices};
use mhca_core::experiments::{fig7, Fig7Config};

fn main() {
    let cfg = Fig7Config::default();
    eprintln!(
        "running fig7: {}x{} network, horizon {} ...",
        cfg.n, cfg.m, cfg.horizon
    );
    let out = fig7(&cfg);
    println!(
        "# optimal R1 (kbps): {:.2} (paper instance: 7282.90)",
        out.optimal_kbps
    );
    println!("# beta = theta*alpha: {:.4}", out.beta);
    csv_row(&[
        "slot",
        "alg2_practical_regret",
        "llr_practical_regret",
        "alg2_beta_regret",
        "llr_beta_regret",
    ]);
    let n = out.algorithm2.practical_regret.len();
    for i in sample_indices(n, 50) {
        csv_row(&[
            format!("{}", i + 1),
            format!("{:.2}", out.algorithm2.practical_regret[i]),
            format!("{:.2}", out.llr.practical_regret[i]),
            format!("{:.2}", out.algorithm2.practical_beta_regret[i]),
            format!("{:.2}", out.llr.practical_beta_regret[i]),
        ]);
    }
    println!();
    println!(
        "# final: alg2 regret {:.1} vs llr {:.1} (alg2 should be lower)",
        out.algorithm2.practical_regret.last().unwrap(),
        out.llr.practical_regret.last().unwrap()
    );
    println!(
        "# final: alg2 beta-regret {:.1}, llr {:.1} (both should be negative)",
        out.algorithm2.practical_beta_regret.last().unwrap(),
        out.llr.practical_beta_regret.last().unwrap()
    );
}
