//! Regenerates Fig. 7: practical regret (a) and practical β-regret (b)
//! of Algorithm 2 versus the LLR policy, every-slot updates, on a random
//! connected 15-user × 3-channel network whose optimum is computed by
//! branch-and-bound (the paper's brute-force 7282.90 kbps instance).
//!
//! Expected shape (paper): both regrets decrease over time; Algorithm 2
//! stays below LLR; the β-regret converges to a *negative* value.
//!
//! Thin wrapper over the unified experiment engine
//! (`mhca_core::experiment`) + `mhca_bench::report`; the `fig7` registry
//! scenario of `mhca-campaign run` executes the same experiment
//! multi-seed.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig7`

use mhca_bench::report;
use mhca_core::experiment::{run_experiment, Fig7Experiment};
use mhca_core::experiments::Fig7Config;
use mhca_core::ObserverSet;

fn main() {
    let cfg = Fig7Config::default();
    eprintln!(
        "running fig7: {}x{} network, horizon {} ...",
        cfg.n, cfg.m, cfg.horizon
    );
    let seed = cfg.seed;
    let out = run_experiment(&Fig7Experiment(cfg), seed, ObserverSet::new());
    report::render_experiment(&out.data, &mut std::io::stdout().lock()).expect("stdout write");
}
