//! Regenerates Fig. 8: estimated vs actual average effective throughput
//! under periodic weight updates (y = 1, 5, 10, 20), Algorithm 2 vs LLR.
//!
//! Expected shape (paper): actual throughput grows toward the ideal as y
//! grows (1/2, 9/10, 19/20, 39/40 of ideal); Algorithm 2's estimated and
//! actual lines nearly coincide while LLR's estimate overshoots badly.
//!
//! Thin wrapper over the unified experiment engine
//! (`mhca_core::experiment`) + `mhca_bench::report`; the `fig8` registry
//! scenario of `mhca-campaign run` executes the same experiment
//! multi-seed. Default runs a reduced network for quick turnaround; pass
//! `--full` for the paper-scale 100 users × 10 channels with 1000 updates
//! per run.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig8 [--full]`

use mhca_bench::{full_scale, report};
use mhca_core::experiment::{run_experiment, Fig8Experiment};
use mhca_core::experiments::Fig8Config;
use mhca_core::ObserverSet;
use mhca_graph::TopologySpec;

fn main() {
    let cfg = if full_scale() {
        Fig8Config::default()
    } else {
        Fig8Config {
            n: 40,
            m: 5,
            topology: TopologySpec::UnitDisk { avg_degree: 5.0 },
            update_periods: vec![1, 5, 10, 20],
            updates_per_run: 250,
            r: 2,
            ..Fig8Config::default()
        }
    };
    eprintln!(
        "running fig8: {}x{} network, y in {:?}, {} updates per run ...",
        cfg.n, cfg.m, cfg.update_periods, cfg.updates_per_run
    );
    let seed = cfg.seed;
    let out = run_experiment(&Fig8Experiment(cfg), seed, ObserverSet::new());
    report::render_experiment(&out.data, &mut std::io::stdout().lock()).expect("stdout write");
}
