//! Regenerates Fig. 8: estimated vs actual average effective throughput
//! under periodic weight updates (y = 1, 5, 10, 20), Algorithm 2 vs LLR.
//!
//! Expected shape (paper): actual throughput grows toward the ideal as y
//! grows (1/2, 9/10, 19/20, 39/40 of ideal); Algorithm 2's estimated and
//! actual lines nearly coincide while LLR's estimate overshoots badly.
//!
//! Default runs a reduced network for quick turnaround; pass `--full` for
//! the paper-scale 100 users × 10 channels with 1000 updates per run.
//!
//! Run with: `cargo run --release -p mhca-bench --bin fig8 [--full]`

use mhca_bench::{csv_row, full_scale, sample_indices};
use mhca_core::experiments::{fig8, Fig8Config};

fn main() {
    let cfg = if full_scale() {
        Fig8Config::default()
    } else {
        Fig8Config {
            n: 40,
            m: 5,
            avg_degree: 5.0,
            update_periods: vec![1, 5, 10, 20],
            updates_per_run: 250,
            r: 2,
            minirounds: 4,
            seed: 81,
        }
    };
    eprintln!(
        "running fig8: {}x{} network, y in {:?}, {} updates per run ...",
        cfg.n, cfg.m, cfg.update_periods, cfg.updates_per_run
    );
    let runs = fig8(&cfg);
    for run in &runs {
        println!("# subplot y={} (horizon {} slots)", run.y, run.horizon);
        csv_row(&[
            "slot",
            "alg2_estimated",
            "alg2_actual",
            "llr_estimated",
            "llr_actual",
        ]);
        let n = run.algorithm2.avg_actual_throughput.len();
        for i in sample_indices(n, 25) {
            csv_row(&[
                format!("{}", run.algorithm2.period_end_slots[i]),
                format!("{:.1}", run.algorithm2.avg_estimated_throughput[i]),
                format!("{:.1}", run.algorithm2.avg_actual_throughput[i]),
                format!("{:.1}", run.llr.avg_estimated_throughput[i]),
                format!("{:.1}", run.llr.avg_actual_throughput[i]),
            ]);
        }
        println!();
    }
    println!("# summary: final actual throughput per y (should grow with y)");
    csv_row(&[
        "y",
        "alg2_actual",
        "llr_actual",
        "alg2_estimate_gap",
        "llr_estimate_gap",
    ]);
    for run in &runs {
        let a_act = run.algorithm2.avg_actual_throughput.last().unwrap();
        let a_est = run.algorithm2.avg_estimated_throughput.last().unwrap();
        let l_act = run.llr.avg_actual_throughput.last().unwrap();
        let l_est = run.llr.avg_estimated_throughput.last().unwrap();
        csv_row(&[
            format!("{}", run.y),
            format!("{a_act:.1}"),
            format!("{l_act:.1}"),
            format!("{:.1}", a_est - a_act),
            format!("{:.1}", l_est - l_act),
        ]);
    }
}
