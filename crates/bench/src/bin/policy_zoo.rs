//! Multi-seed policy shoot-out: every learning policy in the workspace on
//! the same seeded random networks, paired channel realizations.
//!
//! Extends the paper's single-instance Fig. 7 comparison with the
//! statistical robustness check it lacks: mean ± std-dev across seeds and
//! head-to-head win rates.
//!
//! Run with: `cargo run --release -p mhca-bench --bin policy_zoo`

use mhca_bandit::{
    policies::{CsUcb, DiscountedCsUcb, EpsilonGreedy, IndexPolicy, Llr, Oracle, Random},
    thompson::GaussianThompson,
};
use mhca_bench::csv_row;
use mhca_core::{
    runner::{run_policy, Algorithm2Config},
    sweep::{run_bounded, Aggregate},
    Network,
};

fn main() {
    let (n, m, d, horizon, seeds) = (15usize, 3usize, 3.5f64, 800u64, 0u64..6);
    eprintln!(
        "policy zoo: {n}x{m} networks, horizon {horizon}, {} seeds ...",
        seeds.end - seeds.start
    );

    let make_policies = |net: &Network| -> Vec<Box<dyn IndexPolicy>> {
        vec![
            Box::new(Oracle::new(net.channels().means())),
            Box::new(CsUcb::new(2.0)),
            Box::new(Llr::new(net.n_nodes(), 2.0)),
            Box::new(GaussianThompson::new(0.1, 2.0)),
            Box::new(DiscountedCsUcb::new(net.n_vertices(), 0.999, 2.0)),
            Box::new(EpsilonGreedy::new(0.05, 2.0)),
            Box::new(Random),
        ]
    };

    // One result matrix: policy × seed. Seeds run on the bounded worker
    // pool (pure functions of the seed; results come back in seed order,
    // so output is byte-identical at any worker count).
    let probe_net = Network::random(n, m, d, 0.1, 0);
    let names: Vec<String> = make_policies(&probe_net)
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let workers = std::thread::available_parallelism().map_or(1, |c| c.get());
    let per_seed: Vec<Vec<f64>> = run_bounded(seeds.clone().collect(), workers, |_, seed| {
        let net = Network::random(n, m, d, 0.1, seed);
        let cfg = Algorithm2Config::default()
            .with_horizon(horizon)
            .with_seed(seed);
        make_policies(&net)
            .into_iter()
            .map(|mut policy| run_policy(&net, &cfg, policy.as_mut()).average_expected_kbps)
            .collect()
    });
    // Transpose seed-major results into the policy-major matrix.
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for seed_row in &per_seed {
        for (i, &kbps) in seed_row.iter().enumerate() {
            results[i].push(kbps);
        }
    }

    csv_row(&["policy", "mean_kbps", "std_dev", "min", "max"]);
    for (name, xs) in names.iter().zip(&results) {
        let agg = Aggregate::from_samples(xs);
        csv_row(&[
            name.clone(),
            format!("{:.1}", agg.mean),
            format!("{:.1}", agg.std_dev),
            format!("{:.1}", agg.min),
            format!("{:.1}", agg.max),
        ]);
    }
    println!();
    println!("# expected ordering: (oracle ~ cs-ucb ~ thompson) > llr > random.");
    println!("# note: 'oracle' plays the distributed PTAS on true means — one fixed");
    println!("# 1/rho-approximate strategy — so learning policies that mix over");
    println!("# near-optimal strategies can match or slightly exceed it.");
}
