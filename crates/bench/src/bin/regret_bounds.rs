//! Evaluates the Theorem 1 / Theorem 5 regret upper bounds against the
//! measured regret of Algorithm 2 on the Fig. 7 instance.
//!
//! The theoretical bounds are famously loose constants-wise; the point of
//! this binary is (i) the bounds are sublinear in n (zero-regret) and
//! (ii) measured cumulative regret sits far below them.
//!
//! Run with: `cargo run --release -p mhca-bench --bin regret_bounds`

use mhca_bandit::bounds;
use mhca_bench::csv_row;
use mhca_core::experiment::{run_experiment, ExperimentData, Fig7Experiment};
use mhca_core::experiments::Fig7Config;
use mhca_core::ObserverSet;

fn main() {
    let cfg = Fig7Config::default();
    let k = cfg.n * cfg.m;
    let alpha = bounds::theorem2_rho(cfg.m, cfg.r);
    let theta = 0.5;

    println!(
        "# Theorem 1 / Theorem 5 bounds vs horizon (N={}, K={k})",
        cfg.n
    );
    csv_row(&[
        "n",
        "theorem1_bound",
        "theorem1_per_round",
        "theorem5_bound",
    ]);
    for n in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
        let t1 = bounds::theorem1(n, cfg.n, k, theta * alpha);
        let t5 = bounds::theorem5(n, cfg.n, k, alpha, theta);
        csv_row(&[
            format!("{n}"),
            format!("{t1:.3e}"),
            format!("{:.3e}", t1 / n as f64),
            format!("{t5:.3e}"),
        ]);
    }

    println!();
    eprintln!("running the Fig. 7 instance for measured regret ...");
    let seed = cfg.seed;
    let result = run_experiment(&Fig7Experiment(cfg.clone()), seed, ObserverSet::new());
    let ExperimentData::Fig7(out) = result.data else {
        unreachable!("Fig7Experiment yields Fig7 data");
    };
    // Measured cumulative regret ≈ per-round practical regret × n; report
    // the per-round value against the bound's per-round value.
    let n = out.algorithm2.practical_regret.len() as u64;
    let measured = out.algorithm2.practical_regret.last().unwrap();
    let bound_per_round = bounds::theorem5(n, cfg.n, k, alpha, theta) / n as f64;
    println!("# measured per-round practical regret at n={n}: {measured:.1} kbps");
    println!(
        "# Theorem 5 per-round bound at n={n}: {bound_per_round:.3e} (normalized units x scale)"
    );
    println!("# measured << bound, as expected for a worst-case bound");
}
