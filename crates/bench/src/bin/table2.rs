//! Regenerates Table II: the simulation time parameters and the derived
//! quantities Section V uses (mini-round length, decision budget, θ).
//!
//! Thin wrapper over `mhca_core::experiments::table2` +
//! `mhca_bench::report`; the `table2` registry scenario of
//! `mhca-campaign run` produces the same artifact.
//!
//! Run with: `cargo run -p mhca-bench --bin table2`

use mhca_bench::report;
use mhca_core::experiments::table2;

fn main() {
    let t = table2();
    report::render_table2(&t, &mut std::io::stdout().lock()).expect("stdout write");
    assert_eq!(t.miniround_ms, 250.0, "Table II derivation drifted");
    assert_eq!(t.theta, 0.5, "Table II derivation drifted");
}
