//! Regenerates Table II: the simulation time parameters and the derived
//! quantities Section V uses (mini-round length, decision budget, θ).
//!
//! Thin wrapper over the unified experiment engine
//! (`mhca_core::experiment`) + `mhca_bench::report`; the `table2`
//! registry scenario of `mhca-campaign run` produces the same artifact.
//!
//! Run with: `cargo run -p mhca-bench --bin table2`

use mhca_bench::report;
use mhca_core::experiment::{run_experiment, Table2Experiment};
use mhca_core::ObserverSet;

fn main() {
    let out = run_experiment(&Table2Experiment, 0, ObserverSet::new());
    report::render_experiment(&out.data, &mut std::io::stdout().lock()).expect("stdout write");
    assert_eq!(
        out.metrics.get("miniround_ms"),
        Some(250.0),
        "Table II derivation drifted"
    );
    assert_eq!(
        out.metrics.get("theta"),
        Some(0.5),
        "Table II derivation drifted"
    );
}
