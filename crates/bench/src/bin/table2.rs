//! Regenerates Table II: the simulation time parameters and the derived
//! quantities Section V uses (mini-round length, decision budget, θ).
//!
//! Run with: `cargo run -p mhca-bench --bin table2`

use mhca_core::experiments::table2;

fn main() {
    let t = table2();
    println!("# Table II: parameter values for simulation");
    println!("parameter,value_ms,paper_value_ms");
    println!("round t_a,{},2000", t.time.round_ms);
    println!("local broadcast t_b,{},100", t.time.broadcast_ms);
    println!("local computation t_l,{},50", t.time.compute_ms);
    println!("data transmission t_d,{},1000", t.time.data_ms);
    println!();
    println!("# derived (Section V: t_m = 2 t_b + t_l, t_s = 4 t_m, theta = t_d/t_a)");
    println!("derived,value");
    println!("miniround t_m (ms),{}", t.miniround_ms);
    println!("minirounds per decision,{}", t.minirounds_per_decision);
    println!("theta,{}", t.theta);
    assert_eq!(t.miniround_ms, 250.0, "Table II derivation drifted");
    assert_eq!(t.theta, 0.5, "Table II derivation drifted");
}
