//! Empirical check of Theorem 3: the distributed Algorithm 3 achieves the
//! same approximation quality as the centralized robust PTAS.
//!
//! On seeded random instances small enough for exact branch-and-bound
//! ground truth, prints optimal / centralized-PTAS / distributed /
//! distributed-capped weights and their ratios.
//!
//! Thin wrapper over `mhca_core::experiments::run_theorem3` +
//! `mhca_bench::report`; the `theorem3` registry scenario of
//! `mhca-campaign run` executes the same experiment.
//!
//! Run with: `cargo run --release -p mhca-bench --bin theorem3`

use mhca_bench::report;
use mhca_core::experiments::{run_theorem3, Theorem3Config};

fn main() {
    let pts = run_theorem3(&Theorem3Config::default());
    report::render_theorem3(&pts, &mut std::io::stdout().lock()).expect("stdout write");
}
