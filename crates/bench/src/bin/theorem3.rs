//! Empirical check of Theorem 3: the distributed Algorithm 3 achieves the
//! same approximation quality as the centralized robust PTAS.
//!
//! On seeded random instances small enough for exact branch-and-bound
//! ground truth, prints optimal / centralized-PTAS / distributed /
//! distributed-capped weights and their ratios.
//!
//! Run with: `cargo run --release -p mhca-bench --bin theorem3`

use mhca_bench::csv_row;
use mhca_core::experiments::theorem3;

fn main() {
    let pts = theorem3(15, 3, 3.5, 0..10);
    csv_row(&[
        "seed",
        "optimal",
        "centralized_ptas",
        "distributed",
        "distributed_d4",
        "central_ratio",
        "dist_ratio",
    ]);
    let mut sum_c = 0.0;
    let mut sum_d = 0.0;
    for p in &pts {
        csv_row(&[
            format!("{}", p.seed),
            format!("{:.0}", p.optimal),
            format!("{:.0}", p.centralized),
            format!("{:.0}", p.distributed),
            format!("{:.0}", p.distributed_capped),
            format!("{:.3}", p.centralized / p.optimal),
            format!("{:.3}", p.distributed / p.optimal),
        ]);
        sum_c += p.centralized / p.optimal;
        sum_d += p.distributed / p.optimal;
    }
    println!();
    println!(
        "# mean ratio to optimal: centralized {:.3}, distributed {:.3}",
        sum_c / pts.len() as f64,
        sum_d / pts.len() as f64
    );
    println!("# Theorem 3: the two ratios should be comparable (and far better");
    println!("# than the worst-case rho, cf. the regret_bounds binary).");
}
