//! Empirical check of Theorem 3: the distributed Algorithm 3 achieves the
//! same approximation quality as the centralized robust PTAS.
//!
//! On seeded random instances small enough for exact branch-and-bound
//! ground truth, prints optimal / centralized-PTAS / distributed /
//! distributed-capped weights and their ratios.
//!
//! Thin wrapper over the unified experiment engine
//! (`mhca_core::experiment`) + `mhca_bench::report`; the `theorem3`
//! registry scenario of `mhca-campaign run` executes the same experiment.
//!
//! Run with: `cargo run --release -p mhca-bench --bin theorem3`

use mhca_bench::report;
use mhca_core::experiment::{run_experiment, Theorem3Experiment};
use mhca_core::experiments::Theorem3Config;
use mhca_core::ObserverSet;

fn main() {
    let cfg = Theorem3Config::default();
    let seed = cfg.seed;
    let out = run_experiment(&Theorem3Experiment(cfg), seed, ObserverSet::new());
    report::render_experiment(&out.data, &mut std::io::stdout().lock()).expect("stdout write");
}
