//! Shared CSV formatting and escaping.
//!
//! Every figure binary and the campaign emitter used to carry its own
//! ad-hoc `println!("{},{}", …)` row formatting; this module is the single
//! implementation. Escaping follows RFC 4180: cells containing a comma,
//! double quote, CR, or LF are wrapped in double quotes with interior
//! quotes doubled — everything else passes through unchanged, so the
//! numeric output of the figure binaries is byte-identical to the
//! historical format.

use std::borrow::Cow;
use std::fmt::Display;
use std::io::{self, Write};

/// Escapes one CSV cell per RFC 4180 (quote iff it contains `,`, `"`,
/// CR, or LF; double interior quotes).
pub fn escape(cell: &str) -> Cow<'_, str> {
    if !cell.contains([',', '"', '\n', '\r']) {
        return Cow::Borrowed(cell);
    }
    let mut out = String::with_capacity(cell.len() + 2);
    out.push('"');
    for ch in cell.chars() {
        if ch == '"' {
            out.push('"');
        }
        out.push(ch);
    }
    out.push('"');
    Cow::Owned(out)
}

/// Formats one row: escaped cells joined with commas, no trailing newline.
pub fn format_row<T: Display>(cells: &[T]) -> String {
    let mut out = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(&cell.to_string()));
    }
    out
}

/// Writes one newline-terminated row.
pub fn write_row<T: Display>(w: &mut dyn Write, cells: &[T]) -> io::Result<()> {
    writeln!(w, "{}", format_row(cells))
}

/// Row-oriented CSV writer over any [`Write`] sink — stdout for the
/// figure binaries, artifact files for the campaign runner.
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    inner: W,
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a sink.
    pub fn new(inner: W) -> Self {
        CsvWriter { inner }
    }

    /// Writes one escaped, newline-terminated row.
    pub fn row<T: Display>(&mut self, cells: &[T]) -> io::Result<()> {
        write_row(&mut self.inner, cells)
    }

    /// Writes a `# `-prefixed commentary line (the figure binaries
    /// annotate their CSV with expected shapes).
    pub fn comment(&mut self, text: &str) -> io::Result<()> {
        writeln!(self.inner, "# {text}")
    }

    /// Writes an empty line (section separator).
    pub fn blank(&mut self) -> io::Result<()> {
        writeln!(self.inner)
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cells_pass_through() {
        assert_eq!(escape("abc"), "abc");
        assert_eq!(format_row(&[1, 2, 3]), "1,2,3");
    }

    #[test]
    fn special_cells_are_quoted() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
        assert_eq!(format_row(&["plain", "with,comma"]), "plain,\"with,comma\"");
    }

    #[test]
    fn writer_produces_rows_comments_and_blanks() {
        let mut w = CsvWriter::new(Vec::new());
        w.row(&["a", "b,c"]).unwrap();
        w.comment("note").unwrap();
        w.blank().unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(text, "a,\"b,c\"\n# note\n\n");
    }
}
