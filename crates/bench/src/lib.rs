//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! as CSV on stdout (series the paper plots) plus a short commentary on
//! the expected shape. Pass `--full` to run at the paper's full scale
//! where the default is reduced for quick turnaround.
//!
//! The presentation layer is shared: [`csv`] holds the one CSV
//! formatting/escaping implementation and [`report`] the per-figure
//! renderers, both reused by the `mhca-campaign` orchestration layer for
//! its artifact files.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod csv;
pub mod report;

/// Prints one CSV row from anything displayable (escaped via
/// [`csv::format_row`]).
pub fn csv_row<T: std::fmt::Display>(cells: &[T]) {
    println!("{}", csv::format_row(cells));
}

/// `true` when the binary was invoked with `--full` (paper-scale run).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Evenly spaced sample indices covering `0..len` (always including the
/// last index), for decimating long per-slot series into readable CSV.
pub fn sample_indices(len: usize, max_points: usize) -> Vec<usize> {
    if len == 0 || max_points == 0 {
        return Vec::new();
    }
    if len <= max_points {
        return (0..len).collect();
    }
    let stride = len as f64 / max_points as f64;
    let mut idx: Vec<usize> = (0..max_points)
        .map(|i| (((i as f64 + 0.5) * stride) as usize).min(len - 1))
        .collect();
    if idx.last() != Some(&(len - 1)) {
        idx.push(len - 1);
    }
    idx.dedup();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_indices_cover_and_bound() {
        let idx = sample_indices(1000, 20);
        assert!(idx.len() <= 21);
        assert_eq!(*idx.last().unwrap(), 999);
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn sample_indices_short_input() {
        assert_eq!(sample_indices(3, 10), vec![0, 1, 2]);
        assert!(sample_indices(0, 10).is_empty());
    }
}
