//! Per-figure CSV renderers — the presentation layer shared by the
//! `src/bin/*` figure binaries (stdout) and the campaign runner (artifact
//! files).
//!
//! Each function renders one experiment output in the same rows/series the
//! paper plots, with `# `-prefixed commentary on the expected shape. The
//! binaries are thin wrappers: pick a config, run the harness from
//! `mhca_core::experiments`, hand the output here.

use crate::{csv::CsvWriter, sample_indices};
use mhca_core::experiments::{
    ComplexityPoint, Fig6Series, Fig7Output, Fig8Run, PolicyRunConfig, Table2, Theorem3Point,
    WorstCasePoint,
};
use mhca_core::{ExperimentData, RunResult};
use std::io::{self, Write};

/// Renders the typed payload of any unified-engine experiment run — the
/// single presentation entry point shared by the figure binaries and the
/// campaign artifact writer.
pub fn render_experiment(data: &ExperimentData, out: &mut dyn Write) -> io::Result<()> {
    match data {
        ExperimentData::Fig5(points) => render_fig5(points, out),
        ExperimentData::Fig6 { minirounds, series } => render_fig6(*minirounds, series, out),
        ExperimentData::Fig7(output) => render_fig7(output, out),
        ExperimentData::Fig8(runs) => render_fig8(runs, out),
        ExperimentData::Table2(t) => render_table2(t, out),
        ExperimentData::Complexity(points) => render_complexity(points, out),
        ExperimentData::Theorem3(points) => render_theorem3(points, out),
        ExperimentData::PolicyRun { cfg, run } => render_policy_run(cfg, run, out),
        ExperimentData::PolicyDuel { a, b } => {
            render_policy_run(&a.0, &a.1, out)?;
            render_policy_run(&b.0, &b.1, out)
        }
    }
}

/// Fig. 5: mini-rounds to completion on the linear worst case.
pub fn render_fig5(points: &[WorstCasePoint], out: &mut dyn Write) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    w.row(&["n", "minirounds_to_completion", "minirounds_over_n"])?;
    for p in points {
        w.row(&[
            format!("{}", p.n),
            format!("{}", p.minirounds_used),
            format!("{:.3}", p.minirounds_used as f64 / p.n as f64),
        ])?;
    }
    w.blank()?;
    w.comment("the ratio minirounds/n should be roughly constant (linear growth)")
}

/// Fig. 6: cumulative output weight per mini-round, one column per size.
pub fn render_fig6(
    minirounds: usize,
    series: &[Fig6Series],
    out: &mut dyn Write,
) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    let mut header = vec!["miniround".to_string()];
    header.extend(series.iter().map(|s| format!("{}x{}", s.n, s.m)));
    w.row(&header)?;
    for i in 0..minirounds {
        let mut row = vec![format!("{}", i + 1)];
        row.extend(
            series
                .iter()
                .map(|s| format!("{:.1}", s.weight_by_miniround[i])),
        );
        w.row(&row)?;
    }
    w.blank()?;
    w.comment("convergence mini-round per size (paper: ~4)")?;
    for s in series {
        w.comment(&format!("{}x{}: converged_at={}", s.n, s.m, s.converged_at))?;
    }
    Ok(())
}

/// Fig. 7: practical regret and β-regret series, Algorithm 2 vs LLR.
pub fn render_fig7(output: &Fig7Output, out: &mut dyn Write) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    w.comment(&format!(
        "optimal R1 (kbps): {:.2} (paper instance: 7282.90)",
        output.optimal_kbps
    ))?;
    w.comment(&format!("beta = theta*alpha: {:.4}", output.beta))?;
    w.row(&[
        "slot",
        "alg2_practical_regret",
        "llr_practical_regret",
        "alg2_beta_regret",
        "llr_beta_regret",
    ])?;
    let n = output.algorithm2.practical_regret.len();
    for i in sample_indices(n, 50) {
        w.row(&[
            format!("{}", i + 1),
            format!("{:.2}", output.algorithm2.practical_regret[i]),
            format!("{:.2}", output.llr.practical_regret[i]),
            format!("{:.2}", output.algorithm2.practical_beta_regret[i]),
            format!("{:.2}", output.llr.practical_beta_regret[i]),
        ])?;
    }
    w.blank()?;
    w.comment(&format!(
        "final: alg2 regret {:.1} vs llr {:.1} (alg2 should be lower)",
        output.algorithm2.practical_regret.last().unwrap(),
        output.llr.practical_regret.last().unwrap()
    ))?;
    w.comment(&format!(
        "final: alg2 beta-regret {:.1}, llr {:.1} (both should be negative)",
        output.algorithm2.practical_beta_regret.last().unwrap(),
        output.llr.practical_beta_regret.last().unwrap()
    ))
}

/// Fig. 8: estimated vs actual effective throughput per update period.
pub fn render_fig8(runs: &[Fig8Run], out: &mut dyn Write) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    for run in runs {
        w.comment(&format!(
            "subplot y={} (horizon {} slots)",
            run.y, run.horizon
        ))?;
        w.row(&[
            "slot",
            "alg2_estimated",
            "alg2_actual",
            "llr_estimated",
            "llr_actual",
        ])?;
        let n = run.algorithm2.avg_actual_throughput.len();
        for i in sample_indices(n, 25) {
            w.row(&[
                format!("{}", run.algorithm2.period_end_slots[i]),
                format!("{:.1}", run.algorithm2.avg_estimated_throughput[i]),
                format!("{:.1}", run.algorithm2.avg_actual_throughput[i]),
                format!("{:.1}", run.llr.avg_estimated_throughput[i]),
                format!("{:.1}", run.llr.avg_actual_throughput[i]),
            ])?;
        }
        w.blank()?;
    }
    w.comment("summary: final actual throughput per y (should grow with y)")?;
    w.row(&[
        "y",
        "alg2_actual",
        "llr_actual",
        "alg2_estimate_gap",
        "llr_estimate_gap",
    ])?;
    for run in runs {
        let a_act = run.algorithm2.avg_actual_throughput.last().unwrap();
        let a_est = run.algorithm2.avg_estimated_throughput.last().unwrap();
        let l_act = run.llr.avg_actual_throughput.last().unwrap();
        let l_est = run.llr.avg_estimated_throughput.last().unwrap();
        w.row(&[
            format!("{}", run.y),
            format!("{a_act:.1}"),
            format!("{l_act:.1}"),
            format!("{:.1}", a_est - a_act),
            format!("{:.1}", l_est - l_act),
        ])?;
    }
    Ok(())
}

/// Table II: time parameters plus the derived quantities of Section V.
pub fn render_table2(t: &Table2, out: &mut dyn Write) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    w.comment("Table II: parameter values for simulation")?;
    w.row(&["parameter", "value_ms", "paper_value_ms"])?;
    w.row(&[
        "round t_a".to_string(),
        format!("{}", t.time.round_ms),
        "2000".to_string(),
    ])?;
    w.row(&[
        "local broadcast t_b".to_string(),
        format!("{}", t.time.broadcast_ms),
        "100".to_string(),
    ])?;
    w.row(&[
        "local computation t_l".to_string(),
        format!("{}", t.time.compute_ms),
        "50".to_string(),
    ])?;
    w.row(&[
        "data transmission t_d".to_string(),
        format!("{}", t.time.data_ms),
        "1000".to_string(),
    ])?;
    w.blank()?;
    w.comment("derived (Section V: t_m = 2 t_b + t_l, t_s = 4 t_m, theta = t_d/t_a)")?;
    w.row(&["derived", "value"])?;
    w.row(&[
        "miniround t_m (ms)".to_string(),
        format!("{}", t.miniround_ms),
    ])?;
    w.row(&[
        "minirounds per decision".to_string(),
        format!("{}", t.minirounds_per_decision),
    ])?;
    w.row(&["theta".to_string(), format!("{}", t.theta)])
}

/// Section IV-C: measured communication/space complexity points.
pub fn render_complexity(points: &[ComplexityPoint], out: &mut dyn Write) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    w.row(&[
        "n",
        "m_channels",
        "r",
        "minirounds",
        "mean_tx_per_vertex",
        "max_tx_per_vertex",
        "timeslots",
        "mean_ball_size",
        "candidates_scanned",
    ])?;
    for p in points {
        w.row(&[
            format!("{}", p.n),
            format!("{}", p.m),
            format!("{}", p.r),
            format!("{}", p.minirounds),
            format!("{:.2}", p.mean_tx_per_vertex),
            format!("{}", p.max_tx_per_vertex),
            format!("{}", p.timeslots),
            format!("{:.1}", p.mean_ball_size),
            format!("{}", p.candidates_scanned),
        ])?;
    }
    w.blank()?;
    w.comment("expected: mean_tx_per_vertex roughly flat in N at fixed r")?;
    w.comment("(the paper's O(r^2 + D) per-vertex message bound), and")?;
    w.comment("mean_ball_size flat in N (the O(m) space bound).")
}

/// Theorem 3: optimal / centralized / distributed quality comparison.
pub fn render_theorem3(points: &[Theorem3Point], out: &mut dyn Write) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    w.row(&[
        "seed",
        "optimal",
        "centralized_ptas",
        "distributed",
        "distributed_d4",
        "central_ratio",
        "dist_ratio",
    ])?;
    let mut sum_c = 0.0;
    let mut sum_d = 0.0;
    for p in points {
        w.row(&[
            format!("{}", p.seed),
            format!("{:.0}", p.optimal),
            format!("{:.0}", p.centralized),
            format!("{:.0}", p.distributed),
            format!("{:.0}", p.distributed_capped),
            format!("{:.3}", p.centralized / p.optimal),
            format!("{:.3}", p.distributed / p.optimal),
        ])?;
        sum_c += p.centralized / p.optimal;
        sum_d += p.distributed / p.optimal;
    }
    w.blank()?;
    w.comment(&format!(
        "mean ratio to optimal: centralized {:.3}, distributed {:.3}",
        sum_c / points.len().max(1) as f64,
        sum_d / points.len().max(1) as f64
    ))?;
    w.comment("Theorem 3: the two ratios should be comparable (and far better")?;
    w.comment("than the worst-case rho, cf. the regret_bounds binary).")
}

/// Generic spec-driven run: the per-period throughput series plus headline
/// averages (the campaign cross-product workload has no paper figure).
pub fn render_policy_run(
    cfg: &PolicyRunConfig,
    run: &RunResult,
    out: &mut dyn Write,
) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    w.comment(&format!(
        "policy={} topology={} channel={} {}x{} horizon={} y={} loss={}",
        run.policy,
        cfg.topology.label(),
        cfg.channel.label(),
        cfg.n,
        cfg.m,
        cfg.horizon,
        cfg.update_period,
        cfg.loss.prob,
    ))?;
    w.row(&["slot", "avg_actual_kbps", "avg_estimated_kbps"])?;
    let n = run.avg_actual_throughput.len();
    for i in sample_indices(n, 40) {
        w.row(&[
            format!("{}", run.period_end_slots[i]),
            format!("{:.1}", run.avg_actual_throughput[i]),
            format!("{:.1}", run.avg_estimated_throughput[i]),
        ])?;
    }
    w.blank()?;
    w.comment(&format!(
        "averages: observed {:.1} kbps, effective {:.1} kbps, expected {:.1} kbps",
        run.average_observed_kbps, run.average_effective_kbps, run.average_expected_kbps
    ))?;
    // Traffic-configured runs get a flow-level section: the queueing layer
    // turns captured-rate claims into per-flow delay claims, so the CSV
    // carries both. (Delay-tail percentiles stream via the flow-delay
    // observer section; this table is the exact counter view.)
    if let Some(traffic) = &run.traffic {
        w.blank()?;
        w.comment("traffic flows (delay in decision slots)")?;
        w.row(&[
            "flow",
            "arrivals",
            "delivered",
            "ontime",
            "mean_delay_slots",
            "max_delay_slots",
        ])?;
        for (f, totals) in traffic.flows.iter().enumerate() {
            w.row(&[
                format!("{f}"),
                format!("{}", totals.arrivals),
                format!("{}", totals.delivered),
                format!("{}", totals.ontime),
                format!("{:.2}", totals.mean_delay()),
                format!("{}", totals.max_delay),
            ])?;
        }
        w.blank()?;
        w.comment(&format!(
            "totals: {} arrivals, {} delivered, {} ontime, backlog {}, \
             mean delay {:.2} slots, delay utility {:.4}",
            traffic.arrivals,
            traffic.delivered,
            traffic.ontime,
            traffic.backlog,
            traffic.mean_delay(),
            traffic.delay_utility(),
        ))?;
    }
    Ok(())
}

/// Streamed observer metrics as their own CSV section: a blank line, a
/// commentary header, then one `observer_metric,value` row per metric in
/// emission order. The campaign's per-seed artifact writer appends this
/// after [`render_experiment`] whenever a scenario registered observers,
/// so series-shaped observer output — e.g. the windowed-regret
/// `wNN_end_slot` / `wNN_regret_per_slot` pairs — lands in the artifact
/// CSV, not just in the flat campaign aggregates.
pub fn render_observer_metrics<'a>(
    rows: impl Iterator<Item = &'a (String, f64)>,
    out: &mut dyn Write,
) -> io::Result<()> {
    let mut w = CsvWriter::new(out);
    w.blank()?;
    w.comment("streaming observer metrics (observer:metric, emission order)")?;
    w.row(&["observer_metric", "value"])?;
    for (name, value) in rows {
        w.row(&[name.clone(), format!("{value}")])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_core::experiment::{run_experiment, Fig5Experiment, Table2Experiment};
    use mhca_core::experiments::Fig5Config;
    use mhca_core::ObserverSet;

    #[test]
    fn fig5_render_matches_legacy_shape() {
        let out = run_experiment(&Fig5Experiment(Fig5Config::quick()), 0, ObserverSet::new());
        let mut buf = Vec::new();
        render_experiment(&out.data, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("n,minirounds_to_completion,minirounds_over_n\n"));
        assert!(text.contains("\n10,"));
        assert!(text.trim_end().ends_with("(linear growth)"));
    }

    #[test]
    fn traffic_runs_render_flow_tables() {
        use mhca_core::experiment::PolicyRunExperiment;
        use mhca_core::{FlowSpec, TrafficSpec};
        use mhca_graph::TopologySpec;

        let mut cfg = PolicyRunConfig::quick();
        cfg.topology = TopologySpec::Line;
        cfg.n = 8;
        cfg.horizon = 120;
        cfg.traffic = Some(TrafficSpec::poisson(
            0.4,
            vec![FlowSpec {
                src: 0,
                dst: 3,
                deadline: Some(30),
            }],
        ));
        let out = run_experiment(&PolicyRunExperiment(cfg), 7, ObserverSet::new());
        let mut buf = Vec::new();
        render_experiment(&out.data, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("flow,arrivals,delivered,ontime,mean_delay_slots,max_delay_slots"),
            "{text}"
        );
        assert!(text.contains("delay utility"), "{text}");

        // Traffic-free runs keep the exact pre-traffic rendering (no
        // empty flow table).
        let out = run_experiment(
            &PolicyRunExperiment(PolicyRunConfig::quick()),
            7,
            ObserverSet::new(),
        );
        let mut buf = Vec::new();
        render_experiment(&out.data, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("traffic flows"), "{text}");
    }

    #[test]
    fn table2_render_contains_derivations() {
        let out = run_experiment(&Table2Experiment, 0, ObserverSet::new());
        let mut buf = Vec::new();
        render_experiment(&out.data, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("round t_a,2000,2000"));
        assert!(text.contains("theta,0.5"));
    }
}
