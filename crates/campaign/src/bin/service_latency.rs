//! `service_latency` — the PR 8 service regression numbers.
//!
//! Measures the resident service's reaction latency in-process (no
//! socket: the wire adds one line-buffered read/write per command and
//! would swamp the numbers with client process spawn time). Each
//! iteration submits a small policy-run scenario to a live
//! [`Supervisor`] and clocks two marks on the session's event bus:
//!
//! * **submit → first streamed metric event** — the first telemetry
//!   event out of the job (the first decide-phase span), i.e. how long
//!   after `submit` a `watch` client sees the first round land;
//! * **submit → done** — the whole session.
//!
//! Samples land in [`LogHistogram`]s (the same log-bucketed histograms
//! the telemetry layer streams), so the reported p50/p99 carry the same
//! ≤6.25 % bucket error as every other latency figure in this repo.
//!
//! ```text
//! cargo run --release -p mhca-campaign --bin service_latency            # -> BENCH_PR8.json
//! cargo run --release -p mhca-campaign --bin service_latency -- --quick --out target/x.json
//! ```

use mhca_campaign::json;
use mhca_campaign::ServiceExecutor;
use mhca_service::Supervisor;
use mhca_telemetry::{LogHistogram, Provenance};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The measured workload: small enough that 50 iterations finish in
/// seconds, deep enough (100 decision periods) that "first round" is a
/// meaningful fraction of a real session's startup path.
const SCENARIO: &str = r#"{
    "name": "latency-probe",
    "spec": {"kind": "policy-run", "n": 10, "m": 3, "horizon": 2000, "update_period": 20},
    "seeds": {"count": 1},
    "observers": ["throughput"]
}"#;

fn hist_json(h: &LogHistogram) -> String {
    format!(
        "{{\"count\": {}, \"min_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1}}}",
        h.count(),
        h.min(),
        h.p50(),
        h.p99(),
        h.max(),
        h.mean()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_PR8.json");
    let mut iters: u32 = 50;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                quick = true;
                iters = 8;
            }
            "--out" => out = PathBuf::from(it.next().expect("--out needs a path")),
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            other => panic!("unknown option {other:?} (known: --quick, --out, --iters)"),
        }
    }

    let scratch = std::env::temp_dir().join(format!("mhca-service-latency-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let supervisor = Arc::new(
        Supervisor::new(Arc::new(ServiceExecutor), scratch.join("state"))
            .expect("supervisor state dir"),
    );

    let mut first_event = LogHistogram::new();
    let mut done = LogHistogram::new();
    // One warmup session absorbs lazy init (thread spawn paths, fs
    // caches) before sampling starts.
    for i in 0..=iters {
        let scenario = json::parse(SCENARIO).unwrap();
        let out_dir = scratch.join(format!("out{i}")).display().to_string();
        let t0 = Instant::now();
        let id = supervisor
            .submit(scenario, out_dir, None)
            .expect("submit accepted");
        let bus = supervisor.bus(&id).expect("session bus");
        let mut cursor = 0u64;
        let mut first_at: Option<Duration> = None;
        loop {
            let (batch, closed) = bus.read_from(cursor, Duration::from_millis(500));
            for (seq, line) in &batch {
                cursor = seq + 1;
                // Telemetry events carry a "kind" field; lifecycle events
                // (submitted/running/seed_start/...) carry "event".
                if first_at.is_none() && line.contains("\"kind\":") {
                    first_at = Some(t0.elapsed());
                }
            }
            if closed && batch.is_empty() {
                break;
            }
        }
        if i == 0 {
            continue; // warmup
        }
        let first = first_at.expect("session streamed no telemetry event");
        first_event.record(first.as_nanos() as u64);
        done.record(t0.elapsed().as_nanos() as u64);
    }
    supervisor.shutdown();

    let provenance = Provenance::capture();
    let doc = format!(
        "{{\n  \"description\": \"PR 8 service latency: submit -> first streamed metric event \
         (the first decide-phase telemetry span on the session bus, i.e. when a watch client \
         sees the first round) and submit -> session done, measured against an in-process \
         Supervisor driving the real ServiceExecutor. Histograms are the telemetry layer's \
         log-bucketed LogHistogram: p50/p99 are bucket representatives, accurate to 6.25%.\",\n  \
         \"workload\": \"policy-run n=10 m=3 horizon=2000 update_period=20, 1 seed, throughput \
         observer; sessions run sequentially, 1 warmup excluded; release profile.\",\n  \
         \"quick\": {quick},\n  \"iterations\": {iters},\n  \"host_threads\": {threads},\n  \
         \"submit_to_first_event_ns\": {first},\n  \"submit_to_done_ns\": {done}\n}}\n",
        quick = quick,
        iters = iters,
        threads = provenance.host_threads,
        first = hist_json(&first_event),
        done = hist_json(&done),
    );
    std::fs::write(&out, &doc).expect("write output");
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "service_latency: {} iterations, submit->first p50 {} us, p99 {} us -> {}",
        iters,
        first_event.p50() / 1_000,
        first_event.p99() / 1_000,
        out.display()
    );
}
