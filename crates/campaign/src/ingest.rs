//! User-authored scenario JSON ingestion — the inverse of
//! [`ScenarioSpec::to_json`].
//!
//! `mhca-campaign show <scenario>` emits canonical spec JSON; this module
//! parses the same shape back into [`ScenarioSpec`]s, so arbitrary
//! user-defined campaigns run through `mhca-campaign run --scenario-file`
//! **without recompiling the registry** (the ROADMAP spec-ingestion
//! item). Three document shapes are accepted:
//!
//! * a single scenario object (what `show` prints),
//! * an array of scenario objects,
//! * a campaign document `{"campaign": <name>, "scenarios": [...]}`.
//!
//! Decoding is strict where it protects the user: unknown fields are
//! rejected (catching typos like `horizion`), every error carries the
//! JSON field path it arose at, and values that would panic deep in the
//! simulator (zero horizons, out-of-range probabilities, oversized seed
//! ranges) are refused up front with the same field-path diagnostics.
//! Omitted optional fields fall back to the corresponding config's
//! `Default`, so hand-authored files only need the fields they change —
//! while a round trip of `show` output (which carries every field)
//! re-emits byte-identical JSON.

use crate::json::{self, Json};
use crate::spec::{ExperimentKind, ScenarioSpec, SeedRange};
use mhca_channels::ChannelModelSpec;
use mhca_core::experiment::ObserverKind;
use mhca_core::experiments::{
    ComplexityConfig, Fig5Config, Fig6Config, Fig7Config, Fig8Config, PolicyRunConfig, PolicySpec,
    Theorem3Config,
};
use mhca_core::{ArrivalProcess, FlowSpec, TrafficSpec};
use mhca_graph::TopologySpec;
use mhca_sim::LossSpec;

/// A spec-ingestion failure: the JSON field path plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted field path (e.g. `scenarios[2].spec.topology.family`).
    pub path: String,
    /// What went wrong there.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for SpecError {}

fn fail<T>(path: &str, message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        path: path.to_string(),
        message: message.into(),
    })
}

/// Parses a scenario document (see the module docs for accepted shapes)
/// into its scenarios, rejecting duplicate names. The campaign-document
/// shape may also carry a campaign name; see [`campaign_from_str`].
pub fn scenarios_from_str(text: &str) -> Result<Vec<ScenarioSpec>, SpecError> {
    campaign_from_str(text).map(|(_, scenarios)| scenarios)
}

/// As [`scenarios_from_str`], additionally returning the `"campaign"`
/// name when the document is the campaign shape and carries one (the CLI
/// uses it as the default campaign name for `run --scenario-file`).
pub fn campaign_from_str(text: &str) -> Result<(Option<String>, Vec<ScenarioSpec>), SpecError> {
    let doc = json::parse(text).map_err(|e| SpecError {
        path: "<document>".to_string(),
        message: e.to_string(),
    })?;
    let mut campaign = None;
    let scenarios = match &doc {
        Json::Arr(items) => items
            .iter()
            .enumerate()
            .map(|(i, v)| scenario_from_json(v, &format!("[{i}]")))
            .collect::<Result<Vec<_>, _>>()?,
        Json::Obj(_) if doc.get("scenarios").is_some() => {
            check_fields(&doc, "<document>", &["campaign", "scenarios"])?;
            campaign = opt_str(&doc, "<document>", "campaign")?;
            if campaign.as_deref() == Some("") {
                return fail("campaign", "must not be empty");
            }
            let Some(items) = doc.get("scenarios").and_then(Json::as_arr) else {
                return fail("scenarios", "must be an array of scenario objects");
            };
            items
                .iter()
                .enumerate()
                .map(|(i, v)| scenario_from_json(v, &format!("scenarios[{i}]")))
                .collect::<Result<Vec<_>, _>>()?
        }
        Json::Obj(_) => vec![scenario_from_json(&doc, "scenario")?],
        _ => return fail("<document>", "expected a scenario object or array"),
    };
    if scenarios.is_empty() {
        return fail("<document>", "no scenarios in document");
    }
    for (i, s) in scenarios.iter().enumerate() {
        if scenarios[..i].iter().any(|other| other.name == s.name) {
            return fail(
                &format!("scenarios[{i}].name"),
                format!("duplicate scenario name '{}'", s.name),
            );
        }
    }
    Ok((campaign, scenarios))
}

/// Parses one scenario object.
pub fn scenario_from_json(v: &Json, path: &str) -> Result<ScenarioSpec, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected a scenario object");
    }
    check_fields(v, path, &["name", "title", "spec", "seeds", "observers"])?;
    let name = req_str(v, path, "name")?;
    if name.is_empty() {
        return fail(&format!("{path}.name"), "must not be empty");
    }
    // The name becomes the artifact directory under --out; a separator
    // or dot-dot component would let a spec file write outside it.
    if name == "." || name == ".." {
        return fail(
            &format!("{path}.name"),
            "must not be a relative path component",
        );
    }
    if name
        .chars()
        .any(|c| c == '/' || c == '\\' || (c as u32) < 0x20)
    {
        return fail(
            &format!("{path}.name"),
            "must not contain path separators or control characters \
             (it names the artifact directory)",
        );
    }
    let title = opt_str(v, path, "title")?.unwrap_or_else(|| name.clone());
    let seeds = match v.get("seeds") {
        None => SeedRange::new(0, 1),
        Some(s) => seeds_from_json(s, &format!("{path}.seeds"))?,
    };
    let observers = match v.get("observers") {
        None => Vec::new(),
        Some(o) => observers_from_json(o, &format!("{path}.observers"))?,
    };
    let spec = v.get("spec").ok_or_else(|| SpecError {
        path: path.to_string(),
        message: "missing required field 'spec'".to_string(),
    })?;
    let kind = kind_from_json(spec, &format!("{path}.spec"))?;
    Ok(ScenarioSpec {
        name,
        title,
        kind,
        seeds,
        observers,
    })
}

fn seeds_from_json(v: &Json, path: &str) -> Result<SeedRange, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected an object {start, count}");
    }
    check_fields(v, path, &["start", "count"])?;
    let start = opt_u64(v, path, "start")?.unwrap_or(0);
    let count = opt_u64(v, path, "count")?.unwrap_or(1);
    if count == 0 {
        return fail(&format!("{path}.count"), "must be at least 1");
    }
    if start
        .checked_add(count)
        .is_none_or(|end| end > SeedRange::MAX_SEED)
    {
        return fail(
            path,
            "start + count must stay within 2^53 (JSON-exact integers)",
        );
    }
    Ok(SeedRange::new(start, count))
}

fn observers_from_json(v: &Json, path: &str) -> Result<Vec<ObserverKind>, SpecError> {
    let Some(items) = v.as_arr() else {
        return fail(path, "expected an array of observer labels or objects");
    };
    let observers: Vec<ObserverKind> = items
        .iter()
        .enumerate()
        .map(|(i, item)| observer_from_json(item, &format!("{path}[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    // Duplicate labels would register two observers with the same metric
    // prefix: every row emitted twice (or, for parameterized kinds,
    // colliding names with different meanings), and aggregate run counts
    // silently doubled.
    for (i, kind) in observers.iter().enumerate() {
        if observers[..i].iter().any(|k| k.label() == kind.label()) {
            return fail(
                &format!("{path}[{i}]"),
                format!("duplicate observer '{}'", kind.label()),
            );
        }
    }
    Ok(observers)
}

/// Parses one observer entry: a bare label string (parameterized kinds
/// come back at their defaults) or a `{"kind": ..., <knobs>}` object.
fn observer_from_json(item: &Json, path: &str) -> Result<ObserverKind, SpecError> {
    let unknown = |label: &str| SpecError {
        path: path.to_string(),
        message: format!(
            "unknown observer '{label}' (expected one of {})",
            join_labels(ObserverKind::ALL.iter().map(|k| k.label()))
        ),
    };
    if let Some(label) = item.as_str() {
        return ObserverKind::parse(label).ok_or_else(|| unknown(label));
    }
    if !matches!(item, Json::Obj(_)) {
        return fail(path, "expected an observer label string or object");
    }
    let kind = req_str(item, path, "kind")?;
    match ObserverKind::parse(&kind).ok_or_else(|| unknown(&kind))? {
        ObserverKind::SensingCost {
            probe_cost: default_probe,
            report_cost: default_report,
        } => {
            check_fields(item, path, &["kind", "probe_cost", "report_cost"])?;
            let cost = |key: &str, default: f64| -> Result<f64, SpecError> {
                let x = opt_f64(item, path, key)?.unwrap_or(default);
                if !(x >= 0.0 && x.is_finite()) {
                    return fail(&format!("{path}.{key}"), "must be finite and non-negative");
                }
                Ok(x)
            };
            Ok(ObserverKind::SensingCost {
                probe_cost: cost("probe_cost", default_probe)?,
                report_cost: cost("report_cost", default_report)?,
            })
        }
        ObserverKind::WindowedRegret {
            window: default_window,
        } => {
            check_fields(item, path, &["kind", "window"])?;
            Ok(ObserverKind::WindowedRegret {
                window: positive_u64(item, path, "window")?.unwrap_or(default_window),
            })
        }
        ObserverKind::QueueTail {
            bound: default_bound,
        } => {
            check_fields(item, path, &["kind", "bound"])?;
            Ok(ObserverKind::QueueTail {
                bound: positive_u64(item, path, "bound")?.unwrap_or(default_bound),
            })
        }
        parameterless => {
            check_fields(item, path, &["kind"])?;
            Ok(parameterless)
        }
    }
}

/// Parses one experiment spec object (the `"spec"` value of a scenario).
pub fn kind_from_json(v: &Json, path: &str) -> Result<ExperimentKind, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected an experiment spec object");
    }
    const KINDS: [&str; 9] = [
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table2",
        "complexity",
        "theorem3",
        "policy-run",
        "policy-duel",
    ];
    let kind = req_str(v, path, "kind")?;
    match kind.as_str() {
        "fig5" => {
            check_fields(v, path, &["kind", "ns", "r"])?;
            let d = Fig5Config::default();
            Ok(ExperimentKind::Fig5(Fig5Config {
                ns: positive_usizes(v, path, "ns")?.unwrap_or(d.ns),
                r: opt_usize(v, path, "r")?.unwrap_or(d.r),
            }))
        }
        "fig6" => {
            check_fields(
                v,
                path,
                &[
                    "kind",
                    "sizes",
                    "topology",
                    "channel",
                    "loss",
                    "r",
                    "minirounds",
                ],
            )?;
            let d = Fig6Config::default();
            Ok(ExperimentKind::Fig6(Fig6Config {
                sizes: match v.get("sizes") {
                    None => d.sizes,
                    Some(s) => sizes_from_json(s, &format!("{path}.sizes"))?,
                },
                topology: opt_topology(v, path)?.unwrap_or(d.topology),
                channel: opt_channel(v, path)?.unwrap_or(d.channel),
                loss: opt_loss(v, path)?.unwrap_or(d.loss),
                r: opt_usize(v, path, "r")?.unwrap_or(d.r),
                minirounds: opt_usize(v, path, "minirounds")?.unwrap_or(d.minirounds),
                seed: d.seed,
            }))
        }
        "fig7" => {
            check_fields(
                v,
                path,
                &[
                    "kind",
                    "n",
                    "m",
                    "topology",
                    "channel",
                    "loss",
                    "horizon",
                    "r",
                    "minirounds",
                ],
            )?;
            let d = Fig7Config::default();
            Ok(ExperimentKind::Fig7(Fig7Config {
                n: positive_usize(v, path, "n")?.unwrap_or(d.n),
                m: positive_usize(v, path, "m")?.unwrap_or(d.m),
                topology: opt_topology(v, path)?.unwrap_or(d.topology),
                channel: opt_channel(v, path)?.unwrap_or(d.channel),
                loss: opt_loss(v, path)?.unwrap_or(d.loss),
                horizon: positive_u64(v, path, "horizon")?.unwrap_or(d.horizon),
                r: opt_usize(v, path, "r")?.unwrap_or(d.r),
                minirounds: opt_usize(v, path, "minirounds")?.unwrap_or(d.minirounds),
                seed: d.seed,
            }))
        }
        "fig8" => {
            check_fields(
                v,
                path,
                &[
                    "kind",
                    "n",
                    "m",
                    "topology",
                    "channel",
                    "loss",
                    "update_periods",
                    "updates_per_run",
                    "r",
                    "minirounds",
                ],
            )?;
            let d = Fig8Config::default();
            let update_periods =
                positive_usizes(v, path, "update_periods")?.unwrap_or(d.update_periods);
            Ok(ExperimentKind::Fig8(Fig8Config {
                n: positive_usize(v, path, "n")?.unwrap_or(d.n),
                m: positive_usize(v, path, "m")?.unwrap_or(d.m),
                topology: opt_topology(v, path)?.unwrap_or(d.topology),
                channel: opt_channel(v, path)?.unwrap_or(d.channel),
                loss: opt_loss(v, path)?.unwrap_or(d.loss),
                update_periods,
                updates_per_run: positive_u64(v, path, "updates_per_run")?
                    .unwrap_or(d.updates_per_run),
                r: opt_usize(v, path, "r")?.unwrap_or(d.r),
                minirounds: opt_usize(v, path, "minirounds")?.unwrap_or(d.minirounds),
                seed: d.seed,
            }))
        }
        "table2" => {
            check_fields(v, path, &["kind"])?;
            Ok(ExperimentKind::Table2)
        }
        "complexity" => {
            check_fields(
                v,
                path,
                &["kind", "ns", "m", "rs", "topology", "channel", "minirounds"],
            )?;
            let d = ComplexityConfig::default();
            Ok(ExperimentKind::Complexity(ComplexityConfig {
                ns: positive_usizes(v, path, "ns")?.unwrap_or(d.ns),
                m: positive_usize(v, path, "m")?.unwrap_or(d.m),
                rs: positive_usizes(v, path, "rs")?.unwrap_or(d.rs),
                topology: opt_topology(v, path)?.unwrap_or(d.topology),
                channel: opt_channel(v, path)?.unwrap_or(d.channel),
                minirounds: opt_usize(v, path, "minirounds")?.unwrap_or(d.minirounds),
                seed: d.seed,
            }))
        }
        "theorem3" => {
            check_fields(
                v,
                path,
                &["kind", "n", "m", "topology", "channel", "instances"],
            )?;
            let d = Theorem3Config::default();
            Ok(ExperimentKind::Theorem3(Theorem3Config {
                n: positive_usize(v, path, "n")?.unwrap_or(d.n),
                m: positive_usize(v, path, "m")?.unwrap_or(d.m),
                topology: opt_topology(v, path)?.unwrap_or(d.topology),
                channel: opt_channel(v, path)?.unwrap_or(d.channel),
                seed: d.seed,
                instances: positive_u64(v, path, "instances")?.unwrap_or(d.instances),
            }))
        }
        "policy-run" => {
            check_fields(v, path, &POLICY_RUN_FIELDS)?;
            Ok(ExperimentKind::PolicyRun(policy_run_from_json(v, path)?))
        }
        "policy-duel" => {
            let mut allowed: Vec<&str> = POLICY_RUN_FIELDS.to_vec();
            allowed.push("challenger");
            check_fields(v, path, &allowed)?;
            let challenger = match v.get("challenger") {
                Some(c) => policy_from_json(c, &format!("{path}.challenger"))?,
                None => return fail(path, "missing required field 'challenger'"),
            };
            Ok(ExperimentKind::PolicyDuel {
                base: policy_run_from_json(v, path)?,
                challenger,
            })
        }
        other => {
            let mut message = format!(
                "unknown experiment kind '{other}' (expected one of {})",
                join_labels(KINDS.iter().copied())
            );
            if let Some(near) = nearest(other, KINDS.iter().copied()) {
                message.push_str(&format!("; did you mean '{near}'?"));
            }
            fail(&format!("{path}.kind"), message)
        }
    }
}

const POLICY_RUN_FIELDS: [&str; 13] = [
    "kind",
    "n",
    "m",
    "topology",
    "channel",
    "policy",
    "loss",
    "horizon",
    "update_period",
    "r",
    "minirounds",
    "partitions",
    "traffic",
];

fn policy_run_from_json(v: &Json, path: &str) -> Result<PolicyRunConfig, SpecError> {
    let d = PolicyRunConfig::default();
    let update_period = positive_usize(v, path, "update_period")?.unwrap_or(d.update_period);
    let n = positive_usize(v, path, "n")?.unwrap_or(d.n);
    Ok(PolicyRunConfig {
        n,
        m: positive_usize(v, path, "m")?.unwrap_or(d.m),
        topology: opt_topology(v, path)?.unwrap_or(d.topology),
        channel: opt_channel(v, path)?.unwrap_or(d.channel),
        policy: match v.get("policy") {
            Some(p) => policy_from_json(p, &format!("{path}.policy"))?,
            None => d.policy,
        },
        loss: opt_loss(v, path)?.unwrap_or(d.loss),
        horizon: positive_u64(v, path, "horizon")?.unwrap_or(d.horizon),
        update_period,
        r: opt_usize(v, path, "r")?.unwrap_or(d.r),
        minirounds: opt_usize(v, path, "minirounds")?.unwrap_or(d.minirounds),
        partitions: opt_usize(v, path, "partitions")?.unwrap_or(d.partitions),
        traffic: opt_traffic(v, path, n)?,
        seed: d.seed,
    })
}

fn opt_traffic(v: &Json, path: &str, n: usize) -> Result<Option<TrafficSpec>, SpecError> {
    match v.get("traffic") {
        None => Ok(None),
        Some(t) => traffic_from_json(t, &format!("{path}.traffic"), n).map(Some),
    }
}

/// Parses the traffic workload object the spec renderer emits:
/// `{"arrivals": {...}, "flows": [...], "packet_kbps", "seed"}`. Flow
/// endpoints are validated against the network size `n` here because the
/// queue-engine constructor panics on out-of-range vertices.
fn traffic_from_json(v: &Json, path: &str, n: usize) -> Result<TrafficSpec, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected a traffic object {arrivals, flows, ...}");
    }
    check_fields(v, path, &["arrivals", "flows", "packet_kbps", "seed"])?;
    let arrivals = match v.get("arrivals") {
        Some(a) => arrivals_from_json(a, &format!("{path}.arrivals"))?,
        None => return fail(path, "missing required field 'arrivals'"),
    };
    let flows = flows_from_json(v, path, n)?;
    let packet_kbps = opt_f64(v, path, "packet_kbps")?.unwrap_or(100.0);
    if !(packet_kbps > 0.0 && packet_kbps.is_finite()) {
        return fail(
            &format!("{path}.packet_kbps"),
            "must be positive and finite",
        );
    }
    let seed = opt_u64(v, path, "seed")?.unwrap_or(0);
    Ok(TrafficSpec {
        arrivals,
        flows,
        packet_kbps,
        seed,
    })
}

fn arrivals_from_json(v: &Json, path: &str) -> Result<ArrivalProcess, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected an arrival-process object {process, ...}");
    }
    const PROCESSES: [&str; 3] = ["poisson", "deterministic", "bursty"];
    let process = req_str(v, path, "process")?;
    let rate = |v: &Json| -> Result<f64, SpecError> {
        let x = opt_f64(v, path, "rate")?.unwrap_or(0.5);
        if !(x > 0.0 && x.is_finite()) {
            return fail(&format!("{path}.rate"), "must be positive and finite");
        }
        Ok(x)
    };
    match process.as_str() {
        "poisson" => {
            check_fields(v, path, &["process", "rate"])?;
            Ok(ArrivalProcess::Poisson { rate: rate(v)? })
        }
        "deterministic" => {
            check_fields(v, path, &["process", "period"])?;
            Ok(ArrivalProcess::Deterministic {
                period: positive_u64(v, path, "period")?.unwrap_or(4),
            })
        }
        "bursty" => {
            check_fields(v, path, &["process", "rate", "burst"])?;
            Ok(ArrivalProcess::Bursty {
                rate: rate(v)?,
                burst: positive_u64(v, path, "burst")?.unwrap_or(8),
            })
        }
        other => {
            let mut message = format!(
                "unknown arrival process '{other}' (expected one of {})",
                join_labels(PROCESSES.iter().copied())
            );
            if let Some(near) = nearest(other, PROCESSES.iter().copied()) {
                message.push_str(&format!("; did you mean '{near}'?"));
            }
            fail(&format!("{path}.process"), message)
        }
    }
}

fn flows_from_json(v: &Json, path: &str, n: usize) -> Result<Vec<FlowSpec>, SpecError> {
    let flows_path = format!("{path}.flows");
    let Some(items) = v.get("flows").and_then(Json::as_arr) else {
        return fail(
            &flows_path,
            "traffic needs a flows array of {src, dst} objects",
        );
    };
    if items.is_empty() {
        return fail(&flows_path, "needs at least one flow");
    }
    items
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let path = format!("{flows_path}[{i}]");
            if !matches!(f, Json::Obj(_)) {
                return fail(&path, "expected a flow object {src, dst[, deadline]}");
            }
            check_fields(f, &path, &["src", "dst", "deadline"])?;
            let endpoint = |key: &str| -> Result<usize, SpecError> {
                let Some(value) = f.get(key) else {
                    return fail(&path, format!("missing required field '{key}'"));
                };
                let Some(x) = value.as_u64() else {
                    return fail(
                        &format!("{path}.{key}"),
                        "must be a non-negative integer vertex index",
                    );
                };
                if x as usize >= n {
                    return fail(
                        &format!("{path}.{key}"),
                        format!("vertex {x} out of range for n = {n}"),
                    );
                }
                Ok(x as usize)
            };
            let src = endpoint("src")?;
            let dst = endpoint("dst")?;
            if src == dst {
                return fail(&path, "src and dst must differ");
            }
            Ok(FlowSpec {
                src,
                dst,
                deadline: positive_u64(f, &path, "deadline")?,
            })
        })
        .collect()
}

fn policy_from_json(v: &Json, path: &str) -> Result<PolicySpec, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected a policy object {name, ...}");
    }
    const NAMES: [&str; 7] = [
        "cs-ucb",
        "llr",
        "thompson",
        "discounted-cs-ucb",
        "epsilon-greedy",
        "random",
        "oracle",
    ];
    let name = req_str(v, path, "name")?;
    match name.as_str() {
        "cs-ucb" => {
            check_fields(v, path, &["name", "l"])?;
            Ok(PolicySpec::CsUcb {
                l: opt_f64(v, path, "l")?.unwrap_or(2.0),
            })
        }
        "llr" => {
            check_fields(v, path, &["name", "l"])?;
            Ok(PolicySpec::Llr {
                l: opt_f64(v, path, "l")?.unwrap_or(2.0),
            })
        }
        "thompson" => {
            check_fields(v, path, &["name", "sigma"])?;
            let sigma = opt_f64(v, path, "sigma")?.unwrap_or(0.1);
            if !(sigma > 0.0 && sigma.is_finite()) {
                return fail(&format!("{path}.sigma"), "must be positive");
            }
            Ok(PolicySpec::Thompson { sigma })
        }
        "discounted-cs-ucb" => {
            check_fields(v, path, &["name", "gamma"])?;
            let gamma = opt_f64(v, path, "gamma")?.unwrap_or(0.99);
            if !(gamma > 0.0 && gamma <= 1.0) {
                return fail(&format!("{path}.gamma"), "must be in (0, 1]");
            }
            Ok(PolicySpec::DiscountedCsUcb { gamma })
        }
        "epsilon-greedy" => {
            check_fields(v, path, &["name", "eps"])?;
            let eps = opt_f64(v, path, "eps")?.unwrap_or(0.05);
            if !(0.0..=1.0).contains(&eps) {
                return fail(&format!("{path}.eps"), "must be in [0, 1]");
            }
            Ok(PolicySpec::EpsilonGreedy { eps })
        }
        "random" => {
            check_fields(v, path, &["name"])?;
            Ok(PolicySpec::Random)
        }
        "oracle" => {
            check_fields(v, path, &["name"])?;
            Ok(PolicySpec::Oracle)
        }
        other => fail(
            &format!("{path}.name"),
            format!(
                "unknown policy '{other}' (expected one of {})",
                join_labels(NAMES.iter().copied())
            ),
        ),
    }
}

fn opt_topology(v: &Json, path: &str) -> Result<Option<TopologySpec>, SpecError> {
    match v.get("topology") {
        None => Ok(None),
        Some(t) => topology_from_json(t, &format!("{path}.topology")).map(Some),
    }
}

fn topology_from_json(v: &Json, path: &str) -> Result<TopologySpec, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected a topology object {family, ...}");
    }
    const FAMILIES: [&str; 8] = [
        "unit-disk",
        "unit-disk-connected",
        "line",
        "ring",
        "grid",
        "star",
        "complete",
        "independent",
    ];
    let family = req_str(v, path, "family")?;
    let avg_degree = |v: &Json| -> Result<f64, SpecError> {
        check_fields(v, path, &["family", "avg_degree"])?;
        let d = opt_f64(v, path, "avg_degree")?.unwrap_or(3.5);
        if d <= 0.0 {
            return fail(&format!("{path}.avg_degree"), "must be positive");
        }
        Ok(d)
    };
    match family.as_str() {
        "unit-disk" => Ok(TopologySpec::UnitDisk {
            avg_degree: avg_degree(v)?,
        }),
        "unit-disk-connected" => Ok(TopologySpec::UnitDiskConnected {
            avg_degree: avg_degree(v)?,
        }),
        flat @ ("line" | "ring" | "grid" | "star" | "complete" | "independent") => {
            check_fields(v, path, &["family"])?;
            Ok(match flat {
                "line" => TopologySpec::Line,
                "ring" => TopologySpec::Ring,
                "grid" => TopologySpec::Grid,
                "star" => TopologySpec::Star,
                "complete" => TopologySpec::Complete,
                _ => TopologySpec::Independent,
            })
        }
        other => fail(
            &format!("{path}.family"),
            format!(
                "unknown topology family '{other}' (expected one of {})",
                join_labels(FAMILIES.iter().copied())
            ),
        ),
    }
}

fn opt_channel(v: &Json, path: &str) -> Result<Option<ChannelModelSpec>, SpecError> {
    match v.get("channel") {
        None => Ok(None),
        Some(c) => channel_from_json(c, &format!("{path}.channel")).map(Some),
    }
}

fn channel_from_json(v: &Json, path: &str) -> Result<ChannelModelSpec, SpecError> {
    if !matches!(v, Json::Obj(_)) {
        return fail(path, "expected a channel-model object {family, ...}");
    }
    const FAMILIES: [&str; 8] = [
        "gaussian",
        "constant",
        "bernoulli",
        "uniform",
        "adv-sinusoidal",
        "adv-switching",
        "adv-ramp",
        "drifting",
    ];
    let family = req_str(v, path, "family")?;
    let frac = |key: &str, default: f64| -> Result<f64, SpecError> {
        let x = opt_f64(v, path, key)?.unwrap_or(default);
        if !(0.0..=1.0).contains(&x) {
            return fail(&format!("{path}.{key}"), "must be in [0, 1]");
        }
        Ok(x)
    };
    match family.as_str() {
        "gaussian" => {
            check_fields(v, path, &["family", "sigma_frac"])?;
            Ok(ChannelModelSpec::GaussianRateClasses {
                sigma_frac: frac("sigma_frac", 0.1)?,
            })
        }
        "constant" => {
            check_fields(v, path, &["family"])?;
            Ok(ChannelModelSpec::ConstantRateClasses)
        }
        "bernoulli" => {
            check_fields(v, path, &["family", "p"])?;
            let p = opt_f64(v, path, "p")?.unwrap_or(0.5);
            if !(p > 0.0 && p <= 1.0) {
                return fail(&format!("{path}.p"), "must be in (0, 1]");
            }
            Ok(ChannelModelSpec::BernoulliRateClasses { p })
        }
        "uniform" => {
            check_fields(v, path, &["family", "spread_frac"])?;
            Ok(ChannelModelSpec::UniformRateClasses {
                spread_frac: frac("spread_frac", 0.5)?,
            })
        }
        "adv-sinusoidal" => {
            check_fields(v, path, &["family", "amp_frac", "period"])?;
            Ok(ChannelModelSpec::AdversarialSinusoidal {
                amp_frac: frac("amp_frac", 0.3)?,
                period: positive_u64(v, path, "period")?.unwrap_or(50),
            })
        }
        "adv-switching" => {
            check_fields(v, path, &["family", "swing_frac", "dwell"])?;
            Ok(ChannelModelSpec::AdversarialSwitching {
                swing_frac: frac("swing_frac", 0.5)?,
                dwell: positive_u64(v, path, "dwell")?.unwrap_or(25),
            })
        }
        "adv-ramp" => {
            check_fields(v, path, &["family", "horizon"])?;
            Ok(ChannelModelSpec::AdversarialRamp {
                horizon: positive_u64(v, path, "horizon")?.unwrap_or(1000),
            })
        }
        "drifting" => {
            check_fields(v, path, &["family", "shift_frac", "breakpoints", "ramp"])?;
            let bp_path = format!("{path}.breakpoints");
            let Some(items) = v.get("breakpoints").and_then(Json::as_arr) else {
                return fail(
                    &bp_path,
                    "drifting needs a breakpoints array of positive slots",
                );
            };
            let breakpoints: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    b.as_u64().filter(|&b| b > 0).ok_or_else(|| SpecError {
                        path: format!("{bp_path}[{i}]"),
                        message: "must be a positive integer slot".to_string(),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            if breakpoints.is_empty() {
                return fail(&bp_path, "needs at least one breakpoint");
            }
            if let Some(i) = breakpoints.windows(2).position(|w| w[0] >= w[1]) {
                return fail(
                    &format!("{bp_path}[{}]", i + 1),
                    "breakpoints must be strictly increasing",
                );
            }
            let ramp = opt_u64(v, path, "ramp")?.unwrap_or(0);
            // A ramp longer than a segment would jump discontinuously
            // from mid-ramp at the next breakpoint — refuse it up front
            // (the process constructor panics on the same condition).
            if let Some(w) = breakpoints.windows(2).find(|w| ramp > w[1] - w[0]) {
                return fail(
                    &format!("{path}.ramp"),
                    format!(
                        "ramp ({ramp}) must not exceed the gap between consecutive \
                         breakpoints (smallest violated gap: {} to {})",
                        w[0], w[1]
                    ),
                );
            }
            Ok(ChannelModelSpec::Drifting {
                shift_frac: frac("shift_frac", 0.5)?,
                breakpoints,
                ramp,
            })
        }
        other => fail(
            &format!("{path}.family"),
            format!(
                "unknown channel family '{other}' (expected one of {})",
                join_labels(FAMILIES.iter().copied())
            ),
        ),
    }
}

fn opt_loss(v: &Json, path: &str) -> Result<Option<LossSpec>, SpecError> {
    let Some(l) = v.get("loss") else {
        return Ok(None);
    };
    let path = format!("{path}.loss");
    if !matches!(l, Json::Obj(_)) {
        return fail(&path, "expected a loss object {prob, seed}");
    }
    check_fields(l, &path, &["prob", "seed"])?;
    let prob = opt_f64(l, &path, "prob")?.unwrap_or(0.0);
    if !(0.0..1.0).contains(&prob) {
        return fail(&format!("{path}.prob"), "must be in [0, 1)");
    }
    let seed = opt_u64(l, &path, "seed")?.unwrap_or(0);
    Ok(Some(LossSpec { prob, seed }))
}

fn sizes_from_json(v: &Json, path: &str) -> Result<Vec<(usize, usize)>, SpecError> {
    let Some(items) = v.as_arr() else {
        return fail(path, "expected an array of [n, m] pairs");
    };
    items
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            let path = format!("{path}[{i}]");
            let err = || SpecError {
                path: path.clone(),
                message: "expected a [n, m] pair of positive integers".to_string(),
            };
            let xs = pair.as_arr().ok_or_else(err)?;
            if xs.len() != 2 {
                return Err(err());
            }
            let n = xs[0].as_u64().filter(|&n| n > 0).ok_or_else(err)? as usize;
            let m = xs[1].as_u64().filter(|&m| m > 0).ok_or_else(err)? as usize;
            Ok((n, m))
        })
        .collect()
}

// ---- Scalar field helpers (all carry the field path on failure).

fn check_fields(v: &Json, path: &str, allowed: &[&str]) -> Result<(), SpecError> {
    let Json::Obj(pairs) = v else {
        return Ok(());
    };
    for (i, (key, _)) in pairs.iter().enumerate() {
        if !allowed.contains(&key.as_str()) {
            let mut message = format!(
                "unknown field '{key}' (expected one of {})",
                join_labels(allowed.iter().copied())
            );
            if let Some(near) = nearest(key, allowed.iter().copied()) {
                message.push_str(&format!("; did you mean '{near}'?"));
            }
            return fail(path, message);
        }
        // `Json::get` returns the first match, so a repeated key would
        // silently shadow the later value — exactly the kind of edit
        // mistake (add a line, forget to delete the old one) this
        // module exists to catch.
        if pairs[..i].iter().any(|(earlier, _)| earlier == key) {
            return fail(path, format!("duplicate field '{key}'"));
        }
    }
    Ok(())
}

fn req_str(v: &Json, path: &str, key: &str) -> Result<String, SpecError> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => fail(&format!("{path}.{key}"), "must be a string"),
        None => fail(path, format!("missing required field '{key}'")),
    }
}

fn opt_str(v: &Json, path: &str, key: &str) -> Result<Option<String>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => fail(&format!("{path}.{key}"), "must be a string"),
    }
}

fn opt_f64(v: &Json, path: &str, key: &str) -> Result<Option<f64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(Json::Num(x)) => Ok(Some(*x)),
        Some(_) => fail(&format!("{path}.{key}"), "must be a number"),
    }
}

fn opt_u64(v: &Json, path: &str, key: &str) -> Result<Option<u64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(value) => match value.as_u64() {
            Some(x) => Ok(Some(x)),
            None => fail(
                &format!("{path}.{key}"),
                "must be a non-negative integer (within 2^53)",
            ),
        },
    }
}

fn positive_u64(v: &Json, path: &str, key: &str) -> Result<Option<u64>, SpecError> {
    match opt_u64(v, path, key)? {
        Some(0) => fail(&format!("{path}.{key}"), "must be positive"),
        other => Ok(other),
    }
}

fn opt_usize(v: &Json, path: &str, key: &str) -> Result<Option<usize>, SpecError> {
    Ok(opt_u64(v, path, key)?.map(|x| x as usize))
}

fn positive_usize(v: &Json, path: &str, key: &str) -> Result<Option<usize>, SpecError> {
    Ok(positive_u64(v, path, key)?.map(|x| x as usize))
}

fn opt_usizes(v: &Json, path: &str, key: &str) -> Result<Option<Vec<usize>>, SpecError> {
    let Some(value) = v.get(key) else {
        return Ok(None);
    };
    let path = format!("{path}.{key}");
    let Some(items) = value.as_arr() else {
        return fail(&path, "must be an array of non-negative integers");
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_u64().map(|x| x as usize).ok_or_else(|| SpecError {
                path: format!("{path}[{i}]"),
                message: "must be a non-negative integer".to_string(),
            })
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

/// As [`opt_usizes`], additionally requiring every element positive
/// (zero-sized networks panic in the channel-matrix constructors).
fn positive_usizes(v: &Json, path: &str, key: &str) -> Result<Option<Vec<usize>>, SpecError> {
    let Some(xs) = opt_usizes(v, path, key)? else {
        return Ok(None);
    };
    if let Some(i) = xs.iter().position(|&x| x == 0) {
        return fail(&format!("{path}.{key}[{i}]"), "must be positive");
    }
    Ok(Some(xs))
}

fn join_labels<'a>(labels: impl Iterator<Item = &'a str>) -> String {
    labels.collect::<Vec<_>>().join(", ")
}

/// The closest candidate by edit distance (≤ 3 edits), for "did you
/// mean" hints on unknown names.
pub fn nearest<'a>(want: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (edit_distance(want, c), c))
        .filter(|&(d, _)| d <= 3)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

/// Levenshtein distance (iterative two-row DP).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn every_registry_scenario_round_trips_byte_identically() {
        for scenario in registry::registry()
            .into_iter()
            .chain(registry::quick_registry())
        {
            let text = scenario.to_json().to_string_pretty();
            let parsed =
                scenarios_from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0], scenario, "{} spec drifted", scenario.name);
            assert_eq!(
                parsed[0].to_json().to_string_pretty(),
                text,
                "{} re-emission not byte-identical",
                scenario.name
            );
        }
    }

    #[test]
    fn campaign_documents_and_arrays_parse() {
        let scenarios = registry::quick_registry();
        let doc = crate::spec::campaign_json("mine", &scenarios).to_string_pretty();
        let (campaign, parsed) = campaign_from_str(&doc).unwrap();
        assert_eq!(campaign.as_deref(), Some("mine"));
        assert_eq!(parsed, scenarios);

        let arr = Json::Arr(scenarios.iter().map(|s| s.to_json()).collect());
        let (campaign, parsed) = campaign_from_str(&arr.to_string_pretty()).unwrap();
        assert_eq!(campaign, None, "arrays carry no campaign name");
        assert_eq!(parsed, scenarios);
    }

    #[test]
    fn duplicate_json_keys_rejected() {
        // Json::get is first-match: a repeated key would silently shadow
        // the later value, so ingestion must refuse it.
        let text = r#"{
            "name": "x",
            "spec": {"kind": "policy-run", "horizon": 800, "horizon": 5000}
        }"#;
        let err = scenarios_from_str(text).unwrap_err();
        assert_eq!(err.path, "scenario.spec");
        assert!(err.message.contains("duplicate field 'horizon'"), "{err}");
    }

    #[test]
    fn minimal_hand_authored_scenario_gets_defaults() {
        let text = r#"{
            "name": "mine",
            "spec": {"kind": "policy-run", "horizon": 50}
        }"#;
        let parsed = scenarios_from_str(text).unwrap();
        assert_eq!(parsed.len(), 1);
        let s = &parsed[0];
        assert_eq!(s.title, "mine");
        assert_eq!(s.seeds, SeedRange::new(0, 1));
        assert!(s.observers.is_empty());
        match &s.kind {
            ExperimentKind::PolicyRun(cfg) => {
                assert_eq!(cfg.horizon, 50);
                assert_eq!(cfg.n, PolicyRunConfig::default().n);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_carry_paths_and_hints() {
        let text = r#"{
            "name": "x",
            "spec": {"kind": "policy-run", "horizion": 50}
        }"#;
        let err = scenarios_from_str(text).unwrap_err();
        assert_eq!(err.path, "scenario.spec");
        assert!(err.message.contains("unknown field 'horizion'"), "{err}");
        assert!(err.message.contains("did you mean 'horizon'"), "{err}");

        let nested = r#"{
            "name": "x",
            "spec": {"kind": "fig7", "topology": {"family": "unit-disk", "avg_deg": 3.0}}
        }"#;
        let err = scenarios_from_str(nested).unwrap_err();
        assert_eq!(err.path, "scenario.spec.topology");
        assert!(err.message.contains("avg_deg"), "{err}");
    }

    #[test]
    fn unknown_kind_family_policy_are_diagnosed() {
        let bad_kind = r#"{"name": "x", "spec": {"kind": "fig9"}}"#;
        let err = scenarios_from_str(bad_kind).unwrap_err();
        assert_eq!(err.path, "scenario.spec.kind");
        assert!(err.message.contains("did you mean 'fig"), "{err}");

        let bad_family = r#"{
            "name": "x",
            "spec": {"kind": "fig7", "channel": {"family": "gaussain"}}
        }"#;
        let err = scenarios_from_str(bad_family).unwrap_err();
        assert_eq!(err.path, "scenario.spec.channel.family");

        let bad_policy = r#"{
            "name": "x",
            "spec": {"kind": "policy-run", "policy": {"name": "ucb9000"}}
        }"#;
        let err = scenarios_from_str(bad_policy).unwrap_err();
        assert_eq!(err.path, "scenario.spec.policy.name");
    }

    #[test]
    fn panicking_values_are_refused_up_front() {
        for (snippet, path_bit) in [
            (
                r#"{"name":"x","spec":{"kind":"policy-run","horizon":0}}"#,
                "horizon",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","update_period":0}}"#,
                "update_period",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","loss":{"prob":1.5,"seed":0}}}"#,
                "loss.prob",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","channel":{"family":"bernoulli","p":0}}}"#,
                "channel.p",
            ),
            (
                r#"{"name":"x","seeds":{"start":0,"count":0},"spec":{"kind":"table2"}}"#,
                "count",
            ),
            (
                r#"{"name":"x","seeds":{"start":9007199254740992,"count":1},"spec":{"kind":"table2"}}"#,
                "seeds",
            ),
            (
                r#"{"name":"x","observers":["decide-timer"],"spec":{"kind":"table2"}}"#,
                "observers",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","policy":{"name":"thompson","sigma":0}}}"#,
                "policy.sigma",
            ),
            (
                r#"{"name":"x","spec":{"kind":"complexity","ns":[25,0]}}"#,
                "ns[1]",
            ),
            (
                r#"{"name":"x","spec":{"kind":"fig8","update_periods":[1,0]}}"#,
                "update_periods[1]",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","traffic":{"arrivals":{"process":"poisson","rate":0},"flows":[{"src":0,"dst":1}]}}}"#,
                "traffic.arrivals.rate",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","traffic":{"arrivals":{"process":"poisson"},"flows":[]}}}"#,
                "traffic.flows",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","traffic":{"arrivals":{"process":"poisson"},"flows":[{"src":2,"dst":2}]}}}"#,
                "traffic.flows[0]",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","n":8,"traffic":{"arrivals":{"process":"poisson"},"flows":[{"src":0,"dst":8}]}}}"#,
                "traffic.flows[0].dst",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","traffic":{"arrivals":{"process":"poisson"},"flows":[{"src":0,"dst":1,"deadline":0}]}}}"#,
                "traffic.flows[0].deadline",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","traffic":{"arrivals":{"process":"poisson"},"flows":[{"src":0,"dst":1}],"packet_kbps":0}}}"#,
                "traffic.packet_kbps",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","traffic":{"arrivals":{"process":"bursty","burst":0},"flows":[{"src":0,"dst":1}]}}}"#,
                "traffic.arrivals.burst",
            ),
            (
                r#"{"name":"x","observers":[{"kind":"queue-tail","bound":0}],"spec":{"kind":"table2"}}"#,
                "bound",
            ),
        ] {
            let err = scenarios_from_str(snippet).unwrap_err();
            assert!(
                err.path.contains(path_bit),
                "snippet {snippet} gave path {} ({})",
                err.path,
                err.message
            );
        }
    }

    #[test]
    fn duplicate_observers_rejected() {
        let text = r#"{
            "name": "x",
            "observers": ["comm-totals", "throughput", "comm-totals"],
            "spec": {"kind": "policy-run"}
        }"#;
        let err = scenarios_from_str(text).unwrap_err();
        assert_eq!(err.path, "scenario.observers[2]");
        assert!(err.message.contains("duplicate observer"), "{err}");

        // Same-label duplicates through different shapes (string + object
        // with different knobs) collide on the metric prefix too.
        let text = r#"{
            "name": "x",
            "observers": ["windowed-regret", {"kind": "windowed-regret", "window": 50}],
            "spec": {"kind": "policy-run"}
        }"#;
        let err = scenarios_from_str(text).unwrap_err();
        assert_eq!(err.path, "scenario.observers[1]");
        assert!(err.message.contains("duplicate observer"), "{err}");
    }

    #[test]
    fn parameterized_observers_parse_both_shapes() {
        // Bare labels come back at default parameters; objects override.
        let text = r#"{
            "name": "x",
            "observers": [
                "sensing-cost",
                {"kind": "windowed-regret", "window": 125},
                {"kind": "capture-stats"}
            ],
            "spec": {"kind": "policy-run"}
        }"#;
        let parsed = scenarios_from_str(text).unwrap();
        assert_eq!(
            parsed[0].observers,
            vec![
                ObserverKind::SensingCost {
                    probe_cost: 1.0,
                    report_cost: 0.1
                },
                ObserverKind::WindowedRegret { window: 125 },
                ObserverKind::CaptureStats,
            ]
        );
        // Canonical re-emission parses back to the same scenario.
        let text = parsed[0].to_json().to_string_pretty();
        assert_eq!(scenarios_from_str(&text).unwrap(), parsed);
    }

    #[test]
    fn bad_observer_parameters_are_refused() {
        for (snippet, path_bit) in [
            (
                r#"{"name":"x","observers":[{"kind":"windowed-regret","window":0}],"spec":{"kind":"policy-run"}}"#,
                "window",
            ),
            (
                r#"{"name":"x","observers":[{"kind":"sensing-cost","probe_cost":-1}],"spec":{"kind":"policy-run"}}"#,
                "probe_cost",
            ),
            (
                r#"{"name":"x","observers":[{"kind":"comm-totals","window":5}],"spec":{"kind":"policy-run"}}"#,
                "observers[0]",
            ),
            (
                r#"{"name":"x","observers":[{"kind":"windowed-regrets"}],"spec":{"kind":"policy-run"}}"#,
                "observers[0]",
            ),
            (
                r#"{"name":"x","observers":[{"window":5}],"spec":{"kind":"policy-run"}}"#,
                "observers[0]",
            ),
        ] {
            let err = scenarios_from_str(snippet).unwrap_err();
            assert!(
                err.path.contains(path_bit),
                "snippet {snippet} gave path {} ({})",
                err.path,
                err.message
            );
        }
    }

    #[test]
    fn drifting_channel_round_trips_and_validates() {
        let text = r#"{
            "name": "drift",
            "spec": {
                "kind": "policy-run",
                "channel": {
                    "family": "drifting",
                    "shift_frac": 0.4,
                    "breakpoints": [250, 500, 750],
                    "ramp": 20
                },
                "horizon": 1000
            }
        }"#;
        let parsed = scenarios_from_str(text).unwrap();
        let ExperimentKind::PolicyRun(cfg) = &parsed[0].kind else {
            panic!("wrong kind");
        };
        assert_eq!(
            cfg.channel,
            mhca_channels::ChannelModelSpec::Drifting {
                shift_frac: 0.4,
                breakpoints: vec![250, 500, 750],
                ramp: 20,
            }
        );
        let emitted = parsed[0].to_json().to_string_pretty();
        assert_eq!(scenarios_from_str(&emitted).unwrap(), parsed);
        assert_eq!(
            scenarios_from_str(&emitted).unwrap()[0]
                .to_json()
                .to_string_pretty(),
            emitted,
            "drifting re-emission not byte-identical"
        );
    }

    #[test]
    fn bad_drifting_parameters_are_refused() {
        for (snippet, path_bit) in [
            // Missing breakpoints: the family is meaningless without them.
            (
                r#"{"name":"x","spec":{"kind":"policy-run","channel":{"family":"drifting"}}}"#,
                "breakpoints",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","channel":{"family":"drifting","breakpoints":[]}}}"#,
                "breakpoints",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","channel":{"family":"drifting","breakpoints":[0]}}}"#,
                "breakpoints[0]",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","channel":{"family":"drifting","breakpoints":[500,250]}}}"#,
                "breakpoints[1]",
            ),
            (
                r#"{"name":"x","spec":{"kind":"policy-run","channel":{"family":"drifting","breakpoints":[250],"shift_frac":1.5}}}"#,
                "shift_frac",
            ),
            // A ramp longer than a segment would jump from mid-ramp.
            (
                r#"{"name":"x","spec":{"kind":"policy-run","channel":{"family":"drifting","breakpoints":[10,12],"ramp":5}}}"#,
                "ramp",
            ),
        ] {
            let err = scenarios_from_str(snippet).unwrap_err();
            assert!(
                err.path.contains(path_bit),
                "snippet {snippet} gave path {} ({})",
                err.path,
                err.message
            );
        }
    }

    #[test]
    fn traffic_specs_round_trip_and_diagnose() {
        // Every arrival-process family, a deadline-carrying flow, and an
        // unbounded one: the canonical re-emission must be byte-identical
        // (the deadline key is omitted, not null, so a round trip cannot
        // invent it).
        let text = r#"{
            "name": "flows",
            "spec": {
                "kind": "policy-run",
                "n": 12,
                "topology": {"family": "ring"},
                "horizon": 400,
                "traffic": {
                    "arrivals": {"process": "bursty", "rate": 0.3, "burst": 6},
                    "flows": [
                        {"src": 0, "dst": 5, "deadline": 24},
                        {"src": 7, "dst": 2}
                    ],
                    "packet_kbps": 80,
                    "seed": 9
                }
            },
            "observers": ["flow-delay", {"kind": "queue-tail", "bound": 16}]
        }"#;
        let parsed = scenarios_from_str(text).unwrap();
        let ExperimentKind::PolicyRun(cfg) = &parsed[0].kind else {
            panic!("wrong kind");
        };
        let traffic = cfg.traffic.as_ref().expect("traffic parsed");
        assert_eq!(
            traffic.arrivals,
            ArrivalProcess::Bursty {
                rate: 0.3,
                burst: 6
            }
        );
        assert_eq!(
            traffic.flows,
            vec![
                FlowSpec {
                    src: 0,
                    dst: 5,
                    deadline: Some(24)
                },
                FlowSpec {
                    src: 7,
                    dst: 2,
                    deadline: None
                },
            ]
        );
        assert_eq!(traffic.packet_kbps, 80.0);
        assert_eq!(traffic.seed, 9);
        assert_eq!(
            parsed[0].observers,
            vec![
                ObserverKind::FlowDelay,
                ObserverKind::QueueTail { bound: 16 }
            ]
        );
        let emitted = parsed[0].to_json().to_string_pretty();
        assert_eq!(scenarios_from_str(&emitted).unwrap(), parsed);
        assert_eq!(
            scenarios_from_str(&emitted).unwrap()[0]
                .to_json()
                .to_string_pretty(),
            emitted,
            "traffic re-emission not byte-identical"
        );

        // Typo in the process name gets the usual nearest-label hint.
        let typo = r#"{
            "name": "x",
            "spec": {
                "kind": "policy-run",
                "traffic": {"arrivals": {"process": "posson"}, "flows": [{"src": 0, "dst": 1}]}
            }
        }"#;
        let err = scenarios_from_str(typo).unwrap_err();
        assert_eq!(err.path, "scenario.spec.traffic.arrivals.process");
        assert!(err.message.contains("did you mean 'poisson'"), "{err}");
    }

    #[test]
    fn duplicate_names_rejected() {
        let text = r#"[
            {"name": "a", "spec": {"kind": "table2"}},
            {"name": "a", "spec": {"kind": "table2"}}
        ]"#;
        let err = scenarios_from_str(text).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn string_escapes_survive_ingestion() {
        // Titles are free-form (only names are path-constrained): quotes,
        // backslashes, tabs, and non-ASCII must round-trip exactly.
        let spec = ScenarioSpec::new(
            "weird name with spaces é 中",
            "title \"quoted\" with \\ and \t tab and 😀",
            ExperimentKind::Table2,
            SeedRange::new(0, 1),
        );
        let text = spec.to_json().to_string_pretty();
        let parsed = scenarios_from_str(&text).unwrap();
        assert_eq!(parsed[0], spec);
        assert_eq!(parsed[0].to_json().to_string_pretty(), text);
    }

    #[test]
    fn path_traversal_names_rejected() {
        for bad in ["../../tmp/evil", "a/b", "a\\b", "..", ".", "ctrl\u{1}name"] {
            // Emit through the JSON writer so escapes are JSON-valid.
            let text = Json::obj(vec![
                ("name", Json::str(bad)),
                ("spec", Json::obj(vec![("kind", Json::str("table2"))])),
            ])
            .to_string_compact();
            let err =
                scenarios_from_str(&text).expect_err(&format!("accepted dangerous name {bad:?}"));
            assert_eq!(err.path, "scenario.name", "{bad:?}: {err}");
        }
    }

    #[test]
    fn non_finite_numbers_and_trailing_garbage_rejected() {
        for bad in [
            r#"{"name":"x","spec":{"kind":"policy-run","horizon":NaN}}"#,
            r#"{"name":"x","spec":{"kind":"policy-run","horizon":Infinity}}"#,
            r#"{"name":"x","spec":{"kind":"policy-run","horizon":1e999}}"#,
            r#"{"name":"x","spec":{"kind":"table2"}} trailing"#,
            r#"{"name":"x","spec":{"kind":"table2"}}{}"#,
        ] {
            let err = scenarios_from_str(bad).unwrap_err();
            assert_eq!(err.path, "<document>", "accepted {bad}: {err}");
        }
    }

    #[test]
    fn edit_distance_and_nearest() {
        assert_eq!(edit_distance("fig7", "fig7"), 0);
        assert_eq!(edit_distance("fig9", "fig8"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(
            nearest("fig6-quik", ["fig6-quick", "fig7-quick"].into_iter()),
            Some("fig6-quick")
        );
        assert_eq!(nearest("zzzzzzz", ["fig6", "fig7"].into_iter()), None);
    }

    #[test]
    fn ingested_scenario_actually_runs() {
        let text = r#"{
            "name": "user-authored",
            "title": "tiny policy run",
            "spec": {
                "kind": "policy-run",
                "n": 8, "m": 2,
                "topology": {"family": "unit-disk", "avg_degree": 3.5},
                "channel": {"family": "constant"},
                "policy": {"name": "cs-ucb", "l": 2},
                "horizon": 40, "update_period": 1, "r": 1, "minirounds": 4
            },
            "seeds": {"start": 3, "count": 1},
            "observers": ["comm-totals"]
        }"#;
        let parsed = scenarios_from_str(text).unwrap();
        let mut sink = Vec::new();
        let metrics = parsed[0].run_job(3, &mut sink).unwrap();
        assert!(metrics.iter().any(|(k, _)| k == "avg_expected_kbps"));
        assert!(metrics.iter().any(|(k, _)| k == "comm-totals:decisions"));
        assert!(!sink.is_empty());
    }
}
