//! Hand-rolled JSON value model, emitter, and parser.
//!
//! The implementation moved to `mhca_service::json` when the resident
//! service grew its wire protocol and checkpoint codec on the same value
//! model; this module re-exports it so campaign code (and user code
//! reaching through `mhca_campaign::json`) keeps its existing paths.

pub use mhca_service::json::*;
