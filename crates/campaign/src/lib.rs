//! `mhca-campaign` — campaign orchestration for the reproduction.
//!
//! The paper's evaluation (Section V) is reproduced by per-figure
//! binaries in `mhca-bench`, each a single instance of a single
//! experiment. This crate is the scale layer above them:
//!
//! * [`spec`] — declarative [`ScenarioSpec`]s: experiment kind (wrapping
//!   the spec-driven configs of `mhca_core::experiments`), topology and
//!   channel families, policy, loss injection, and a seed range, all
//!   serializable to canonical JSON.
//! * [`registry`] — the scenario catalog: every figure/table of the paper
//!   plus cross-product scenarios along the channel-model, topology, and
//!   policy axes.
//! * [`ingest`] — user-authored scenario JSON ingestion (the inverse of
//!   `show`): `mhca-campaign run --scenario-file <path>` runs arbitrary
//!   user-defined campaigns with field-path diagnostics on malformed
//!   input, no registry recompile required.
//! * [`runner`] — the [`CampaignRunner`](runner::run): expands specs into
//!   a job matrix, executes pending jobs in parallel with
//!   order-preserving aggregation, and writes per-seed figure CSVs,
//!   per-scenario summaries, and a campaign-wide CSV/JSON record.
//! * [`manifest`] — the durable job ledger enabling
//!   resume-after-interrupt: completed jobs are skipped and their
//!   recorded metrics reused.
//! * [`json`] — a hand-rolled JSON emitter and parser (the vendored
//!   `serde` is marker-only; see `vendor/README.md`).
//! * [`tail`] — offline reader for the `--trace` event stream: re-merges
//!   the per-job histogram dumps in `events.jsonl` and renders the
//!   per-scenario / per-phase latency table behind `mhca-campaign tail`.
//! * [`service_exec`] — the [`mhca_service::Executor`] implementation
//!   behind `mhca-campaign serve`: long-lived sessions that step
//!   policy-run seeds one decision period at a time with mid-seed
//!   checkpoint/resume (see `docs/SERVICE.md`).
//!
//! One command replaces ten hand-invoked binaries:
//!
//! ```text
//! mhca-campaign run --quick            # CI smoke: 2 scenarios × 3 seeds
//! mhca-campaign run                    # the full catalog, multi-seed
//! mhca-campaign run --scenarios fig6,fig7 --seeds 10
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod ingest;
pub mod json;
pub mod manifest;
pub mod registry;
pub mod runner;
pub mod service_exec;
pub mod spec;
pub mod tail;

pub use ingest::{scenarios_from_str, SpecError};
pub use manifest::{JobRecord, JobStatus, Manifest};
pub use runner::{CampaignConfig, CampaignOutcome, ScenarioSummary};
pub use service_exec::ServiceExecutor;
pub use spec::{expand_jobs, spec_hash, ExperimentKind, Job, ScenarioSpec, SeedRange};
