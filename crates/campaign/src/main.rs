//! `mhca-campaign` — one CLI for multi-seed experiment campaigns.
//!
//! ```text
//! mhca-campaign list                     # catalog of scenarios
//! mhca-campaign show <scenario>          # canonical spec JSON
//! mhca-campaign run [options]            # run / resume a campaign
//!
//! run options:
//!   --quick            the CI smoke catalog (2 scenarios × 3 seeds)
//!   --out DIR          output directory (default target/campaigns/<name>)
//!   --name NAME        campaign name (default: paper, or quick)
//!   --scenarios a,b,c  subset of the catalog, by name
//!   --seeds K          override every scenario's seed count
//!   --serial           disable the per-seed parallelism
//!   --force            discard a manifest from a different spec
//! ```
//!
//! A campaign writes `manifest.json`, per-seed figure CSVs, per-scenario
//! `summary.csv`, and campaign-wide `campaign.csv` / `campaign.json`
//! into the output directory. Re-running with the same spec and output
//! directory resumes: jobs recorded done in the manifest are skipped.

use mhca_campaign::{registry, runner, CampaignConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("show") => match args.get(1) {
            Some(name) => show(name),
            None => usage("show needs a scenario name"),
        },
        Some("run") => run(&args[1..]),
        Some(other) => usage(&format!("unknown command '{other}'")),
        None => usage("missing command"),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("mhca-campaign: {problem}");
    eprintln!();
    eprintln!("usage: mhca-campaign <list | show <scenario> | run [options]>");
    eprintln!(
        "run options: --quick --out DIR --name NAME --scenarios a,b,c --seeds K --serial --force"
    );
    ExitCode::FAILURE
}

fn list() {
    println!("full catalog (mhca-campaign run):");
    for s in registry::registry() {
        println!("  {:<18} seeds {:>2}  {}", s.name, s.seeds.count, s.title);
    }
    println!();
    println!("quick catalog (mhca-campaign run --quick):");
    for s in registry::quick_registry() {
        println!("  {:<18} seeds {:>2}  {}", s.name, s.seeds.count, s.title);
    }
}

fn show(name: &str) -> ExitCode {
    match registry::find(name) {
        Some(s) => {
            println!("{}", s.to_json().to_string_pretty());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("mhca-campaign: no scenario named '{name}' (see mhca-campaign list)");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut serial = false;
    let mut force = false;
    let mut out: Option<String> = None;
    let mut name: Option<String> = None;
    let mut scenario_filter: Option<Vec<String>> = None;
    let mut seed_count: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--serial" => serial = true,
            "--force" => force = true,
            "--out" => match it.next() {
                Some(dir) => out = Some(dir.clone()),
                None => return usage("--out needs a directory"),
            },
            "--name" => match it.next() {
                Some(n) => name = Some(n.clone()),
                None => return usage("--name needs a value"),
            },
            "--scenarios" => match it.next() {
                Some(csv) => scenario_filter = Some(csv.split(',').map(str::to_string).collect()),
                None => return usage("--scenarios needs a comma-separated list"),
            },
            "--seeds" => match it.next().and_then(|s| s.parse().ok()) {
                Some(k) if k > 0 => seed_count = Some(k),
                _ => return usage("--seeds needs a positive integer"),
            },
            other => return usage(&format!("unknown run option '{other}'")),
        }
    }

    let mut scenarios = if quick {
        registry::quick_registry()
    } else {
        registry::registry()
    };
    if let Some(filter) = &scenario_filter {
        let known: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
        for want in filter {
            if !known.contains(want) {
                // Allow pulling any catalog entry by name, even under
                // --quick (and vice versa).
                match registry::find(want) {
                    Some(s) => scenarios.push(s),
                    None => return usage(&format!("unknown scenario '{want}'")),
                }
            }
        }
        scenarios.retain(|s| filter.contains(&s.name));
        // Keep the order the user asked for.
        scenarios.sort_by_key(|s| filter.iter().position(|w| w == &s.name));
    }
    if let Some(k) = seed_count {
        for s in &mut scenarios {
            s.seeds.count = k;
        }
    }
    if scenarios.is_empty() {
        return usage("no scenarios selected");
    }

    let name = name.unwrap_or_else(|| if quick { "quick" } else { "paper" }.to_string());
    let out_dir = out.unwrap_or_else(|| format!("target/campaigns/{name}"));
    let cfg = CampaignConfig {
        parallel: !serial,
        force,
        ..CampaignConfig::new(name, out_dir, scenarios)
    };

    match runner::run(&cfg) {
        Ok(outcome) => {
            let (done, pending) = outcome.manifest.progress();
            println!(
                "executed {} job(s), skipped {} (manifest: {done} done, {pending} pending)",
                outcome.executed, outcome.skipped
            );
            for summary in &outcome.summaries {
                if let Some((metric, agg)) = summary.aggregates.first() {
                    println!(
                        "  {:<18} {} = {:.2} ± {:.2} over {} seed(s)",
                        summary.name, metric, agg.mean, agg.std_dev, agg.runs
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mhca-campaign: {e}");
            ExitCode::FAILURE
        }
    }
}
