//! `mhca-campaign` — one CLI for multi-seed experiment campaigns.
//!
//! ```text
//! mhca-campaign list [--json]            # catalog of scenarios
//! mhca-campaign show <scenario>          # canonical spec JSON
//! mhca-campaign validate <file>          # check a user-authored spec file
//! mhca-campaign run [options]            # run / resume a campaign
//! mhca-campaign tail <out-dir>           # summarize a --trace event stream
//! mhca-campaign serve [options]          # resident experiment service
//! mhca-campaign client [options] <json>  # one-shot service request
//!
//! run options:
//!   --quick                the CI smoke catalog (2 scenarios × 3 seeds)
//!   --out DIR              output directory (default target/campaigns/<name>)
//!   --name NAME            campaign name (default: paper, quick, or custom)
//!   --scenarios a,b,c      subset of the catalog, by name
//!   --scenario-file FILE   add user-authored scenarios from a JSON file
//!                          (repeatable; see `show` for the format)
//!   --seeds K              override every scenario's seed count
//!   --jobs N               bound worker threads across the whole job
//!                          matrix (default: available cores)
//!   --serial               force strictly in-order serial execution
//!   --force                discard a manifest from a different spec
//!   --trace                write structured telemetry to events.jsonl
//!   --progress             live heartbeat lines + progress.json
//! ```
//!
//! A campaign writes `manifest.json`, per-seed figure CSVs, per-scenario
//! `summary.csv`, and campaign-wide `campaign.csv` / `campaign.json`
//! into the output directory. Re-running with the same spec and output
//! directory resumes: jobs recorded done in the manifest are skipped.
//! With `--trace`, spans, counters, and per-phase latency histograms land
//! in `events.jsonl`; `mhca-campaign tail <out-dir>` renders them into a
//! per-scenario summary table (see `docs/OBSERVABILITY.md`).
//!
//! `serve` turns the binary into a resident daemon speaking a
//! line-delimited JSON protocol over a unix socket (`--socket PATH`,
//! default `target/service/mhca.sock`) or TCP (`--tcp ADDR`), with
//! durable session state under `--state-dir` (default
//! `target/service/state`). `client` is the matching one-shot scripting
//! tool: it sends a single request line and prints the response — for
//! `watch`, the whole stream until the session closes. See
//! `docs/SERVICE.md` for the protocol.

use mhca_campaign::ingest::{self, nearest};
use mhca_campaign::json::Json;
use mhca_campaign::{
    registry, runner, tail as tail_mod, CampaignConfig, ScenarioSpec, ServiceExecutor,
};
use mhca_service::{protocol, Endpoint, Request, Supervisor};
use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// A CLI failure: message, plus whether to print the usage block.
struct CliError {
    message: String,
    show_usage: bool,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            show_usage: false,
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            show_usage: true,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mhca-campaign: {}", e.message);
            if e.show_usage {
                eprintln!();
                eprintln!(
                    "usage: mhca-campaign <list [--json] | show <scenario> | validate <file> | \
                     run [options] | tail <out-dir> | serve [options] | client [options] <json>>"
                );
                eprintln!(
                    "run options: --quick --out DIR --name NAME --scenarios a,b,c \
                     --scenario-file FILE --seeds K --jobs N --serial --force \
                     --trace --progress"
                );
                eprintln!(
                    "serve options: --socket PATH | --tcp ADDR, --state-dir DIR, \
                     --bus-capacity N \
                     (client: same endpoint flags, then one JSON request line)"
                );
            }
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("list") => match args.get(1).map(String::as_str) {
            None => {
                list();
                Ok(())
            }
            Some("--json") => {
                list_json();
                Ok(())
            }
            Some(other) => Err(CliError::usage(format!("unknown list option '{other}'"))),
        },
        Some("show") => match args.get(1) {
            Some(name) => show(name),
            None => Err(CliError::usage("show needs a scenario name")),
        },
        Some("validate") => match args.get(1) {
            Some(path) => validate(Path::new(path)),
            None => Err(CliError::usage("validate needs a spec file path")),
        },
        Some("run") => run(&args[1..]),
        Some("tail") => match args.get(1) {
            Some(dir) => tail(Path::new(dir)),
            None => Err(CliError::usage("tail needs a campaign output directory")),
        },
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some(other) => {
            let mut message = format!("unknown command '{other}'");
            if let Some(near) = nearest(
                other,
                ["list", "show", "validate", "run", "tail", "serve", "client"].into_iter(),
            ) {
                message.push_str(&format!(" (did you mean '{near}'?)"));
            }
            Err(CliError::usage(message))
        }
        None => Err(CliError::usage("missing command")),
    }
}

fn list() {
    println!("full catalog (mhca-campaign run):");
    for s in registry::registry() {
        println!("  {:<18} seeds {:>2}  {}", s.name, s.seeds.count, s.title);
    }
    println!();
    println!("quick catalog (mhca-campaign run --quick):");
    for s in registry::quick_registry() {
        println!("  {:<18} seeds {:>2}  {}", s.name, s.seeds.count, s.title);
    }
}

/// `mhca-campaign list --json`: the machine-readable catalog, one entry
/// per scenario with name, kind tag, seed range, and observer labels —
/// enough for a service client to compose `submit` requests without
/// scraping the human listing.
fn list_json() {
    fn entries(scenarios: Vec<ScenarioSpec>) -> Json {
        Json::Arr(
            scenarios
                .into_iter()
                .map(|s| {
                    Json::obj(vec![
                        ("name", Json::str(&s.name)),
                        ("title", Json::str(&s.title)),
                        ("kind", Json::str(s.kind.tag())),
                        (
                            "seeds",
                            Json::obj(vec![
                                ("start", Json::Num(s.seeds.start as f64)),
                                ("count", Json::Num(s.seeds.count as f64)),
                            ]),
                        ),
                        (
                            "observers",
                            Json::Arr(s.observers.iter().map(|o| Json::str(o.label())).collect()),
                        ),
                    ])
                })
                .collect(),
        )
    }
    let doc = Json::obj(vec![
        ("full", entries(registry::registry())),
        ("quick", entries(registry::quick_registry())),
    ]);
    println!("{}", doc.to_string_pretty());
}

/// Unknown-scenario error with a nearest-name hint.
fn unknown_scenario(name: &str) -> CliError {
    let catalog: Vec<String> = registry::registry()
        .into_iter()
        .chain(registry::quick_registry())
        .map(|s| s.name)
        .collect();
    let mut message = format!("no scenario named '{name}' (see mhca-campaign list)");
    if let Some(near) = nearest(name, catalog.iter().map(String::as_str)) {
        message.push_str(&format!("; did you mean '{near}'?"));
    }
    CliError::new(message)
}

fn show(name: &str) -> Result<(), CliError> {
    match registry::find(name) {
        Some(s) => {
            print!("{}", s.to_json().to_string_pretty());
            Ok(())
        }
        None => Err(unknown_scenario(name)),
    }
}

/// Loads and parses a user-authored scenario file; returns the campaign
/// name (when the file is a campaign document carrying one) and the
/// scenarios.
fn load_scenario_file(path: &Path) -> Result<(Option<String>, Vec<ScenarioSpec>), CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read '{}': {e}", path.display())))?;
    ingest::campaign_from_str(&text).map_err(|e| CliError::new(format!("{}: {e}", path.display())))
}

fn validate(path: &Path) -> Result<(), CliError> {
    let (campaign, scenarios) = load_scenario_file(path)?;
    match campaign {
        Some(name) => println!("ok: campaign '{name}', {} scenario(s)", scenarios.len()),
        None => println!("ok: {} scenario(s)", scenarios.len()),
    }
    for s in &scenarios {
        let shape = s.kind.experiment().spec();
        println!(
            "  {:<18} kind {:<12} seeds {}..{}  observers {}",
            s.name,
            shape.kind,
            s.seeds.start,
            s.seeds.start + s.seeds.count,
            if s.observers.is_empty() {
                "none".to_string()
            } else {
                s.observers
                    .iter()
                    .map(|o| o.label())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        );
        if shape.deterministic && s.seeds.count > 1 {
            eprintln!(
                "warning: {}: '{}' is deterministic — {} seeds only replicate the same job",
                s.name, shape.kind, s.seeds.count
            );
        }
        if !shape.streams_rounds && !s.observers.is_empty() {
            eprintln!(
                "warning: {}: '{}' drives no Algorithm 2 rounds — observers will report zeros",
                s.name, shape.kind
            );
        }
    }
    Ok(())
}

/// `mhca-campaign tail <out-dir>`: summarize `<out-dir>/events.jsonl`.
fn tail(out_dir: &Path) -> Result<(), CliError> {
    let mut stdout = std::io::stdout().lock();
    tail_mod::tail_dir(out_dir, &mut stdout).map_err(|e| CliError::new(e.to_string()))
}

fn run(args: &[String]) -> Result<(), CliError> {
    let mut quick = false;
    let mut serial = false;
    let mut force = false;
    let mut trace = false;
    let mut progress = false;
    let mut out: Option<String> = None;
    let mut name: Option<String> = None;
    let mut scenario_filter: Option<Vec<String>> = None;
    let mut scenario_files: Vec<String> = Vec::new();
    let mut seed_count: Option<u64> = None;
    let mut jobs: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--serial" => serial = true,
            "--force" => force = true,
            "--trace" => trace = true,
            "--progress" => progress = true,
            "--out" => match it.next() {
                Some(dir) => out = Some(dir.clone()),
                None => return Err(CliError::usage("--out needs a directory")),
            },
            "--name" => match it.next() {
                Some(n) => name = Some(n.clone()),
                None => return Err(CliError::usage("--name needs a value")),
            },
            "--scenarios" => match it.next() {
                Some(csv) => {
                    scenario_filter = Some(csv.split(',').map(str::to_string).collect());
                }
                None => {
                    return Err(CliError::usage("--scenarios needs a comma-separated list"));
                }
            },
            "--scenario-file" => match it.next() {
                Some(path) => scenario_files.push(path.clone()),
                None => return Err(CliError::usage("--scenario-file needs a path")),
            },
            "--seeds" => match it.next().and_then(|s| s.parse().ok()) {
                Some(k) if k > 0 => seed_count = Some(k),
                _ => return Err(CliError::usage("--seeds needs a positive integer")),
            },
            "--jobs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => return Err(CliError::usage("--jobs needs a positive integer")),
            },
            other => {
                let mut message = format!("unknown run option '{other}'");
                let known = [
                    "--quick",
                    "--serial",
                    "--force",
                    "--trace",
                    "--progress",
                    "--out",
                    "--name",
                    "--scenarios",
                    "--scenario-file",
                    "--seeds",
                    "--jobs",
                ];
                if let Some(near) = nearest(other, known.into_iter()) {
                    message.push_str(&format!(" (did you mean '{near}'?)"));
                }
                return Err(CliError::usage(message));
            }
        }
    }

    // ---- Assemble the scenario list: catalog selection, then any
    // user-authored files. Files alone (no --quick/--scenarios) run just
    // the file scenarios.
    let files_only = !scenario_files.is_empty() && !quick && scenario_filter.is_none();
    let mut scenarios = if files_only {
        Vec::new()
    } else if quick {
        registry::quick_registry()
    } else {
        registry::registry()
    };
    if let Some(filter) = &scenario_filter {
        let known: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
        for want in filter {
            if !known.contains(want) {
                // Allow pulling any catalog entry by name, even under
                // --quick (and vice versa).
                match registry::find(want) {
                    Some(s) => scenarios.push(s),
                    None => return Err(unknown_scenario(want)),
                }
            }
        }
        scenarios.retain(|s| filter.contains(&s.name));
        // Keep the order the user asked for.
        scenarios.sort_by_key(|s| filter.iter().position(|w| w == &s.name));
    }
    let mut file_campaign_name: Option<String> = None;
    for path in &scenario_files {
        let (campaign, file_scenarios) = load_scenario_file(Path::new(path))?;
        // A campaign document's own name is the default campaign name
        // (first file wins); the --name flag still overrides it.
        if file_campaign_name.is_none() {
            file_campaign_name = campaign;
        }
        for scenario in file_scenarios {
            if scenarios.iter().any(|s| s.name == scenario.name) {
                return Err(CliError::new(format!(
                    "{path}: scenario '{}' collides with an already-selected scenario",
                    scenario.name
                )));
            }
            scenarios.push(scenario);
        }
    }
    if let Some(k) = seed_count {
        for s in &mut scenarios {
            s.seeds.count = k;
        }
    }
    if scenarios.is_empty() {
        return Err(CliError::usage("no scenarios selected"));
    }

    let name = name.or(file_campaign_name).unwrap_or_else(|| {
        if quick {
            "quick"
        } else if files_only {
            "custom"
        } else {
            "paper"
        }
        .to_string()
    });
    let out_dir = out.unwrap_or_else(|| format!("target/campaigns/{name}"));
    ensure_writable(Path::new(&out_dir))?;
    let cfg = CampaignConfig {
        parallel: !serial,
        jobs,
        force,
        trace,
        progress,
        ..CampaignConfig::new(name, out_dir, scenarios)
    };

    let outcome = runner::run(&cfg).map_err(|e| CliError::new(e.to_string()))?;
    let (done, pending) = outcome.manifest.progress();
    println!(
        "executed {} job(s), skipped {} (manifest: {done} done, {pending} pending)",
        outcome.executed, outcome.skipped
    );
    for summary in &outcome.summaries {
        if let Some((metric, agg)) = summary.aggregates.first() {
            println!(
                "  {:<18} {} = {:.2} ± {:.2} over {} seed(s)",
                summary.name, metric, agg.mean, agg.std_dev, agg.runs
            );
        }
    }
    Ok(())
}

/// Parsed `--socket PATH` / `--tcp ADDR` endpoint selection, shared by
/// `serve` and `client`. Exactly one transport; unix socket by default.
fn parse_endpoint(socket: Option<String>, tcp: Option<String>) -> Result<Endpoint, CliError> {
    match (socket, tcp) {
        (Some(_), Some(_)) => Err(CliError::usage("--socket and --tcp are mutually exclusive")),
        (None, Some(addr)) => Ok(Endpoint::Tcp(addr)),
        (sock, None) => {
            Ok(Endpoint::Unix(PathBuf::from(sock.unwrap_or_else(|| {
                "target/service/mhca.sock".to_string()
            }))))
        }
    }
}

/// `mhca-campaign serve`: the resident experiment service. Binds the
/// endpoint, recovers any sessions persisted under the state directory
/// (interrupted ones come back `paused`, resumable mid-seed from their
/// checkpoint), and serves until a `shutdown` request or SIGINT/SIGTERM.
fn serve(args: &[String]) -> Result<(), CliError> {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut bus_capacity: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => return Err(CliError::usage("--socket needs a path")),
            },
            "--tcp" => match it.next() {
                Some(a) => tcp = Some(a.clone()),
                None => return Err(CliError::usage("--tcp needs an address")),
            },
            "--state-dir" => match it.next() {
                Some(d) => state_dir = Some(d.clone()),
                None => return Err(CliError::usage("--state-dir needs a directory")),
            },
            "--bus-capacity" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => bus_capacity = Some(n),
                Some(_) => return Err(CliError::usage("--bus-capacity needs a positive integer")),
                None => return Err(CliError::usage("--bus-capacity needs a positive integer")),
            },
            other => return Err(CliError::usage(format!("unknown serve option '{other}'"))),
        }
    }
    let endpoint = parse_endpoint(socket, tcp)?;
    let state_dir = PathBuf::from(state_dir.unwrap_or_else(|| "target/service/state".to_string()));
    let supervisor = Arc::new(
        Supervisor::with_bus_capacity(
            Arc::new(ServiceExecutor),
            state_dir.clone(),
            bus_capacity.unwrap_or(mhca_service::supervisor::DEFAULT_BUS_CAPACITY),
        )
        .map_err(CliError::new)?,
    );
    let recovered = supervisor
        .status(None)
        .map_err(CliError::new)?
        .iter()
        .filter(|s| !s.status.is_terminal())
        .count();
    match &endpoint {
        Endpoint::Unix(path) => println!(
            "mhca-campaign serve: unix socket {} (state: {}, {} resumable session(s))",
            path.display(),
            state_dir.display(),
            recovered
        ),
        Endpoint::Tcp(addr) => println!(
            "mhca-campaign serve: tcp {addr} (state: {}, {} resumable session(s))",
            state_dir.display(),
            recovered
        ),
    }
    mhca_service::serve(supervisor, endpoint).map_err(CliError::new)
}

/// `mhca-campaign client`: one-shot scripting client. Sends a single
/// request line and prints the response; `watch` requests stream every
/// event line until the session's bus closes. Exits non-zero when the
/// server answers `"ok": false`.
fn client(args: &[String]) -> Result<(), CliError> {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut request: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => return Err(CliError::usage("--socket needs a path")),
            },
            "--tcp" => match it.next() {
                Some(a) => tcp = Some(a.clone()),
                None => return Err(CliError::usage("--tcp needs an address")),
            },
            other if request.is_none() && !other.starts_with("--") => {
                request = Some(other.to_string());
            }
            other => return Err(CliError::usage(format!("unknown client option '{other}'"))),
        }
    }
    let line = request.ok_or_else(|| CliError::usage("client needs a JSON request argument"))?;
    // Validate locally so a typo fails with the protocol's diagnostic
    // instead of a round-trip, and to learn whether this is a stream.
    let parsed = protocol::parse_request(&line).map_err(CliError::new)?;
    let streaming = matches!(parsed, Request::Watch { .. });

    let stream: Box<dyn ReadWrite> = match parse_endpoint(socket, tcp)? {
        Endpoint::Unix(path) => {
            Box::new(std::os::unix::net::UnixStream::connect(&path).map_err(|e| {
                CliError::new(format!("cannot connect to '{}': {e}", path.display()))
            })?)
        }
        Endpoint::Tcp(addr) => Box::new(
            std::net::TcpStream::connect(&addr)
                .map_err(|e| CliError::new(format!("cannot connect to '{addr}': {e}")))?,
        ),
    };
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| CliError::new(format!("send failed: {e}")))?;

    let mut first = true;
    let mut ok = true;
    loop {
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| CliError::new(format!("read failed: {e}")))?;
        if n == 0 {
            break; // server closed the connection
        }
        print!("{response}");
        let value = mhca_campaign::json::parse(response.trim_end()).ok();
        if first {
            first = false;
            ok = value
                .as_ref()
                .and_then(|v| v.get("ok"))
                .is_some_and(|v| matches!(v, Json::Bool(true)));
            if !streaming || !ok {
                break;
            }
            continue;
        }
        // Watch stream: the terminator is the ok-line carrying "closed".
        if value.as_ref().and_then(|v| v.get("closed")).is_some() {
            break;
        }
    }
    if ok {
        Ok(())
    } else {
        Err(CliError::new(
            "server reported an error (see response above)",
        ))
    }
}

/// The two stream types `client` speaks; `Read + Write` is all it needs.
trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

/// Fails early — with a clear message instead of a mid-campaign I/O error
/// — when the output directory cannot be created or written.
fn ensure_writable(out_dir: &Path) -> Result<(), CliError> {
    fs::create_dir_all(out_dir).map_err(|e| {
        CliError::new(format!(
            "cannot create output directory '{}': {e}",
            out_dir.display()
        ))
    })?;
    let probe = out_dir.join(".write-probe");
    fs::write(&probe, b"")
        .and_then(|()| fs::remove_file(&probe))
        .map_err(|e| {
            CliError::new(format!(
                "output directory '{}' is not writable: {e}",
                out_dir.display()
            ))
        })
}
