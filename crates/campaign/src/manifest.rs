//! Durable campaign manifests: the on-disk record that makes campaigns
//! resumable.
//!
//! A manifest lives at `<out_dir>/manifest.json` and holds the campaign
//! id, the canonical spec (plus its hash), and one record per job with
//! its status, artifact path, and headline metrics. The runner rewrites
//! it after every completed batch (write-temp + rename, so a kill leaves
//! either the old or the new manifest, never a torn one); on restart,
//! jobs recorded `done` — with their artifact still present — are skipped
//! and their metrics reused, so a killed campaign continues where it
//! stopped instead of recomputing finished work.

use crate::json::{self, Json};
use crate::spec::{campaign_json, spec_hash, Job, ScenarioSpec};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Status of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Not yet executed (or executed but not recorded).
    Pending,
    /// Executed; metrics and artifact recorded.
    Done,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Done => "done",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "pending" => Some(JobStatus::Pending),
            "done" => Some(JobStatus::Done),
            _ => None,
        }
    }
}

/// One job's durable record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Scenario name.
    pub scenario: String,
    /// Seed.
    pub seed: u64,
    /// Execution status.
    pub status: JobStatus,
    /// Artifact path relative to the manifest's directory (empty until
    /// the job ran).
    pub artifact: String,
    /// Headline metrics, in emission order.
    pub metrics: Vec<(String, f64)>,
}

impl JobRecord {
    /// A fresh pending record for a job.
    pub fn pending(job: &Job) -> Self {
        JobRecord {
            scenario: job.scenario.clone(),
            seed: job.seed,
            status: JobStatus::Pending,
            artifact: String::new(),
            metrics: Vec::new(),
        }
    }

    /// Stable job identifier (`<scenario>/seed<seed>`).
    pub fn id(&self) -> String {
        format!("{}/seed{}", self.scenario, self.seed)
    }

    /// The record's JSON form — used for both `manifest.json` and the
    /// jobs array of `campaign.json`, so the two cannot diverge.
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::str(&self.scenario)),
            ("seed", Json::Num(self.seed as f64)),
            ("status", Json::str(self.status.as_str())),
            ("artifact", Json::str(&self.artifact)),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let scenario = v
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("job missing scenario")?
            .to_string();
        let seed = v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("job missing seed")?;
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .and_then(JobStatus::parse)
            .ok_or("job missing status")?;
        let artifact = v
            .get("artifact")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let metrics = match v.get("metrics") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|x| (k.clone(), x))
                        .ok_or_else(|| format!("metric {k} is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(JobRecord {
            scenario,
            seed,
            status,
            artifact,
            metrics,
        })
    }
}

/// The durable campaign record.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name.
    pub campaign: String,
    /// FNV-1a hash of the canonical spec JSON (resume guard).
    pub spec_hash: String,
    /// The canonical spec itself, for human inspection.
    pub spec: Json,
    /// Build + host provenance of the session that created the manifest
    /// (`host_threads`, rustc version, git commit), so machine-conditional
    /// numbers in the recorded metrics are self-describing. `Json::Null`
    /// in manifests written before provenance stamping existed — resume
    /// tolerates both.
    pub provenance: Json,
    /// One record per job, in job-matrix order.
    pub jobs: Vec<JobRecord>,
}

/// The current build/host provenance as a JSON object.
pub fn provenance_json() -> Json {
    let p = mhca_telemetry::Provenance::capture();
    Json::obj(vec![
        ("host_threads", Json::Num(p.host_threads as f64)),
        ("rustc", Json::str(p.rustc)),
        ("git_commit", Json::str(p.git_commit)),
    ])
}

impl Manifest {
    /// File name inside a campaign output directory.
    pub const FILE_NAME: &'static str = "manifest.json";

    /// A fresh manifest: every job pending.
    pub fn new(name: &str, scenarios: &[ScenarioSpec], jobs: &[Job]) -> Self {
        Manifest {
            campaign: name.to_string(),
            spec_hash: spec_hash(name, scenarios),
            spec: campaign_json(name, scenarios),
            provenance: provenance_json(),
            jobs: jobs.iter().map(JobRecord::pending).collect(),
        }
    }

    /// The manifest path inside `out_dir`.
    pub fn path_in(out_dir: &Path) -> PathBuf {
        out_dir.join(Self::FILE_NAME)
    }

    /// Renders the manifest as pretty JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("campaign", Json::str(&self.campaign)),
            ("spec_hash", Json::str(&self.spec_hash)),
            ("spec", self.spec.clone()),
            ("provenance", self.provenance.clone()),
            (
                "jobs",
                Json::Arr(self.jobs.iter().map(JobRecord::to_json).collect()),
            ),
        ])
    }

    /// Parses a manifest document.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let campaign = v
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("manifest missing campaign")?
            .to_string();
        let spec_hash = v
            .get("spec_hash")
            .and_then(Json::as_str)
            .ok_or("manifest missing spec_hash")?
            .to_string();
        let spec = v.get("spec").cloned().unwrap_or(Json::Null);
        let provenance = v.get("provenance").cloned().unwrap_or(Json::Null);
        let jobs = v
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or("manifest missing jobs")?
            .iter()
            .map(JobRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Manifest {
            campaign,
            spec_hash,
            spec,
            provenance,
            jobs,
        })
    }

    /// Atomically writes the manifest into `out_dir` (write temp file,
    /// then rename — a kill mid-write never leaves a torn manifest).
    pub fn save(&self, out_dir: &Path) -> io::Result<()> {
        let path = Self::path_in(out_dir);
        let tmp = out_dir.join(format!("{}.tmp", Self::FILE_NAME));
        fs::write(&tmp, self.to_json().to_string_pretty())?;
        fs::rename(&tmp, &path)
    }

    /// Loads the manifest from `out_dir`; `Ok(None)` when absent.
    pub fn load(out_dir: &Path) -> io::Result<Option<Manifest>> {
        let path = Self::path_in(out_dir);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let value = json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Manifest::from_json(&value)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// The record for a job id, if present.
    pub fn record(&self, scenario: &str, seed: u64) -> Option<&JobRecord> {
        self.jobs
            .iter()
            .find(|r| r.scenario == scenario && r.seed == seed)
    }

    /// Mutable record lookup.
    pub fn record_mut(&mut self, scenario: &str, seed: u64) -> Option<&mut JobRecord> {
        self.jobs
            .iter_mut()
            .find(|r| r.scenario == scenario && r.seed == seed)
    }

    /// `true` when the record for this job says `done` **and** its
    /// artifact (if any) still exists under `out_dir` — a deleted
    /// artifact demotes the job to pending so resume regenerates it.
    pub fn is_complete(&self, out_dir: &Path, scenario: &str, seed: u64) -> bool {
        match self.record(scenario, seed) {
            Some(r) if r.status == JobStatus::Done => {
                r.artifact.is_empty() || out_dir.join(&r.artifact).is_file()
            }
            _ => false,
        }
    }

    /// Counts of (done, pending) records.
    pub fn progress(&self) -> (usize, usize) {
        let done = self
            .jobs
            .iter()
            .filter(|r| r.status == JobStatus::Done)
            .count();
        (done, self.jobs.len() - done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::quick_registry;
    use crate::spec::expand_jobs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mhca-campaign-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let scenarios = quick_registry();
        let jobs = expand_jobs(&scenarios);
        let mut manifest = Manifest::new("smoke", &scenarios, &jobs);
        manifest.jobs[0].status = JobStatus::Done;
        manifest.jobs[0].artifact = "fig6-quick/seed61.csv".into();
        manifest.jobs[0].metrics = vec![("final_weight_30x3".into(), 1234.5)];

        let dir = tmp_dir("roundtrip");
        manifest.save(&dir).unwrap();
        let loaded = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, manifest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_stamps_provenance_and_tolerates_its_absence() {
        let scenarios = quick_registry();
        let jobs = expand_jobs(&scenarios);
        let manifest = Manifest::new("smoke", &scenarios, &jobs);
        let p = &manifest.provenance;
        assert!(p.get("host_threads").and_then(Json::as_u64).unwrap() >= 1);
        assert!(!p.get("rustc").and_then(Json::as_str).unwrap().is_empty());
        assert!(!p
            .get("git_commit")
            .and_then(Json::as_str)
            .unwrap()
            .is_empty());

        // Manifests written before provenance stamping existed still
        // load: the field degrades to Null instead of failing resume.
        let Json::Obj(mut pairs) = manifest.to_json() else {
            panic!("manifest JSON must be an object");
        };
        pairs.retain(|(k, _)| k != "provenance");
        let old = Manifest::from_json(&Json::Obj(pairs)).unwrap();
        assert_eq!(old.provenance, Json::Null);
        assert_eq!(old.jobs, manifest.jobs);
    }

    #[test]
    fn load_missing_is_none() {
        let dir = tmp_dir("missing");
        assert!(Manifest::load(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn completion_requires_done_status_and_artifact() {
        let scenarios = quick_registry();
        let jobs = expand_jobs(&scenarios);
        let mut manifest = Manifest::new("smoke", &scenarios, &jobs);
        let dir = tmp_dir("complete");

        // Pending: not complete.
        assert!(!manifest.is_complete(&dir, "fig6-quick", 61));

        // Done with a missing artifact: still not complete.
        {
            let rec = manifest.record_mut("fig6-quick", 61).unwrap();
            rec.status = JobStatus::Done;
            rec.artifact = "fig6-quick/seed61.csv".into();
        }
        assert!(!manifest.is_complete(&dir, "fig6-quick", 61));

        // Artifact present: complete.
        fs::create_dir_all(dir.join("fig6-quick")).unwrap();
        fs::write(dir.join("fig6-quick/seed61.csv"), "x\n").unwrap();
        assert!(manifest.is_complete(&dir, "fig6-quick", 61));

        // Done with no artifact recorded counts as complete (table2-style
        // metric-only jobs).
        {
            let rec = manifest.record_mut("fig6-quick", 62).unwrap();
            rec.status = JobStatus::Done;
        }
        assert!(manifest.is_complete(&dir, "fig6-quick", 62));

        assert_eq!(manifest.progress(), (2, 4));
        fs::remove_dir_all(&dir).unwrap();
    }
}
