//! The scenario registry: every figure/table experiment of the paper's
//! evaluation plus cross-product scenarios along the axes the paper never
//! sweeps (channel families, topology families, loss injection, policy
//! zoo) — the scenario-diversity layer the related large-deviations and
//! sensing-cost studies evaluate over.
//!
//! `registry()` is the full paper-scale catalog; `quick_registry()` is
//! the scaled-down CI smoke set (2 scenarios × 3 seeds).

use crate::spec::{ExperimentKind, ScenarioSpec, SeedRange};
use mhca_channels::ChannelModelSpec;
use mhca_core::experiment::ObserverKind;
use mhca_core::experiments::{
    ComplexityConfig, Fig5Config, Fig6Config, Fig7Config, Fig8Config, PolicyRunConfig, PolicySpec,
    Theorem3Config,
};
use mhca_core::{ArrivalProcess, FlowSpec, TrafficSpec};
use mhca_graph::TopologySpec;
use mhca_sim::LossSpec;

/// The full scenario catalog, in presentation order: first the paper's
/// own evaluation (Figs. 5–8, Table 2, Section IV-C, Theorem 3), then the
/// cross-product scenarios.
pub fn registry() -> Vec<ScenarioSpec> {
    let mut out = vec![
        ScenarioSpec::new(
            "fig5",
            "Fig. 5: linear worst case needs Θ(N) mini-rounds",
            ExperimentKind::Fig5(Fig5Config::default()),
            SeedRange::new(0, 1),
        ),
        ScenarioSpec::new(
            "fig6",
            "Fig. 6: Algorithm 3 convergence over mini-rounds",
            ExperimentKind::Fig6(Fig6Config::default()),
            SeedRange::new(61, 5),
        ),
        // Fig. 7/8 drive Algorithm 2 round loops, so they also stream the
        // decide-phase wall-time and communication observers — metrics no
        // RunResult field carries.
        ScenarioSpec::new(
            "fig7",
            "Fig. 7: practical (β-)regret, Algorithm 2 vs LLR",
            ExperimentKind::Fig7(Fig7Config::default()),
            SeedRange::new(71, 5),
        )
        .with_observers(vec![ObserverKind::DecideTiming, ObserverKind::CommTotals]),
        ScenarioSpec::new(
            "fig8",
            "Fig. 8: throughput under periodic stale-weight updates",
            ExperimentKind::Fig8(Fig8Config::default()),
            SeedRange::new(81, 3),
        )
        .with_observers(vec![ObserverKind::DecideTiming, ObserverKind::CommTotals]),
        ScenarioSpec::new(
            "table2",
            "Table II: time model and derived quantities",
            ExperimentKind::Table2,
            SeedRange::new(0, 1),
        ),
        ScenarioSpec::new(
            "complexity",
            "Section IV-C: measured per-vertex communication/space",
            ExperimentKind::Complexity(ComplexityConfig::default()),
            SeedRange::new(91, 5),
        ),
        ScenarioSpec::new(
            "theorem3",
            "Theorem 3: distributed vs centralized PTAS quality",
            ExperimentKind::Theorem3(Theorem3Config::default()),
            SeedRange::new(0, 3),
        ),
    ];

    // ---- Cross-product scenarios: loss injection on the paper figures.
    out.push(ScenarioSpec::new(
        "fig7-lossy",
        "Fig. 7 under 10% control-channel loss (failure injection)",
        ExperimentKind::Fig7(Fig7Config {
            loss: LossSpec::lossy(0.1, 7),
            ..Fig7Config::default()
        }),
        SeedRange::new(71, 5),
    ));
    out.push(ScenarioSpec::new(
        "fig6-lossy",
        "Fig. 6 convergence under 10% control-channel loss",
        ExperimentKind::Fig6(Fig6Config {
            loss: LossSpec::lossy(0.1, 6),
            ..Fig6Config::default()
        }),
        SeedRange::new(61, 5),
    ));

    // ---- Channel-model axis: same planning problem, different dynamics.
    for (suffix, channel) in [
        (
            "adv-sinusoidal",
            ChannelModelSpec::AdversarialSinusoidal {
                amp_frac: 0.3,
                period: 50,
            },
        ),
        (
            "adv-switching",
            ChannelModelSpec::AdversarialSwitching {
                swing_frac: 0.5,
                dwell: 25,
            },
        ),
        (
            "bernoulli",
            ChannelModelSpec::BernoulliRateClasses { p: 0.5 },
        ),
    ] {
        out.push(
            ScenarioSpec::new(
                format!("duel-{suffix}"),
                format!("CS-UCB vs LLR head-to-head on {suffix} channels"),
                ExperimentKind::PolicyDuel {
                    base: PolicyRunConfig {
                        channel,
                        horizon: 800,
                        ..PolicyRunConfig::default()
                    },
                    challenger: PolicySpec::Llr { l: 2.0 },
                },
                SeedRange::new(0, 5),
            )
            .with_observers(vec![ObserverKind::CommTotals]),
        );
    }

    // ---- Topology axis: the decision protocol off the unit-disk family.
    for (suffix, topology, n, m) in [
        ("line", TopologySpec::Line, 40, 3),
        ("grid", TopologySpec::Grid, 49, 4),
        ("complete", TopologySpec::Complete, 12, 4),
    ] {
        out.push(
            ScenarioSpec::new(
                format!("topology-{suffix}"),
                format!("CS-UCB on a {suffix} conflict graph"),
                ExperimentKind::PolicyRun(PolicyRunConfig {
                    n,
                    m,
                    topology,
                    horizon: 500,
                    ..PolicyRunConfig::default()
                }),
                SeedRange::new(0, 5),
            )
            .with_observers(vec![ObserverKind::PerVertexTx]),
        );
    }

    // ---- Policy axis: the zoo beyond the paper's CS-UCB/LLR pair.
    for policy in [
        PolicySpec::Thompson { sigma: 0.1 },
        PolicySpec::EpsilonGreedy { eps: 0.05 },
        PolicySpec::Oracle,
    ] {
        out.push(
            ScenarioSpec::new(
                format!("policy-{}", policy.label()),
                format!("{} on the Fig. 7-style workload", policy.label()),
                ExperimentKind::PolicyRun(PolicyRunConfig {
                    policy,
                    horizon: 800,
                    ..PolicyRunConfig::default()
                }),
                SeedRange::new(0, 5),
            )
            .with_observers(vec![
                ObserverKind::CommTotals,
                ObserverKind::PerVertexTx,
                ObserverKind::Throughput,
            ]),
        );
    }

    // ---- Drifting-channel scenarios: piecewise-stationary mean shifts
    // at declared breakpoints, measured with the windowed-regret observer
    // (the per-window regret re-grows after every breakpoint — the
    // stationarity assumption of the CS-UCB guarantees, bent on purpose).
    let drift = ChannelModelSpec::Drifting {
        shift_frac: 0.5,
        breakpoints: vec![500, 1000],
        ramp: 0,
    };
    for (suffix, policy) in [
        ("regret", PolicySpec::CsUcb { l: 2.0 }),
        ("thompson", PolicySpec::Thompson { sigma: 0.1 }),
        ("oracle", PolicySpec::Oracle),
    ] {
        out.push(
            ScenarioSpec::new(
                format!("drift-{suffix}"),
                format!(
                    "{} under piecewise-stationary drift (breaks at 500, 1000)",
                    policy.label()
                ),
                ExperimentKind::PolicyRun(PolicyRunConfig {
                    channel: drift.clone(),
                    policy,
                    horizon: 1500,
                    ..PolicyRunConfig::default()
                }),
                SeedRange::new(0, 5),
            )
            .with_observers(vec![
                ObserverKind::WindowedRegret { window: 250 },
                ObserverKind::CommTotals,
            ]),
        );
    }

    // ---- Adversarial-capture sweep: a full-swing square wave (rates hit
    // zero in the low phase), tallied per channel by CaptureStats.
    out.push(
        ScenarioSpec::new(
            "capture-adversarial",
            "CS-UCB vs a full-swing on/off adversary, per-channel capture tallies",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                channel: ChannelModelSpec::AdversarialSwitching {
                    swing_frac: 1.0,
                    dwell: 40,
                },
                horizon: 800,
                ..PolicyRunConfig::default()
            }),
            SeedRange::new(0, 5),
        )
        .with_observers(vec![ObserverKind::CaptureStats, ObserverKind::Throughput]),
    );

    // ---- Large-N scaling: the partition-parallel decide on a network
    // an order of magnitude past the rest of the catalog. r = 1 and a
    // short horizon keep the (2r+1)-ball tables and the round count
    // affordable; CommTotals surfaces the table→BFS fallback counter so
    // a capped flood engine cannot degrade silently.
    out.push(
        ScenarioSpec::new(
            "large-n",
            "CS-UCB at N=2000 with the partition-parallel (4-tile) decide",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                n: 2000,
                m: 2,
                r: 1,
                horizon: 40,
                update_period: 10,
                partitions: 4,
                ..PolicyRunConfig::default()
            }),
            SeedRange::new(0, 3),
        )
        .with_observers(vec![ObserverKind::CommTotals, ObserverKind::DecideTiming]),
    );

    // ---- Sensing-cost sweep: the limited-sensing budget accounting on
    // the paper's stochastic workload.
    out.push(
        ScenarioSpec::new(
            "sensing-cost",
            "CS-UCB sensing/probe budget under the Yun-style cost model",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                horizon: 800,
                ..PolicyRunConfig::default()
            }),
            SeedRange::new(0, 5),
        )
        .with_observers(vec![
            ObserverKind::SensingCost {
                probe_cost: 1.0,
                report_cost: 0.1,
            },
            ObserverKind::Throughput,
        ]),
    );

    // ---- Traffic/queueing scenarios: flows with per-vertex FIFO queues
    // served by the channel-access outcome, so throughput claims become
    // flow-level delay claims. Fixed topologies (line/grid) keep every
    // flow routable at every seed; FlowDelay + QueueTail surface the
    // delay tail and backlog distribution per seed.
    out.push(
        ScenarioSpec::new(
            "traffic-poisson-light",
            "Poisson flows at light load on a line: delay tails near service time",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                n: 20,
                m: 3,
                topology: TopologySpec::Line,
                horizon: 600,
                traffic: Some(TrafficSpec::poisson(
                    0.15,
                    vec![
                        FlowSpec {
                            src: 0,
                            dst: 6,
                            deadline: Some(40),
                        },
                        FlowSpec {
                            src: 12,
                            dst: 3,
                            deadline: None,
                        },
                    ],
                )),
                ..PolicyRunConfig::default()
            }),
            SeedRange::new(0, 5),
        )
        .with_observers(vec![
            ObserverKind::FlowDelay,
            ObserverKind::QueueTail { bound: 32 },
        ]),
    );
    out.push(
        ScenarioSpec::new(
            "traffic-poisson-heavy",
            "Poisson flows past saturation: backlog growth and overflow tallies",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                n: 20,
                m: 3,
                topology: TopologySpec::Line,
                horizon: 600,
                traffic: Some(TrafficSpec::poisson(
                    0.9,
                    vec![
                        FlowSpec {
                            src: 0,
                            dst: 6,
                            deadline: Some(40),
                        },
                        FlowSpec {
                            src: 12,
                            dst: 3,
                            deadline: None,
                        },
                    ],
                )),
                ..PolicyRunConfig::default()
            }),
            SeedRange::new(0, 5),
        )
        .with_observers(vec![
            ObserverKind::FlowDelay,
            ObserverKind::QueueTail { bound: 64 },
        ]),
    );
    out.push(
        ScenarioSpec::new(
            "traffic-deadline-duel",
            "CS-UCB vs LLR ranked by deadline-constrained delay utility",
            ExperimentKind::PolicyDuel {
                base: PolicyRunConfig {
                    n: 16,
                    m: 3,
                    topology: TopologySpec::Line,
                    horizon: 600,
                    traffic: Some(TrafficSpec::poisson(
                        0.4,
                        vec![
                            FlowSpec {
                                src: 0,
                                dst: 5,
                                deadline: Some(30),
                            },
                            FlowSpec {
                                src: 10,
                                dst: 2,
                                deadline: Some(30),
                            },
                        ],
                    )),
                    ..PolicyRunConfig::default()
                },
                challenger: PolicySpec::Llr { l: 2.0 },
            },
            SeedRange::new(0, 5),
        )
        .with_observers(vec![
            ObserverKind::FlowDelay,
            ObserverKind::QueueTail { bound: 32 },
        ]),
    );
    out.push(
        ScenarioSpec::new(
            "traffic-bursty",
            "Bursty arrivals on a grid: tail blowup at equal mean load",
            ExperimentKind::PolicyRun(PolicyRunConfig {
                n: 49,
                m: 4,
                topology: TopologySpec::Grid,
                horizon: 600,
                traffic: Some(TrafficSpec {
                    arrivals: ArrivalProcess::Bursty {
                        rate: 0.3,
                        burst: 8,
                    },
                    flows: vec![
                        FlowSpec {
                            src: 0,
                            dst: 48,
                            deadline: Some(80),
                        },
                        FlowSpec {
                            src: 42,
                            dst: 6,
                            deadline: None,
                        },
                    ],
                    packet_kbps: 100.0,
                    seed: 0,
                }),
                ..PolicyRunConfig::default()
            }),
            SeedRange::new(0, 5),
        )
        .with_observers(vec![
            ObserverKind::FlowDelay,
            ObserverKind::QueueTail { bound: 64 },
        ]),
    );

    out
}

/// The CI smoke catalog: 2 scaled-down scenarios × 3 seeds, small enough
/// for a debug-build test run.
pub fn quick_registry() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new(
            "fig6-quick",
            "Fig. 6 convergence (scaled down)",
            ExperimentKind::Fig6(Fig6Config::quick()),
            SeedRange::new(61, 3),
        ),
        // A deterministic observer (comm totals, unlike wall-clock
        // timing) so the CI smoke exercises the streaming pipeline while
        // parallel and serial campaigns stay byte-identical.
        ScenarioSpec::new(
            "fig7-quick",
            "Fig. 7 regret vs LLR (scaled down)",
            ExperimentKind::Fig7(Fig7Config::quick()),
            SeedRange::new(71, 3),
        )
        .with_observers(vec![ObserverKind::CommTotals]),
    ]
}

/// Looks a scenario up by name in both catalogs (full first).
pub fn find(name: &str) -> Option<ScenarioSpec> {
    registry()
        .into_iter()
        .chain(quick_registry())
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_paper_evaluation() {
        let names: Vec<String> = registry().into_iter().map(|s| s.name).collect();
        for required in [
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table2",
            "complexity",
            "theorem3",
        ] {
            assert!(names.contains(&required.to_string()), "missing {required}");
        }
        assert!(names.len() >= 15, "expected a rich catalog, got {names:?}");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = registry()
            .into_iter()
            .chain(quick_registry())
            .map(|s| s.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn quick_registry_is_the_ci_smoke_shape() {
        let quick = quick_registry();
        assert_eq!(quick.len(), 2);
        assert!(quick.iter().all(|s| s.seeds.count == 3));
    }

    #[test]
    fn find_resolves_both_catalogs() {
        assert!(find("fig8").is_some());
        assert!(find("fig6-quick").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn traffic_scenarios_carry_flows_and_tail_observers() {
        for name in [
            "traffic-poisson-light",
            "traffic-poisson-heavy",
            "traffic-deadline-duel",
            "traffic-bursty",
        ] {
            let s = find(name).unwrap_or_else(|| panic!("missing {name}"));
            let cfg = match &s.kind {
                ExperimentKind::PolicyRun(cfg) => cfg,
                ExperimentKind::PolicyDuel { base, .. } => base,
                other => panic!("{name} has wrong kind {other:?}"),
            };
            let traffic = cfg
                .traffic
                .as_ref()
                .unwrap_or_else(|| panic!("{name} carries no traffic"));
            assert!(!traffic.flows.is_empty(), "{name} has no flows");
            for f in &traffic.flows {
                assert!(f.src < cfg.n && f.dst < cfg.n, "{name} endpoint range");
            }
            let labels: Vec<&str> = s.observers.iter().map(|o| o.label()).collect();
            assert!(labels.contains(&"flow-delay"), "{name}: {labels:?}");
            assert!(labels.contains(&"queue-tail"), "{name}: {labels:?}");
        }
    }

    #[test]
    fn multi_seed_scenarios_cover_fig6_fig7_fig8() {
        for name in ["fig6", "fig7", "fig8"] {
            let s = find(name).unwrap();
            assert!(s.seeds.count > 1, "{name} must aggregate across seeds");
        }
    }
}
