//! The campaign runner: expands scenario specs into a job matrix,
//! executes pending jobs on a bounded worker pool that spans the **whole
//! matrix** (not just seeds within one scenario — a heterogeneous catalog
//! keeps every worker busy), streams per-seed figure CSV artifacts,
//! aggregates metrics across seeds, and keeps the durable manifest
//! current so an interrupted campaign resumes without re-executing
//! completed jobs.
//!
//! Layout of a campaign output directory:
//!
//! ```text
//! <out_dir>/
//!   manifest.json             durable job ledger (resume state)
//!   campaign.csv              long-format per-job metrics (scenario,seed,metric,value)
//!   campaign.json             everything: spec, per-job metrics, aggregates
//!   <scenario>/seed<k>.csv    per-seed figure artifact (mhca_bench::report)
//!   <scenario>/summary.csv    per-metric aggregate across seeds
//! ```

use crate::json::Json;
use crate::manifest::{JobStatus, Manifest};
use crate::spec::{expand_jobs, spec_hash, ScenarioSpec};
use mhca_bench::csv::CsvWriter;
use mhca_core::sweep::{for_each_bounded, Aggregate};
use mhca_telemetry::{
    EventKind, FieldValue, JsonlSink, ProgressSnapshot, ProgressTracker, Telemetry,
};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Campaign execution parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign name (recorded in the manifest; part of the spec hash).
    pub name: String,
    /// Output directory (created if absent).
    pub out_dir: PathBuf,
    /// Ordered scenario list.
    pub scenarios: Vec<ScenarioSpec>,
    /// Run pending jobs in parallel (`false` forces strictly in-order
    /// serial execution). Artifacts and all deterministic metrics are
    /// identical at any worker count; only wall-clock observer metrics
    /// (e.g. `decide-timing:*`, attached to some registry scenarios)
    /// vary between runs, parallel or not.
    pub parallel: bool,
    /// Worker-thread bound across the whole job matrix (`None` = one per
    /// available core). Ignored when `parallel` is off.
    pub jobs: Option<usize>,
    /// Start fresh when an existing manifest was written for a different
    /// spec (default: refuse, so a typo cannot silently discard results).
    pub force: bool,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
    /// Write structured telemetry (`events.jsonl` in the out-dir:
    /// campaign/scenario/job spans, per-phase latency histograms,
    /// incremental observer counters, failure events). Artifacts are
    /// byte-identical with tracing on or off — the standing contract.
    pub trace: bool,
    /// Emit live progress heartbeats (jobs-done/total, rounds/sec, ETA)
    /// on stderr, plus a `progress.json` snapshot in the out-dir.
    pub progress: bool,
}

impl CampaignConfig {
    /// Config with the defaults: parallel on all cores, not forced, not
    /// quiet.
    pub fn new(
        name: impl Into<String>,
        out_dir: impl Into<PathBuf>,
        scenarios: Vec<ScenarioSpec>,
    ) -> Self {
        CampaignConfig {
            name: name.into(),
            out_dir: out_dir.into(),
            scenarios,
            parallel: true,
            jobs: None,
            force: false,
            quiet: false,
            trace: false,
            progress: false,
        }
    }

    /// The effective worker count: 1 when serial, else the `jobs` bound
    /// (or every available core).
    pub fn workers(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        self.jobs.unwrap_or_else(available_cores).max(1)
    }
}

/// Available cores (1 if the query fails).
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One executed job: `(seed, rendered artifact bytes, headline metrics)`.
type JobResult = (u64, Vec<u8>, Vec<(String, f64)>);

/// Aggregates of one scenario's metrics across its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: String,
    /// Per-metric aggregate, in first-seed emission order.
    pub aggregates: Vec<(String, Aggregate)>,
}

/// What a campaign run did.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Jobs executed in this invocation.
    pub executed: usize,
    /// Jobs skipped because the manifest already recorded them done.
    pub skipped: usize,
    /// The final manifest (also on disk).
    pub manifest: Manifest,
    /// Cross-seed aggregates per scenario.
    pub summaries: Vec<ScenarioSummary>,
}

/// Runs (or resumes) a campaign. See the module docs for the output
/// layout and `Manifest` for the resume rules.
///
/// # Errors
///
/// I/O errors from the output directory, plus `InvalidInput` when an
/// existing manifest belongs to a different spec and `force` is off.
pub fn run(cfg: &CampaignConfig) -> io::Result<CampaignOutcome> {
    // Graceful interrupt: SIGINT/SIGTERM raise a flag the commit loop
    // polls between jobs. The campaign then checkpoints the manifest and
    // returns `Interrupted` instead of dying mid-write — a rerun resumes
    // from exactly the committed jobs.
    mhca_service::signals::install();
    fs::create_dir_all(&cfg.out_dir)?;
    let jobs = expand_jobs(&cfg.scenarios);
    let hash = spec_hash(&cfg.name, &cfg.scenarios);

    let mut manifest = match Manifest::load(&cfg.out_dir)? {
        Some(existing) if existing.spec_hash == hash => {
            let (done, pending) = existing.progress();
            progress(
                cfg,
                &format!(
                    "resuming campaign '{}': {done} jobs done, {pending} pending",
                    cfg.name
                ),
            );
            existing
        }
        Some(existing) if !cfg.force => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "manifest in {} belongs to campaign '{}' (spec hash {}), \
                     not '{}' (spec hash {hash}); pass force to overwrite",
                    cfg.out_dir.display(),
                    existing.campaign,
                    existing.spec_hash,
                    cfg.name
                ),
            ));
        }
        _ => Manifest::new(&cfg.name, &cfg.scenarios, &jobs),
    };

    // Defensive backfill: the spec hash guarantees a matching manifest
    // was created from this exact job matrix, but manifests are plain
    // JSON a human may hand-edit or truncate — missing records become
    // pending rather than panicking in the commit loop below.
    for job in &jobs {
        if manifest.record(&job.scenario, job.seed).is_none() {
            manifest.jobs.push(crate::manifest::JobRecord::pending(job));
        }
    }
    manifest.save(&cfg.out_dir)?;

    // ---- Telemetry. Opened only after the manifest accepted the spec,
    // and in append mode: a resumed campaign's trace accumulates across
    // sessions exactly like the manifest, so job spans from an
    // interrupted run plus its resume sum to the whole campaign. The
    // handle is disabled without `--trace`: every emission below is then
    // a branch, and the job path is exactly the untraced one.
    let telemetry = if cfg.trace {
        Telemetry::from_sink(Box::new(JsonlSink::append(
            &cfg.out_dir.join("events.jsonl"),
        )?))
    } else {
        Telemetry::disabled()
    };
    let campaign_span = telemetry.span("campaign");
    telemetry.event(
        EventKind::Gauge,
        "campaign.meta",
        &[
            ("name", FieldValue::Str(&cfg.name)),
            ("spec_hash", FieldValue::Str(&hash)),
            ("workers", FieldValue::U64(cfg.workers() as u64)),
        ],
    );

    // ---- Build the pending work list across the whole matrix, in
    // matrix order (scenario-major, seed-minor).
    let mut pending: Vec<(usize, u64)> = Vec::new();
    let mut remaining_per_scenario = vec![0usize; cfg.scenarios.len()];
    let mut scenario_spans: Vec<Option<mhca_telemetry::Span>> =
        (0..cfg.scenarios.len()).map(|_| None).collect();
    let mut skipped = 0;
    for (idx, scenario) in cfg.scenarios.iter().enumerate() {
        let todo: Vec<u64> = scenario
            .seeds
            .iter()
            .filter(|&seed| !manifest.is_complete(&cfg.out_dir, &scenario.name, seed))
            .collect();
        skipped += scenario.seeds.count as usize - todo.len();
        if todo.is_empty() {
            progress(cfg, &format!("{}: all seeds already done", scenario.name));
            continue;
        }
        fs::create_dir_all(cfg.out_dir.join(&scenario.name))?;
        remaining_per_scenario[idx] = todo.len();
        scenario_spans[idx] = Some(telemetry.with_scope(&scenario.name).span("scenario"));
        pending.extend(todo.into_iter().map(|seed| (idx, seed)));
    }

    let workers = cfg.workers().min(pending.len().max(1));
    if !pending.is_empty() {
        progress(
            cfg,
            &format!(
                "running {} pending job(s) across {} scenario(s) on {} worker(s)",
                pending.len(),
                remaining_per_scenario.iter().filter(|&&n| n > 0).count(),
                workers
            ),
        );
    }

    // ---- Execute on the bounded pool spanning all scenarios, committing
    // each artifact + manifest record on this thread as results stream
    // in. The manifest checkpoints whenever a scenario's last pending job
    // lands, and at least every `CHECKPOINT_EVERY` commits — so a killed
    // thousand-seed single-scenario campaign still resumes with at most a
    // handful of jobs to redo.
    const CHECKPOINT_EVERY: usize = 16;
    let scenarios = &cfg.scenarios;
    let mut executed = 0;
    let mut commits_since_save = 0usize;
    let mut first_error: Option<io::Error> = None;
    let mut interrupted = false;
    let mut tracker = ProgressTracker::new(
        manifest.jobs.len(),
        manifest.jobs.len() - pending.len(),
        Duration::from_secs(2),
    );
    heartbeat(cfg, &telemetry, &mut tracker);
    for_each_bounded(
        pending,
        workers,
        |_, (idx, seed)| -> ((usize, u64), io::Result<JobResult>) {
            let scenario = &scenarios[idx];
            let mut buffer = Vec::new();
            // Job scope "<scenario>/seed<k>": every event the run emits
            // (phase histograms, incremental counters) carries its origin.
            let job_telemetry = telemetry.with_scope(&format!("{}/seed{seed}", scenario.name));
            let span = job_telemetry.span("job");
            let result = scenario
                .run_job_traced(seed, &mut buffer, &job_telemetry)
                .map(|metrics| (seed, buffer, metrics));
            span.end_with(&[(
                "status",
                FieldValue::Str(if result.is_ok() { "ok" } else { "error" }),
            )]);
            ((idx, seed), result)
        },
        |_, ((idx, seed), result)| {
            let scenario = &scenarios[idx];
            let commit = result.and_then(|(seed, buffer, metrics)| {
                let rel = format!("{}/seed{}.csv", scenario.name, seed);
                fs::write(cfg.out_dir.join(&rel), &buffer)?;
                tracker.job_done(rounds_of(&metrics));
                let record = manifest
                    .record_mut(&scenario.name, seed)
                    .expect("record exists for every job");
                record.status = JobStatus::Done;
                record.artifact = rel;
                record.metrics = metrics;
                executed += 1;
                commits_since_save += 1;
                remaining_per_scenario[idx] -= 1;
                if remaining_per_scenario[idx] == 0 {
                    progress(cfg, &format!("{}: all seeds done", scenario.name));
                    if let Some(span) = scenario_spans[idx].take() {
                        span.end_with(&[("jobs", FieldValue::U64(scenario.seeds.count))]);
                    }
                }
                if remaining_per_scenario[idx] == 0 || commits_since_save >= CHECKPOINT_EVERY {
                    manifest.save(&cfg.out_dir)?;
                    commits_since_save = 0;
                }
                heartbeat(cfg, &telemetry, &mut tracker);
                Ok(())
            });
            match commit {
                // A signal between commits cancels the remaining matrix;
                // the just-committed job is already durable (or will be
                // in the checkpoint below), so nothing recomputes.
                Ok(()) if mhca_service::signals::shutdown_requested() => {
                    interrupted = true;
                    false
                }
                Ok(()) => true,
                Err(e) => {
                    telemetry
                        .with_scope(&scenario.name)
                        .error("job", &format!("seed {seed} failed: {e}"));
                    first_error = Some(io::Error::new(
                        e.kind(),
                        format!("job {}/seed{seed}: {e}", scenario.name),
                    ));
                    false // cancel remaining work
                }
            }
        },
    );
    if let Some(e) = first_error {
        // Checkpoint what completed before surfacing the failure, so a
        // rerun resumes instead of recomputing. Flush telemetry so the
        // failure event (and everything before it) is on disk.
        let _ = manifest.save(&cfg.out_dir);
        drop(scenario_spans);
        campaign_span.end_with(&[("status", FieldValue::Str("error"))]);
        telemetry.flush();
        return Err(e);
    }
    if interrupted {
        // Same checkpoint discipline for SIGINT/SIGTERM: flush the
        // manifest and the trace, then exit with `Interrupted` so the
        // shell sees a non-zero status. Rerunning the identical command
        // resumes from the checkpoint.
        manifest.save(&cfg.out_dir)?;
        let (done, still_pending) = manifest.progress();
        progress(
            cfg,
            &format!("interrupted: manifest checkpointed ({done} done, {still_pending} pending)"),
        );
        drop(scenario_spans);
        campaign_span.end_with(&[("status", FieldValue::Str("interrupted"))]);
        telemetry.flush();
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "interrupted by signal; manifest checkpointed — rerun to resume",
        ));
    }

    // ---- Aggregation and campaign-level artifacts.
    let summaries = summarize(&manifest, &cfg.scenarios);
    write_campaign_csv(&cfg.out_dir, &manifest)?;
    for summary in &summaries {
        write_summary_csv(&cfg.out_dir, summary)?;
    }
    write_campaign_json(&cfg.out_dir, &manifest, &summaries)?;
    manifest.save(&cfg.out_dir)?;
    // Final heartbeat (always due at completion) + campaign span close.
    heartbeat(cfg, &telemetry, &mut tracker);
    campaign_span.end_with(&[
        ("status", FieldValue::Str("ok")),
        ("executed", FieldValue::U64(executed as u64)),
        ("skipped", FieldValue::U64(skipped as u64)),
    ]);
    telemetry.flush();
    progress(
        cfg,
        &format!(
            "campaign '{}' complete: {executed} executed, {skipped} skipped, artifacts in {}",
            cfg.name,
            cfg.out_dir.display()
        ),
    );

    Ok(CampaignOutcome {
        executed,
        skipped,
        manifest,
        summaries,
    })
}

fn progress(cfg: &CampaignConfig, message: &str) {
    if !cfg.quiet {
        eprintln!("[mhca-campaign] {message}");
    }
}

/// Decision rounds a finished job executed, for the rounds/sec heartbeat
/// rate: the first `decisions` metric row (headline or observer-prefixed,
/// e.g. `comm-totals:decisions`), 0 when the scenario tracks none.
fn rounds_of(metrics: &[(String, f64)]) -> u64 {
    metrics
        .iter()
        .find(|(name, _)| name == "decisions" || name.ends_with(":decisions"))
        .map(|&(_, v)| v.max(0.0) as u64)
        .unwrap_or(0)
}

/// Rate-limited progress emission: a stderr line under `--progress`, a
/// `progress.json` snapshot plus a `progress` telemetry event whenever
/// either progress or tracing is on. The tracker guarantees the first and
/// last heartbeats always fire, so even sub-second campaigns leave one.
fn heartbeat(cfg: &CampaignConfig, telemetry: &Telemetry, tracker: &mut ProgressTracker) {
    if !cfg.progress && !cfg.trace {
        return;
    }
    if !tracker.should_emit() {
        return;
    }
    let snapshot = tracker.snapshot();
    if cfg.progress && !cfg.quiet {
        eprintln!("[mhca-campaign] {}", snapshot.heartbeat_line());
    }
    write_progress_json(&cfg.out_dir, &snapshot);
    telemetry.event(
        EventKind::Progress,
        "heartbeat",
        &[
            ("done", FieldValue::U64(snapshot.done as u64)),
            ("total", FieldValue::U64(snapshot.total as u64)),
            ("jobs_per_s", FieldValue::F64(snapshot.jobs_per_s)),
            ("rounds_per_s", FieldValue::F64(snapshot.rounds_per_s)),
            ("eta_s", FieldValue::F64(snapshot.eta_s.unwrap_or(f64::NAN))),
        ],
    );
}

/// Best-effort `progress.json` write (a failed snapshot must not fail the
/// campaign).
fn write_progress_json(out_dir: &Path, snapshot: &ProgressSnapshot) {
    let mut body = snapshot.to_json();
    body.push('\n');
    let _ = fs::write(out_dir.join("progress.json"), body);
}

/// Cross-seed aggregation from the manifest's per-job metrics (done jobs
/// only), preserving each scenario's metric emission order.
pub fn summarize(manifest: &Manifest, scenarios: &[ScenarioSpec]) -> Vec<ScenarioSummary> {
    scenarios
        .iter()
        .map(|scenario| {
            let mut order: Vec<String> = Vec::new();
            let mut samples: Vec<(String, Vec<f64>)> = Vec::new();
            for seed in scenario.seeds.iter() {
                let Some(record) = manifest.record(&scenario.name, seed) else {
                    continue;
                };
                if record.status != JobStatus::Done {
                    continue;
                }
                for (metric, value) in &record.metrics {
                    match samples.iter_mut().find(|(name, _)| name == metric) {
                        Some((_, xs)) => xs.push(*value),
                        None => {
                            order.push(metric.clone());
                            samples.push((metric.clone(), vec![*value]));
                        }
                    }
                }
            }
            let aggregates = order
                .iter()
                .map(|metric| {
                    let xs = &samples
                        .iter()
                        .find(|(name, _)| name == metric)
                        .expect("ordered metric has samples")
                        .1;
                    (metric.clone(), Aggregate::from_samples(xs))
                })
                .collect();
            ScenarioSummary {
                name: scenario.name.clone(),
                aggregates,
            }
        })
        .collect()
}

/// `campaign.csv`: every done job's metrics in long format.
fn write_campaign_csv(out_dir: &Path, manifest: &Manifest) -> io::Result<()> {
    let file = fs::File::create(out_dir.join("campaign.csv"))?;
    let mut w = CsvWriter::new(io::BufWriter::new(file));
    w.row(&["scenario", "seed", "metric", "value"])?;
    for record in &manifest.jobs {
        if record.status != JobStatus::Done {
            continue;
        }
        for (metric, value) in &record.metrics {
            w.row(&[
                record.scenario.clone(),
                record.seed.to_string(),
                metric.clone(),
                format!("{value}"),
            ])?;
        }
    }
    Ok(())
}

/// `<scenario>/summary.csv`: mean ± std-dev per metric across seeds.
fn write_summary_csv(out_dir: &Path, summary: &ScenarioSummary) -> io::Result<()> {
    let dir = out_dir.join(&summary.name);
    fs::create_dir_all(&dir)?;
    let file = fs::File::create(dir.join("summary.csv"))?;
    let mut w = CsvWriter::new(io::BufWriter::new(file));
    w.row(&["metric", "runs", "mean", "std_dev", "min", "max"])?;
    for (metric, agg) in &summary.aggregates {
        w.row(&[
            metric.clone(),
            agg.runs.to_string(),
            format!("{}", agg.mean),
            format!("{}", agg.std_dev),
            format!("{}", agg.min),
            format!("{}", agg.max),
        ])?;
    }
    Ok(())
}

/// `campaign.json`: spec, per-job metrics, and aggregates in one document
/// (emitted by the hand-rolled `json` module — vendored serde is
/// marker-only).
fn write_campaign_json(
    out_dir: &Path,
    manifest: &Manifest,
    summaries: &[ScenarioSummary],
) -> io::Result<()> {
    let jobs = Json::Arr(
        manifest
            .jobs
            .iter()
            .map(|record| record.to_json())
            .collect(),
    );
    let aggregates = Json::Arr(
        summaries
            .iter()
            .map(|summary| {
                Json::obj(vec![
                    ("scenario", Json::str(&summary.name)),
                    (
                        "metrics",
                        Json::Obj(
                            summary
                                .aggregates
                                .iter()
                                .map(|(metric, agg)| {
                                    (
                                        metric.clone(),
                                        Json::obj(vec![
                                            ("runs", Json::Num(agg.runs as f64)),
                                            ("mean", Json::Num(agg.mean)),
                                            ("std_dev", Json::Num(agg.std_dev)),
                                            ("min", Json::Num(agg.min)),
                                            ("max", Json::Num(agg.max)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let doc = Json::obj(vec![
        ("campaign", Json::str(&manifest.campaign)),
        ("spec_hash", Json::str(&manifest.spec_hash)),
        ("spec", manifest.spec.clone()),
        ("jobs", jobs),
        ("aggregates", aggregates),
    ]);
    fs::write(out_dir.join("campaign.json"), doc.to_string_pretty())
}
