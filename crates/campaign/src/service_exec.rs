//! The campaign's [`Executor`] implementation — what `mhca-campaign
//! serve` hands to the service supervisor.
//!
//! The service crate sits below this one and knows nothing about
//! networks or policies; this module closes the loop. Scenario documents
//! arrive as JSON (the same shape `--scenario-file` ingests), and each
//! seed runs in one of two modes:
//!
//! * **Steppable** (`policy-run`): the seed is driven through
//!   [`PolicyRunner`] one decision period at a time, polling
//!   [`JobCtrl`] between periods. A checkpoint serializes the complete
//!   learner state — policy indices, arm statistics, the RNG stream
//!   position, the round counter, and every registered observer — via
//!   the exact codec in `mhca_service::checkpoint`, so a resumed seed
//!   finishes byte-identical to an uninterrupted one (metrics *and*
//!   rendered artifact; pinned by `tests/service_resume.rs`).
//! * **Opaque** (every other kind): the seed runs to completion through
//!   the same [`run_job_traced`](ScenarioSpec::run_job_traced) path the
//!   batch runner uses. [`JobCtrl`] is polled once at the start; a
//!   mid-seed checkpoint records [`Json::Null`] and resume restarts the
//!   seed (they are minutes-scale at worst, and deterministic).
//!
//! The steppable path replicates the engine's metric emission and
//! artifact rendering exactly (same order, same sections), so a
//! service-run seed and a batch-run seed produce identical bytes.

use crate::ingest;
use crate::json::Json;
use crate::spec::{ExperimentKind, ScenarioSpec};
use mhca_bench::report;
use mhca_core::{
    Algorithm2Config, DistributedPtasConfig, ExperimentData, MetricTable, Network, ObserverSet,
    PolicyRunConfig, PolicyRunner,
};
use mhca_service::checkpoint::{
    state_map_from_json, state_map_to_json, u64_from_json, u64_to_json,
};
use mhca_service::{Directive, Executor, JobCtrl, JobOutput, JobPlan, JobProgress};
use mhca_telemetry::Telemetry;

/// Version tag of the mid-seed checkpoint document.
pub const CHECKPOINT_FORMAT: &str = "mhca-checkpoint-v1";

/// Executes campaign scenarios on behalf of the resident service.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServiceExecutor;

fn parse_scenario(scenario: &Json) -> Result<ScenarioSpec, String> {
    ingest::scenario_from_json(scenario, "submit").map_err(|e| e.to_string())
}

impl Executor for ServiceExecutor {
    fn validate(&self, scenario: &Json) -> Result<JobPlan, String> {
        let spec = parse_scenario(scenario)?;
        Ok(JobPlan {
            name: spec.name.clone(),
            kind: spec.kind.tag().to_string(),
            seeds: spec.seeds.iter().collect(),
            steppable: matches!(spec.kind, ExperimentKind::PolicyRun(_)),
        })
    }

    fn run_seed(
        &self,
        scenario: &Json,
        seed: u64,
        resume_from: Option<&Json>,
        telemetry: &Telemetry,
        ctrl: &mut dyn JobCtrl,
    ) -> Result<Option<JobOutput>, String> {
        let spec = parse_scenario(scenario)?;
        match &spec.kind {
            ExperimentKind::PolicyRun(cfg) => {
                run_steppable_seed(&spec, cfg, seed, resume_from, telemetry, ctrl)
            }
            _ => run_opaque_seed(&spec, seed, telemetry, ctrl),
        }
    }
}

/// Serializes the complete mid-seed state: the runner's snapshot (which
/// nests the policy's learner state and the RNG stream position) plus
/// every observer's accumulated state.
fn snapshot_json(
    seed: u64,
    runner: &PolicyRunner<'_>,
    policy: &dyn mhca_bandit::policies::IndexPolicy,
    observers: &ObserverSet,
) -> Json {
    Json::obj(vec![
        ("format", Json::Str(CHECKPOINT_FORMAT.to_string())),
        ("kind", Json::Str("policy-run".to_string())),
        ("seed", u64_to_json(seed)),
        ("slot", u64_to_json(runner.slot())),
        ("runner", state_map_to_json(&runner.snapshot(policy))),
        ("observers", state_map_to_json(&observers.snapshot_states())),
    ])
}

fn restore_from_json(
    state: &Json,
    seed: u64,
    runner: &mut PolicyRunner<'_>,
    policy: &mut dyn mhca_bandit::policies::IndexPolicy,
    observers: &mut ObserverSet,
) -> Result<(), String> {
    let format = state.get("format").and_then(Json::as_str).unwrap_or("");
    if format != CHECKPOINT_FORMAT {
        return Err(format!("unsupported checkpoint format {format:?}"));
    }
    let ck_seed = state
        .get("seed")
        .ok_or_else(|| "checkpoint missing `seed`".to_string())
        .and_then(u64_from_json)?;
    if ck_seed != seed {
        return Err(format!(
            "checkpoint is for seed {ck_seed}, job runs seed {seed}"
        ));
    }
    let runner_state = state_map_from_json(
        state
            .get("runner")
            .ok_or_else(|| "checkpoint missing `runner` state".to_string())?,
    )?;
    runner
        .restore(policy, &runner_state)
        .map_err(|e| format!("checkpoint runner state: {e}"))?;
    let observer_state = state_map_from_json(
        state
            .get("observers")
            .ok_or_else(|| "checkpoint missing `observers` state".to_string())?,
    )?;
    observers
        .restore_states(&observer_state)
        .map_err(|e| format!("checkpoint observer state: {e}"))
}

/// The steppable path: Algorithm 2 one decision period at a time, with
/// [`JobCtrl`] polled at every period boundary (the only points where a
/// checkpoint is legal — the runner snapshots between periods only).
fn run_steppable_seed(
    spec: &ScenarioSpec,
    base: &PolicyRunConfig,
    seed: u64,
    resume_from: Option<&Json>,
    telemetry: &Telemetry,
    ctrl: &mut dyn JobCtrl,
) -> Result<Option<JobOutput>, String> {
    // Exactly the construction `PolicyRunExperiment::run_one` performs —
    // the seed overrides the config's own, the network and both config
    // layers derive from the spec — so service and batch runs share one
    // definition of the workload.
    let cfg = PolicyRunConfig {
        seed,
        ..base.clone()
    };
    let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
    let dcfg = DistributedPtasConfig::default()
        .with_r(cfg.r)
        .with_max_minirounds(Some(cfg.minirounds))
        .with_loss_spec(cfg.loss)
        .with_partitions(cfg.partitions);
    let mut acfg = Algorithm2Config::default()
        .with_horizon(cfg.horizon)
        .with_update_period(cfg.update_period)
        .with_decision(dcfg)
        .with_seed(seed);
    if let Some(traffic) = &cfg.traffic {
        acfg = acfg.with_traffic(traffic.clone());
    }
    let mut policy = cfg.policy.build(&net);
    let mut observers = ObserverSet::from_kinds(&spec.observers);
    observers.attach_telemetry(telemetry);
    let mut runner = PolicyRunner::new(&net, &acfg, &observers);
    if let Some(state) = resume_from.filter(|v| !matches!(v, Json::Null)) {
        restore_from_json(state, seed, &mut runner, policy.as_mut(), &mut observers)?;
    }

    loop {
        match ctrl.poll(JobProgress {
            slots_done: runner.slot(),
            slots_total: runner.horizon(),
        }) {
            Directive::Continue => {}
            Directive::Checkpoint => {
                ctrl.save_checkpoint(snapshot_json(seed, &runner, policy.as_ref(), &observers));
            }
            Directive::CheckpointAndStop => {
                ctrl.save_checkpoint(snapshot_json(seed, &runner, policy.as_ref(), &observers));
                return Ok(None);
            }
            Directive::Stop => return Ok(None),
        }
        if runner.done() {
            break;
        }
        runner.step_period(policy.as_mut(), &mut observers);
    }
    let run = runner.finish(policy.as_ref());

    // Replicate the engine's metric emission (`PolicyRunExperiment::run`
    // headline rows, then `ObserverSet::finish_into`) and the batch
    // runner's artifact rendering, so service and batch outputs are
    // byte-identical.
    let mut metrics = MetricTable::new();
    metrics.push("avg_expected_kbps", run.average_expected_kbps);
    metrics.push("avg_effective_kbps", run.average_effective_kbps);
    metrics.push("avg_observed_kbps", run.average_observed_kbps);
    metrics.push("transmissions", run.comm.transmissions as f64);
    metrics.push("decisions", run.comm.decisions as f64);
    // Traffic headline rows, exactly as `PolicyRunExperiment::run` emits
    // them — present only when the scenario carries a TrafficSpec.
    if let Some(t) = &run.traffic {
        metrics.push("arrivals", t.arrivals as f64);
        metrics.push("delivered", t.delivered as f64);
        metrics.push("ontime", t.ontime as f64);
        metrics.push("backlog", t.backlog as f64);
        metrics.push("mean_delay_slots", t.mean_delay());
        metrics.push("delay_utility", t.delay_utility());
    }
    observers.finish_into(&mut metrics);
    let rows = metrics.into_rows();

    let data = ExperimentData::PolicyRun { cfg, run };
    let mut artifact = Vec::new();
    report::render_experiment(&data, &mut artifact).map_err(|e| e.to_string())?;
    if rows.iter().any(|(k, _)| k.contains(':')) {
        report::render_observer_metrics(
            rows.iter().filter(|(k, _)| k.contains(':')),
            &mut artifact,
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(Some(JobOutput {
        artifact,
        metrics: rows,
    }))
}

/// The opaque path: one poll, then the batch execution surface. A
/// checkpoint directive records no state ([`Json::Null`]); resuming a
/// killed opaque seed restarts it from scratch, which is correct because
/// every kind is deterministic in its seed.
fn run_opaque_seed(
    spec: &ScenarioSpec,
    seed: u64,
    telemetry: &Telemetry,
    ctrl: &mut dyn JobCtrl,
) -> Result<Option<JobOutput>, String> {
    match ctrl.poll(JobProgress::default()) {
        Directive::Continue => {}
        Directive::Checkpoint => ctrl.save_checkpoint(Json::Null),
        Directive::CheckpointAndStop => {
            ctrl.save_checkpoint(Json::Null);
            return Ok(None);
        }
        Directive::Stop => return Ok(None),
    }
    let mut artifact = Vec::new();
    let metrics = spec
        .run_job_traced(seed, &mut artifact, telemetry)
        .map_err(|e| e.to_string())?;
    Ok(Some(JobOutput { artifact, metrics }))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct InertCtrl {
        polls: u64,
        checkpoints: Vec<Json>,
        checkpoint_at: Option<u64>,
        stop_after_checkpoint: bool,
    }

    impl InertCtrl {
        fn new() -> Self {
            InertCtrl {
                polls: 0,
                checkpoints: Vec::new(),
                checkpoint_at: None,
                stop_after_checkpoint: false,
            }
        }
    }

    impl JobCtrl for InertCtrl {
        fn poll(&mut self, _progress: JobProgress) -> Directive {
            self.polls += 1;
            if Some(self.polls) == self.checkpoint_at {
                if self.stop_after_checkpoint {
                    Directive::CheckpointAndStop
                } else {
                    Directive::Checkpoint
                }
            } else {
                Directive::Continue
            }
        }

        fn save_checkpoint(&mut self, state: Json) {
            self.checkpoints.push(state);
        }
    }

    fn scenario() -> Json {
        crate::json::parse(
            r#"{
                "name": "svc-test",
                "spec": {"kind": "policy-run", "n": 10, "m": 3, "horizon": 120},
                "seeds": {"start": 5, "count": 2},
                "observers": ["comm-totals", "throughput", "windowed-regret"]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn validate_reports_the_plan() {
        let plan = ServiceExecutor.validate(&scenario()).unwrap();
        assert_eq!(plan.name, "svc-test");
        assert_eq!(plan.kind, "policy-run");
        assert_eq!(plan.seeds, vec![5, 6]);
        assert!(plan.steppable);
        assert!(ServiceExecutor
            .validate(&crate::json::parse(r#"{"name":"x"}"#).unwrap())
            .is_err());
    }

    #[test]
    fn interrupted_seed_resumes_byte_identically() {
        let scenario = scenario();
        let telemetry = Telemetry::disabled();

        let mut plain = InertCtrl::new();
        let baseline = ServiceExecutor
            .run_seed(&scenario, 5, None, &telemetry, &mut plain)
            .unwrap()
            .unwrap();

        // Interrupt mid-run: checkpoint-and-stop at the 17th boundary.
        let mut interrupter = InertCtrl::new();
        interrupter.checkpoint_at = Some(17);
        interrupter.stop_after_checkpoint = true;
        let stopped = ServiceExecutor
            .run_seed(&scenario, 5, None, &telemetry, &mut interrupter)
            .unwrap();
        assert!(stopped.is_none());
        assert_eq!(interrupter.checkpoints.len(), 1);

        // Resume in a fresh universe from the serialized checkpoint.
        let mut resumed_ctrl = InertCtrl::new();
        let resumed = ServiceExecutor
            .run_seed(
                &scenario,
                5,
                Some(&interrupter.checkpoints[0]),
                &telemetry,
                &mut resumed_ctrl,
            )
            .unwrap()
            .unwrap();

        assert_eq!(resumed.artifact, baseline.artifact);
        assert_eq!(resumed.metrics.len(), baseline.metrics.len());
        for ((ka, va), (kb, vb)) in resumed.metrics.iter().zip(&baseline.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "metric {ka}");
        }
    }

    #[test]
    fn checkpoints_reject_wrong_seed_and_format() {
        let scenario = scenario();
        let telemetry = Telemetry::disabled();
        let mut ctrl = InertCtrl::new();
        ctrl.checkpoint_at = Some(9);
        ctrl.stop_after_checkpoint = true;
        ServiceExecutor
            .run_seed(&scenario, 5, None, &telemetry, &mut ctrl)
            .unwrap();
        let good = ctrl.checkpoints.pop().unwrap();

        let mut fresh = InertCtrl::new();
        let wrong_seed =
            ServiceExecutor.run_seed(&scenario, 6, Some(&good), &telemetry, &mut fresh);
        assert!(wrong_seed.unwrap_err().contains("seed"));

        let tampered = crate::json::parse(
            &good
                .to_string_compact()
                .replace(CHECKPOINT_FORMAT, "mhca-checkpoint-v0"),
        )
        .unwrap();
        let bad_format =
            ServiceExecutor.run_seed(&scenario, 5, Some(&tampered), &telemetry, &mut fresh);
        assert!(bad_format.unwrap_err().contains("format"));
    }

    #[test]
    fn matches_the_batch_execution_path() {
        // The steppable path must reproduce `run_job_traced` exactly —
        // same artifact bytes, same metric rows.
        let spec = ingest::scenario_from_json(&scenario(), "test").unwrap();
        let mut batch_artifact = Vec::new();
        let batch_metrics = spec
            .run_job_traced(6, &mut batch_artifact, &Telemetry::disabled())
            .unwrap();

        let mut ctrl = InertCtrl::new();
        let service = ServiceExecutor
            .run_seed(&scenario(), 6, None, &Telemetry::disabled(), &mut ctrl)
            .unwrap()
            .unwrap();
        assert_eq!(service.artifact, batch_artifact);
        assert_eq!(service.metrics, batch_metrics);
        // Polled once per decision period plus the final boundary.
        assert!(ctrl.polls > 100);
    }

    fn traffic_scenario() -> Json {
        crate::json::parse(
            r#"{
                "name": "svc-traffic",
                "spec": {
                    "kind": "policy-run", "n": 10, "m": 3, "horizon": 160,
                    "traffic": {
                        "arrivals": {"process": "poisson", "rate": 0.5},
                        "flows": [
                            {"src": 0, "dst": 4, "deadline": 24},
                            {"src": 7, "dst": 2}
                        ]
                    }
                },
                "seeds": {"start": 3, "count": 1},
                "observers": [
                    "flow-delay",
                    {"kind": "queue-tail", "bound": 8}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn traffic_seed_resumes_with_queue_state_byte_identically() {
        // Satellite pin: a mid-seed checkpoint must carry the queueing
        // layer — packets in flight, per-flow delay histograms, arrival
        // stream position — so a daemon killed mid-run resumes to the
        // exact artifact an uninterrupted run produces.
        let scenario = traffic_scenario();
        let telemetry = Telemetry::disabled();

        let mut plain = InertCtrl::new();
        let baseline = ServiceExecutor
            .run_seed(&scenario, 3, None, &telemetry, &mut plain)
            .unwrap()
            .unwrap();
        let text = String::from_utf8(baseline.artifact.clone()).unwrap();
        assert!(
            text.contains("traffic flows"),
            "service path must run the queueing layer:\n{text}"
        );
        assert!(baseline
            .metrics
            .iter()
            .any(|(k, _)| k == "flow-delay:delay_utility"));

        // Kill mid-run at a boundary where queues are demonstrably
        // non-empty, then resume in a fresh universe.
        let mut interrupter = InertCtrl::new();
        interrupter.checkpoint_at = Some(23);
        interrupter.stop_after_checkpoint = true;
        assert!(ServiceExecutor
            .run_seed(&scenario, 3, None, &telemetry, &mut interrupter)
            .unwrap()
            .is_none());
        let checkpoint = interrupter.checkpoints.pop().unwrap();
        assert!(
            checkpoint.to_string_compact().contains("traffic."),
            "checkpoint must serialize queue state"
        );

        let mut resumed_ctrl = InertCtrl::new();
        let resumed = ServiceExecutor
            .run_seed(
                &scenario,
                3,
                Some(&checkpoint),
                &telemetry,
                &mut resumed_ctrl,
            )
            .unwrap()
            .unwrap();
        assert_eq!(resumed.artifact, baseline.artifact);
        assert_eq!(resumed.metrics.len(), baseline.metrics.len());
        for ((ka, va), (kb, vb)) in resumed.metrics.iter().zip(&baseline.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "metric {ka}");
        }

        // And the service path stays byte-identical to the batch path.
        let spec = ingest::scenario_from_json(&traffic_scenario(), "test").unwrap();
        let mut batch_artifact = Vec::new();
        let batch_metrics = spec
            .run_job_traced(3, &mut batch_artifact, &Telemetry::disabled())
            .unwrap();
        assert_eq!(baseline.artifact, batch_artifact);
        assert_eq!(baseline.metrics, batch_metrics);
    }

    #[test]
    fn opaque_kinds_run_and_checkpoint_null() {
        let scenario = crate::json::parse(
            r#"{"name":"t2","spec":{"kind":"table2"},"seeds":{"start":1,"count":1}}"#,
        )
        .unwrap();
        let plan = ServiceExecutor.validate(&scenario).unwrap();
        assert!(!plan.steppable);
        let mut ctrl = InertCtrl::new();
        ctrl.checkpoint_at = Some(1);
        let out = ServiceExecutor
            .run_seed(&scenario, 1, None, &Telemetry::disabled(), &mut ctrl)
            .unwrap()
            .unwrap();
        assert!(!out.artifact.is_empty());
        assert_eq!(ctrl.checkpoints, vec![Json::Null]);
    }
}
