//! Declarative scenario specs: what to run, on what, how many times.
//!
//! A [`ScenarioSpec`] names an experiment kind (wrapping the spec-driven
//! configs of `mhca_core::experiments`) plus a seed range; a campaign is
//! an ordered list of scenarios. Specs expand deterministically into a
//! per-seed [`Job`] matrix, serialize to canonical JSON (the manifest's
//! human-readable record, and the input of the spec hash that guards
//! resume), and know how to execute one job and summarize it as flat
//! `(metric, value)` pairs for cross-seed aggregation.

use crate::json::Json;
use mhca_bench::report;
use mhca_channels::ChannelModelSpec;
use mhca_core::experiment::{
    run_experiment, ComplexityExperiment, Experiment, Fig5Experiment, Fig6Experiment,
    Fig7Experiment, Fig8Experiment, ObserverKind, ObserverSet, PolicyDuelExperiment,
    PolicyRunExperiment, Table2Experiment, Theorem3Experiment,
};
use mhca_core::experiments::{
    ComplexityConfig, Fig5Config, Fig6Config, Fig7Config, Fig8Config, PolicyRunConfig, PolicySpec,
    Theorem3Config,
};
use mhca_core::{ArrivalProcess, TrafficSpec};
use mhca_graph::TopologySpec;
use mhca_sim::LossSpec;
use mhca_telemetry::Telemetry;
use std::io::{self, Write};

/// A contiguous seed range `start..start + count`.
///
/// Seeds must stay below `2^53`: job seeds are persisted in the
/// manifest as JSON numbers, which are exact only up to that bound
/// (larger seeds would save fine but fail to load on resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRange {
    /// First seed.
    pub start: u64,
    /// Number of seeds.
    pub count: u64,
}

impl SeedRange {
    /// Largest exclusive seed bound (`2^53`, the JSON-exact integer
    /// range).
    pub const MAX_SEED: u64 = 1 << 53;

    /// `start..start + count`.
    ///
    /// # Panics
    ///
    /// Panics if `start + count` exceeds [`SeedRange::MAX_SEED`] (such
    /// seeds would not survive a manifest round-trip).
    pub fn new(start: u64, count: u64) -> Self {
        assert!(
            start
                .checked_add(count)
                .is_some_and(|end| end <= Self::MAX_SEED),
            "seed range end must stay within 2^53 (JSON-exact integers)"
        );
        SeedRange { start, count }
    }

    /// Iterates the seeds.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start..self.start + self.count
    }
}

/// The experiment a scenario runs, with its full parameterization. Each
/// variant wraps the corresponding spec-driven config from
/// `mhca_core::experiments`; the scenario's per-job seed overrides the
/// config's own seed field.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentKind {
    /// Fig. 5 linear worst case (deterministic — seeds only replicate).
    Fig5(Fig5Config),
    /// Fig. 6 convergence over mini-rounds.
    Fig6(Fig6Config),
    /// Fig. 7 regret vs LLR (includes an exact-optimum computation).
    Fig7(Fig7Config),
    /// Fig. 8 periodic stale-weight updates.
    Fig8(Fig8Config),
    /// Table II time model (deterministic).
    Table2,
    /// Section IV-C communication/space complexity measurement.
    Complexity(ComplexityConfig),
    /// Theorem 3 distributed-vs-centralized quality comparison.
    Theorem3(Theorem3Config),
    /// Generic declarative Algorithm 2 run (the cross-product axis).
    PolicyRun(PolicyRunConfig),
    /// Paired head-to-head: `base.policy` vs `challenger` on the same
    /// network and identical channel realizations (the Fig. 7 comparison
    /// generalized — the counter-based channel matrix makes any two runs
    /// with the same seed a paired experiment).
    PolicyDuel {
        /// The baseline run (its `policy` is contestant A).
        base: PolicyRunConfig,
        /// Contestant B, run on the identical instance.
        challenger: PolicySpec,
    },
}

impl ExperimentKind {
    /// Short kind tag used in spec JSON and artifact names.
    pub fn tag(&self) -> &'static str {
        match self {
            ExperimentKind::Fig5(_) => "fig5",
            ExperimentKind::Fig6(_) => "fig6",
            ExperimentKind::Fig7(_) => "fig7",
            ExperimentKind::Fig8(_) => "fig8",
            ExperimentKind::Table2 => "table2",
            ExperimentKind::Complexity(_) => "complexity",
            ExperimentKind::Theorem3(_) => "theorem3",
            ExperimentKind::PolicyRun(_) => "policy-run",
            ExperimentKind::PolicyDuel { .. } => "policy-duel",
        }
    }

    /// Builds the unified-engine [`Experiment`] this kind describes. All
    /// eight paper workloads (plus the duel) run through this one
    /// surface; the per-kind metric extraction lives with the experiment
    /// implementations in `mhca_core::experiment`.
    pub fn experiment(&self) -> Box<dyn Experiment> {
        match self {
            ExperimentKind::Fig5(cfg) => Box::new(Fig5Experiment(cfg.clone())),
            ExperimentKind::Fig6(cfg) => Box::new(Fig6Experiment(cfg.clone())),
            ExperimentKind::Fig7(cfg) => Box::new(Fig7Experiment(cfg.clone())),
            ExperimentKind::Fig8(cfg) => Box::new(Fig8Experiment(cfg.clone())),
            ExperimentKind::Table2 => Box::new(Table2Experiment),
            ExperimentKind::Complexity(cfg) => Box::new(ComplexityExperiment(cfg.clone())),
            ExperimentKind::Theorem3(cfg) => Box::new(Theorem3Experiment(cfg.clone())),
            ExperimentKind::PolicyRun(cfg) => Box::new(PolicyRunExperiment(cfg.clone())),
            ExperimentKind::PolicyDuel { base, challenger } => Box::new(PolicyDuelExperiment {
                base: base.clone(),
                challenger: *challenger,
            }),
        }
    }

    /// Runs the experiment for one seed with no observers attached. See
    /// [`ExperimentKind::run_with_observers`].
    pub fn run(&self, seed: u64, artifact: &mut dyn Write) -> io::Result<Vec<(String, f64)>> {
        self.run_with_observers(seed, artifact, ObserverSet::new())
    }

    /// Runs the experiment for one seed through the unified engine,
    /// writes the per-seed figure CSV into `artifact` — followed by the
    /// streamed observer metrics as their own CSV section when any
    /// observers were registered — and returns the flat headline metrics
    /// (experiment metrics first, then the registered observers' metrics)
    /// used for cross-seed aggregation.
    pub fn run_with_observers(
        &self,
        seed: u64,
        artifact: &mut dyn Write,
        observers: ObserverSet,
    ) -> io::Result<Vec<(String, f64)>> {
        let out = run_experiment(self.experiment().as_ref(), seed, observers);
        report::render_experiment(&out.data, artifact)?;
        let rows = out.metrics.into_rows();
        // Observer rows are the label-prefixed tail of the table
        // (`label:metric` — experiment headline metrics never carry a
        // colon). Rendering them into the per-seed artifact is what
        // makes e.g. the windowed-regret series a standalone CSV. The
        // section is gated on the *rows*, not on whether observers were
        // registered: metrics-silent observers (the TelemetryObserver the
        // `--trace` path registers) must leave artifacts byte-identical
        // to an untraced run. Every built-in ObserverKind always emits
        // rows, so the gate is equivalent for spec-declared observers.
        if rows.iter().any(|(k, _)| k.contains(':')) {
            report::render_observer_metrics(
                rows.iter().filter(|(k, _)| k.contains(':')),
                artifact,
            )?;
        }
        Ok(rows)
    }

    /// Canonical JSON rendering of the kind and its full parameterization
    /// (the manifest's `spec` record; hashed for resume validation).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("kind", Json::str(self.tag()))];
        match self {
            ExperimentKind::Fig5(cfg) => {
                pairs.push(("ns", usizes(&cfg.ns)));
                pairs.push(("r", Json::Num(cfg.r as f64)));
            }
            ExperimentKind::Fig6(cfg) => {
                pairs.push((
                    "sizes",
                    Json::Arr(
                        cfg.sizes
                            .iter()
                            .map(|&(n, m)| {
                                Json::Arr(vec![Json::Num(n as f64), Json::Num(m as f64)])
                            })
                            .collect(),
                    ),
                ));
                pairs.push(("topology", topology_json(&cfg.topology)));
                pairs.push(("channel", channel_json(&cfg.channel)));
                pairs.push(("loss", loss_json(&cfg.loss)));
                pairs.push(("r", Json::Num(cfg.r as f64)));
                pairs.push(("minirounds", Json::Num(cfg.minirounds as f64)));
            }
            ExperimentKind::Fig7(cfg) => {
                pairs.push(("n", Json::Num(cfg.n as f64)));
                pairs.push(("m", Json::Num(cfg.m as f64)));
                pairs.push(("topology", topology_json(&cfg.topology)));
                pairs.push(("channel", channel_json(&cfg.channel)));
                pairs.push(("loss", loss_json(&cfg.loss)));
                pairs.push(("horizon", Json::Num(cfg.horizon as f64)));
                pairs.push(("r", Json::Num(cfg.r as f64)));
                pairs.push(("minirounds", Json::Num(cfg.minirounds as f64)));
            }
            ExperimentKind::Fig8(cfg) => {
                pairs.push(("n", Json::Num(cfg.n as f64)));
                pairs.push(("m", Json::Num(cfg.m as f64)));
                pairs.push(("topology", topology_json(&cfg.topology)));
                pairs.push(("channel", channel_json(&cfg.channel)));
                pairs.push(("loss", loss_json(&cfg.loss)));
                pairs.push(("update_periods", usizes(&cfg.update_periods)));
                pairs.push(("updates_per_run", Json::Num(cfg.updates_per_run as f64)));
                pairs.push(("r", Json::Num(cfg.r as f64)));
                pairs.push(("minirounds", Json::Num(cfg.minirounds as f64)));
            }
            ExperimentKind::Table2 => {}
            ExperimentKind::Complexity(cfg) => {
                pairs.push(("ns", usizes(&cfg.ns)));
                pairs.push(("m", Json::Num(cfg.m as f64)));
                pairs.push(("rs", usizes(&cfg.rs)));
                pairs.push(("topology", topology_json(&cfg.topology)));
                pairs.push(("channel", channel_json(&cfg.channel)));
                pairs.push(("minirounds", Json::Num(cfg.minirounds as f64)));
            }
            ExperimentKind::Theorem3(cfg) => {
                pairs.push(("n", Json::Num(cfg.n as f64)));
                pairs.push(("m", Json::Num(cfg.m as f64)));
                pairs.push(("topology", topology_json(&cfg.topology)));
                pairs.push(("channel", channel_json(&cfg.channel)));
                pairs.push(("instances", Json::Num(cfg.instances as f64)));
            }
            ExperimentKind::PolicyRun(cfg) => {
                push_policy_run_fields(&mut pairs, cfg);
            }
            ExperimentKind::PolicyDuel { base, challenger } => {
                push_policy_run_fields(&mut pairs, base);
                pairs.push(("challenger", policy_json(challenger)));
            }
        }
        Json::obj(pairs)
    }
}

fn usizes(xs: &[usize]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x as f64)).collect())
}

fn push_policy_run_fields(pairs: &mut Vec<(&str, Json)>, cfg: &PolicyRunConfig) {
    pairs.push(("n", Json::Num(cfg.n as f64)));
    pairs.push(("m", Json::Num(cfg.m as f64)));
    pairs.push(("topology", topology_json(&cfg.topology)));
    pairs.push(("channel", channel_json(&cfg.channel)));
    pairs.push(("policy", policy_json(&cfg.policy)));
    pairs.push(("loss", loss_json(&cfg.loss)));
    pairs.push(("horizon", Json::Num(cfg.horizon as f64)));
    pairs.push(("update_period", Json::Num(cfg.update_period as f64)));
    pairs.push(("r", Json::Num(cfg.r as f64)));
    pairs.push(("minirounds", Json::Num(cfg.minirounds as f64)));
    pairs.push(("partitions", Json::Num(cfg.partitions as f64)));
    // Emitted only when configured, so traffic-free specs (and their
    // hashes, which guard manifest resume) are byte-identical to pre-
    // traffic-layer renderings.
    if let Some(traffic) = &cfg.traffic {
        pairs.push(("traffic", traffic_json(traffic)));
    }
}

///// Canonical JSON of a traffic workload: the arrival process as a tagged
/// object, flows as `{src, dst[, deadline]}` objects (the deadline key is
/// omitted, not null, for unbounded flows), plus packet size and the
/// dedicated arrival-stream seed.
fn traffic_json(t: &TrafficSpec) -> Json {
    let mut arrivals = vec![("process", Json::str(t.arrivals.label()))];
    match t.arrivals {
        ArrivalProcess::Poisson { rate } => arrivals.push(("rate", Json::Num(rate))),
        ArrivalProcess::Deterministic { period } => {
            arrivals.push(("period", Json::Num(period as f64)));
        }
        ArrivalProcess::Bursty { rate, burst } => {
            arrivals.push(("rate", Json::Num(rate)));
            arrivals.push(("burst", Json::Num(burst as f64)));
        }
    }
    let flows = t
        .flows
        .iter()
        .map(|f| {
            let mut pairs = vec![
                ("src", Json::Num(f.src as f64)),
                ("dst", Json::Num(f.dst as f64)),
            ];
            if let Some(d) = f.deadline {
                pairs.push(("deadline", Json::Num(d as f64)));
            }
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("arrivals", Json::obj(arrivals)),
        ("flows", Json::Arr(flows)),
        ("packet_kbps", Json::Num(t.packet_kbps)),
        ("seed", Json::Num(t.seed as f64)),
    ])
}

/// Full policy serialization — name *and* parameters, so the spec hash
/// catches parameter-only edits (a resume guard, like the topology and
/// channel renderings).
fn policy_json(p: &PolicySpec) -> Json {
    let mut pairs = vec![("name", Json::str(p.label()))];
    match *p {
        PolicySpec::CsUcb { l } | PolicySpec::Llr { l } => pairs.push(("l", Json::Num(l))),
        PolicySpec::Thompson { sigma } => pairs.push(("sigma", Json::Num(sigma))),
        PolicySpec::DiscountedCsUcb { gamma } => pairs.push(("gamma", Json::Num(gamma))),
        PolicySpec::EpsilonGreedy { eps } => pairs.push(("eps", Json::Num(eps))),
        PolicySpec::Random | PolicySpec::Oracle => {}
    }
    Json::obj(pairs)
}

fn topology_json(t: &TopologySpec) -> Json {
    let mut pairs = vec![("family", Json::str(t.label()))];
    if let TopologySpec::UnitDisk { avg_degree } | TopologySpec::UnitDiskConnected { avg_degree } =
        t
    {
        pairs.push(("avg_degree", Json::Num(*avg_degree)));
    }
    Json::obj(pairs)
}

fn channel_json(c: &ChannelModelSpec) -> Json {
    let mut pairs = vec![("family", Json::str(c.label()))];
    match *c {
        ChannelModelSpec::GaussianRateClasses { sigma_frac } => {
            pairs.push(("sigma_frac", Json::Num(sigma_frac)));
        }
        ChannelModelSpec::ConstantRateClasses => {}
        ChannelModelSpec::BernoulliRateClasses { p } => pairs.push(("p", Json::Num(p))),
        ChannelModelSpec::UniformRateClasses { spread_frac } => {
            pairs.push(("spread_frac", Json::Num(spread_frac)));
        }
        ChannelModelSpec::AdversarialSinusoidal { amp_frac, period } => {
            pairs.push(("amp_frac", Json::Num(amp_frac)));
            pairs.push(("period", Json::Num(period as f64)));
        }
        ChannelModelSpec::AdversarialSwitching { swing_frac, dwell } => {
            pairs.push(("swing_frac", Json::Num(swing_frac)));
            pairs.push(("dwell", Json::Num(dwell as f64)));
        }
        ChannelModelSpec::AdversarialRamp { horizon } => {
            pairs.push(("horizon", Json::Num(horizon as f64)));
        }
        ChannelModelSpec::Drifting {
            shift_frac,
            ref breakpoints,
            ramp,
        } => {
            pairs.push(("shift_frac", Json::Num(shift_frac)));
            pairs.push((
                "breakpoints",
                Json::Arr(breakpoints.iter().map(|&b| Json::Num(b as f64)).collect()),
            ));
            pairs.push(("ramp", Json::Num(ramp as f64)));
        }
    }
    Json::obj(pairs)
}

/// Canonical JSON of one observer choice: parameterless kinds emit their
/// bare label (`"comm-totals"`), parameterized kinds an object carrying
/// their knobs (`{"kind": "windowed-regret", "window": 250}`) — both
/// shapes re-ingest through `mhca_campaign::ingest`.
fn observer_json(o: &ObserverKind) -> Json {
    match *o {
        ObserverKind::SensingCost {
            probe_cost,
            report_cost,
        } => Json::obj(vec![
            ("kind", Json::str(o.label())),
            ("probe_cost", Json::Num(probe_cost)),
            ("report_cost", Json::Num(report_cost)),
        ]),
        ObserverKind::WindowedRegret { window } => Json::obj(vec![
            ("kind", Json::str(o.label())),
            ("window", Json::Num(window as f64)),
        ]),
        ObserverKind::QueueTail { bound } => Json::obj(vec![
            ("kind", Json::str(o.label())),
            ("bound", Json::Num(bound as f64)),
        ]),
        // Parameterless kinds, enumerated (no wildcard): a future
        // parameterized variant must fail to compile here rather than
        // silently emit a bare label and lose its knobs on re-ingestion.
        ObserverKind::DecideTiming
        | ObserverKind::CommTotals
        | ObserverKind::PerVertexTx
        | ObserverKind::Throughput
        | ObserverKind::CaptureStats
        | ObserverKind::FlowDelay => Json::str(o.label()),
    }
}

fn loss_json(l: &LossSpec) -> Json {
    Json::obj(vec![
        ("prob", Json::Num(l.prob)),
        ("seed", Json::Num(l.seed as f64)),
    ])
}

/// One named scenario of a campaign: an experiment kind, a seed range,
/// and the streaming observers to attach to each job.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique scenario name (also the artifact directory name).
    pub name: String,
    /// One-line description shown by `mhca-campaign list`.
    pub title: String,
    /// What to run.
    pub kind: ExperimentKind,
    /// Seeds to run it over.
    pub seeds: SeedRange,
    /// Streaming metric sinks registered for every job of this scenario
    /// (fresh instances per job). Only experiments that drive Algorithm 2
    /// round loops feed them; on others they contribute zero-valued
    /// metrics.
    pub observers: Vec<ObserverKind>,
}

impl ScenarioSpec {
    /// Convenience constructor (no observers).
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        kind: ExperimentKind,
        seeds: SeedRange,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            title: title.into(),
            kind,
            seeds,
            observers: Vec::new(),
        }
    }

    /// Builder-style observer attachment.
    pub fn with_observers(mut self, observers: Vec<ObserverKind>) -> Self {
        self.observers = observers;
        self
    }

    /// Runs one job of this scenario: the experiment at `seed` with this
    /// scenario's observers attached.
    pub fn run_job(&self, seed: u64, artifact: &mut dyn Write) -> io::Result<Vec<(String, f64)>> {
        self.run_job_traced(seed, artifact, &Telemetry::disabled())
    }

    /// Runs one job with a telemetry handle threaded through the
    /// observers (see `ObserverSet::attach_telemetry` in `mhca_core`): an
    /// enabled handle streams phase histograms, sampled decide spans, and
    /// incremental observer counters into the sink, scoped to whatever
    /// scope `telemetry` already carries. A disabled handle makes this
    /// identical to [`run_job`](Self::run_job) — and by the byte-identity
    /// contract, so does an enabled one, as far as the artifact and the
    /// returned metrics are concerned.
    pub fn run_job_traced(
        &self,
        seed: u64,
        artifact: &mut dyn Write,
        telemetry: &Telemetry,
    ) -> io::Result<Vec<(String, f64)>> {
        let mut observers = ObserverSet::from_kinds(&self.observers);
        observers.attach_telemetry(telemetry);
        self.kind.run_with_observers(seed, artifact, observers)
    }

    /// Expands this scenario into its per-seed jobs, in seed order.
    pub fn jobs(&self) -> Vec<Job> {
        self.seeds
            .iter()
            .map(|seed| Job {
                scenario: self.name.clone(),
                seed,
            })
            .collect()
    }

    /// Canonical JSON rendering (recorded in the manifest; hashed for
    /// resume validation; re-ingestible via `mhca_campaign::ingest`).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::str(&self.name)),
            ("title", Json::str(&self.title)),
            ("spec", self.kind.to_json()),
            (
                "seeds",
                Json::obj(vec![
                    ("start", Json::Num(self.seeds.start as f64)),
                    ("count", Json::Num(self.seeds.count as f64)),
                ]),
            ),
        ];
        if !self.observers.is_empty() {
            pairs.push((
                "observers",
                Json::Arr(self.observers.iter().map(observer_json).collect()),
            ));
        }
        Json::obj(pairs)
    }
}

/// One unit of campaign work: a scenario at one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// The scenario name.
    pub scenario: String,
    /// The seed this job runs.
    pub seed: u64,
}

impl Job {
    /// Stable job identifier: `<scenario>/seed<seed>`.
    pub fn id(&self) -> String {
        format!("{}/seed{}", self.scenario, self.seed)
    }
}

/// Expands a campaign (ordered scenario list) into its full job matrix —
/// scenario-major, seed-minor, deterministic.
pub fn expand_jobs(scenarios: &[ScenarioSpec]) -> Vec<Job> {
    scenarios.iter().flat_map(ScenarioSpec::jobs).collect()
}

/// Canonical JSON of a whole campaign spec.
pub fn campaign_json(name: &str, scenarios: &[ScenarioSpec]) -> Json {
    Json::obj(vec![
        ("campaign", Json::str(name)),
        (
            "scenarios",
            Json::Arr(scenarios.iter().map(ScenarioSpec::to_json).collect()),
        ),
    ])
}

/// FNV-1a 64-bit hash of the canonical campaign spec JSON — the cheap,
/// dependency-free fingerprint that guards manifest resume (a manifest
/// written for one spec must not silently resume a different one).
pub fn spec_hash(name: &str, scenarios: &[ScenarioSpec]) -> String {
    let text = campaign_json(name, scenarios).to_string_compact();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_scenarios() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::new(
                "fig6-quick",
                "quick fig6",
                ExperimentKind::Fig6(Fig6Config::quick()),
                SeedRange::new(61, 3),
            ),
            ScenarioSpec::new(
                "table2",
                "table II",
                ExperimentKind::Table2,
                SeedRange::new(0, 1),
            ),
        ]
    }

    #[test]
    fn jobs_expand_scenario_major_seed_minor() {
        let jobs = expand_jobs(&two_scenarios());
        let ids: Vec<String> = jobs.iter().map(Job::id).collect();
        assert_eq!(
            ids,
            vec![
                "fig6-quick/seed61",
                "fig6-quick/seed62",
                "fig6-quick/seed63",
                "table2/seed0"
            ]
        );
    }

    #[test]
    fn spec_hash_is_stable_and_sensitive() {
        let scenarios = two_scenarios();
        let h1 = spec_hash("smoke", &scenarios);
        let h2 = spec_hash("smoke", &scenarios);
        assert_eq!(h1, h2);
        assert_eq!(h1.len(), 16);
        // Renaming the campaign or changing a seed count changes the hash.
        assert_ne!(h1, spec_hash("other", &scenarios));
        let mut more_seeds = two_scenarios();
        more_seeds[0].seeds.count += 1;
        assert_ne!(h1, spec_hash("smoke", &more_seeds));
    }

    #[test]
    fn spec_json_is_parseable_and_tagged() {
        let scenarios = two_scenarios();
        let text = campaign_json("smoke", &scenarios).to_string_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        let list = parsed.get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(
            list[0]
                .get("spec")
                .and_then(|s| s.get("kind"))
                .and_then(Json::as_str),
            Some("fig6")
        );
    }

    #[test]
    fn spec_hash_sees_policy_parameters() {
        // Parameter-only policy edits must invalidate resume: same label,
        // different exploration weight ⇒ different hash.
        let duel = |l: f64| {
            vec![ScenarioSpec::new(
                "duel",
                "duel",
                ExperimentKind::PolicyDuel {
                    base: PolicyRunConfig::quick(),
                    challenger: PolicySpec::Llr { l },
                },
                SeedRange::new(0, 2),
            )]
        };
        assert_ne!(spec_hash("c", &duel(2.0)), spec_hash("c", &duel(4.0)));
        let run = |eps: f64| {
            vec![ScenarioSpec::new(
                "eg",
                "eg",
                ExperimentKind::PolicyRun(PolicyRunConfig {
                    policy: PolicySpec::EpsilonGreedy { eps },
                    ..PolicyRunConfig::quick()
                }),
                SeedRange::new(0, 2),
            )]
        };
        assert_ne!(spec_hash("c", &run(0.05)), spec_hash("c", &run(0.3)));
    }

    #[test]
    fn run_produces_metrics_and_artifact() {
        let kind = ExperimentKind::Table2;
        let mut artifact = Vec::new();
        let metrics = kind.run(0, &mut artifact).unwrap();
        assert!(metrics.iter().any(|(k, v)| k == "theta" && *v == 0.5));
        assert!(!artifact.is_empty());
    }

    #[test]
    fn policy_duel_runs_both_contestants_paired() {
        let kind = ExperimentKind::PolicyDuel {
            base: PolicyRunConfig {
                horizon: 150,
                ..PolicyRunConfig::quick()
            },
            challenger: PolicySpec::Random,
        };
        let mut artifact = Vec::new();
        let metrics = kind.run(3, &mut artifact).unwrap();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
                .1
        };
        let a = get("cs-ucb_avg_expected_kbps");
        let b = get("random_avg_expected_kbps");
        assert!((get("advantage_kbps") - (a - b)).abs() < 1e-9);
        assert!(a > b, "cs-ucb must beat random: {a} vs {b}");
        assert_eq!(get("a_wins"), 1.0);
        // Both contestants' series land in the artifact.
        let text = String::from_utf8(artifact).unwrap();
        assert!(text.contains("policy=cs-ucb"));
        assert!(text.contains("policy=random"));
    }

    #[test]
    #[should_panic(expected = "2^53")]
    fn oversized_seed_ranges_are_rejected() {
        let _ = SeedRange::new(u64::MAX - 1, 1);
    }

    #[test]
    fn kind_tags_match_engine_shapes() {
        let kinds = [
            ExperimentKind::Fig5(Fig5Config::quick()),
            ExperimentKind::Fig6(Fig6Config::quick()),
            ExperimentKind::Fig7(Fig7Config::quick()),
            ExperimentKind::Fig8(Fig8Config::quick()),
            ExperimentKind::Table2,
            ExperimentKind::Complexity(ComplexityConfig::quick()),
            ExperimentKind::Theorem3(Theorem3Config::quick()),
            ExperimentKind::PolicyRun(PolicyRunConfig::quick()),
            ExperimentKind::PolicyDuel {
                base: PolicyRunConfig::quick(),
                challenger: PolicySpec::Random,
            },
        ];
        for kind in &kinds {
            assert_eq!(kind.tag(), kind.experiment().spec().kind);
        }
    }

    #[test]
    fn scenario_observers_contribute_metrics_and_hash() {
        let plain = ScenarioSpec::new(
            "run",
            "run",
            ExperimentKind::PolicyRun(PolicyRunConfig::quick()),
            SeedRange::new(0, 1),
        );
        let observed = plain
            .clone()
            .with_observers(vec![ObserverKind::CommTotals, ObserverKind::Throughput]);
        // Observer choice is part of the canonical spec (and so the hash).
        assert_ne!(
            spec_hash("c", std::slice::from_ref(&plain)),
            spec_hash("c", std::slice::from_ref(&observed))
        );
        let text = observed.to_json().to_string_pretty();
        assert!(text.contains("\"observers\""));
        assert!(text.contains("\"comm-totals\""));

        // Observer metrics ride behind the experiment's own metrics.
        let mut sink = Vec::new();
        let metrics = observed.run_job(3, &mut sink).unwrap();
        assert!(metrics.iter().any(|(k, _)| k == "avg_expected_kbps"));
        let obs_avg = metrics
            .iter()
            .find(|(k, _)| k == "throughput:avg_observed_kbps")
            .expect("observer metric present")
            .1;
        let run_avg = metrics
            .iter()
            .find(|(k, _)| k == "avg_observed_kbps")
            .unwrap()
            .1;
        assert!((obs_avg - run_avg).abs() < 1e-9);
    }

    #[test]
    fn job_seed_overrides_config_seed() {
        let cfg = PolicyRunConfig::quick();
        let kind = ExperimentKind::PolicyRun(cfg);
        let mut sink = Vec::new();
        let a = kind.run(5, &mut sink).unwrap();
        let b = kind.run(5, &mut sink).unwrap();
        let c = kind.run(6, &mut sink).unwrap();
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seeds must differ");
    }
}
