//! `mhca-campaign tail <out-dir>` — renders a campaign's `events.jsonl`
//! into a per-scenario / per-phase summary table.
//!
//! The tail reader is the proof that the telemetry schema is enough to
//! reconstruct campaign-wide statistics offline: job spans aggregate into
//! per-scenario job-time histograms, and the per-job `hist` events'
//! sparse bucket dumps merge **exactly** (bucket counts add), so the
//! percentiles printed here equal those of a histogram that had seen
//! every sample directly. Every line must parse with [`crate::json`] —
//! a malformed line fails the whole tail loudly (CI relies on this to
//! validate the event stream).

use crate::json::{self, Json};
use mhca_telemetry::LogHistogram;
use std::io::{self, Write};
use std::path::Path;

/// Aggregated view of one scenario's events.
#[derive(Debug)]
pub struct ScenarioTail {
    /// Scenario name (the first segment of job scopes).
    pub name: String,
    /// Finished job spans seen.
    pub jobs: u64,
    /// Decision rounds summed over the scenario's jobs.
    pub rounds: u64,
    /// Job wall-time histogram (one sample per job span).
    pub job_ns: LogHistogram,
    /// Per-phase latency histograms, merged across jobs, in first-seen
    /// (= emission) order. Keys are the phase names without the `phase.`
    /// prefix (`wb`, `decide`, `learn`, `election`, …).
    pub phases: Vec<(String, LogHistogram)>,
}

/// Everything `tail` extracts from an event stream.
#[derive(Debug)]
pub struct TailSummary {
    /// Total events parsed.
    pub events: usize,
    /// Campaign span duration in nanoseconds, when the stream has one.
    pub campaign_ns: Option<u64>,
    /// Campaign completion status (`ok` / `error`), when recorded.
    pub campaign_status: Option<String>,
    /// Per-scenario aggregates, in first-seen order.
    pub scenarios: Vec<ScenarioTail>,
    /// Error events as `scope: message` lines.
    pub errors: Vec<String>,
    /// Last progress heartbeat seen, as `(done, total)`.
    pub last_progress: Option<(u64, u64)>,
}

fn field_u64(event: &Json, key: &str) -> Option<u64> {
    event.get(key).and_then(Json::as_u64)
}

/// Parses one `hist` event's sparse `buckets` array into `hist`.
fn merge_buckets(hist: &mut LogHistogram, buckets: &Json) {
    let Json::Arr(pairs) = buckets else { return };
    for pair in pairs {
        let Json::Arr(cell) = pair else { continue };
        if let (Some(idx), Some(count)) = (
            cell.first().and_then(Json::as_u64),
            cell.get(1).and_then(Json::as_u64),
        ) {
            hist.merge_bucket(idx as usize, count);
        }
    }
}

/// Aggregates a whole `events.jsonl` body. Fails on the first malformed
/// line (1-based line number in the message) — the event stream is a
/// contract, not best-effort input.
pub fn summarize(text: &str) -> Result<TailSummary, String> {
    let mut summary = TailSummary {
        events: 0,
        campaign_ns: None,
        campaign_status: None,
        scenarios: Vec::new(),
        errors: Vec::new(),
        last_progress: None,
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            json::parse(line).map_err(|e| format!("events.jsonl line {}: {e}", lineno + 1))?;
        summary.events += 1;
        let kind = event.get("kind").and_then(Json::as_str).unwrap_or("");
        let scope = event.get("scope").and_then(Json::as_str).unwrap_or("");
        let name = event.get("name").and_then(Json::as_str).unwrap_or("");

        // Job-level scopes are "<scenario>/seed<k>"; scenario-level
        // scopes have no slash. Campaign-level events use the root scope.
        let scenario_name = scope.split('/').next().unwrap_or("");
        fn scenario<'a>(s: &'a mut TailSummary, name: &str) -> &'a mut ScenarioTail {
            let idx = match s.scenarios.iter().position(|sc| sc.name == name) {
                Some(i) => i,
                None => {
                    s.scenarios.push(ScenarioTail {
                        name: name.to_string(),
                        jobs: 0,
                        rounds: 0,
                        job_ns: LogHistogram::new(),
                        phases: Vec::new(),
                    });
                    s.scenarios.len() - 1
                }
            };
            &mut s.scenarios[idx]
        }

        match kind {
            "span_end" if name == "campaign" => {
                summary.campaign_ns = field_u64(&event, "dur_ns");
                summary.campaign_status = event
                    .get("status")
                    .and_then(Json::as_str)
                    .map(str::to_string);
            }
            "span_end" if name == "job" && !scenario_name.is_empty() => {
                let dur = field_u64(&event, "dur_ns").unwrap_or(0);
                let sc = scenario(&mut summary, scenario_name);
                sc.jobs += 1;
                sc.job_ns.record(dur);
            }
            "counter" if name == "rounds" && !scenario_name.is_empty() => {
                scenario(&mut summary, scenario_name).rounds +=
                    field_u64(&event, "value").unwrap_or(0);
            }
            "hist" if !scenario_name.is_empty() => {
                let Some(phase) = name.strip_prefix("phase.") else {
                    continue;
                };
                let phase = phase.to_string();
                let sc = scenario(&mut summary, scenario_name);
                let hist = match sc.phases.iter().position(|(p, _)| *p == phase) {
                    Some(i) => &mut sc.phases[i].1,
                    None => {
                        sc.phases.push((phase, LogHistogram::new()));
                        &mut sc.phases.last_mut().expect("just pushed").1
                    }
                };
                if let Some(buckets) = event.get("buckets") {
                    merge_buckets(hist, buckets);
                }
            }
            "error" => {
                let message = event.get("message").and_then(Json::as_str).unwrap_or("?");
                summary.errors.push(format!("{scope}: {message}"));
            }
            "progress" => {
                if let (Some(done), Some(total)) =
                    (field_u64(&event, "done"), field_u64(&event, "total"))
                {
                    summary.last_progress = Some((done, total));
                }
            }
            _ => {}
        }
    }
    Ok(summary)
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the summary as the human table `mhca-campaign tail` prints.
pub fn render(summary: &TailSummary, w: &mut dyn Write) -> io::Result<()> {
    write!(w, "{} event(s)", summary.events)?;
    if let Some(ns) = summary.campaign_ns {
        write!(w, ", campaign span {}", fmt_ns(ns))?;
    }
    if let Some(status) = &summary.campaign_status {
        write!(w, " (status {status})")?;
    }
    if let Some((done, total)) = summary.last_progress {
        write!(w, ", progress {done}/{total}")?;
    }
    writeln!(w)?;
    for sc in &summary.scenarios {
        writeln!(
            w,
            "\nscenario {}: {} job(s), {} round(s), job time p50 {} max {}",
            sc.name,
            sc.jobs,
            sc.rounds,
            fmt_ns(sc.job_ns.p50()),
            fmt_ns(sc.job_ns.max()),
        )?;
        if sc.phases.is_empty() {
            continue;
        }
        writeln!(
            w,
            "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "phase", "samples", "p50", "p99", "p999", "max"
        )?;
        for (phase, hist) in &sc.phases {
            writeln!(
                w,
                "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                phase,
                hist.count(),
                fmt_ns(hist.p50()),
                fmt_ns(hist.p99()),
                fmt_ns(hist.p999()),
                fmt_ns(hist.max()),
            )?;
        }
    }
    if !summary.errors.is_empty() {
        writeln!(w, "\n{} error(s):", summary.errors.len())?;
        for e in &summary.errors {
            writeln!(w, "  {e}")?;
        }
    }
    Ok(())
}

/// Reads `<out_dir>/events.jsonl` and renders its summary into `w`.
pub fn tail_dir(out_dir: &Path, w: &mut dyn Write) -> io::Result<()> {
    let path = out_dir.join("events.jsonl");
    let text = fs_read(&path)?;
    let summary = summarize(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    render(&summary, w)
}

fn fs_read(path: &Path) -> io::Result<String> {
    std::fs::read_to_string(path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "cannot read '{}' (was the campaign run with --trace?): {e}",
                path.display()
            ),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_spans_hists_counters_errors_and_progress() {
        let text = concat!(
            "{\"ts_us\":0,\"kind\":\"span_start\",\"scope\":\"\",\"name\":\"campaign\"}\n",
            "{\"ts_us\":1,\"kind\":\"span_start\",\"scope\":\"fig6\",\"name\":\"scenario\"}\n",
            "{\"ts_us\":2,\"kind\":\"counter\",\"scope\":\"fig6/seed1\",\"name\":\"rounds\",\"value\":40}\n",
            "{\"ts_us\":3,\"kind\":\"hist\",\"scope\":\"fig6/seed1\",\"name\":\"phase.decide\",\
             \"count\":2,\"min\":100,\"max\":200,\"p50\":100,\"p99\":200,\"p999\":200,\
             \"buckets\":[[100,1],[120,1]]}\n",
            "{\"ts_us\":4,\"kind\":\"span_end\",\"scope\":\"fig6/seed1\",\"name\":\"job\",\
             \"dur_ns\":5000000,\"status\":\"ok\"}\n",
            "{\"ts_us\":5,\"kind\":\"error\",\"scope\":\"fig6\",\"name\":\"job\",\
             \"message\":\"seed 2 failed: boom\"}\n",
            "{\"ts_us\":6,\"kind\":\"progress\",\"scope\":\"\",\"name\":\"heartbeat\",\
             \"done\":1,\"total\":2,\"jobs_per_s\":1.0,\"rounds_per_s\":40.0,\"eta_s\":1.0}\n",
            "{\"ts_us\":7,\"kind\":\"span_end\",\"scope\":\"\",\"name\":\"campaign\",\
             \"dur_ns\":9000000,\"status\":\"ok\"}\n",
        );
        let s = summarize(text).unwrap();
        assert_eq!(s.events, 8);
        assert_eq!(s.campaign_ns, Some(9_000_000));
        assert_eq!(s.campaign_status.as_deref(), Some("ok"));
        assert_eq!(s.last_progress, Some((1, 2)));
        assert_eq!(s.errors, vec!["fig6: seed 2 failed: boom"]);
        assert_eq!(s.scenarios.len(), 1);
        let sc = &s.scenarios[0];
        assert_eq!(sc.name, "fig6");
        assert_eq!(sc.jobs, 1);
        assert_eq!(sc.rounds, 40);
        assert_eq!(sc.job_ns.count(), 1);
        assert_eq!(sc.phases.len(), 1);
        assert_eq!(sc.phases[0].0, "decide");
        assert_eq!(sc.phases[0].1.count(), 2);

        let mut out = Vec::new();
        render(&s, &mut out).unwrap();
        let rendered = String::from_utf8(out).unwrap();
        assert!(
            rendered.contains("scenario fig6: 1 job(s), 40 round(s)"),
            "{rendered}"
        );
        assert!(rendered.contains("decide"), "{rendered}");
        assert!(rendered.contains("progress 1/2"), "{rendered}");
        assert!(rendered.contains("1 error(s):"), "{rendered}");
    }

    #[test]
    fn malformed_line_fails_with_line_number() {
        let text = "{\"ts_us\":0,\"kind\":\"counter\",\"scope\":\"\",\"name\":\"x\",\"value\":1}\nnot json\n";
        let err = summarize(text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn merged_bucket_percentiles_match_direct_recording() {
        // Two jobs' histograms, dumped sparsely and merged by tail, must
        // reproduce the percentiles of one histogram that saw everything.
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut direct = LogHistogram::new();
        for i in 0..4_000u64 {
            let v = (i * 37) % 1_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            direct.record(v);
        }
        let event_line = |h: &LogHistogram| {
            let mut buckets = String::new();
            h.write_sparse_json(&mut buckets);
            format!(
                "{{\"ts_us\":0,\"kind\":\"hist\",\"scope\":\"s/seed0\",\
                 \"name\":\"phase.decide\",\"count\":{},\"buckets\":{buckets}}}",
                h.count()
            )
        };
        let text = format!("{}\n{}\n", event_line(&a), event_line(&b));
        let s = summarize(&text).unwrap();
        let merged = &s.scenarios[0].phases[0].1;
        assert_eq!(merged.count(), direct.count());
        for q in [50.0, 99.0, 99.9] {
            assert_eq!(merged.percentile(q), direct.percentile(q), "q={q}");
        }
    }
}
