//! End-to-end tests of the campaign orchestration layer: spec expansion,
//! artifact/manifest layout, resume-after-interrupt semantics, and
//! parallel-vs-serial aggregate equality.
//!
//! The campaign scaffolding (`tmp_dir`, `quiet`, `paper_campaign`,
//! `observer_zoo_campaign`) lives in `mhca_specgen::support`, shared with
//! the generated `campaign_worker_parity` contract.

use mhca_campaign::json::{self, Json};
use mhca_campaign::manifest::{JobStatus, Manifest};
use mhca_campaign::registry;
use mhca_campaign::runner::{self, CampaignConfig};
use mhca_campaign::spec::{expand_jobs, ExperimentKind, ScenarioSpec, SeedRange};
use mhca_specgen::support::{observer_zoo_campaign, paper_campaign, quiet, tmp_dir};
use std::fs;
use std::path::PathBuf;

#[test]
fn campaign_reproduces_paper_figures_with_aggregates_and_artifacts() {
    let dir = tmp_dir("paper");
    let scenarios = paper_campaign();
    let cfg = quiet(CampaignConfig::new("paper-test", &dir, scenarios.clone()));
    let outcome = runner::run(&cfg).unwrap();

    assert_eq!(outcome.executed, 7); // 2 + 2 + 2 + 1 jobs
    assert_eq!(outcome.skipped, 0);

    // Per-seed figure artifacts exist and carry the figure CSV headers.
    let fig6_csv = fs::read_to_string(dir.join("fig6/seed61.csv")).unwrap();
    assert!(fig6_csv.starts_with("miniround,"));
    let fig7_csv = fs::read_to_string(dir.join("fig7/seed71.csv")).unwrap();
    assert!(fig7_csv.contains("slot,alg2_practical_regret"));
    let fig8_csv = fs::read_to_string(dir.join("fig8/seed81.csv")).unwrap();
    assert!(fig8_csv.contains("alg2_estimated"));
    let table2_csv = fs::read_to_string(dir.join("table2/seed0.csv")).unwrap();
    assert!(table2_csv.contains("theta,0.5"));

    // Multi-seed aggregates: fig7's optimum aggregates over 2 seeds.
    let fig7 = outcome.summaries.iter().find(|s| s.name == "fig7").unwrap();
    let (_, optimal) = fig7
        .aggregates
        .iter()
        .find(|(m, _)| m == "optimal_kbps")
        .unwrap();
    assert_eq!(optimal.runs, 2);
    assert!(optimal.mean > 0.0);

    // Per-scenario summary CSV and campaign-level artifacts.
    let summary = fs::read_to_string(dir.join("fig7/summary.csv")).unwrap();
    assert!(summary.starts_with("metric,runs,mean,std_dev,min,max\n"));
    assert!(summary.contains("optimal_kbps,2,"));
    let campaign_csv = fs::read_to_string(dir.join("campaign.csv")).unwrap();
    assert!(campaign_csv.starts_with("scenario,seed,metric,value\n"));
    assert!(campaign_csv.contains("fig8,81,alg2_actual_y1,"));

    // campaign.json parses with the hand-rolled parser and holds the spec
    // plus per-scenario aggregates.
    let doc = json::parse(&fs::read_to_string(dir.join("campaign.json")).unwrap()).unwrap();
    assert_eq!(
        doc.get("campaign").and_then(Json::as_str),
        Some("paper-test")
    );
    let aggs = doc.get("aggregates").and_then(Json::as_arr).unwrap();
    assert_eq!(aggs.len(), 4);
    let spec_scenarios = doc
        .get("spec")
        .and_then(|s| s.get("scenarios"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(spec_scenarios.len(), 4);

    // The manifest records every job done.
    let manifest = Manifest::load(&dir).unwrap().unwrap();
    assert_eq!(manifest.progress(), (7, 0));

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rerun_skips_everything_and_preserves_results() {
    let dir = tmp_dir("rerun");
    let scenarios = registry::quick_registry();
    let cfg = quiet(CampaignConfig::new("quick", &dir, scenarios));
    let first = runner::run(&cfg).unwrap();
    assert_eq!(first.executed, 6);

    let again = runner::run(&cfg).unwrap();
    assert_eq!(
        again.executed, 0,
        "a completed campaign must re-execute nothing"
    );
    assert_eq!(again.skipped, 6);
    assert_eq!(first.summaries, again.summaries);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_campaign_resumes_without_reexecuting_completed_jobs() {
    let dir = tmp_dir("resume");
    let scenarios = registry::quick_registry();
    let cfg = quiet(CampaignConfig::new("quick", &dir, scenarios.clone()));

    // Simulate a killed campaign: a manifest where one job finished (with
    // a sentinel metric value no real run could produce) and the rest
    // never ran. The sentinel proves resume *reuses* recorded results
    // instead of recomputing them.
    let jobs = expand_jobs(&scenarios);
    let mut manifest = Manifest::new("quick", &scenarios, &jobs);
    {
        let record = manifest.record_mut("fig6-quick", 61).unwrap();
        record.status = JobStatus::Done;
        record.artifact = "fig6-quick/seed61.csv".into();
        record.metrics = vec![("final_weight_30x3".into(), 123456789.0)];
    }
    fs::create_dir_all(dir.join("fig6-quick")).unwrap();
    fs::write(dir.join("fig6-quick/seed61.csv"), "sentinel artifact\n").unwrap();
    manifest.save(&dir).unwrap();

    let outcome = runner::run(&cfg).unwrap();
    assert_eq!(outcome.executed, 5, "only the five unfinished jobs run");
    assert_eq!(outcome.skipped, 1);

    // The sentinel survived: the done job was not re-executed.
    let loaded = Manifest::load(&dir).unwrap().unwrap();
    let record = loaded.record("fig6-quick", 61).unwrap();
    assert_eq!(record.metrics[0].1, 123456789.0);
    assert_eq!(
        fs::read_to_string(dir.join("fig6-quick/seed61.csv")).unwrap(),
        "sentinel artifact\n"
    );
    // And the sentinel flows into the aggregates (it was reused as data).
    let fig6 = outcome
        .summaries
        .iter()
        .find(|s| s.name == "fig6-quick")
        .unwrap();
    let (_, agg) = fig6
        .aggregates
        .iter()
        .find(|(m, _)| m == "final_weight_30x3")
        .unwrap();
    assert_eq!(agg.max, 123456789.0);

    // A deleted artifact demotes a done job back to pending.
    fs::remove_file(dir.join("fig6-quick/seed61.csv")).unwrap();
    let healed = runner::run(&cfg).unwrap();
    assert_eq!(healed.executed, 1);
    let loaded = Manifest::load(&dir).unwrap().unwrap();
    assert_ne!(
        loaded.record("fig6-quick", 61).unwrap().metrics[0].1,
        123456789.0,
        "regenerated job must carry real metrics"
    );

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_and_serial_campaigns_aggregate_identically() {
    let dir_par = tmp_dir("par");
    let dir_ser = tmp_dir("ser");
    let scenarios = registry::quick_registry();
    let par = runner::run(&quiet(CampaignConfig::new(
        "quick",
        &dir_par,
        scenarios.clone(),
    )))
    .unwrap();
    let ser = runner::run(&quiet(CampaignConfig {
        parallel: false,
        ..CampaignConfig::new("quick", &dir_ser, scenarios)
    }))
    .unwrap();

    assert_eq!(par.summaries, ser.summaries);
    // Byte-identical artifacts, job records, and campaign CSV.
    let par_manifest = Manifest::load(&dir_par).unwrap().unwrap();
    let ser_manifest = Manifest::load(&dir_ser).unwrap().unwrap();
    assert_eq!(par_manifest.jobs, ser_manifest.jobs);
    assert_eq!(
        fs::read_to_string(dir_par.join("campaign.csv")).unwrap(),
        fs::read_to_string(dir_ser.join("campaign.csv")).unwrap()
    );
    assert_eq!(
        fs::read_to_string(dir_par.join("fig7-quick/seed71.csv")).unwrap(),
        fs::read_to_string(dir_ser.join("fig7-quick/seed71.csv")).unwrap()
    );

    fs::remove_dir_all(&dir_par).unwrap();
    fs::remove_dir_all(&dir_ser).unwrap();
}

#[test]
fn bounded_jobs_campaign_matches_serial_byte_for_byte() {
    // The --jobs worker bound spans the whole matrix; any bound must
    // produce the same artifacts and records as strict serial execution.
    let dir_bounded = tmp_dir("jobs2");
    let dir_serial = tmp_dir("jobs-serial");
    let scenarios = registry::quick_registry();
    let bounded = runner::run(&quiet(CampaignConfig {
        jobs: Some(2),
        ..CampaignConfig::new("quick", &dir_bounded, scenarios.clone())
    }))
    .unwrap();
    let serial = runner::run(&quiet(CampaignConfig {
        parallel: false,
        ..CampaignConfig::new("quick", &dir_serial, scenarios)
    }))
    .unwrap();

    assert_eq!(bounded.summaries, serial.summaries);
    let m_bounded = Manifest::load(&dir_bounded).unwrap().unwrap();
    let m_serial = Manifest::load(&dir_serial).unwrap().unwrap();
    assert_eq!(m_bounded.jobs, m_serial.jobs);
    assert_eq!(
        fs::read_to_string(dir_bounded.join("campaign.csv")).unwrap(),
        fs::read_to_string(dir_serial.join("campaign.csv")).unwrap()
    );

    fs::remove_dir_all(&dir_bounded).unwrap();
    fs::remove_dir_all(&dir_serial).unwrap();
}

#[test]
fn traffic_campaigns_are_byte_identical_across_worker_shapes() {
    // A scaled-down traffic scenario (flows + FlowDelay/QueueTail): the
    // arrival stream is counter-based and the queue engine deterministic,
    // so serial, bounded (--jobs 2), and fully parallel campaigns must
    // produce byte-identical artifacts — and each per-seed CSV must carry
    // the per-flow delay-tail percentile rows.
    use mhca_core::experiment::ObserverKind;
    use mhca_core::experiments::PolicyRunConfig;
    use mhca_core::{FlowSpec, TrafficSpec};
    use mhca_graph::TopologySpec;

    let mut cfg = PolicyRunConfig::quick();
    cfg.topology = TopologySpec::Line;
    cfg.n = 10;
    cfg.horizon = 120;
    cfg.traffic = Some(TrafficSpec::poisson(
        0.5,
        vec![
            FlowSpec {
                src: 0,
                dst: 4,
                deadline: Some(24),
            },
            FlowSpec {
                src: 7,
                dst: 2,
                deadline: None,
            },
        ],
    ));
    let scenarios = vec![ScenarioSpec::new(
        "traffic-quick",
        "traffic smoke",
        ExperimentKind::PolicyRun(cfg),
        SeedRange::new(0, 3),
    )
    .with_observers(vec![
        ObserverKind::FlowDelay,
        ObserverKind::QueueTail { bound: 8 },
    ])];

    let dir_ser = tmp_dir("traffic-ser");
    let dir_bnd = tmp_dir("traffic-bnd");
    let dir_par = tmp_dir("traffic-par");
    let ser = runner::run(&quiet(CampaignConfig {
        parallel: false,
        ..CampaignConfig::new("traffic", &dir_ser, scenarios.clone())
    }))
    .unwrap();
    let bnd = runner::run(&quiet(CampaignConfig {
        jobs: Some(2),
        ..CampaignConfig::new("traffic", &dir_bnd, scenarios.clone())
    }))
    .unwrap();
    let par = runner::run(&quiet(CampaignConfig::new("traffic", &dir_par, scenarios))).unwrap();

    assert_eq!(ser.summaries, bnd.summaries);
    assert_eq!(ser.summaries, par.summaries);
    for dir in [&dir_bnd, &dir_par] {
        assert_eq!(
            fs::read_to_string(dir_ser.join("campaign.csv")).unwrap(),
            fs::read_to_string(dir.join("campaign.csv")).unwrap()
        );
        for seed in 0..3 {
            assert_eq!(
                fs::read_to_string(dir_ser.join(format!("traffic-quick/seed{seed}.csv"))).unwrap(),
                fs::read_to_string(dir.join(format!("traffic-quick/seed{seed}.csv"))).unwrap()
            );
        }
    }

    // The per-seed artifact carries both the exact flow table and the
    // streamed delay-tail percentiles (acceptance: p50/p99/p999 rows).
    let seed_csv = fs::read_to_string(dir_ser.join("traffic-quick/seed0.csv")).unwrap();
    assert!(
        seed_csv.contains("flow,arrivals,delivered,ontime"),
        "{seed_csv}"
    );
    for row in [
        "flow-delay:f0_p50_slots",
        "flow-delay:f0_p99_slots",
        "flow-delay:f0_p999_slots",
        "flow-delay:f1_p50_slots",
        "flow-delay:delay_utility",
        "queue-tail:backlog_p99",
        "queue-tail:overflows",
    ] {
        assert!(seed_csv.contains(row), "missing {row} in:\n{seed_csv}");
    }
    // Headline traffic metrics aggregate across seeds.
    let s = ser
        .summaries
        .iter()
        .find(|s| s.name == "traffic-quick")
        .unwrap();
    for metric in ["arrivals", "delivered", "delay_utility"] {
        let (_, agg) = s
            .aggregates
            .iter()
            .find(|(m, _)| m == metric)
            .unwrap_or_else(|| panic!("missing aggregate {metric}"));
        assert_eq!(agg.runs, 3, "{metric}");
    }

    fs::remove_dir_all(&dir_ser).unwrap();
    fs::remove_dir_all(&dir_bnd).unwrap();
    fs::remove_dir_all(&dir_par).unwrap();
}

#[test]
fn scenario_observers_feed_campaign_aggregates() {
    // fig7-quick carries the comm-totals observer: its streamed metrics
    // must land in the manifest, campaign.csv, and the summary — produced
    // by the RoundObserver pipeline, not a RunResult field.
    let dir = tmp_dir("observers");
    let scenarios = registry::quick_registry();
    let outcome = runner::run(&quiet(CampaignConfig::new("quick", &dir, scenarios))).unwrap();

    let fig7 = outcome
        .summaries
        .iter()
        .find(|s| s.name == "fig7-quick")
        .unwrap();
    let (_, agg) = fig7
        .aggregates
        .iter()
        .find(|(m, _)| m == "comm-totals:decide_transmissions")
        .expect("observer metric aggregated across seeds");
    assert_eq!(agg.runs, 3);
    assert!(agg.mean > 0.0);
    // Both Fig. 7 contestants run every slot: 2 runs × horizon decisions.
    let horizon = mhca_core::experiments::Fig7Config::quick().horizon as f64;
    let (_, decisions) = fig7
        .aggregates
        .iter()
        .find(|(m, _)| m == "comm-totals:decisions")
        .unwrap();
    assert_eq!(decisions.mean, 2.0 * horizon);

    let campaign_csv = fs::read_to_string(dir.join("campaign.csv")).unwrap();
    assert!(campaign_csv.contains("comm-totals:decide_transmissions"));
    // The incremental decide phase streams its work counter too.
    assert!(campaign_csv.contains("comm-totals:decide_candidates_scanned"));
    let (_, scanned) = fig7
        .aggregates
        .iter()
        .find(|(m, _)| m == "comm-totals:decide_candidates_scanned")
        .expect("scanned-candidate metric aggregated across seeds");
    assert!(scanned.mean > 0.0);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_decide_scans_less_and_leaves_throughput_byte_identical() {
    // The observer pipeline under the new decide path: the same scenario
    // run with the incremental dirty-ball election and with the forced
    // full-rescan reference must stream *identical* communication and
    // throughput metrics — the protocols are bit-equal — while the
    // scanned-candidate work counter is strictly smaller incrementally.
    use mhca_bandit::policies::CsUcb;
    use mhca_core::runner::run_policy_observed;
    use mhca_core::{
        Algorithm2Config, DistributedPtasConfig, MetricTable, Network, ObserverKind, ObserverSet,
    };

    let net = Network::random(30, 3, 4.0, 0.1, 17);
    let run_with = |force_rescan: bool| {
        let dcfg = DistributedPtasConfig::default().with_force_rescan(force_rescan);
        let cfg = Algorithm2Config::default()
            .with_horizon(60)
            .with_decision(dcfg);
        let mut observers = ObserverSet::from_kinds(&[
            ObserverKind::CommTotals,
            ObserverKind::Throughput,
            ObserverKind::DecideTiming,
        ]);
        let run = run_policy_observed(&net, &cfg, &mut CsUcb::new(2.0), &mut observers);
        let mut metrics = MetricTable::new();
        observers.finish_into(&mut metrics);
        (run, metrics)
    };
    let (run_inc, m_inc) = run_with(false);
    let (run_ref, m_ref) = run_with(true);

    // The runs themselves are byte-identical (same winners, same comm
    // totals, same throughput series) — only the work differs.
    assert_eq!(run_inc, run_ref);
    for metric in [
        "throughput:avg_observed_kbps",
        "throughput:slots",
        "comm-totals:decide_transmissions",
        "comm-totals:decide_delivered",
        "comm-totals:decide_timeslots",
        "comm-totals:decisions",
    ] {
        assert_eq!(
            m_inc.get(metric),
            m_ref.get(metric),
            "{metric} must be identical across decide paths"
        );
    }
    let scanned_inc = m_inc.get("comm-totals:decide_candidates_scanned").unwrap();
    let scanned_ref = m_ref.get("comm-totals:decide_candidates_scanned").unwrap();
    assert!(
        scanned_inc < scanned_ref,
        "incremental path must scan strictly fewer candidates \
         ({scanned_inc} vs {scanned_ref})"
    );
    // DecideTiming streamed something sane on both paths (wall time is
    // machine-dependent, so only shape is asserted).
    for m in [&m_inc, &m_ref] {
        let ms = m.get("decide-timing:decide_ms_total").unwrap();
        assert!(ms.is_finite() && ms >= 0.0);
    }
}

#[test]
fn observer_zoo_metrics_are_identical_at_any_worker_count() {
    // The new observers (windowed-regret incl. its oracle decisions,
    // capture-stats, sensing-cost) are deterministic: serial, bounded,
    // and all-cores campaigns must produce byte-identical artifacts.
    let dirs: Vec<PathBuf> = ["zoo-serial", "zoo-jobs2", "zoo-par"]
        .iter()
        .map(|t| tmp_dir(t))
        .collect();
    let scenarios = observer_zoo_campaign();
    let run_at = |dir: &PathBuf, parallel: bool, jobs: Option<usize>| {
        runner::run(&quiet(CampaignConfig {
            parallel,
            jobs,
            ..CampaignConfig::new("zoo", dir, scenarios.clone())
        }))
        .unwrap()
    };
    let serial = run_at(&dirs[0], false, None);
    let bounded = run_at(&dirs[1], true, Some(2));
    let par = run_at(&dirs[2], true, None);

    assert_eq!(serial.summaries, bounded.summaries);
    assert_eq!(serial.summaries, par.summaries);
    for dir in &dirs[1..] {
        for rel in [
            "campaign.csv",
            "drift-mini/seed0.csv",
            "capture-mini/seed1.csv",
        ] {
            assert_eq!(
                fs::read_to_string(dirs[0].join(rel)).unwrap(),
                fs::read_to_string(dir.join(rel)).unwrap(),
                "{rel} differs from serial"
            );
        }
    }

    // The per-seed artifact carries the windowed-regret series as a CSV
    // section: one row per window, 6 windows at horizon 300 / window 50.
    let drift_csv = fs::read_to_string(dirs[0].join("drift-mini/seed0.csv")).unwrap();
    assert!(drift_csv.contains("observer_metric,value"));
    for w in 1..=6 {
        assert!(
            drift_csv.contains(&format!("windowed-regret:w{w:02}_regret_per_slot,")),
            "missing window {w} in artifact:\n{drift_csv}"
        );
    }
    // And the capture/sensing metrics land in the campaign aggregates.
    let campaign_csv = fs::read_to_string(dirs[0].join("campaign.csv")).unwrap();
    for metric in [
        "capture-stats:capture_rate",
        "capture-stats:outages",
        "sensing-cost:cost_total",
        "sensing-cost:kbps_per_unit_cost",
        "windowed-regret:windows",
    ] {
        assert!(campaign_csv.contains(metric), "missing {metric}");
    }

    for dir in &dirs {
        fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn ingested_scenario_file_runs_like_a_registry_scenario() {
    // The spec-ingestion path end to end at the library level: emit a
    // registry scenario as JSON (what `show` prints), mutate nothing,
    // re-ingest, and run it in a campaign.
    let dir = tmp_dir("ingested");
    let shown = registry::find("fig6-quick").unwrap();
    let text = shown.to_json().to_string_pretty();
    let parsed = mhca_campaign::ingest::scenarios_from_str(&text).unwrap();
    assert_eq!(parsed, vec![shown]);

    let outcome = runner::run(&quiet(CampaignConfig::new("custom", &dir, parsed))).unwrap();
    assert_eq!(outcome.executed, 3);
    assert!(dir.join("fig6-quick/seed61.csv").is_file());
    assert!(dir.join("fig6-quick/summary.csv").is_file());

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mismatched_spec_is_refused_unless_forced() {
    let dir = tmp_dir("mismatch");
    let quick_specs = registry::quick_registry();
    runner::run(&quiet(CampaignConfig::new(
        "quick",
        &dir,
        quick_specs.clone(),
    )))
    .unwrap();

    // Same directory, different spec: refused.
    let mut changed = quick_specs.clone();
    changed[0].seeds.count = 2;
    let err = runner::run(&quiet(CampaignConfig::new("quick", &dir, changed.clone())))
        .expect_err("spec mismatch must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // With force: starts fresh and succeeds.
    let outcome = runner::run(&quiet(CampaignConfig {
        force: true,
        ..CampaignConfig::new("quick", &dir, changed)
    }))
    .unwrap();
    assert_eq!(outcome.executed, 5); // 2 + 3 seeds
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn job_matrix_expansion_is_deterministic_and_complete() {
    let scenarios = registry::registry();
    let jobs = expand_jobs(&scenarios);
    let total: u64 = scenarios.iter().map(|s| s.seeds.count).sum();
    assert_eq!(jobs.len(), total as usize);
    assert_eq!(jobs, expand_jobs(&scenarios));
    // Scenario-major order: all of one scenario's seeds before the next.
    let mut seen = Vec::new();
    for job in &jobs {
        if seen.last() != Some(&job.scenario) {
            assert!(!seen.contains(&job.scenario), "interleaved scenario order");
            seen.push(job.scenario.clone());
        }
    }
    assert_eq!(seen.len(), scenarios.len());
}
