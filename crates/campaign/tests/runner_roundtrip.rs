//! End-to-end policy-state round-trip battery over the spec grid.
//!
//! The bandit-level battery (`mhca-bandit/tests/prop.rs`) proves each
//! policy restores bit-identically in isolation; this one proves the
//! *whole* Algorithm 2 run does — runner counters, ArmStats, RNG stream
//! position, policy state, loss-injection stream, and regret tracker —
//! **through the service's JSON checkpoint codec**: every checkpoint is
//! serialized to a JSON string and re-parsed before restoring, exactly as
//! a killed-and-restarted daemon would see it. The resumed `RunResult`
//! must match the uninterrupted one bit for bit.

use mhca_campaign::json;
use mhca_core::{
    Algorithm2Config, DistributedPtasConfig, Network, ObserverSet, PolicyRunConfig, PolicyRunner,
    PolicySpec, RunResult,
};
use mhca_graph::TopologySpec;
use mhca_service::checkpoint::{state_map_from_json, state_map_to_json};
use mhca_sim::LossSpec;
use proptest::prelude::*;

/// One point of the spec grid.
#[allow(clippy::too_many_arguments)]
fn config(
    n: usize,
    m: usize,
    horizon: u64,
    update_period: usize,
    policy: usize,
    topology: usize,
    lossy: bool,
    seed: u64,
) -> PolicyRunConfig {
    let policy = [
        PolicySpec::CsUcb { l: 2.0 },
        PolicySpec::Llr { l: 2.0 },
        PolicySpec::Thompson { sigma: 0.5 },
        PolicySpec::DiscountedCsUcb { gamma: 0.97 },
        PolicySpec::EpsilonGreedy { eps: 0.1 },
        PolicySpec::Random,
        PolicySpec::Oracle,
    ][policy];
    let topology = [
        TopologySpec::Line,
        TopologySpec::Ring,
        TopologySpec::Grid,
        TopologySpec::Star,
        TopologySpec::Complete,
    ][topology];
    let loss = if lossy {
        LossSpec::lossy(0.2, seed ^ 0x1055)
    } else {
        LossSpec::lossless()
    };
    PolicyRunConfig {
        n,
        m,
        horizon,
        update_period,
        policy,
        topology,
        loss,
        seed,
        ..PolicyRunConfig::default()
    }
}

/// Runs `cfg` through [`PolicyRunner`], optionally interrupting after
/// `stop_after` decision periods: the checkpoint is pushed through the
/// JSON codec (serialize → string → parse → deserialize) and restored
/// into a completely fresh runner/policy, which then finishes the run.
fn run_with_interruption(cfg: &PolicyRunConfig, stop_after: Option<u64>) -> RunResult {
    let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, cfg.seed);
    let dcfg = DistributedPtasConfig::default()
        .with_r(cfg.r)
        .with_max_minirounds(Some(cfg.minirounds))
        .with_loss_spec(cfg.loss)
        .with_partitions(cfg.partitions);
    let acfg = Algorithm2Config::default()
        .with_horizon(cfg.horizon)
        .with_update_period(cfg.update_period)
        .with_decision(dcfg)
        .with_seed(cfg.seed);
    let observers = ObserverSet::new();

    let mut policy = cfg.policy.build(&net);
    let mut runner = PolicyRunner::new(&net, &acfg, &observers);
    let mut periods = 0u64;
    while !runner.done() {
        if Some(periods) == stop_after {
            break;
        }
        let mut obs = ObserverSet::new();
        runner.step_period(policy.as_mut(), &mut obs);
        periods += 1;
    }
    if !runner.done() {
        // Kill the daemon: all that survives is the JSON text.
        let text = state_map_to_json(&runner.snapshot(policy.as_ref())).to_string_compact();
        drop(runner);
        drop(policy);

        let revived = state_map_from_json(&json::parse(&text).unwrap()).unwrap();
        let mut policy2 = cfg.policy.build(&net);
        let mut runner2 = PolicyRunner::new(&net, &acfg, &observers);
        runner2.restore(policy2.as_mut(), &revived).unwrap();
        while !runner2.done() {
            let mut obs = ObserverSet::new();
            runner2.step_period(policy2.as_mut(), &mut obs);
        }
        return runner2.finish(policy2.as_ref());
    }
    runner.finish(policy.as_ref())
}

/// Bitwise equality over every `RunResult` field.
fn assert_bit_identical(a: &RunResult, b: &RunResult) {
    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }
    prop_assert_eq!(&a.policy, &b.policy);
    prop_assert_eq!(a.slots, b.slots);
    prop_assert_eq!(&a.period_end_slots, &b.period_end_slots);
    prop_assert_eq!(
        bits(&a.avg_actual_throughput),
        bits(&b.avg_actual_throughput)
    );
    prop_assert_eq!(
        bits(&a.avg_estimated_throughput),
        bits(&b.avg_estimated_throughput)
    );
    prop_assert_eq!(bits(&a.practical_regret), bits(&b.practical_regret));
    prop_assert_eq!(
        bits(&a.practical_beta_regret),
        bits(&b.practical_beta_regret)
    );
    prop_assert_eq!(&a.final_strategy_vertices, &b.final_strategy_vertices);
    prop_assert_eq!(&a.per_vertex_tx, &b.per_vertex_tx);
    prop_assert_eq!(
        a.average_observed_kbps.to_bits(),
        b.average_observed_kbps.to_bits()
    );
    prop_assert_eq!(
        a.average_effective_kbps.to_bits(),
        b.average_effective_kbps.to_bits()
    );
    prop_assert_eq!(
        a.average_expected_kbps.to_bits(),
        b.average_expected_kbps.to_bits()
    );
    prop_assert_eq!(a.beta.to_bits(), b.beta.to_bits());
    prop_assert_eq!(a.comm.transmissions, b.comm.transmissions);
    prop_assert_eq!(a.comm.decisions, b.comm.decisions);
    prop_assert_eq!(a.seed, b.seed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resumed_run_result_is_bit_identical(
        n in 6usize..13,
        m in 2usize..4,
        horizon in 40u64..140,
        update_period in 1usize..4,
        policy in 0usize..7,
        topology in 0usize..5,
        lossy in 0u64..2,
        frac in 0u64..100,
        seed in 0u64..1 << 48,
    ) {
        let cfg = config(n, m, horizon, update_period, policy, topology, lossy == 1, seed);
        let baseline = run_with_interruption(&cfg, None);
        // Interrupt somewhere strictly inside the run (period 1..last).
        let periods = baseline.period_end_slots.len() as u64;
        let stop = 1 + frac * periods.saturating_sub(1) / 100;
        let resumed = run_with_interruption(&cfg, Some(stop.min(periods.saturating_sub(1)).max(1)));
        assert_bit_identical(&baseline, &resumed);
    }
}
