//! Graceful-interrupt contract of the batch runner: a SIGINT/SIGTERM
//! mid-campaign checkpoints the manifest and exits `Interrupted`, and the
//! identical rerun resumes from the checkpoint instead of recomputing.
//!
//! This lives in its own integration binary because the shutdown flag is
//! process-global — sharing a test process with other campaign runs would
//! cancel them too.

use mhca_campaign::{runner, CampaignConfig, Manifest};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;
use std::{fs, thread};

const SPEC: &str = r#"{
    "name": "sig",
    "spec": {"kind": "policy-run", "n": 8, "m": 3, "horizon": 60},
    "seeds": {"count": 4}
}"#;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhca-signal-interrupt-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigint_checkpoints_manifest_and_rerun_resumes() {
    let dir = scratch_dir();
    let scenarios = mhca_campaign::scenarios_from_str(SPEC).unwrap();
    let cfg = CampaignConfig {
        parallel: false,
        quiet: true,
        ..CampaignConfig::new("sig", &dir, scenarios)
    };

    // Deliver a real SIGINT (via kill(1), exercising the installed
    // handler, not just the flag) and wait for it to land.
    let flag = mhca_service::signals::install();
    let status = std::process::Command::new("kill")
        .args(["-INT", &std::process::id().to_string()])
        .status()
        .expect("kill(1) available");
    assert!(status.success());
    for _ in 0..200 {
        if flag.load(Ordering::Relaxed) {
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    assert!(
        mhca_service::signals::shutdown_requested(),
        "SIGINT handler never fired"
    );

    // The run commits its first job, notices the flag, checkpoints, and
    // surfaces `Interrupted`.
    let err = runner::run(&cfg).expect_err("interrupted run must not succeed");
    assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    let manifest = Manifest::load(&dir)
        .unwrap()
        .expect("manifest checkpointed");
    let (done, pending) = manifest.progress();
    assert_eq!((done, pending), (1, 3));

    // Clearing the flag and rerunning the identical command resumes from
    // the checkpoint: the committed job is skipped, the rest execute.
    mhca_service::signals::reset_for_tests();
    let outcome = runner::run(&cfg).expect("resumed run completes");
    assert_eq!(outcome.executed, 3);
    assert_eq!(outcome.skipped, 1);
    let (done, pending) = outcome.manifest.progress();
    assert_eq!((done, pending), (4, 0));

    let _ = fs::remove_dir_all(&dir);
}
