//! The standing telemetry contract, end to end: a traced campaign emits
//! a line-parseable `events.jsonl` with campaign/scenario/job spans and
//! per-phase histograms — while every artifact CSV stays byte-identical
//! to the untraced run of the same campaign.

use mhca_campaign::json::{self, Json};
use mhca_campaign::runner::{self, CampaignConfig};
use mhca_campaign::{registry, tail};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Fresh temp directory per test (process-unique + tag-unique).
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhca-telemetry-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// All files under `dir` with the given extension, keyed by path
/// relative to `dir`.
fn files_by_ext(dir: &Path, ext: &str) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == ext) {
                let rel = path.strip_prefix(dir).unwrap().display().to_string();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    out
}

#[test]
fn traced_quick_registry_is_byte_identical_and_emits_parseable_events() {
    let plain_dir = tmp_dir("plain");
    let traced_dir = tmp_dir("traced");
    let scenarios = registry::quick_registry();

    let plain = CampaignConfig {
        quiet: true,
        ..CampaignConfig::new("quick", &plain_dir, scenarios.clone())
    };
    runner::run(&plain).unwrap();

    let traced = CampaignConfig {
        quiet: true,
        trace: true,
        progress: true,
        ..CampaignConfig::new("quick", &traced_dir, scenarios)
    };
    runner::run(&traced).unwrap();

    // ---- The contract: telemetry on or off, every artifact CSV is
    // byte-identical.
    let plain_csvs = files_by_ext(&plain_dir, "csv");
    let traced_csvs = files_by_ext(&traced_dir, "csv");
    assert!(!plain_csvs.is_empty(), "campaign produced no CSV artifacts");
    assert_eq!(
        plain_csvs.keys().collect::<Vec<_>>(),
        traced_csvs.keys().collect::<Vec<_>>(),
        "trace changed the artifact file set"
    );
    for (rel, bytes) in &plain_csvs {
        assert_eq!(
            bytes, &traced_csvs[rel],
            "{rel} differs between traced and untraced runs"
        );
    }

    // ---- events.jsonl: every line parses, and the span/hist/heartbeat
    // families the schema promises are all present.
    let events = fs::read_to_string(traced_dir.join("events.jsonl")).unwrap();
    let mut kinds_names: Vec<(String, String)> = Vec::new();
    for (i, line) in events.lines().enumerate() {
        let event =
            json::parse(line).unwrap_or_else(|e| panic!("events.jsonl line {}: {e}", i + 1));
        let get = |k: &str| {
            event
                .get(k)
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("line {} lacks string '{k}'", i + 1))
                .to_string()
        };
        kinds_names.push((get("kind"), get("name")));
    }
    let has = |kind: &str, name: &str| kinds_names.iter().any(|(k, n)| k == kind && n == name);
    assert!(has("span_end", "campaign"), "no campaign span");
    assert!(has("span_end", "scenario"), "no scenario span");
    assert!(has("span_end", "job"), "no job span");
    assert!(has("hist", "phase.decide"), "no decide-phase histogram");
    assert!(has("hist", "phase.wb"), "no wb-phase histogram");
    assert!(has("counter", "rounds"), "no rounds counter");
    assert!(
        has("counter", "comm.decisions"),
        "no streamed CommTotals counter (fig7-quick declares the observer)"
    );
    assert!(has("progress", "heartbeat"), "no progress heartbeat");
    // Histogram events carry percentile fields.
    let hist_line = events
        .lines()
        .find(|l| l.contains("\"kind\": \"hist\"") || l.contains("\"kind\":\"hist\""))
        .expect("at least one hist event");
    for field in ["\"p50\"", "\"p99\"", "\"p999\"", "\"buckets\""] {
        assert!(
            hist_line.contains(field),
            "hist event lacks {field}: {hist_line}"
        );
    }

    // ---- progress.json reflects the finished campaign.
    let progress = json::parse(&fs::read_to_string(traced_dir.join("progress.json")).unwrap())
        .expect("progress.json parses");
    let done = progress.get("done").and_then(Json::as_u64).unwrap();
    let total = progress.get("total").and_then(Json::as_u64).unwrap();
    assert_eq!(done, total, "final progress.json not at completion");
    assert_eq!(total, 6, "quick registry is 2 scenarios x 3 seeds");

    // ---- manifest.json carries the provenance stamp.
    let manifest = json::parse(&fs::read_to_string(traced_dir.join("manifest.json")).unwrap())
        .expect("manifest.json parses");
    let provenance = manifest.get("provenance").expect("provenance object");
    assert!(
        provenance
            .get("host_threads")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    assert!(provenance.get("rustc").and_then(Json::as_str).is_some());

    // ---- `tail` renders the stream into the per-scenario table.
    let mut rendered = Vec::new();
    tail::tail_dir(&traced_dir, &mut rendered).unwrap();
    let rendered = String::from_utf8(rendered).unwrap();
    for needle in ["fig6-quick", "fig7-quick", "decide", "p99", "3 job(s)"] {
        assert!(
            rendered.contains(needle),
            "tail output lacks '{needle}':\n{rendered}"
        );
    }
}
