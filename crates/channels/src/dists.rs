//! In-crate samplers for the distributions the channel models need.
//!
//! Only `rand`'s uniform primitives are assumed; Gaussian, Gamma, and Beta
//! variates are generated with classic textbook methods (Box–Muller and
//! Marsaglia–Tsang) so no extra dependency is required.

use rand::Rng;

/// Standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0); `gen` yields [0, 1), so flip to (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev < 0` or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(mean: f64, std_dev: f64, rng: &mut R) -> f64 {
    assert!(mean.is_finite() && std_dev.is_finite(), "non-finite params");
    assert!(std_dev >= 0.0, "negative standard deviation");
    mean + std_dev * standard_normal(rng)
}

/// Gamma(shape `k`, scale 1) variate via Marsaglia–Tsang (2000), with the
/// standard boosting trick for `k < 1`.
///
/// # Panics
///
/// Panics if `k <= 0` or non-finite.
pub fn gamma<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
    assert!(k.is_finite() && k > 0.0, "shape must be positive");
    if k < 1.0 {
        // Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
        let u: f64 = 1.0 - rng.gen::<f64>();
        return gamma(k + 1.0, rng) * u.powf(1.0 / k);
    }
    let d = k - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = 1.0 - rng.gen::<f64>();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(α, β) variate via the Gamma ratio.
///
/// # Panics
///
/// Panics if either parameter is non-positive or non-finite.
pub fn beta<R: Rng + ?Sized>(alpha: f64, b: f64, rng: &mut R) -> f64 {
    let x = gamma(alpha, rng);
    let y = gamma(b, rng);
    x / (x + y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_shift_and_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..100_000).map(|_| normal(5.0, 2.0, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let k = 2.5;
        let samples: Vec<f64> = (0..200_000).map(|_| gamma(k, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - k).abs() < 0.05, "mean {mean}");
        assert!((var - k).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let k = 0.5;
        let samples: Vec<f64> = (0..200_000).map(|_| gamma(k, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - k).abs() < 0.05, "mean {mean}");
        assert!((var - k).abs() < 0.2, "var {var}");
    }

    #[test]
    fn beta_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let (a, b) = (2.0, 5.0);
        let samples: Vec<f64> = (0..200_000).map(|_| beta(a, b, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        let expect_mean = a / (a + b);
        let expect_var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((mean - expect_mean).abs() < 0.01, "mean {mean}");
        assert!((var - expect_var).abs() < 0.01, "var {var}");
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_zero_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = gamma(0.0, &mut rng);
    }
}
