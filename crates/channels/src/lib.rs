//! Stochastic channel-quality substrate for cognitive-radio simulation.
//!
//! The paper assumes each (node, channel) pair `(i, j)` has a data rate
//! `ξ_{i,j}(t)` drawn from an i.i.d. stochastic process with unknown mean
//! `µ_{i,j}` (Section II), and its simulations use "8 types of channels with
//! data rates 150, 225, 300, 450, 600, 900, 1200, 1350 kbps … each channel
//! evolves as a distinct i.i.d. Gaussian stochastic process" (Section V).
//!
//! This crate provides:
//!
//! * [`ChannelProcess`] — an object-safe distribution trait with
//!   implementations: [`process::Constant`], [`process::Bernoulli`],
//!   [`process::TruncatedGaussian`] (the paper's choice),
//!   [`process::Uniform`], [`process::Beta`].
//! * [`adversarial`] — non-stochastic processes (sinusoidal, switching,
//!   ramp, piecewise-stationary drift) for the paper's future-work
//!   extension (Section VII); the drifting family backs the campaign's
//!   windowed-regret scenarios.
//! * [`ChannelMatrix`] — the `N×M` bank of processes with **counter-based
//!   deterministic sampling**: the value observed on vertex `k` at slot `t`
//!   is a pure function of `(seed, k, t)`, so two learning policies compared
//!   on the same matrix observe identical realizations (paired comparison,
//!   as in the paper's Fig. 7/8).
//! * [`rates`] — the paper's 8 rate classes and helpers.
//!
//! # Example
//!
//! ```
//! use mhca_channels::{ChannelMatrix, rates};
//!
//! // 4 nodes × 3 channels with truncated-Gaussian rates from the paper's
//! // rate classes, fully determined by the seed.
//! let m = ChannelMatrix::gaussian_from_rate_classes(4, 3, 0.1, 42);
//! assert_eq!(m.n_vertices(), 12);
//! let x = m.value(0, 5);
//! assert_eq!(x, m.value(0, 5)); // deterministic in (t, vertex)
//! assert!(rates::PAPER_RATE_CLASSES.contains(&m.mean(5)));
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod dists;
pub mod matrix;
pub mod process;
pub mod rates;
pub mod spec;

pub use matrix::ChannelMatrix;
pub use process::ChannelProcess;
pub use spec::ChannelModelSpec;
