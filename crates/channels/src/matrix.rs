//! The `N×M` channel matrix with counter-based deterministic sampling.

use crate::{
    process::{ChannelProcess, TruncatedGaussian},
    rates,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// SplitMix64 finalizer — a tiny, high-quality mixing function used to
/// derive an independent RNG stream per `(slot, vertex)` pair.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The bank of `N×M` channel processes, one per virtual vertex of the
/// extended conflict graph `H`, indexed by `vertex = node·M + channel`.
///
/// # Determinism
///
/// [`ChannelMatrix::value`] is a pure function of `(seed, t, vertex)`: the
/// per-call RNG is derived with a counter-based mix, so comparing two
/// learning policies on the same matrix is a *paired* experiment — both see
/// identical channel realizations on the vertices they happen to select, as
/// in the paper's Fig. 7/8 comparisons against LLR.
///
/// # Example
///
/// ```
/// use mhca_channels::ChannelMatrix;
///
/// let m = ChannelMatrix::gaussian_from_rate_classes(10, 5, 0.1, 7);
/// let means = m.means();
/// assert_eq!(means.len(), 50);
/// // Means come from the paper's rate classes.
/// assert!(means.iter().all(|&x| x >= 150.0 && x <= 1350.0));
/// ```
#[derive(Debug, Clone)]
pub struct ChannelMatrix {
    processes: Vec<Box<dyn ChannelProcess>>,
    n_nodes: usize,
    n_channels: usize,
    seed: u64,
}

impl ChannelMatrix {
    /// Builds a matrix from explicit processes (length must be `n·m`,
    /// indexed `node·m + channel`).
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != n·m` or `n·m == 0`.
    pub fn from_processes(
        n: usize,
        m: usize,
        processes: Vec<Box<dyn ChannelProcess>>,
        seed: u64,
    ) -> Self {
        assert!(n * m > 0, "empty matrix");
        assert_eq!(processes.len(), n * m, "need one process per vertex");
        ChannelMatrix {
            processes,
            n_nodes: n,
            n_channels: m,
            seed,
        }
    }

    /// The paper's simulation workload: each (node, channel) pair gets a
    /// truncated-Gaussian process whose mean is drawn uniformly from the 8
    /// rate classes, with `sigma = sigma_frac · mean`.
    ///
    /// # Panics
    ///
    /// Panics if `n·m == 0` or `sigma_frac < 0`.
    pub fn gaussian_from_rate_classes(n: usize, m: usize, sigma_frac: f64, seed: u64) -> Self {
        assert!(sigma_frac >= 0.0, "negative sigma fraction");
        ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, _vertex| {
            Box::new(TruncatedGaussian::symmetric(mu, sigma_frac * mu))
        })
    }

    /// Generic rate-class workload: draws one mean per vertex uniformly
    /// from the paper's 8 rate classes (same seed stream as
    /// [`ChannelMatrix::gaussian_from_rate_classes`], so swapping the
    /// process family keeps the mean matrix identical) and builds each
    /// vertex's process with `make(mean, vertex)`.
    ///
    /// # Panics
    ///
    /// Panics if `n·m == 0`.
    pub fn from_rate_class_draws(
        n: usize,
        m: usize,
        seed: u64,
        mut make: impl FnMut(f64, usize) -> Box<dyn ChannelProcess>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xC0FF_EE00));
        let processes: Vec<Box<dyn ChannelProcess>> = (0..n * m)
            .map(|vertex| {
                let mu =
                    rates::PAPER_RATE_CLASSES[rng.gen_range(0..rates::PAPER_RATE_CLASSES.len())];
                make(mu, vertex)
            })
            .collect();
        ChannelMatrix::from_processes(n, m, processes, seed)
    }

    /// Number of nodes `N`.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of channels `M`.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Number of vertices `N·M` (the arm count `K`).
    pub fn n_vertices(&self) -> usize {
        self.processes.len()
    }

    /// The process attached to `vertex`.
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is out of range.
    pub fn process(&self, vertex: usize) -> &dyn ChannelProcess {
        self.processes[vertex].as_ref()
    }

    /// Mean rate `µ_k` of `vertex`.
    pub fn mean(&self, vertex: usize) -> f64 {
        self.processes[vertex].mean()
    }

    /// All means, indexed by vertex — the weight vector of the paper's
    /// optimal MWIS problem, Eq. (2).
    pub fn means(&self) -> Vec<f64> {
        self.processes.iter().map(|p| p.mean()).collect()
    }

    /// Instantaneous design mean of `vertex` at slot `t` — equals
    /// [`ChannelMatrix::mean`] for i.i.d. processes, the scheduled level
    /// for deterministic adversarial/drifting ones (see
    /// [`ChannelProcess::mean_at`]).
    pub fn mean_at(&self, t: u64, vertex: usize) -> f64 {
        self.processes[vertex].mean_at(t)
    }

    /// All instantaneous means at slot `t`, written into a caller-owned
    /// buffer (cleared first) — the weight vector of the drift oracle's
    /// per-period MWIS problem, kept allocation-free on the runner's hot
    /// path.
    pub fn means_at_into(&self, t: u64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.processes.iter().map(|p| p.mean_at(t)));
    }

    /// Largest mean in the matrix (useful as a normalization constant and
    /// as the exploration bonus for unplayed arms).
    pub fn max_mean(&self) -> f64 {
        self.means().into_iter().fold(0.0, f64::max)
    }

    /// The rate observed on `vertex` at slot `t` — deterministic in
    /// `(seed, t, vertex)`.
    ///
    /// # Panics
    ///
    /// Panics if `vertex` is out of range.
    pub fn value(&self, t: u64, vertex: usize) -> f64 {
        let stream = splitmix64(
            self.seed
                ^ splitmix64((vertex as u64) << 32 | 0xA5A5)
                ^ splitmix64(t.wrapping_mul(0x9E37)),
        );
        let mut rng = StdRng::seed_from_u64(stream);
        self.processes[vertex].sample(t, &mut rng)
    }

    /// Observes all vertices of a selected set at slot `t`, returning
    /// `(vertex, rate)` pairs.
    pub fn observe(&self, t: u64, vertices: &[usize]) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(vertices.len());
        self.observe_into(t, vertices, &mut out);
        out
    }

    /// As [`ChannelMatrix::observe`], writing into a caller-owned buffer
    /// (cleared first) — the per-slot hot path of the Algorithm 2 runner.
    pub fn observe_into(&self, t: u64, vertices: &[usize], out: &mut Vec<(usize, f64)>) {
        out.clear();
        out.extend(vertices.iter().map(|&v| (v, self.value(t, v))));
    }

    /// Seed this matrix was built with (recorded in experiment outputs).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Constant;

    #[test]
    fn value_is_deterministic() {
        let m = ChannelMatrix::gaussian_from_rate_classes(5, 4, 0.1, 99);
        for t in [0u64, 1, 17, 1000] {
            for v in 0..20 {
                assert_eq!(m.value(t, v), m.value(t, v));
            }
        }
    }

    #[test]
    fn distinct_slots_give_distinct_draws() {
        let m = ChannelMatrix::gaussian_from_rate_classes(2, 2, 0.1, 3);
        // With a continuous distribution, repeated values across slots would
        // betray a broken PRF.
        let a = m.value(0, 0);
        let b = m.value(1, 0);
        let c = m.value(2, 0);
        assert!(a != b || b != c, "suspiciously constant stream");
    }

    #[test]
    fn distinct_vertices_are_decorrelated() {
        let m = ChannelMatrix::gaussian_from_rate_classes(2, 2, 0.5, 5);
        let xs: Vec<f64> = (0..4).map(|v| m.value(0, v)).collect();
        let all_same = xs.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same);
    }

    #[test]
    fn identical_seeds_reproduce_the_matrix() {
        let a = ChannelMatrix::gaussian_from_rate_classes(6, 3, 0.1, 1234);
        let b = ChannelMatrix::gaussian_from_rate_classes(6, 3, 0.1, 1234);
        assert_eq!(a.means(), b.means());
        for v in 0..18 {
            assert_eq!(a.value(7, v), b.value(7, v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChannelMatrix::gaussian_from_rate_classes(6, 3, 0.1, 1);
        let b = ChannelMatrix::gaussian_from_rate_classes(6, 3, 0.1, 2);
        assert_ne!(a.means(), b.means());
    }

    #[test]
    fn empirical_mean_converges_to_process_mean() {
        let m = ChannelMatrix::gaussian_from_rate_classes(1, 1, 0.1, 42);
        let mu = m.mean(0);
        let n = 20_000;
        let avg: f64 = (0..n).map(|t| m.value(t as u64, 0)).sum::<f64>() / n as f64;
        assert!((avg - mu).abs() < 0.02 * mu, "empirical {avg} vs mean {mu}");
    }

    #[test]
    fn observe_returns_pairs_in_order() {
        let procs: Vec<Box<dyn ChannelProcess>> = vec![
            Box::new(Constant::new(1.0)),
            Box::new(Constant::new(2.0)),
            Box::new(Constant::new(3.0)),
            Box::new(Constant::new(4.0)),
        ];
        let m = ChannelMatrix::from_processes(2, 2, procs, 0);
        let obs = m.observe(5, &[3, 0]);
        assert_eq!(obs, vec![(3, 4.0), (0, 1.0)]);
    }

    #[test]
    fn max_mean_over_constants() {
        let procs: Vec<Box<dyn ChannelProcess>> =
            vec![Box::new(Constant::new(1.0)), Box::new(Constant::new(9.0))];
        let m = ChannelMatrix::from_processes(1, 2, procs, 0);
        assert_eq!(m.max_mean(), 9.0);
    }

    #[test]
    #[should_panic(expected = "one process per vertex")]
    fn from_processes_checks_length() {
        let procs: Vec<Box<dyn ChannelProcess>> = vec![Box::new(Constant::new(1.0))];
        let _ = ChannelMatrix::from_processes(2, 2, procs, 0);
    }
}
