//! The [`ChannelProcess`] trait and its stochastic implementations.

use crate::dists;
use rand::RngCore;
use std::fmt::Debug;

/// A channel-quality process: the data rate `ξ(t)` observed when a vertex
/// transmits at slot `t`.
///
/// Implementations must be **stateless**: the sample may depend on the slot
/// index `t` (adversarial processes do) and on the provided RNG, but not on
/// interior mutability. This makes realizations reproducible and lets the
/// [`crate::ChannelMatrix`] derive the per-`(vertex, t)` randomness from a
/// counter-based PRF.
pub trait ChannelProcess: Debug + Send + Sync {
    /// Draws the rate observed at slot `t`.
    ///
    /// For i.i.d. processes the result ignores `t`; for adversarial ones it
    /// is a deterministic (or randomized) function of `t`.
    fn sample(&self, t: u64, rng: &mut dyn RngCore) -> f64;

    /// The process mean `µ` — for adversarial processes, the long-run
    /// average rate.
    fn mean(&self) -> f64;

    /// The *instantaneous* design mean at slot `t`.
    ///
    /// For i.i.d. processes this equals [`ChannelProcess::mean`] (the
    /// default); deterministic adversarial processes (sinusoidal,
    /// switching, ramp, drifting) override it with the value the schedule
    /// takes at `t`. The Algorithm 2 runner uses it to price the
    /// windowed-regret oracle under non-stationary channels.
    fn mean_at(&self, _t: u64) -> f64 {
        self.mean()
    }

    /// Clones into a boxed trait object (object-safe `Clone` substitute).
    fn clone_box(&self) -> Box<dyn ChannelProcess>;
}

impl Clone for Box<dyn ChannelProcess> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Degenerate process: always exactly `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    /// The constant rate returned by every sample.
    pub rate: f64,
}

impl Constant {
    /// Creates a constant-rate process.
    pub fn new(rate: f64) -> Self {
        Constant { rate }
    }
}

impl ChannelProcess for Constant {
    fn sample(&self, _t: u64, _rng: &mut dyn RngCore) -> f64 {
        self.rate
    }
    fn mean(&self) -> f64 {
        self.rate
    }
    fn clone_box(&self) -> Box<dyn ChannelProcess> {
        Box::new(*self)
    }
}

/// Bernoulli process: rate `peak` with probability `p`, else `0`.
///
/// This is the classical good/bad channel model of the single-user MAB
/// literature the paper cites (its refs 21 and 22).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    /// Success probability.
    pub p: f64,
    /// Rate delivered on success.
    pub peak: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli process.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]` or `peak < 0`.
    pub fn new(p: f64, peak: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(peak >= 0.0, "peak must be non-negative");
        Bernoulli { p, peak }
    }
}

impl ChannelProcess for Bernoulli {
    fn sample(&self, _t: u64, rng: &mut dyn RngCore) -> f64 {
        let u = rand::Rng::gen::<f64>(rng);
        if u < self.p {
            self.peak
        } else {
            0.0
        }
    }
    fn mean(&self) -> f64 {
        self.p * self.peak
    }
    fn clone_box(&self) -> Box<dyn ChannelProcess> {
        Box::new(*self)
    }
}

/// Gaussian process truncated (by clamping) to `[lo, hi]`.
///
/// The paper's simulations use i.i.d. Gaussian rates; clamping keeps rates
/// physical (non-negative, bounded) while leaving the mean essentially
/// unchanged for moderate σ because the default bounds are symmetric about
/// the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGaussian {
    /// Mean of the underlying Gaussian.
    pub mu: f64,
    /// Standard deviation of the underlying Gaussian.
    pub sigma: f64,
    /// Lower clamp bound.
    pub lo: f64,
    /// Upper clamp bound.
    pub hi: f64,
}

impl TruncatedGaussian {
    /// Gaussian with symmetric clamp `[0, 2µ]`, preserving the mean.
    ///
    /// # Panics
    ///
    /// Panics if `mu < 0` or `sigma < 0`.
    pub fn symmetric(mu: f64, sigma: f64) -> Self {
        assert!(mu >= 0.0, "mean must be non-negative");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        TruncatedGaussian {
            mu,
            sigma,
            lo: 0.0,
            hi: 2.0 * mu,
        }
    }

    /// Gaussian with explicit clamp bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `sigma < 0`.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid clamp bounds");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        TruncatedGaussian { mu, sigma, lo, hi }
    }
}

impl ChannelProcess for TruncatedGaussian {
    fn sample(&self, _t: u64, rng: &mut dyn RngCore) -> f64 {
        dists::normal(self.mu, self.sigma, rng).clamp(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        // Symmetric clamping about µ keeps the mean; the tiny asymmetric
        // case (µ outside [lo,hi] midpoint) is ignored by design — tests
        // verify the error is negligible for the σ used in experiments.
        self.mu.clamp(self.lo, self.hi)
    }
    fn clone_box(&self) -> Box<dyn ChannelProcess> {
        Box::new(*self)
    }
}

/// Uniform process on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (exclusive).
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform process on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid bounds");
        Uniform { lo, hi }
    }
}

impl ChannelProcess for Uniform {
    fn sample(&self, _t: u64, rng: &mut dyn RngCore) -> f64 {
        let u = rand::Rng::gen::<f64>(rng);
        self.lo + u * (self.hi - self.lo)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn clone_box(&self) -> Box<dyn ChannelProcess> {
        Box::new(*self)
    }
}

/// Beta(α, β) process scaled by `scale` — a bounded, skewed rate model on
/// `[0, scale]`, handy for heterogeneous channel-quality scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    /// Alpha shape parameter.
    pub alpha: f64,
    /// Beta shape parameter.
    pub beta: f64,
    /// Output scale: samples lie in `[0, scale]`.
    pub scale: f64,
}

impl Beta {
    /// Creates a scaled Beta process.
    ///
    /// # Panics
    ///
    /// Panics if shapes are non-positive or `scale < 0`.
    pub fn new(alpha: f64, beta: f64, scale: f64) -> Self {
        assert!(alpha > 0.0 && beta > 0.0, "shapes must be positive");
        assert!(scale >= 0.0, "scale must be non-negative");
        Beta { alpha, beta, scale }
    }
}

impl ChannelProcess for Beta {
    fn sample(&self, _t: u64, rng: &mut dyn RngCore) -> f64 {
        dists::beta(self.alpha, self.beta, rng) * self.scale
    }
    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta) * self.scale
    }
    fn clone_box(&self) -> Box<dyn ChannelProcess> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn empirical_mean(p: &dyn ChannelProcess, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|t| p.sample(t as u64, &mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let p = Constant::new(3.5);
        let mut rng = StdRng::seed_from_u64(0);
        for t in 0..10 {
            assert_eq!(p.sample(t, &mut rng), 3.5);
        }
        assert_eq!(p.mean(), 3.5);
    }

    #[test]
    fn bernoulli_mean_matches() {
        let p = Bernoulli::new(0.3, 10.0);
        assert_eq!(p.mean(), 3.0);
        let m = empirical_mean(&p, 100_000, 1);
        assert!((m - 3.0).abs() < 0.1, "empirical {m}");
    }

    #[test]
    fn truncated_gaussian_mean_preserved_for_moderate_sigma() {
        let p = TruncatedGaussian::symmetric(600.0, 60.0);
        let m = empirical_mean(&p, 100_000, 2);
        assert!((m - 600.0).abs() < 2.0, "empirical {m}");
        assert_eq!(p.mean(), 600.0);
    }

    #[test]
    fn truncated_gaussian_respects_bounds() {
        let p = TruncatedGaussian::new(1.0, 5.0, 0.0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..10_000 {
            let x = p.sample(t, &mut rng);
            assert!((0.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean() {
        let p = Uniform::new(2.0, 6.0);
        assert_eq!(p.mean(), 4.0);
        let m = empirical_mean(&p, 100_000, 4);
        assert!((m - 4.0).abs() < 0.05, "empirical {m}");
    }

    #[test]
    fn beta_mean_scaled() {
        let p = Beta::new(2.0, 2.0, 100.0);
        assert_eq!(p.mean(), 50.0);
        let m = empirical_mean(&p, 100_000, 5);
        assert!((m - 50.0).abs() < 1.0, "empirical {m}");
    }

    #[test]
    fn boxed_clone_preserves_behavior() {
        let p: Box<dyn ChannelProcess> = Box::new(Bernoulli::new(0.5, 2.0));
        let q = p.clone();
        assert_eq!(q.mean(), 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_rejects_bad_p() {
        let _ = Bernoulli::new(1.5, 1.0);
    }
}
