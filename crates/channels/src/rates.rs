//! The paper's channel rate classes.
//!
//! Section V: "We set 8 types of channels with data rates (units kbps) 150,
//! 225, 300, 450, 600, 900, 1200, and 1350 respectively", citing the
//! 802.11a-style rate set of its reference 12.

/// The 8 rate classes of the paper's simulations, in kbps.
pub const PAPER_RATE_CLASSES: [f64; 8] = [150.0, 225.0, 300.0, 450.0, 600.0, 900.0, 1200.0, 1350.0];

/// Maximum rate class — the natural normalization constant mapping rates to
/// the `[0, 1]` reward range the MAB analysis assumes.
pub const MAX_RATE: f64 = 1350.0;

/// Normalizes a rate in kbps to the `[0, 1]` reward range.
pub fn to_unit(rate_kbps: f64) -> f64 {
    rate_kbps / MAX_RATE
}

/// Converts a `[0, 1]` reward back to kbps.
pub fn from_unit(reward: f64) -> f64 {
    reward * MAX_RATE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_positive() {
        for w in PAPER_RATE_CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(PAPER_RATE_CLASSES.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn max_rate_is_last_class() {
        assert_eq!(MAX_RATE, *PAPER_RATE_CLASSES.last().unwrap());
    }

    #[test]
    fn unit_roundtrip() {
        for &r in &PAPER_RATE_CLASSES {
            assert!((from_unit(to_unit(r)) - r).abs() < 1e-9);
            assert!((0.0..=1.0).contains(&to_unit(r)));
        }
    }
}
