//! Declarative channel-model specs — enum-dispatched [`ChannelMatrix`]
//! construction for spec-driven experiment campaigns.
//!
//! A `(spec, n, m, seed)` quadruple fully determines the channel matrix.
//! Every family draws its per-vertex **means** from the paper's 8 rate
//! classes with the same seed stream as
//! [`ChannelMatrix::gaussian_from_rate_classes`], so switching the process
//! family (stochastic ↔ adversarial) keeps the mean matrix — and hence the
//! optimal strategy — identical. That is exactly what a campaign sweeping
//! the channel-model axis wants: same planning problem, different
//! realization dynamics.

use crate::{
    adversarial::{Drift, Ramp, Sinusoidal, Switching},
    matrix::ChannelMatrix,
    process::{Bernoulli, Constant, Uniform},
};
use serde::{Deserialize, Serialize};

/// Declarative channel-model family.
///
/// # Example
///
/// A `(spec, n, m, seed)` quadruple fully determines the matrix, and every
/// family shares the Gaussian family's mean matrix at the same seed:
///
/// ```
/// use mhca_channels::ChannelModelSpec;
///
/// let gaussian = ChannelModelSpec::default(); // the paper's σ = 0.1µ
/// let drifting = ChannelModelSpec::Drifting {
///     shift_frac: 0.5,
///     breakpoints: vec![500, 1000],
///     ramp: 0,
/// };
/// assert_eq!(
///     gaussian.build(4, 3, 7).means(),
///     drifting.build(4, 3, 7).means(),
/// );
/// // The drifting family's *instantaneous* mean flips at each breakpoint.
/// let m = drifting.build(4, 3, 7);
/// assert_ne!(m.mean_at(0, 0), m.mean_at(500, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChannelModelSpec {
    /// The paper's Section V workload: truncated-Gaussian rates with
    /// `σ = sigma_frac · µ` around rate-class means.
    GaussianRateClasses {
        /// Noise scale as a fraction of each mean.
        sigma_frac: f64,
    },
    /// Degenerate noiseless rates — every sample equals the mean. Useful
    /// for isolating decision quality from learning noise.
    ConstantRateClasses,
    /// On/off channels: rate `µ/p` with probability `p`, else 0 (mean
    /// preserved). The high-variance stress case for index policies.
    BernoulliRateClasses {
        /// Success probability `p ∈ (0, 1]`.
        p: f64,
    },
    /// Uniform rates on `[µ·(1−spread), µ·(1+spread)]` (mean preserved).
    UniformRateClasses {
        /// Half-width as a fraction of the mean, in `[0, 1]`.
        spread_frac: f64,
    },
    /// Oblivious adversary (Section VII future work): sinusoidal rates
    /// `µ + amp_frac·µ·sin(2πt/period)`, phase-staggered per vertex.
    AdversarialSinusoidal {
        /// Oscillation amplitude as a fraction of the mean, in `[0, 1]`.
        amp_frac: f64,
        /// Period in slots.
        period: u64,
    },
    /// Oblivious adversary: square wave between `(1+swing)·µ` and
    /// `(1−swing)·µ` every `dwell` slots (long-run mean `µ`).
    AdversarialSwitching {
        /// Swing as a fraction of the mean, in `[0, 1]`.
        swing_frac: f64,
        /// Phase length in slots.
        dwell: u64,
    },
    /// Oblivious adversary: rate decays linearly from `2µ` at `t = 0` to 0
    /// at `t = horizon` (long-run mean ≈ `µ`) — the drifting-quality case
    /// that is hardest for stationarity-assuming policies.
    AdversarialRamp {
        /// Slots over which the rate decays to zero.
        horizon: u64,
    },
    /// Piecewise-stationary drift: each vertex's rate runs at
    /// `µ·(1 ± shift_frac)`, flipping at every declared breakpoint, with
    /// vertex parity staggering the starting sign (even vertices start
    /// high, odd low) so the *best strategy* changes at each breakpoint
    /// while total capacity stays level. `ramp > 0` smooths each shift
    /// linearly over that many slots (the smooth-drift variant); `0`
    /// steps instantly (piecewise stationary). The workload of the
    /// windowed-regret scenarios: stationary policies re-accumulate
    /// regret after every breakpoint.
    Drifting {
        /// Shift amplitude as a fraction of the mean, in `[0, 1]`.
        shift_frac: f64,
        /// Slots at which levels flip (strictly increasing, non-zero).
        breakpoints: Vec<u64>,
        /// Slots over which each flip ramps linearly (`0` = step). Must
        /// not exceed the gap between consecutive breakpoints — a ramp
        /// has to finish before the next flip begins.
        ramp: u64,
    },
}

impl ChannelModelSpec {
    /// Builds the `n × m` channel matrix. Deterministic in
    /// `(self, n, m, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `n·m == 0` or a family parameter is out of range
    /// (`p ∉ (0, 1]`, fractions outside `[0, 1]`, zero periods).
    pub fn build(&self, n: usize, m: usize, seed: u64) -> ChannelMatrix {
        match *self {
            ChannelModelSpec::Drifting {
                shift_frac,
                ref breakpoints,
                ramp,
            } => {
                assert!(
                    (0.0..=1.0).contains(&shift_frac),
                    "shift fraction must be in [0, 1]"
                );
                assert!(
                    !breakpoints.is_empty(),
                    "drifting family needs at least one breakpoint"
                );
                ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, vertex| {
                    // Even vertices start high, odd low: capacity stays
                    // level while the best strategy flips per breakpoint.
                    Box::new(Drift::new(
                        mu,
                        shift_frac * mu,
                        breakpoints.clone(),
                        ramp,
                        vertex % 2 == 0,
                    ))
                })
            }
            ChannelModelSpec::GaussianRateClasses { sigma_frac } => {
                ChannelMatrix::gaussian_from_rate_classes(n, m, sigma_frac, seed)
            }
            ChannelModelSpec::ConstantRateClasses => {
                ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, _| {
                    Box::new(Constant::new(mu))
                })
            }
            ChannelModelSpec::BernoulliRateClasses { p } => {
                assert!(p > 0.0 && p <= 1.0, "bernoulli p must be in (0, 1]");
                ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, _| {
                    Box::new(Bernoulli::new(p, mu / p))
                })
            }
            ChannelModelSpec::UniformRateClasses { spread_frac } => {
                assert!(
                    (0.0..=1.0).contains(&spread_frac),
                    "spread fraction must be in [0, 1]"
                );
                ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, _| {
                    Box::new(Uniform::new(
                        mu * (1.0 - spread_frac),
                        mu * (1.0 + spread_frac),
                    ))
                })
            }
            ChannelModelSpec::AdversarialSinusoidal { amp_frac, period } => {
                assert!(
                    (0.0..=1.0).contains(&amp_frac),
                    "amplitude fraction must be in [0, 1]"
                );
                ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, vertex| {
                    // Stagger phases so co-located vertices don't peak in
                    // lockstep (vertex index is stable and seed-free).
                    let phase = (vertex as u64).wrapping_mul(7) % period.max(1);
                    Box::new(Sinusoidal::new(mu, amp_frac * mu, period, phase))
                })
            }
            ChannelModelSpec::AdversarialSwitching { swing_frac, dwell } => {
                assert!(
                    (0.0..=1.0).contains(&swing_frac),
                    "swing fraction must be in [0, 1]"
                );
                ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, _| {
                    Box::new(Switching::new(
                        mu * (1.0 + swing_frac),
                        mu * (1.0 - swing_frac),
                        dwell,
                    ))
                })
            }
            ChannelModelSpec::AdversarialRamp { horizon } => {
                ChannelMatrix::from_rate_class_draws(n, m, seed, |mu, _| {
                    Box::new(Ramp::new(2.0 * mu, -2.0 * mu / horizon as f64, horizon))
                })
            }
        }
    }

    /// Short kebab-case family name for artifact paths and CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            ChannelModelSpec::GaussianRateClasses { .. } => "gaussian",
            ChannelModelSpec::ConstantRateClasses => "constant",
            ChannelModelSpec::BernoulliRateClasses { .. } => "bernoulli",
            ChannelModelSpec::UniformRateClasses { .. } => "uniform",
            ChannelModelSpec::AdversarialSinusoidal { .. } => "adv-sinusoidal",
            ChannelModelSpec::AdversarialSwitching { .. } => "adv-switching",
            ChannelModelSpec::AdversarialRamp { .. } => "adv-ramp",
            ChannelModelSpec::Drifting { .. } => "drifting",
        }
    }

    /// `true` for the oblivious-adversary families (non-stochastic rates).
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            ChannelModelSpec::AdversarialSinusoidal { .. }
                | ChannelModelSpec::AdversarialSwitching { .. }
                | ChannelModelSpec::AdversarialRamp { .. }
                | ChannelModelSpec::Drifting { .. }
        )
    }
}

impl Default for ChannelModelSpec {
    /// The paper's default: truncated Gaussians with `σ = 0.1·µ`.
    fn default() -> Self {
        ChannelModelSpec::GaussianRateClasses { sigma_frac: 0.1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates;

    fn families() -> [ChannelModelSpec; 8] {
        [
            ChannelModelSpec::GaussianRateClasses { sigma_frac: 0.1 },
            ChannelModelSpec::ConstantRateClasses,
            ChannelModelSpec::BernoulliRateClasses { p: 0.5 },
            ChannelModelSpec::UniformRateClasses { spread_frac: 0.2 },
            ChannelModelSpec::AdversarialSinusoidal {
                amp_frac: 0.3,
                period: 50,
            },
            ChannelModelSpec::AdversarialSwitching {
                swing_frac: 0.5,
                dwell: 20,
            },
            ChannelModelSpec::AdversarialRamp { horizon: 1000 },
            ChannelModelSpec::Drifting {
                shift_frac: 0.5,
                breakpoints: vec![100, 200],
                ramp: 0,
            },
        ]
    }

    #[test]
    fn all_families_share_the_mean_matrix() {
        let reference = ChannelModelSpec::default().build(4, 3, 77).means();
        for fam in families() {
            let means = fam.build(4, 3, 77).means();
            for (a, b) in means.iter().zip(&reference) {
                // The ramp family's discretized long-run mean is off by
                // µ/horizon; everyone else matches exactly.
                assert!(
                    (a / b - 1.0).abs() < 2e-3,
                    "{}: mean {a} vs reference {b}",
                    fam.label()
                );
            }
        }
    }

    #[test]
    fn means_come_from_rate_classes() {
        for fam in families() {
            let m = fam.build(3, 2, 5);
            for v in 0..6 {
                let mu = m.mean(v);
                assert!(
                    rates::PAPER_RATE_CLASSES
                        .iter()
                        .any(|&c| (mu / c - 1.0).abs() < 2e-3),
                    "{}: mean {mu} not a rate class",
                    fam.label()
                );
            }
        }
    }

    #[test]
    fn builds_are_seed_deterministic() {
        for fam in families() {
            let a = fam.build(3, 2, 9);
            let b = fam.build(3, 2, 9);
            assert_eq!(a.means(), b.means(), "{}", fam.label());
            for v in 0..6 {
                assert_eq!(a.value(13, v), b.value(13, v), "{}", fam.label());
            }
        }
    }

    #[test]
    fn gaussian_spec_matches_legacy_constructor() {
        let spec = ChannelModelSpec::GaussianRateClasses { sigma_frac: 0.1 }.build(5, 4, 123);
        let legacy = ChannelMatrix::gaussian_from_rate_classes(5, 4, 0.1, 123);
        assert_eq!(spec.means(), legacy.means());
        for v in 0..20 {
            assert_eq!(spec.value(7, v), legacy.value(7, v));
        }
    }

    #[test]
    fn labels_and_adversarial_flags() {
        assert_eq!(ChannelModelSpec::default().label(), "gaussian");
        assert!(!ChannelModelSpec::default().is_adversarial());
        assert!(ChannelModelSpec::AdversarialRamp { horizon: 10 }.is_adversarial());
    }

    #[test]
    fn bernoulli_family_is_on_off() {
        let m = ChannelModelSpec::BernoulliRateClasses { p: 0.5 }.build(2, 2, 3);
        for v in 0..4 {
            let mu = m.mean(v);
            for t in 0..20 {
                let x = m.value(t, v);
                assert!(
                    x == 0.0 || (x - 2.0 * mu).abs() < 1e-9,
                    "bernoulli sample {x} not in {{0, 2µ={}}}",
                    2.0 * mu
                );
            }
        }
    }
}
