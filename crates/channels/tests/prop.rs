//! Property-based tests for the channel substrate.

use mhca_channels::{adversarial, dists, process, rates, ChannelMatrix, ChannelProcess};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_value_is_pure_in_seed_t_vertex(n in 1usize..6, m in 1usize..5, seed in any::<u64>(), t in 0u64..10_000) {
        let a = ChannelMatrix::gaussian_from_rate_classes(n, m, 0.1, seed);
        let b = ChannelMatrix::gaussian_from_rate_classes(n, m, 0.1, seed);
        for v in 0..n * m {
            prop_assert_eq!(a.value(t, v), b.value(t, v));
        }
    }

    #[test]
    fn matrix_means_come_from_rate_classes(n in 1usize..6, m in 1usize..5, seed in any::<u64>()) {
        let a = ChannelMatrix::gaussian_from_rate_classes(n, m, 0.1, seed);
        for mu in a.means() {
            prop_assert!(rates::PAPER_RATE_CLASSES.contains(&mu));
        }
        prop_assert!(a.max_mean() <= rates::MAX_RATE);
    }

    #[test]
    fn truncated_gaussian_stays_in_bounds(mu in 0.0f64..1000.0, frac in 0.0f64..1.0, t in 0u64..100, seed in any::<u64>()) {
        let p = process::TruncatedGaussian::symmetric(mu, frac * mu);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = p.sample(t, &mut rng);
        prop_assert!(x >= 0.0 && x <= 2.0 * mu + 1e-9);
    }

    #[test]
    fn bernoulli_samples_are_two_valued(p in 0.0f64..=1.0, peak in 0.0f64..100.0, seed in any::<u64>()) {
        let ch = process::Bernoulli::new(p, peak);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..50 {
            let x = ch.sample(t, &mut rng);
            prop_assert!(x == 0.0 || x == peak);
        }
    }

    #[test]
    fn beta_samples_scaled_range(a in 0.5f64..5.0, b in 0.5f64..5.0, scale in 0.0f64..100.0, seed in any::<u64>()) {
        let ch = process::Beta::new(a, b, scale);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..20 {
            let x = ch.sample(t, &mut rng);
            prop_assert!((0.0..=scale.max(1e-12)).contains(&x) || scale == 0.0);
        }
    }

    #[test]
    fn adversarial_processes_are_deterministic_in_t(base in 1.0f64..50.0, t in 0u64..10_000) {
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(2);
        let sin = adversarial::Sinusoidal::new(base, base / 2.0, 37, 5);
        prop_assert_eq!(sin.sample(t, &mut rng1), sin.sample(t, &mut rng2));
        let sw = adversarial::Switching::new(base, base / 3.0, 7);
        prop_assert_eq!(sw.sample(t, &mut rng1), sw.sample(t, &mut rng2));
        let ramp = adversarial::Ramp::new(base, -0.01, 1000);
        prop_assert_eq!(ramp.sample(t, &mut rng1), ramp.sample(t, &mut rng2));
    }

    #[test]
    fn gamma_sampler_is_positive(k in 0.1f64..10.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert!(dists::gamma(k, &mut rng) > 0.0);
        }
    }

    #[test]
    fn unit_normalization_roundtrips(rate in 0.0f64..2000.0) {
        let unit = rates::to_unit(rate);
        prop_assert!((rates::from_unit(unit) - rate).abs() < 1e-9);
    }
}
