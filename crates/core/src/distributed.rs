//! Algorithm 3 — the distributed robust PTAS for strategy decision.
//!
//! Each virtual vertex of the extended conflict graph `H` runs a local
//! state machine with four statuses (Section IV-C):
//!
//! * **Candidate** — still unresolved; may yet transmit.
//! * **LocalLeader** — a Candidate whose weight is maximal among the
//!   Candidates of its `(2r+1)`-hop neighborhood. Leaders compute a local
//!   MWIS by enumeration over the Candidates of their `r`-hop neighborhood
//!   and broadcast the resulting determinations within `(3r+1)` hops.
//! * **Winner** — selected into the strategy; will access its channel.
//! * **Loser** — excluded for this round.
//!
//! Communication is exclusively hop-limited flooding on the simulated
//! control channel ([`mhca_sim::FloodEngine`]), so every complexity claim
//! of Section IV-C can be measured from the engine counters.
//!
//! # Fidelity notes (see DESIGN.md, Substitutions)
//!
//! * Ties in leader election are broken by vertex id (the paper seeds the
//!   first round with ids for exactly this reason); the order on
//!   `(weight, id)` is total, which is what guarantees two leaders of the
//!   same mini-round are `≥ 2r+2` hops apart.
//! * When a leader computes its local MWIS it excludes Candidates adjacent
//!   to *known* Winners (and marks them Losers). The `(3r+1)`-hop
//!   determination broadcast guarantees a leader has heard of every Winner
//!   adjacent to its `r`-hop ball, so the exclusion is always complete —
//!   this is the distributed counterpart of the centralized algorithm's
//!   "remove the independent set *and all adjacent vertices*" step, and it
//!   is what makes the union of winners across mini-rounds independent.
//! * As a defense under message loss (failure injection), a vertex refuses
//!   a `Winner` determination when it already knows an adjacent Winner.
//!   With lossless delivery this rule never fires.

use mhca_graph::ExtendedConflictGraph;
use mhca_mwis::{exact, greedy};
use mhca_sim::{Counters, Flood, FloodEngine, LossSpec, Received};
use serde::{Deserialize, Serialize};

/// Per-vertex protocol status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Unresolved; eligible for leadership and selection.
    Candidate,
    /// Selected into the round's strategy.
    Winner,
    /// Excluded from the round's strategy.
    Loser,
}

/// How a LocalLeader solves its local MWIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalSolver {
    /// Exact branch-and-bound enumeration (the paper's Algorithm 3 line 8).
    Exact,
    /// Max-weight greedy (the paper's "more efficient constant
    /// approximation algorithm" remark).
    Greedy,
    /// Greedy followed by (1,2)-swap local search — better quality than
    /// plain greedy at a small polynomial cost.
    LocalSearch {
        /// Maximum improvement sweeps per local MWIS.
        max_passes: usize,
    },
    /// Exact when the candidate set spans at most `max_exact_groups`
    /// master nodes, greedy beyond — keeps worst-case local work bounded
    /// on dense neighborhoods.
    Auto {
        /// Master-node count threshold for switching to greedy.
        max_exact_groups: usize,
    },
}

impl Default for LocalSolver {
    fn default() -> Self {
        LocalSolver::Auto {
            max_exact_groups: 14,
        }
    }
}

/// Configuration of the distributed strategy decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedPtasConfig {
    /// Local MWIS radius `r` (the paper's simulations use `r = 2`).
    pub r: usize,
    /// Mini-round budget `D`; `None` runs to completion (`O(N)` worst
    /// case, Fig. 5). The paper's Theorem 4 argues a small constant
    /// suffices on random networks (Fig. 6 converges by mini-round 4).
    pub max_minirounds: Option<usize>,
    /// Local MWIS solver choice.
    pub local_solver: LocalSolver,
    /// Per-relay message loss probability (failure injection; 0 = lossless).
    pub loss_prob: f64,
    /// RNG seed for the loss process.
    pub loss_seed: u64,
}

impl Default for DistributedPtasConfig {
    fn default() -> Self {
        DistributedPtasConfig {
            r: 2,
            max_minirounds: Some(4),
            local_solver: LocalSolver::default(),
            loss_prob: 0.0,
            loss_seed: 0,
        }
    }
}

impl DistributedPtasConfig {
    /// Builder-style radius override.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Builder-style mini-round budget override (`None` = to completion).
    pub fn with_max_minirounds(mut self, d: Option<usize>) -> Self {
        self.max_minirounds = d;
        self
    }

    /// Builder-style solver override.
    pub fn with_local_solver(mut self, s: LocalSolver) -> Self {
        self.local_solver = s;
        self
    }

    /// Builder-style loss injection.
    ///
    /// The seed initializes one loss stream per [`DistributedPtas`]; see
    /// [`DistributedPtas::decide`] for the cross-decision determinism
    /// semantics.
    pub fn with_loss(mut self, prob: f64, seed: u64) -> Self {
        self.loss_prob = prob;
        self.loss_seed = seed;
        self
    }

    /// Builder-style loss injection from a declarative [`LossSpec`]
    /// (the spec-driven campaign path).
    pub fn with_loss_spec(self, loss: LossSpec) -> Self {
        self.with_loss(loss.prob, loss.seed)
    }

    /// The loss knobs as a [`LossSpec`].
    pub fn loss_spec(&self) -> LossSpec {
        LossSpec {
            prob: self.loss_prob,
            seed: self.loss_seed,
        }
    }
}

/// Result of one distributed strategy decision (one round's `t_s` part).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecisionOutcome {
    /// Vertices selected to transmit, sorted ascending. Independent in `H`
    /// under lossless delivery.
    pub winners: Vec<usize>,
    /// Cumulative winner weight after each mini-round — the Fig. 6 series.
    pub per_miniround_weight: Vec<f64>,
    /// Leaders elected in each mini-round.
    pub leaders_per_miniround: Vec<usize>,
    /// Mini-rounds actually executed.
    pub minirounds_used: usize,
    /// `true` when no Candidate remained at termination.
    pub all_marked: bool,
    /// Number of adjacent Winner pairs in the output (0 unless message
    /// loss corrupted the run) — instrumentation, not protocol state.
    pub conflicts: usize,
    /// Communication counters for the decision.
    pub counters: Counters,
}

/// Protocol messages carried by the control-channel floods.
///
/// Payloads are `Copy`: the determination *content* — the `(vertex,
/// is_winner)` list a leader computed — lives in the round's pooled
/// determination lists ([`DistributedPtas::det_lists`]), and the flood
/// carries the leader's slot index into that pool. Receivers only ever
/// dereference the slot of the flood they actually received, so locality
/// is preserved exactly as if the list travelled in the payload, while the
/// per-leader `Arc<Vec<…>>` allocation of the old representation is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    /// `LocalLeader` declaration (Algorithm 3 line 4).
    LeaderDeclare,
    /// Status determinations from a leader (Algorithm 3 lines 9–10):
    /// the payload indexes the mini-round's determination-list pool.
    Determination(u32),
}

/// Local knowledge of one vertex: the ids and statuses of its
/// `(2r+1)`-hop neighborhood (weights of the same set are readable from
/// the round's weight vector — the WB phase of Algorithm 2 synchronizes
/// them; the protocol never reads weights outside this ball).
#[derive(Debug, Clone)]
struct LocalView {
    /// Sorted `(2r+1)`-ball, including the vertex itself.
    ball: Vec<usize>,
    /// Statuses parallel to `ball`.
    status: Vec<Status>,
}

impl LocalView {
    fn get(&self, u: usize) -> Option<Status> {
        self.ball.binary_search(&u).ok().map(|i| self.status[i])
    }

    fn set(&mut self, u: usize, s: Status) {
        if let Ok(i) = self.ball.binary_search(&u) {
            self.status[i] = s;
        }
    }

    fn reset(&mut self) {
        self.status.fill(Status::Candidate);
    }
}

/// The distributed strategy-decision engine (Algorithm 3), reusable across
/// rounds: neighborhood tables are precomputed once per network and **all
/// per-decision scratch is pooled**, so steady-state calls through
/// [`DistributedPtas::decide_into`] perform no heap allocation (beyond the
/// amortized growth of the pools in the first few rounds).
#[derive(Debug)]
pub struct DistributedPtas<'h> {
    h: &'h ExtendedConflictGraph,
    config: DistributedPtasConfig,
    /// Long-lived flood engine over `H` (ball tables prewarmed for the
    /// protocol's two TTLs). Under message loss the engine's RNG stream
    /// advances across decisions — runs are reproducible per
    /// `(loss_seed, decision sequence)`, not per individual decision.
    engine: FloodEngine<'h>,
    views: Vec<LocalView>,
    balls_r: Vec<Vec<usize>>,
    node_groups: Vec<usize>,
    // ---- pooled per-decision scratch ----
    own: Vec<Status>,
    leaders: Vec<usize>,
    declare_floods: Vec<Flood<Msg>>,
    det_floods: Vec<Flood<Msg>>,
    inboxes: Vec<Vec<Received<Msg>>>,
    /// Determination lists per leader slot of the current mini-round; the
    /// `Msg::Determination` payload indexes into this pool.
    det_lists: Vec<Vec<(usize, bool)>>,
    cand: Vec<usize>,
    selectable: Vec<usize>,
    solver: SolverScratch,
}

/// Pooled scratch for the LocalLeader MWIS, grouped so the solver can be
/// borrowed as one unit disjointly from the rest of the protocol state.
#[derive(Debug, Default)]
struct SolverScratch {
    /// Reusable branch-and-bound workspace.
    mwis_ws: exact::Workspace,
    greedy: greedy::Scratch,
    masters: Vec<usize>,
    /// Winners of the current leader's local MWIS, sorted ascending.
    local_mwis: Vec<usize>,
}

impl<'h> DistributedPtas<'h> {
    /// Precomputes the `r`- and `(2r+1)`-hop neighborhood tables of `H`.
    pub fn new(h: &'h ExtendedConflictGraph, config: DistributedPtasConfig) -> Self {
        let n = h.n_vertices();
        let g = h.graph();
        let views = (0..n)
            .map(|v| {
                let ball = g.r_hop_neighborhood(v, 2 * config.r + 1);
                let status = vec![Status::Candidate; ball.len()];
                LocalView { ball, status }
            })
            .collect();
        let balls_r = (0..n).map(|v| g.r_hop_neighborhood(v, config.r)).collect();
        let node_groups = (0..n).map(|v| v / h.n_channels()).collect();
        let mut engine = if config.loss_prob > 0.0 {
            FloodEngine::with_loss(g, config.loss_prob, config.loss_seed)
        } else {
            FloodEngine::new(g)
        };
        engine.prewarm(2 * config.r + 1);
        engine.prewarm(3 * config.r + 1);
        DistributedPtas {
            h,
            config,
            engine,
            views,
            balls_r,
            node_groups,
            own: Vec::new(),
            leaders: Vec::new(),
            declare_floods: Vec::new(),
            det_floods: Vec::new(),
            inboxes: Vec::new(),
            det_lists: Vec::new(),
            cand: Vec::new(),
            selectable: Vec::new(),
            solver: SolverScratch::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DistributedPtasConfig {
        &self.config
    }

    /// Runs one strategy decision with the given per-vertex index weights
    /// (the learning policy's output for this round), allocating a fresh
    /// outcome. Hot loops should prefer [`DistributedPtas::decide_into`].
    ///
    /// # Determinism under message loss
    ///
    /// Lossless decisions are pure functions of the weights. With
    /// `loss_prob > 0`, the persistent engine's loss RNG advances across
    /// decisions: runs are reproducible per `(loss_seed, sequence of
    /// decisions)`, but two decisions with identical weights within one
    /// run see *different* loss realizations (construct a fresh
    /// `DistributedPtas` to replay a stream from its seed).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != H.n_vertices()` or any weight is not
    /// finite.
    pub fn decide(&mut self, weights: &[f64]) -> DecisionOutcome {
        let mut out = DecisionOutcome::default();
        self.decide_into(weights, &mut out);
        out
    }

    /// The flood engine this decision protocol communicates through —
    /// exposed so same-graph engines (e.g. the Algorithm 2 runner's WB
    /// engine) can adopt its prewarmed neighborhood tables instead of
    /// rebuilding them ([`FloodEngine::adopt_tables`]).
    pub fn flood_engine(&self) -> &FloodEngine<'h> {
        &self.engine
    }

    /// As [`DistributedPtas::decide`], writing into a caller-owned outcome
    /// whose vectors are cleared and refilled in place — together with the
    /// internal scratch pools this makes steady-state decisions
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// As [`DistributedPtas::decide`].
    pub fn decide_into(&mut self, weights: &[f64], out: &mut DecisionOutcome) {
        let n = self.h.n_vertices();
        assert_eq!(weights.len(), n, "weight vector length");
        assert!(
            weights.iter().all(|w| w.is_finite()),
            "weights must be finite"
        );
        let graph = self.h.graph();
        let r = self.config.r;
        self.engine.reset_counters();

        for view in &mut self.views {
            view.reset();
        }
        self.own.clear();
        self.own.resize(n, Status::Candidate);
        out.winners.clear();
        out.per_miniround_weight.clear();
        out.leaders_per_miniround.clear();
        out.all_marked = false;
        let cap = self.config.max_minirounds.unwrap_or(n.max(1));

        for _tau in 0..cap {
            // ---- 1. LocalLeader selection (Algorithm 3 lines 2–6).
            // A Candidate leads iff no other Candidate in its (2r+1)-ball
            // has a larger (weight, id) pair — the strict total order that
            // keeps same-mini-round leaders ≥ 2r+2 hops apart.
            self.leaders.clear();
            for v in 0..n {
                if self.own[v] != Status::Candidate {
                    continue;
                }
                let view = &self.views[v];
                let leads = view.ball.iter().zip(&view.status).all(|(&u, &st)| {
                    u == v || st != Status::Candidate || (weights[u], u) < (weights[v], v)
                });
                if leads {
                    self.leaders.push(v);
                }
            }
            if self.leaders.is_empty() {
                out.all_marked = (0..n).all(|v| self.own[v] != Status::Candidate);
                break;
            }
            out.leaders_per_miniround.push(self.leaders.len());

            // ---- 2. Leader declaration floods (line 4; (2r+1) hops).
            self.declare_floods.clear();
            self.declare_floods
                .extend(self.leaders.iter().map(|&v| Flood {
                    origin: v,
                    ttl: 2 * r + 1,
                    payload: Msg::LeaderDeclare,
                }));
            // Declarations only need to have been broadcast (leadership is
            // evaluated from the shared weight/status knowledge); charge
            // the communication without materializing inboxes.
            self.engine.broadcast_only(&self.declare_floods);

            // ---- 3. Local MWIS per leader (lines 8–9).
            if self.det_lists.len() < self.leaders.len() {
                self.det_lists.resize_with(self.leaders.len(), Vec::new);
            }
            self.det_floods.clear();
            for slot in 0..self.leaders.len() {
                let leader = self.leaders[slot];
                let view = &self.views[leader];
                // Candidates of the r-ball, per the leader's knowledge.
                self.cand.clear();
                self.cand.extend(
                    self.balls_r[leader]
                        .iter()
                        .copied()
                        .filter(|&u| view.get(u) == Some(Status::Candidate)),
                );
                // Derived exclusion: candidates adjacent to a known Winner
                // can never join the output; they are Losers.
                self.selectable.clear();
                self.selectable
                    .extend(self.cand.iter().copied().filter(|&u| {
                        graph
                            .neighbors(u)
                            .iter()
                            .all(|&x| view.get(x) != Some(Status::Winner))
                    }));
                Self::solve_local(
                    graph,
                    &self.config,
                    &self.node_groups,
                    &mut self.solver,
                    weights,
                    &self.selectable,
                );
                let list = &mut self.det_lists[slot];
                list.clear();
                list.extend(
                    self.cand
                        .iter()
                        .map(|&u| (u, self.solver.local_mwis.binary_search(&u).is_ok())),
                );
                self.det_floods.push(Flood {
                    origin: leader,
                    ttl: 3 * r + 1,
                    payload: Msg::Determination(slot as u32),
                });
            }

            // ---- 4. Determination floods (line 10; (3r+1) hops) and
            //         local processing (lines 11–15). `Msg` is `Copy`, so
            //         the copy path skips the per-reception clone on the
            //         lossy BFS route.
            self.engine
                .deliver_copy_into(&self.det_floods, &mut self.inboxes);
            // Leaders apply their own determinations directly (they do not
            // receive their own flood).
            for flood in &self.det_floods {
                if let Msg::Determination(slot) = flood.payload {
                    Self::apply_determinations(
                        flood.origin,
                        &self.det_lists[slot as usize],
                        &mut self.own,
                        &mut self.views,
                    );
                }
            }
            for (v, inbox) in self.inboxes.iter().enumerate() {
                for received in inbox {
                    if let Msg::Determination(slot) = received.payload {
                        Self::apply_one_inbox(
                            graph,
                            v,
                            &self.det_lists[slot as usize],
                            &mut self.own,
                            &mut self.views[v],
                        );
                    }
                }
            }

            // ---- 5. Bookkeeping for the Fig. 6 series.
            let cum: f64 = (0..n)
                .filter(|&v| self.own[v] == Status::Winner)
                .map(|v| weights[v])
                .sum();
            out.per_miniround_weight.push(cum);
            if (0..n).all(|v| self.own[v] != Status::Candidate) {
                out.all_marked = true;
                break;
            }
        }

        out.winners
            .extend((0..n).filter(|&v| self.own[v] == Status::Winner));
        out.conflicts = out
            .winners
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                out.winners[i + 1..]
                    .iter()
                    .filter(|&&w| graph.has_edge(u, w))
                    .count()
            })
            .sum();
        out.minirounds_used = out.leaders_per_miniround.len();
        out.counters.clone_from(self.engine.counters());
    }

    /// Applies a leader's own determination list at the leader itself.
    fn apply_determinations(
        leader: usize,
        list: &[(usize, bool)],
        own: &mut [Status],
        views: &mut [LocalView],
    ) {
        for &(u, is_winner) in list {
            let status = if is_winner {
                Status::Winner
            } else {
                Status::Loser
            };
            if u == leader {
                own[leader] = status;
            }
            views[leader].set(u, status);
        }
    }

    /// Processes one received determination list at vertex `v`.
    fn apply_one_inbox(
        graph: &mhca_graph::Graph,
        v: usize,
        list: &[(usize, bool)],
        own: &mut [Status],
        view: &mut LocalView,
    ) {
        for &(u, is_winner) in list {
            let status = if is_winner {
                Status::Winner
            } else {
                Status::Loser
            };
            if u == v {
                // Loss defense: refuse Winner when a known neighbor
                // already won (never fires under lossless delivery).
                if is_winner
                    && graph
                        .neighbors(v)
                        .iter()
                        .any(|&x| view.get(x) == Some(Status::Winner))
                {
                    own[v] = Status::Loser;
                    view.set(v, Status::Loser);
                    continue;
                }
                own[v] = status;
            }
            view.set(u, status);
        }
    }

    /// Local MWIS over the selectable candidates (grouped by master node),
    /// written sorted-ascending into `scratch.local_mwis`.
    ///
    /// The exact and greedy paths run entirely on the pooled scratch
    /// (allocation-free when warm); the local-search fallback allocates
    /// its result set — it is the cold, quality-ablation configuration.
    fn solve_local(
        graph: &mhca_graph::Graph,
        config: &DistributedPtasConfig,
        node_groups: &[usize],
        scratch: &mut SolverScratch,
        weights: &[f64],
        selectable: &[usize],
    ) {
        let out = &mut scratch.local_mwis;
        match config.local_solver {
            LocalSolver::Exact => {
                scratch
                    .mwis_ws
                    .solve_grouped_into(graph, weights, selectable, node_groups, out);
            }
            LocalSolver::Greedy => {
                greedy::max_weight_subset_into(
                    graph,
                    weights,
                    selectable,
                    &mut scratch.greedy,
                    out,
                );
            }
            LocalSolver::LocalSearch { max_passes } => {
                let s =
                    mhca_mwis::local_search::solve_subset(graph, weights, selectable, max_passes);
                out.clear();
                out.extend_from_slice(&s.vertices);
            }
            LocalSolver::Auto { max_exact_groups } => {
                let masters = &mut scratch.masters;
                masters.clear();
                masters.extend(selectable.iter().map(|&v| node_groups[v]));
                masters.sort_unstable();
                masters.dedup();
                if masters.len() <= max_exact_groups {
                    scratch.mwis_ws.solve_grouped_into(
                        graph,
                        weights,
                        selectable,
                        node_groups,
                        out,
                    );
                } else {
                    greedy::max_weight_subset_into(
                        graph,
                        weights,
                        selectable,
                        &mut scratch.greedy,
                        out,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    fn decide(
        g: &mhca_graph::Graph,
        m: usize,
        weights: &[f64],
        config: DistributedPtasConfig,
    ) -> DecisionOutcome {
        let h = ExtendedConflictGraph::new(g, m);
        let mut ptas = DistributedPtas::new(&h, config);
        ptas.decide(weights)
    }

    fn run_to_completion(r: usize) -> DistributedPtasConfig {
        DistributedPtasConfig::default()
            .with_r(r)
            .with_max_minirounds(None)
    }

    #[test]
    fn winners_are_independent_and_all_marked() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(30, 4.0, &mut rng);
            let m = 3;
            let h = ExtendedConflictGraph::new(&g, m);
            let w: Vec<f64> = (0..h.n_vertices())
                .map(|_| rng.gen_range(0.1..1.0))
                .collect();
            let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
            let out = ptas.decide(&w);
            assert!(out.all_marked, "protocol must terminate fully");
            assert_eq!(out.conflicts, 0);
            assert!(h.graph().is_independent(&out.winners));
        }
    }

    #[test]
    fn single_vertex_wins_alone() {
        let g = topology::independent(1);
        let out = decide(&g, 1, &[0.7], run_to_completion(1));
        assert_eq!(out.winners, vec![0]);
        assert_eq!(out.minirounds_used, 1);
        assert!(out.all_marked);
    }

    #[test]
    fn two_conflicting_nodes_one_channel() {
        // G: 0—1, M=1 ⇒ H is a single edge. Heavier vertex wins.
        let g = topology::line(2);
        let out = decide(&g, 1, &[0.3, 0.9], run_to_completion(2));
        assert_eq!(out.winners, vec![1]);
    }

    #[test]
    fn equal_weights_still_resolve_exactly_one_winner() {
        // Leader election ties break by id; the local MWIS then picks one
        // of the two equal-weight vertices. Either is optimal — the
        // invariant is that exactly one wins and the protocol terminates.
        let g = topology::line(2);
        let out = decide(&g, 1, &[0.5, 0.5], run_to_completion(2));
        assert_eq!(out.winners.len(), 1);
        assert!(out.all_marked);
        assert_eq!(out.conflicts, 0);
    }

    #[test]
    fn matches_good_quality_on_random_instances() {
        // Full-run distributed output should be within a modest factor of
        // the exact optimum on small instances.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(12, 3.0, &mut rng);
            let m = 2;
            let h = ExtendedConflictGraph::new(&g, m);
            let w: Vec<f64> = (0..h.n_vertices())
                .map(|_| rng.gen_range(0.1..1.0))
                .collect();
            let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / m).collect();
            let allowed: Vec<usize> = (0..h.n_vertices()).collect();
            let opt = exact::solve_grouped(h.graph(), &w, &allowed, &groups);
            let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
            let out = ptas.decide(&w);
            let achieved: f64 = out.winners.iter().map(|&v| w[v]).sum();
            assert!(
                achieved >= 0.5 * opt.weight,
                "distributed {achieved} vs opt {}",
                opt.weight
            );
        }
    }

    #[test]
    fn linear_network_needs_many_minirounds() {
        // Fig. 5: decreasing weights along a line force Θ(N) mini-rounds.
        let n = 30;
        let g = topology::line(n);
        let w: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / n as f64).collect();
        let out = decide(&g, 1, &w, run_to_completion(1));
        assert!(out.all_marked);
        assert!(
            out.minirounds_used >= n / 4,
            "expected Θ(N) mini-rounds, got {}",
            out.minirounds_used
        );
    }

    #[test]
    fn random_network_converges_fast() {
        // Theorem 4 / Fig. 6: random networks converge in few mini-rounds.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(50, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 5);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out = ptas.decide(&w);
        assert!(out.all_marked);
        assert!(
            out.minirounds_used <= 10,
            "expected fast convergence, got {}",
            out.minirounds_used
        );
    }

    #[test]
    fn capped_minirounds_still_independent() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 4);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(
            &h,
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(Some(2)),
        );
        let out = ptas.decide(&w);
        assert!(out.minirounds_used <= 2);
        assert_eq!(out.conflicts, 0);
        assert!(h.graph().is_independent(&out.winners));
    }

    #[test]
    fn per_miniround_weight_is_nondecreasing() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out = ptas.decide(&w);
        for pair in out.per_miniround_weight.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12);
        }
        let final_weight: f64 = out.winners.iter().map(|&v| w[v]).sum();
        let last = *out.per_miniround_weight.last().unwrap();
        assert!((final_weight - last).abs() < 1e-9);
    }

    #[test]
    fn at_most_one_channel_per_node() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(25, 4.0, &mut rng);
        let m = 4;
        let h = ExtendedConflictGraph::new(&g, m);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out = ptas.decide(&w);
        let mut masters: Vec<usize> = out.winners.iter().map(|&v| v / m).collect();
        let before = masters.len();
        masters.dedup();
        assert_eq!(before, masters.len(), "a node won two channels");
    }

    #[test]
    fn decisions_depend_only_on_local_information() {
        // Two disconnected components: changing weights in one must not
        // change the winners of the other.
        let g = mhca_graph::Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let h = ExtendedConflictGraph::new(&g, 2);
        let mut w: Vec<f64> = (0..12).map(|i| 0.1 + i as f64 * 0.05).collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out1 = ptas.decide(&w);
        // Scramble the second component's weights (nodes 3..6 ⇒ vertices 6..12).
        for x in w.iter_mut().skip(6) {
            *x *= 0.37;
        }
        let out2 = ptas.decide(&w);
        let comp_a = |ws: &[usize]| ws.iter().copied().filter(|&v| v < 6).collect::<Vec<_>>();
        assert_eq!(comp_a(&out1.winners), comp_a(&out2.winners));
    }

    #[test]
    fn greedy_local_solver_is_safe() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(
            &h,
            run_to_completion(2).with_local_solver(LocalSolver::Greedy),
        );
        let out = ptas.decide(&w);
        assert!(out.all_marked);
        assert!(h.graph().is_independent(&out.winners));
    }

    #[test]
    fn local_search_solver_matches_or_beats_greedy() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(88);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let run = |solver| {
            let mut ptas = DistributedPtas::new(&h, run_to_completion(2).with_local_solver(solver));
            let out = ptas.decide(&w);
            assert!(h.graph().is_independent(&out.winners));
            out.winners.iter().map(|&v| w[v]).sum::<f64>()
        };
        let greedy_w = run(LocalSolver::Greedy);
        let ls_w = run(LocalSolver::LocalSearch { max_passes: 10 });
        assert!(
            ls_w >= 0.95 * greedy_w,
            "local search {ls_w} much worse than greedy {greedy_w}"
        );
    }

    #[test]
    fn lossy_delivery_terminates_and_reports_conflicts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(30, 4.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 2);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(
            &h,
            DistributedPtasConfig::default()
                .with_r(1)
                .with_max_minirounds(Some(20))
                .with_loss(0.2, 42),
        );
        let out = ptas.decide(&w);
        // Liveness degrades gracefully; the conflict counter quantifies
        // any safety damage instead of hiding it.
        assert!(out.minirounds_used <= 20);
        assert!(out.conflicts < out.winners.len().max(1));
    }

    #[test]
    fn counters_accumulate_communication() {
        let g = topology::line(5);
        let out = decide(&g, 2, &[0.5; 10], run_to_completion(1));
        assert!(out.counters.transmissions > 0);
        assert!(out.counters.timeslots > 0);
    }
}
