//! Algorithm 3 — the distributed robust PTAS for strategy decision.
//!
//! Each virtual vertex of the extended conflict graph `H` runs a local
//! state machine with four statuses (Section IV-C):
//!
//! * **Candidate** — still unresolved; may yet transmit.
//! * **LocalLeader** — a Candidate whose weight is maximal among the
//!   Candidates of its `(2r+1)`-hop neighborhood. Leaders compute a local
//!   MWIS by enumeration over the Candidates of their `r`-hop neighborhood
//!   and broadcast the resulting determinations within `(3r+1)` hops.
//! * **Winner** — selected into the strategy; will access its channel.
//! * **Loser** — excluded for this round.
//!
//! Communication is exclusively hop-limited flooding on the simulated
//! control channel ([`mhca_sim::FloodEngine`]), so every complexity claim
//! of Section IV-C can be measured from the engine counters.
//!
//! # Fidelity notes (see DESIGN.md, Substitutions)
//!
//! * Ties in leader election are broken by vertex id (the paper seeds the
//!   first round with ids for exactly this reason); the order on
//!   `(weight, id)` is total, which is what guarantees two leaders of the
//!   same mini-round are `≥ 2r+2` hops apart.
//! * When a leader computes its local MWIS it excludes Candidates adjacent
//!   to *known* Winners (and marks them Losers). The `(3r+1)`-hop
//!   determination broadcast guarantees a leader has heard of every Winner
//!   adjacent to its `r`-hop ball, so the exclusion is always complete —
//!   this is the distributed counterpart of the centralized algorithm's
//!   "remove the independent set *and all adjacent vertices*" step, and it
//!   is what makes the union of winners across mini-rounds independent.
//! * As a defense under message loss (failure injection), a vertex refuses
//!   a `Winner` determination when it already knows an adjacent Winner.
//!   With lossless delivery this rule never fires.
//!
//! # The incremental dirty-ball decide phase
//!
//! Leader election is the dominant cost of a mini-round when done naively:
//! every undetermined Candidate rescans its whole `(2r+1)`-ball. The
//! engine instead maintains an **incremental dirty set** on the lossless
//! path (`LocalMaxCache`), justified by two invariants:
//!
//! 1. **Dirty-ball invariant.** A Candidate's local-max verdict is a
//!    function of the statuses of the Candidates in its `(2r+1)`-ball and
//!    of the (fixed) weights. Statuses only move away from `Candidate`,
//!    so the verdict of a vertex none of whose ball members changed
//!    status in mini-round `τ` is *provably unchanged* in `τ+1` and is
//!    carried forward. Only vertices within `(2r+1)` hops of a status
//!    change (a Winner or Loser determination) can flip to leader.
//! 2. **Blocked-count witness.** For each vertex the cache stores how
//!    many *undetermined higher-priority* members — `(weight, id)` above
//!    its own, the strict total order of the election — its closed ball
//!    still holds. The count is seeded by one full ball sweep in
//!    mini-round 0 and thereafter maintained purely incrementally: each
//!    determination of `u` walks `u`'s `(2r+1)`-ball (exactly the dirty
//!    region it invalidates) and decrements the counts of the
//!    lower-priority Candidates in it. A Candidate leads **iff** its
//!    count is zero, so the vertices whose count just hit zero are
//!    precisely the next mini-round's leaders — an `O(1)` verdict per
//!    leader, no rescans ever. Every vertex is determined at most once,
//!    so the whole election costs two ball sweeps per decision (seed +
//!    decrements) *independent of how many mini-rounds run*, versus one
//!    sweep of every surviving Candidate per mini-round for the naive
//!    rescan.
//!
//! Both invariants need every status change to be *visible* wherever it
//! matters, which lossless `(3r+1)`-hop determination floods guarantee
//! (a determination of `u` by leader `L` reaches all of
//! `ball(u, 2r+1) ⊆ ball(L, 3r+1)`): under lossless delivery every local
//! view agrees with the global status array, so the incremental path
//! reads global state directly and charges flood costs through the
//! engine's counters-only delivery — bit-identical outcomes and counters
//! at a fraction of the work. Under message loss views can diverge from
//! global state (a vertex may learn of a determination its subject never
//! received), so the engine **falls back to the full-rescan reference
//! path** ([`DistributedPtas::decide_into_rescan`]) whenever
//! `loss_prob > 0` (or when `force_rescan` is set) — the lossy semantics
//! are bit-exact with the pre-incremental implementation, and the
//! reference path doubles as the oracle of the differential test battery
//! (`tests/decide_parity.rs`). The dirty expansion walks the per-vertex
//! `(2r+1)`-ball tables precomputed at construction (the same tables the
//! views are built from), so it needs no flood-engine ball table and is
//! unaffected by the engine's large-N table entry cap.
//!
//! # The partition-parallel decide phase
//!
//! At `n = 10⁴–5×10⁴` the incremental path is still one serial loop over
//! memory-bound sweeps. Setting [`DistributedPtasConfig::partitions`]` > 1`
//! splits the lossless decide into core+halo tiles
//! ([`mhca_graph::Partition`]) and runs the per-vertex phases tile-local —
//! the election probe, the per-leader MWIS, the blocked-count seeding and
//! the dirty decrement expansion — merging per-tile results at phase
//! boundaries. Tiling is an **execution strategy, not a semantics knob**:
//! every phase is engineered so the merged result is *byte-identical* to
//! the serial incremental path (and hence to the rescan oracle), pinned by
//! `tests/partition_parity.rs`. The key devices are (a) reading a
//! snapshot of the packed election state while writing only the tile's own
//! stripe (legal because ranks are immutable intra-sweep and blocked
//! counts can never reach the `DETERMINED` sentinel, so verdicts are
//! insensitive to write timing), and (b) precomputing the ranks of changed
//! vertices serially so the decrement sweep touches only its own stripe.
//! Status application, flood accounting, and the Fig. 6 summation stay
//! serial — they are `O(determinations)` per round, not `O(n · ball)`.

use mhca_graph::{ExtendedConflictGraph, Partition};
use mhca_mwis::{exact, greedy};
use mhca_sim::{Counters, Flood, FloodEngine, LossSpec, Received};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-vertex protocol status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Unresolved; eligible for leadership and selection.
    Candidate,
    /// Selected into the round's strategy.
    Winner,
    /// Excluded from the round's strategy.
    Loser,
}

/// How a LocalLeader solves its local MWIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalSolver {
    /// Exact branch-and-bound enumeration (the paper's Algorithm 3 line 8).
    Exact,
    /// Max-weight greedy (the paper's "more efficient constant
    /// approximation algorithm" remark).
    Greedy,
    /// Greedy followed by (1,2)-swap local search — better quality than
    /// plain greedy at a small polynomial cost.
    LocalSearch {
        /// Maximum improvement sweeps per local MWIS.
        max_passes: usize,
    },
    /// Exact when the candidate set spans at most `max_exact_groups`
    /// master nodes, greedy beyond — keeps worst-case local work bounded
    /// on dense neighborhoods.
    Auto {
        /// Master-node count threshold for switching to greedy.
        max_exact_groups: usize,
    },
}

impl Default for LocalSolver {
    fn default() -> Self {
        LocalSolver::Auto {
            max_exact_groups: 14,
        }
    }
}

/// Configuration of the distributed strategy decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedPtasConfig {
    /// Local MWIS radius `r` (the paper's simulations use `r = 2`).
    pub r: usize,
    /// Mini-round budget `D`; `None` runs to completion (`O(N)` worst
    /// case, Fig. 5). The paper's Theorem 4 argues a small constant
    /// suffices on random networks (Fig. 6 converges by mini-round 4).
    pub max_minirounds: Option<usize>,
    /// Local MWIS solver choice.
    pub local_solver: LocalSolver,
    /// Per-relay message loss probability (failure injection; 0 = lossless).
    pub loss_prob: f64,
    /// RNG seed for the loss process.
    pub loss_seed: u64,
    /// Forces the full-rescan reference decide path even when delivery is
    /// lossless (diagnostics / differential testing; the incremental
    /// dirty-ball path is bit-identical, just faster).
    pub force_rescan: bool,
    /// Number of core+halo tiles the lossless decide phase is split into
    /// (`<= 1` = the serial incremental path; the lossy / forced-rescan
    /// reference path ignores this knob). Tiling is an execution strategy,
    /// not a semantic knob: the [`DecisionOutcome`] is byte-identical for
    /// every value — pinned by `tests/partition_parity.rs`.
    pub partitions: usize,
    /// Worker threading of the tiled phases: `1` runs the tile loop inline
    /// on the calling thread (deterministic single-thread execution — the
    /// allocation-free configuration pinned by `tests/alloc_free.rs`); any
    /// other value (`0` is the conventional spelling) spawns one scoped OS
    /// thread per tile. Ignored when `partitions <= 1`.
    pub threads: usize,
}

impl Default for DistributedPtasConfig {
    fn default() -> Self {
        DistributedPtasConfig {
            r: 2,
            max_minirounds: Some(4),
            local_solver: LocalSolver::default(),
            loss_prob: 0.0,
            loss_seed: 0,
            force_rescan: false,
            partitions: 1,
            threads: 0,
        }
    }
}

impl DistributedPtasConfig {
    /// Builder-style radius override.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Builder-style mini-round budget override (`None` = to completion).
    pub fn with_max_minirounds(mut self, d: Option<usize>) -> Self {
        self.max_minirounds = d;
        self
    }

    /// Builder-style solver override.
    pub fn with_local_solver(mut self, s: LocalSolver) -> Self {
        self.local_solver = s;
        self
    }

    /// Builder-style loss injection.
    ///
    /// The seed initializes one loss stream per [`DistributedPtas`]; see
    /// [`DistributedPtas::decide`] for the cross-decision determinism
    /// semantics.
    pub fn with_loss(mut self, prob: f64, seed: u64) -> Self {
        self.loss_prob = prob;
        self.loss_seed = seed;
        self
    }

    /// Builder-style loss injection from a declarative [`LossSpec`]
    /// (the spec-driven campaign path).
    pub fn with_loss_spec(self, loss: LossSpec) -> Self {
        self.with_loss(loss.prob, loss.seed)
    }

    /// The loss knobs as a [`LossSpec`].
    pub fn loss_spec(&self) -> LossSpec {
        LossSpec {
            prob: self.loss_prob,
            seed: self.loss_seed,
        }
    }

    /// Builder-style rescan override (diagnostics / differential tests).
    pub fn with_force_rescan(mut self, force: bool) -> Self {
        self.force_rescan = force;
        self
    }

    /// Builder-style tile-count override for the partition-parallel
    /// decide (`<= 1` = serial).
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Builder-style threading override for the tiled phases (`1` =
    /// inline serial tile loop, anything else = one worker per tile).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Result of one distributed strategy decision (one round's `t_s` part).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecisionOutcome {
    /// Vertices selected to transmit, sorted ascending. Independent in `H`
    /// under lossless delivery.
    pub winners: Vec<usize>,
    /// Cumulative winner weight after each mini-round — the Fig. 6 series.
    pub per_miniround_weight: Vec<f64>,
    /// Leaders elected in each mini-round.
    pub leaders_per_miniround: Vec<usize>,
    /// Every mini-round's leader vertices, concatenated in mini-round
    /// order (each segment ascending). Stored flat — CSR-style, with
    /// [`DecisionOutcome::leaders_per_miniround`] as the segment lengths —
    /// so outcome reuse across decisions stays allocation-free; slice per
    /// mini-round via [`DecisionOutcome::leaders_of_miniround`].
    pub leaders_flat: Vec<usize>,
    /// Mini-rounds actually executed.
    pub minirounds_used: usize,
    /// `true` when no Candidate remained at termination.
    pub all_marked: bool,
    /// Number of adjacent Winner pairs in the output (0 unless message
    /// loss corrupted the run) — instrumentation, not protocol state.
    pub conflicts: usize,
    /// Floods the engine served through the per-flood BFS fallback
    /// because the ball-table entry cap refused the radius
    /// ([`FloodEngine::fallback_floods`]). Nonzero on a lossless run
    /// means the decision silently paid BFS costs where `O(1)` table
    /// scans were expected — the large-N honesty signal.
    pub fallback_floods: u64,
    /// Communication counters for the decision.
    pub counters: Counters,
}

impl DecisionOutcome {
    /// The leaders elected in mini-round `tau` (0-based), ascending.
    ///
    /// # Panics
    ///
    /// Panics if `tau >= minirounds_used`.
    pub fn leaders_of_miniround(&self, tau: usize) -> &[usize] {
        let start: usize = self.leaders_per_miniround[..tau].iter().sum();
        &self.leaders_flat[start..start + self.leaders_per_miniround[tau]]
    }
}

/// Instrumentation counters of the last strategy decision's leader
/// election — how much candidate-scanning work the decide phase actually
/// performed ([`DistributedPtas::scan_stats`]). Streamed per round to the
/// observer pipeline as `decide_scanned`; the incremental path's whole
/// point is that `candidates_scanned` stays near one full sweep per
/// decision instead of one per mini-round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DecideScanStats {
    /// `(2r+1)`-ball candidate evaluations performed. The incremental
    /// path charges one per vertex for the mini-round 0 election probe
    /// (early-exiting, so usually a partial scan) plus one per round-0
    /// survivor for the count-seeding sweep — at most two per vertex per
    /// decision, however many mini-rounds run. The rescan reference pays
    /// one full evaluation per surviving Candidate *per mini-round*.
    pub candidates_scanned: u64,
    /// `O(1)` leader verdicts served from the pending zero-blocked list
    /// without any ball scan (always 0 on the full-rescan path).
    pub fast_skips: u64,
    /// Blocked-count decrements applied while expanding status changes
    /// into their dirty balls (always 0 on the full-rescan path).
    pub dirty_decrements: u64,
}

/// Wall-clock nanoseconds per decide phase of the last decision, filled
/// only when [`DistributedPtas::set_profile_phases`] is on (the stamps
/// cost two `Instant` reads per phase per mini-round, which is noise at
/// large `n` but measurable in small-`n` hot loops, so they are gated).
/// The incremental and tiled paths fill it; the rescan reference leaves
/// it zeroed. This is what `decide_profile --pr6` reports per grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DecidePhaseNs {
    /// Leader election: the mini-round 0 ball probe plus the pending-list
    /// drain of later mini-rounds.
    pub election_ns: u64,
    /// Flood accounting: declaration and determination `broadcast_only`
    /// calls plus serial status application.
    pub broadcast_ns: u64,
    /// Per-leader local MWIS solves and determination-list fills.
    pub mwis_ns: u64,
    /// Dirty expansion: the blocked-count seeding sweep (mini-round 0)
    /// and the per-change decrement sweeps, plus the Fig. 6 summation.
    pub sweep_ns: u64,
}

impl DecidePhaseNs {
    /// Total across the four phases.
    pub fn total_ns(&self) -> u64 {
        self.election_ns + self.broadcast_ns + self.mwis_ns + self.sweep_ns
    }
}

/// Protocol messages carried by the control-channel floods.
///
/// Payloads are `Copy`: the determination *content* — the `(vertex,
/// is_winner)` list a leader computed — lives in the round's pooled
/// determination lists ([`DistributedPtas::det_lists`]), and the flood
/// carries the leader's slot index into that pool. Receivers only ever
/// dereference the slot of the flood they actually received, so locality
/// is preserved exactly as if the list travelled in the payload, while the
/// per-leader `Arc<Vec<…>>` allocation of the old representation is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    /// `LocalLeader` declaration (Algorithm 3 line 4).
    LeaderDeclare,
    /// Status determinations from a leader (Algorithm 3 lines 9–10):
    /// the payload indexes the mini-round's determination-list pool.
    Determination(u32),
}

/// Local knowledge of one vertex: the ids and statuses of its
/// `(2r+1)`-hop neighborhood (weights of the same set are readable from
/// the round's weight vector — the WB phase of Algorithm 2 synchronizes
/// them; the protocol never reads weights outside this ball).
#[derive(Debug, Clone)]
struct LocalView {
    /// Sorted `(2r+1)`-ball, including the vertex itself.
    ball: Vec<usize>,
    /// Statuses parallel to `ball`.
    status: Vec<Status>,
}

impl LocalView {
    fn get(&self, u: usize) -> Option<Status> {
        self.ball.binary_search(&u).ok().map(|i| self.status[i])
    }

    fn set(&mut self, u: usize, s: Status) {
        if let Ok(i) = self.ball.binary_search(&u) {
            self.status[i] = s;
        }
    }

    fn reset(&mut self) {
        self.status.fill(Status::Candidate);
    }
}

/// The distributed strategy-decision engine (Algorithm 3), reusable across
/// rounds: neighborhood tables are precomputed once per network and **all
/// per-decision scratch is pooled**, so steady-state calls through
/// [`DistributedPtas::decide_into`] perform no heap allocation (beyond the
/// amortized growth of the pools in the first few rounds).
#[derive(Debug)]
pub struct DistributedPtas<'h> {
    h: &'h ExtendedConflictGraph,
    config: DistributedPtasConfig,
    /// Long-lived flood engine over `H` (ball tables prewarmed for the
    /// protocol's two TTLs). Under message loss the engine's RNG stream
    /// advances across decisions — runs are reproducible per
    /// `(loss_seed, decision sequence)`, not per individual decision.
    engine: FloodEngine<'h>,
    /// Per-vertex `(2r+1)`-ball views for the rescan reference path —
    /// built lazily on first rescan use (the incremental and tiled paths
    /// read the flat ball CSR instead, and at large `n` the `usize`
    /// views would double the decider's footprint for nothing).
    views: Vec<LocalView>,
    balls_r: Vec<Vec<usize>>,
    /// Flat `u32` CSR copy of the `(2r+1)`-balls (`ball_offsets[v] ..
    /// ball_offsets[v + 1]` into `ball_entries`), self included — the
    /// incremental election's seed and decrement sweeps stream these
    /// instead of the views' `usize` lists: the sweeps are memory-bound,
    /// so the 4-byte entries halve their traffic.
    ball_offsets: Vec<usize>,
    ball_entries: Vec<u32>,
    node_groups: Vec<usize>,
    // ---- pooled per-decision scratch ----
    own: Vec<Status>,
    leaders: Vec<usize>,
    declare_floods: Vec<Flood<Msg>>,
    det_floods: Vec<Flood<Msg>>,
    inboxes: Vec<Vec<Received<Msg>>>,
    /// Determination lists per leader slot of the current mini-round; the
    /// `Msg::Determination` payload indexes into this pool.
    det_lists: Vec<Vec<(usize, bool)>>,
    cand: Vec<usize>,
    selectable: Vec<usize>,
    solver: SolverScratch,
    cache: LocalMaxCache,
    scan_stats: DecideScanStats,
    // ---- partition-parallel state ----
    /// Core+halo tiling of the vertex range, present iff
    /// `config.partitions > 1`.
    partition: Option<Partition>,
    /// One scratch set per tile worker (leaders, pending, solver, …).
    tile_scratch: Vec<TileScratch>,
    /// Read-only copy of the packed election state for the seeding
    /// sweep (workers read the snapshot, write their own stripe).
    state_snap: Vec<u64>,
    /// Priority ranks of the mini-round's changed vertices, precomputed
    /// serially so decrement workers never read another stripe.
    changed_ranks: Vec<u32>,
    profile_phases: bool,
    phase_ns: DecidePhaseNs,
}

/// Per-tile worker scratch of the partition-parallel decide: everything a
/// tile-local phase writes besides its own stripe of the packed election
/// state, merged serially at phase boundaries.
#[derive(Debug, Default)]
struct TileScratch {
    /// Leaders found by this tile's mini-round 0 probe (core order, i.e.
    /// ascending — tile-order concatenation reproduces the serial scan).
    leaders: Vec<usize>,
    /// Zero-blocked vertices this tile's sweeps produced.
    pending: Vec<usize>,
    cand: Vec<usize>,
    selectable: Vec<usize>,
    solver: SolverScratch,
    scanned: u64,
    decrements: u64,
}

/// Runs one unit of tile work per iterator item: inline on the calling
/// thread when `parallel` is false, else one scoped OS thread per item
/// (tiles are the unit of work, so the partition count is the
/// parallelism knob).
fn run_tiles<I, F>(parallel: bool, work: I, f: F)
where
    I: Iterator,
    I::Item: Send,
    F: Fn(I::Item) + Sync,
{
    if parallel {
        std::thread::scope(|s| {
            for item in work {
                let f = &f;
                s.spawn(move || f(item));
            }
        });
    } else {
        for item in work {
            f(item);
        }
    }
}

/// Splits `data` into the stripes delimited by `cuts` (the
/// [`Partition::cuts`] vector), yielding one disjoint `&mut` chunk per
/// tile without allocating.
fn split_by_cuts<'a, T>(
    mut data: &'a mut [T],
    cuts: &'a [usize],
) -> impl Iterator<Item = &'a mut [T]> + 'a {
    cuts.windows(2).map(move |w| {
        let (chunk, rest) = std::mem::take(&mut data).split_at_mut(w[1] - w[0]);
        data = rest;
        chunk
    })
}

/// Reusable state of the incremental dirty-ball leader election (see the
/// module docs): per-vertex blocked counts plus the pending zero-count
/// list. Only ever consulted on the lossless fast path; the lossy /
/// forced-rescan path ignores it entirely.
#[derive(Debug, Default)]
struct LocalMaxCache {
    /// Packed per-vertex election state, one word per vertex so the
    /// memory-bound ball sweeps touch a single cache line per probe:
    ///
    /// * low 32 bits — the vertex's priority *rank*
    ///   (`rank_u < rank_v ⟺ (weight_u, u) > (weight_v, v)`, the
    ///   election's strict total order, materialized once per decision);
    /// * high 32 bits — its *blocked count*: undetermined members of its
    ///   closed `(2r+1)`-ball ranked above it ([`DETERMINED`] once the
    ///   vertex itself is determined). A Candidate leads iff zero.
    state: Vec<u64>,
    /// Vertices whose blocked count hit zero during the current
    /// mini-round's dirty expansion — the next mini-round's leaders
    /// (those still Candidate by then). A count hits zero at most once,
    /// so the list is duplicate-free by construction.
    pending: Vec<usize>,
    /// Vertices whose status changed in the current mini-round.
    changed: Vec<usize>,
    /// Vertices sorted by descending `(weight, id)` — sort scratch for
    /// the rank build.
    order: Vec<u32>,
}

/// High-half sentinel of [`LocalMaxCache::state`] marking a determined
/// vertex. Real blocked counts are bounded by the ball size (< `n` ≤
/// `u32::MAX`), so the sentinel is unreachable by decrements.
const DETERMINED: u64 = (u32::MAX as u64) << 32;

impl LocalMaxCache {
    /// Prepares the cache for a fresh decision over `n` vertices: sizes
    /// the state table (allocating only when `n` changes) and seeds it
    /// with this decision's priority ranks (blocked counts zeroed; the
    /// mini-round 0 sweep fills them).
    fn begin(&mut self, n: usize, weights: &[f64]) {
        if self.state.len() != n {
            self.state = vec![0; n];
        }
        self.pending.clear();
        self.changed.clear();
        self.order.clear();
        self.order.extend(0..n as u32);
        self.order.sort_unstable_by(|&a, &b| {
            (weights[b as usize], b)
                .partial_cmp(&(weights[a as usize], a))
                .expect("finite weights")
        });
        for (i, &v) in self.order.iter().enumerate() {
            self.state[v as usize] = i as u64;
        }
    }
}

/// Pooled scratch for the LocalLeader MWIS, grouped so the solver can be
/// borrowed as one unit disjointly from the rest of the protocol state.
#[derive(Debug, Default)]
struct SolverScratch {
    /// Reusable branch-and-bound workspace.
    mwis_ws: exact::Workspace,
    greedy: greedy::Scratch,
    masters: Vec<usize>,
    /// Winners of the current leader's local MWIS, sorted ascending.
    local_mwis: Vec<usize>,
}

impl<'h> DistributedPtas<'h> {
    /// Precomputes the `r`- and `(2r+1)`-hop neighborhood tables of `H`.
    pub fn new(h: &'h ExtendedConflictGraph, config: DistributedPtasConfig) -> Self {
        let n = h.n_vertices();
        assert!(u32::try_from(n).is_ok(), "graph too large for the decider");
        let g = h.graph();
        let mut ball_offsets = Vec::with_capacity(n + 1);
        ball_offsets.push(0);
        let mut ball_entries = Vec::new();
        for v in 0..n {
            let ball = g.r_hop_neighborhood(v, 2 * config.r + 1);
            ball_entries.extend(ball.iter().map(|&u| u as u32));
            ball_offsets.push(ball_entries.len());
        }
        let balls_r = (0..n).map(|v| g.r_hop_neighborhood(v, config.r)).collect();
        let node_groups = (0..n).map(|v| v / h.n_channels()).collect();
        let mut engine = if config.loss_prob > 0.0 {
            FloodEngine::with_loss(g, config.loss_prob, config.loss_seed)
        } else {
            FloodEngine::new(g)
        };
        engine.prewarm(2 * config.r + 1);
        engine.prewarm(3 * config.r + 1);
        let partition = (config.partitions > 1)
            .then(|| Partition::stripes(g, config.partitions, 2 * config.r + 1));
        DistributedPtas {
            h,
            config,
            engine,
            views: Vec::new(),
            balls_r,
            ball_offsets,
            ball_entries,
            node_groups,
            own: Vec::new(),
            leaders: Vec::new(),
            declare_floods: Vec::new(),
            det_floods: Vec::new(),
            inboxes: Vec::new(),
            det_lists: Vec::new(),
            cand: Vec::new(),
            selectable: Vec::new(),
            solver: SolverScratch::default(),
            cache: LocalMaxCache::default(),
            scan_stats: DecideScanStats::default(),
            partition,
            tile_scratch: Vec::new(),
            state_snap: Vec::new(),
            changed_ranks: Vec::new(),
            profile_phases: false,
            phase_ns: DecidePhaseNs::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DistributedPtasConfig {
        &self.config
    }

    /// Runs one strategy decision with the given per-vertex index weights
    /// (the learning policy's output for this round), allocating a fresh
    /// outcome. Hot loops should prefer [`DistributedPtas::decide_into`].
    ///
    /// # Determinism under message loss
    ///
    /// Lossless decisions are pure functions of the weights. With
    /// `loss_prob > 0`, the persistent engine's loss RNG advances across
    /// decisions: runs are reproducible per `(loss_seed, sequence of
    /// decisions)`, but two decisions with identical weights within one
    /// run see *different* loss realizations (construct a fresh
    /// `DistributedPtas` to replay a stream from its seed).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != H.n_vertices()` or any weight is not
    /// finite.
    pub fn decide(&mut self, weights: &[f64]) -> DecisionOutcome {
        let mut out = DecisionOutcome::default();
        self.decide_into(weights, &mut out);
        out
    }

    /// The flood engine this decision protocol communicates through —
    /// exposed so same-graph engines (e.g. the Algorithm 2 runner's WB
    /// engine) can adopt its prewarmed neighborhood tables instead of
    /// rebuilding them ([`FloodEngine::adopt_tables`]).
    pub fn flood_engine(&self) -> &FloodEngine<'h> {
        &self.engine
    }

    /// Stream position of the persistent engine's loss sampler — the
    /// *only* semantic state this protocol carries across decisions
    /// (every `decide` resets counters and scratch; under loss, flood
    /// realizations are keyed by `(loss_seed, flood index)`). Always `0`
    /// on lossless configurations.
    pub fn loss_flood_index(&self) -> u64 {
        self.engine.loss_flood_index()
    }

    /// Repositions the loss stream between decisions (checkpoint
    /// restore): a fresh `DistributedPtas` with the same config and this
    /// index restored reproduces the remaining decisions of the original
    /// run bit-identically.
    pub fn set_loss_flood_index(&mut self, flood: u64) {
        self.engine.set_loss_flood_index(flood);
    }

    /// Leader-election work counters of the most recent decision —
    /// streamed into the observer pipeline as `decide_scanned` and the
    /// headline evidence that the incremental dirty-ball path does less
    /// work than the full rescan it replaces.
    pub fn scan_stats(&self) -> DecideScanStats {
        self.scan_stats
    }

    /// The core+halo tiling the tiled decide runs over (`None` when
    /// `config.partitions <= 1`) — exposed so callers can report the
    /// boundary-handoff honesty metrics ([`Partition::halo_entries`]).
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Overrides the flood engine's ball-table entry cap
    /// ([`FloodEngine::set_table_entry_cap`]) — the large-N bench raises
    /// it so lossless floods stay `O(1)` table scans instead of silently
    /// falling back to BFS (watch [`DecisionOutcome::fallback_floods`]).
    pub fn set_table_entry_cap(&mut self, cap: usize) {
        self.engine.set_table_entry_cap(cap);
    }

    /// Enables per-phase wall-clock stamps on the incremental and tiled
    /// decide paths, readable via [`DistributedPtas::phase_ns`]. Off by
    /// default — the stamps are noise at large `n` but measurable in
    /// small-`n` hot loops.
    pub fn set_profile_phases(&mut self, on: bool) {
        self.profile_phases = on;
    }

    /// Per-phase wall-clock split of the last decision (zeroed unless
    /// profiling is on and the decision took an incremental path).
    pub fn phase_ns(&self) -> DecidePhaseNs {
        self.phase_ns
    }

    /// As [`DistributedPtas::decide`], writing into a caller-owned outcome
    /// whose vectors are cleared and refilled in place — together with the
    /// internal scratch pools this makes steady-state decisions
    /// allocation-free.
    ///
    /// Dispatches to the incremental dirty-ball election (module docs) on
    /// the lossless path — partition-parallel when
    /// [`DistributedPtasConfig::partitions`]` > 1`, byte-identically;
    /// under message loss — where local views can diverge from global
    /// state — or when [`DistributedPtasConfig::force_rescan`] is set, it
    /// runs the bit-exact full-rescan reference path
    /// ([`DistributedPtas::decide_into_rescan`]).
    ///
    /// # Panics
    ///
    /// As [`DistributedPtas::decide`].
    pub fn decide_into(&mut self, weights: &[f64], out: &mut DecisionOutcome) {
        self.check_weights(weights);
        if self.config.loss_prob > 0.0 || self.config.force_rescan {
            self.rescan_impl(weights, out);
        } else if self.partition.is_some() {
            self.tiled_impl(weights, out);
        } else {
            self.incremental_impl(weights, out);
        }
    }

    /// The full-rescan reference implementation of the decide phase: every
    /// undetermined Candidate re-evaluates its whole `(2r+1)`-ball each
    /// mini-round, statuses propagate through per-vertex local views, and
    /// determination floods materialize real inboxes. This is the
    /// pre-incremental algorithm, kept verbatim as (a) the mandatory path
    /// under message loss and (b) the oracle of the differential test
    /// battery (`tests/decide_parity.rs`), which pins the incremental path
    /// to produce identical [`DecisionOutcome`]s.
    #[doc(hidden)]
    pub fn decide_into_rescan(&mut self, weights: &[f64], out: &mut DecisionOutcome) {
        self.check_weights(weights);
        self.rescan_impl(weights, out);
    }

    fn check_weights(&self, weights: &[f64]) {
        assert_eq!(weights.len(), self.h.n_vertices(), "weight vector length");
        assert!(
            weights.iter().all(|w| w.is_finite()),
            "weights must be finite"
        );
    }

    /// The incremental dirty-ball decide phase (lossless only; see the
    /// module docs for the two invariants it rests on). Reads and writes
    /// global status directly — under lossless delivery every local view
    /// agrees with it — and charges flood costs through the engine's
    /// counters-only delivery, so no inbox is ever materialized.
    fn incremental_impl(&mut self, weights: &[f64], out: &mut DecisionOutcome) {
        debug_assert_eq!(self.config.loss_prob, 0.0);
        let profiling = self.profile_phases;
        let Self {
            h,
            config,
            engine,
            balls_r,
            ball_offsets,
            ball_entries,
            node_groups,
            own,
            leaders,
            declare_floods,
            det_floods,
            det_lists,
            cand,
            selectable,
            solver,
            cache,
            scan_stats,
            phase_ns,
            ..
        } = self;
        let ball = |v: usize| &ball_entries[ball_offsets[v]..ball_offsets[v + 1]];
        let n = h.n_vertices();
        let graph = h.graph();
        let r = config.r;
        engine.reset_counters();
        *scan_stats = DecideScanStats::default();
        let mut phases = DecidePhaseNs::default();
        let mut stamp = profiling.then(Instant::now);
        let mut lap = |slot: &mut u64| {
            if let Some(s) = stamp.as_mut() {
                let now = Instant::now();
                *slot += now.duration_since(*s).as_nanos() as u64;
                *s = now;
            }
        };

        own.clear();
        own.resize(n, Status::Candidate);
        cache.begin(n, weights);
        let mut remaining = n;
        out.winners.clear();
        out.per_miniround_weight.clear();
        out.leaders_per_miniround.clear();
        out.leaders_flat.clear();
        out.all_marked = false;
        let cap = config.max_minirounds.unwrap_or(n.max(1));

        for tau in 0..cap {
            // ---- 1. LocalLeader selection, incrementally: mini-round 0
            // seeds every vertex's blocked count with one full ball sweep;
            // afterwards the leaders are read off the pending zero-count
            // list maintained by the dirty expansion — no ball is ever
            // scanned again.
            leaders.clear();
            if tau == 0 {
                // Mini-round 0 only needs the local-maximum verdict, not
                // the counts yet: probe each ball with early exit at the
                // first higher-priority member (typically a handful of
                // entries). Counts are seeded after this round's
                // determinations land, over the survivors only.
                for v in 0..n {
                    scan_stats.candidates_scanned += 1;
                    let rv = cache.state[v] as u32;
                    let leads = ball(v)
                        .iter()
                        .all(|&u| (cache.state[u as usize] as u32) >= rv);
                    if leads {
                        leaders.push(v);
                    }
                }
            } else {
                for idx in 0..cache.pending.len() {
                    let v = cache.pending[idx];
                    // A zero-count vertex leads unless it was itself
                    // determined in the round that unblocked it.
                    if own[v] == Status::Candidate {
                        scan_stats.fast_skips += 1;
                        leaders.push(v);
                    }
                }
                cache.pending.clear();
                // The reference path discovers leaders in ascending vertex
                // order; match it so `leaders_flat` is bit-identical.
                leaders.sort_unstable();
            }
            lap(&mut phases.election_ns);
            if leaders.is_empty() {
                out.all_marked = remaining == 0;
                break;
            }
            out.leaders_per_miniround.push(leaders.len());
            out.leaders_flat.extend_from_slice(leaders);

            // ---- 2. Leader declaration floods ((2r+1) hops, accounting
            // only — same as the reference path).
            declare_floods.clear();
            declare_floods.extend(leaders.iter().map(|&v| Flood {
                origin: v,
                ttl: 2 * r + 1,
                payload: Msg::LeaderDeclare,
            }));
            engine.broadcast_only(declare_floods);
            lap(&mut phases.broadcast_ns);

            // ---- 3. Local MWIS per leader, reading global status (equal
            // to the leader's view under lossless delivery).
            if det_lists.len() < leaders.len() {
                det_lists.resize_with(leaders.len(), Vec::new);
            }
            det_floods.clear();
            for slot in 0..leaders.len() {
                let leader = leaders[slot];
                cand.clear();
                cand.extend(
                    balls_r[leader]
                        .iter()
                        .copied()
                        .filter(|&u| own[u] == Status::Candidate),
                );
                selectable.clear();
                selectable.extend(
                    cand.iter()
                        .copied()
                        .filter(|&u| graph.neighbors(u).iter().all(|&x| own[x] != Status::Winner)),
                );
                Self::solve_local(graph, config, node_groups, solver, weights, selectable);
                let list = &mut det_lists[slot];
                list.clear();
                list.extend(
                    cand.iter()
                        .map(|&u| (u, solver.local_mwis.binary_search(&u).is_ok())),
                );
                det_floods.push(Flood {
                    origin: leader,
                    ttl: 3 * r + 1,
                    payload: Msg::Determination(slot as u32),
                });
            }
            lap(&mut phases.mwis_ns);

            // ---- 4. Determination floods, accounting only: lossless
            // delivery is total within the TTL, so applying each leader's
            // list once to the global status array is exactly what every
            // receiver's view update would have computed. Same-mini-round
            // lists are disjoint (leaders are ≥ 2r+2 apart, lists span
            // r-balls), so application order is immaterial.
            engine.broadcast_only(det_floods);
            cache.changed.clear();
            for list in det_lists.iter().take(leaders.len()) {
                for &(u, is_winner) in list {
                    debug_assert_eq!(own[u], Status::Candidate);
                    own[u] = if is_winner {
                        Status::Winner
                    } else {
                        Status::Loser
                    };
                    cache.state[u] |= DETERMINED;
                    remaining -= 1;
                    cache.changed.push(u);
                }
            }
            lap(&mut phases.broadcast_ns);

            // ---- 5. Bookkeeping (same summation order as the reference
            // path, so the Fig. 6 series is bit-identical).
            let cum: f64 = (0..n)
                .filter(|&v| own[v] == Status::Winner)
                .map(|v| weights[v])
                .sum();
            out.per_miniround_weight.push(cum);
            if remaining == 0 {
                out.all_marked = true;
                lap(&mut phases.sweep_ns);
                break;
            }

            // ---- 6. Dirty expansion, feeding the *next* mini-round's
            // election (skipped on the budget's last round — nothing
            // would read it).
            if tau + 1 == cap {
                lap(&mut phases.sweep_ns);
                continue;
            }
            if tau == 0 {
                // Seed the blocked counts over the survivors: count the
                // still-undetermined higher-priority ball members. This
                // folds mini-round 0's (largest) determination wave into
                // the seeding sweep instead of replaying it as
                // decrements, and skips the determined majority outright.
                for (v, &status) in own.iter().enumerate() {
                    if status != Status::Candidate {
                        continue;
                    }
                    scan_stats.candidates_scanned += 1;
                    let rv = cache.state[v] as u32;
                    let mut blocked = 0u64;
                    for &u in ball(v) {
                        let s = cache.state[u as usize];
                        blocked += u64::from((s as u32) < rv) & u64::from(s < DETERMINED);
                    }
                    cache.state[v] |= blocked << 32;
                    if blocked == 0 {
                        cache.pending.push(v);
                    }
                }
            } else {
                // Each determination of `u` can only change verdicts
                // within `u`'s (2r+1)-ball — walk exactly that ball and
                // retire `u` from the blocked counts of its
                // lower-priority Candidates. Whoever drops to zero is a
                // leader next mini-round; everyone else's verdict
                // carries forward.
                let mut decrements = 0u64;
                for i in 0..cache.changed.len() {
                    let u = cache.changed[i];
                    let ru = cache.state[u] as u32;
                    for &x in ball(u) {
                        let x = x as usize;
                        // One packed load: rank in the low half, blocked
                        // count (or the DETERMINED sentinel) in the
                        // high. The outcome of the rank test is
                        // data-dependent and unpredictable, so the
                        // decrement is applied branchlessly; only the
                        // rare hit-zero push branches.
                        let s = cache.state[x];
                        let dec = u64::from((s as u32) > ru) & u64::from(s < DETERMINED);
                        decrements += dec;
                        let s = s - (dec << 32);
                        cache.state[x] = s;
                        if dec != 0 && s >> 32 == 0 {
                            cache.pending.push(x);
                        }
                    }
                }
                scan_stats.dirty_decrements += decrements;
            }
            lap(&mut phases.sweep_ns);
        }
        *phase_ns = phases;

        Self::finish_outcome(graph, own, engine, out);
    }

    /// The partition-parallel decide phase: the incremental dirty-ball
    /// algorithm with its per-vertex phases run tile-local over
    /// [`Partition`] stripes (see the module docs for the byte-identity
    /// argument). Serial glue — status application, flood accounting, the
    /// Fig. 6 summation — is `O(determinations)` per mini-round.
    fn tiled_impl(&mut self, weights: &[f64], out: &mut DecisionOutcome) {
        debug_assert_eq!(self.config.loss_prob, 0.0);
        let profiling = self.profile_phases;
        let parallel = self.config.threads != 1;
        let Self {
            h,
            config,
            engine,
            balls_r,
            ball_offsets,
            ball_entries,
            node_groups,
            own,
            leaders,
            declare_floods,
            det_floods,
            det_lists,
            cache,
            scan_stats,
            partition,
            tile_scratch,
            state_snap,
            changed_ranks,
            phase_ns,
            ..
        } = self;
        let part = partition
            .as_ref()
            .expect("tiled decide without a partition");
        let cuts: &[usize] = part.cuts();
        let tiles = part.tile_count();
        if tile_scratch.len() < tiles {
            tile_scratch.resize_with(tiles, TileScratch::default);
        }
        // Shared-read shadows of the pooled tables, so the Fn worker
        // closures capture plain `&` references.
        let balls_r: &[Vec<usize>] = balls_r;
        let ball_offsets: &[usize] = ball_offsets;
        let ball_entries: &[u32] = ball_entries;
        let node_groups: &[usize] = node_groups;
        let cfg: &DistributedPtasConfig = config;
        let n = h.n_vertices();
        let graph = h.graph();
        let r = cfg.r;
        engine.reset_counters();
        *scan_stats = DecideScanStats::default();
        let mut phases = DecidePhaseNs::default();
        let mut stamp = profiling.then(Instant::now);
        let mut lap = |slot: &mut u64| {
            if let Some(s) = stamp.as_mut() {
                let now = Instant::now();
                *slot += now.duration_since(*s).as_nanos() as u64;
                *s = now;
            }
        };

        own.clear();
        own.resize(n, Status::Candidate);
        cache.begin(n, weights);
        let mut remaining = n;
        out.winners.clear();
        out.per_miniround_weight.clear();
        out.leaders_per_miniround.clear();
        out.leaders_flat.clear();
        out.all_marked = false;
        let cap = cfg.max_minirounds.unwrap_or(n.max(1));

        for tau in 0..cap {
            // ---- 1. LocalLeader selection. Mini-round 0 probes each
            // tile's core against the (read-only) rank table; per-tile
            // leader lists concatenate in tile order, which *is* the
            // serial ascending scan order. Later rounds drain the pending
            // list serially (it holds a mini-round's leaders, not a
            // vertex sweep) and sort — the serial path sorts too, which
            // is what normalizes the tiles' differing push order.
            leaders.clear();
            if tau == 0 {
                let state: &[u64] = &cache.state;
                run_tiles(
                    parallel,
                    tile_scratch[..tiles].iter_mut().enumerate(),
                    |(t, ts)| {
                        ts.leaders.clear();
                        ts.scanned = 0;
                        for v in cuts[t]..cuts[t + 1] {
                            ts.scanned += 1;
                            let rv = state[v] as u32;
                            let leads = ball_entries[ball_offsets[v]..ball_offsets[v + 1]]
                                .iter()
                                .all(|&u| (state[u as usize] as u32) >= rv);
                            if leads {
                                ts.leaders.push(v);
                            }
                        }
                    },
                );
                for ts in tile_scratch[..tiles].iter_mut() {
                    scan_stats.candidates_scanned += ts.scanned;
                    leaders.extend_from_slice(&ts.leaders);
                }
            } else {
                for idx in 0..cache.pending.len() {
                    let v = cache.pending[idx];
                    if own[v] == Status::Candidate {
                        scan_stats.fast_skips += 1;
                        leaders.push(v);
                    }
                }
                cache.pending.clear();
                leaders.sort_unstable();
            }
            lap(&mut phases.election_ns);
            if leaders.is_empty() {
                out.all_marked = remaining == 0;
                break;
            }
            out.leaders_per_miniround.push(leaders.len());
            out.leaders_flat.extend_from_slice(leaders);

            // ---- 2. Leader declaration floods (accounting only).
            declare_floods.clear();
            declare_floods.extend(leaders.iter().map(|&v| Flood {
                origin: v,
                ttl: 2 * r + 1,
                payload: Msg::LeaderDeclare,
            }));
            engine.broadcast_only(declare_floods);
            lap(&mut phases.broadcast_ns);

            // ---- 3. Local MWIS, leader slots chunked over the workers.
            // Each slot's solve is a pure function of the (read-only)
            // global statuses and weights, identical to the serial
            // computation; `det_lists` is split so each worker owns its
            // slots' lists outright.
            if det_lists.len() < leaders.len() {
                det_lists.resize_with(leaders.len(), Vec::new);
            }
            let nl = leaders.len();
            let chunk = nl.div_ceil(tiles).max(1);
            {
                let own_ref: &[Status] = own;
                let leaders_ref: &[usize] = leaders;
                run_tiles(
                    parallel,
                    det_lists[..nl]
                        .chunks_mut(chunk)
                        .zip(tile_scratch.iter_mut())
                        .enumerate(),
                    |(ci, (lists, ts))| {
                        let base = ci * chunk;
                        for (off, list) in lists.iter_mut().enumerate() {
                            let leader = leaders_ref[base + off];
                            ts.cand.clear();
                            ts.cand.extend(
                                balls_r[leader]
                                    .iter()
                                    .copied()
                                    .filter(|&u| own_ref[u] == Status::Candidate),
                            );
                            ts.selectable.clear();
                            ts.selectable.extend(ts.cand.iter().copied().filter(|&u| {
                                graph
                                    .neighbors(u)
                                    .iter()
                                    .all(|&x| own_ref[x] != Status::Winner)
                            }));
                            Self::solve_local(
                                graph,
                                cfg,
                                node_groups,
                                &mut ts.solver,
                                weights,
                                &ts.selectable,
                            );
                            list.clear();
                            list.extend(
                                ts.cand
                                    .iter()
                                    .map(|&u| (u, ts.solver.local_mwis.binary_search(&u).is_ok())),
                            );
                        }
                    },
                );
            }
            det_floods.clear();
            det_floods.extend(leaders.iter().enumerate().map(|(slot, &leader)| Flood {
                origin: leader,
                ttl: 3 * r + 1,
                payload: Msg::Determination(slot as u32),
            }));
            lap(&mut phases.mwis_ns);

            // ---- 4. Determination floods and serial status application
            // (same-mini-round lists are disjoint; see the serial path).
            engine.broadcast_only(det_floods);
            cache.changed.clear();
            for list in det_lists.iter().take(leaders.len()) {
                for &(u, is_winner) in list {
                    debug_assert_eq!(own[u], Status::Candidate);
                    own[u] = if is_winner {
                        Status::Winner
                    } else {
                        Status::Loser
                    };
                    cache.state[u] |= DETERMINED;
                    remaining -= 1;
                    cache.changed.push(u);
                }
            }
            lap(&mut phases.broadcast_ns);

            // ---- 5. Bookkeeping (serial, same order as the reference).
            let cum: f64 = (0..n)
                .filter(|&v| own[v] == Status::Winner)
                .map(|v| weights[v])
                .sum();
            out.per_miniround_weight.push(cum);
            if remaining == 0 {
                out.all_marked = true;
                lap(&mut phases.sweep_ns);
                break;
            }
            if tau + 1 == cap {
                lap(&mut phases.sweep_ns);
                continue;
            }

            // ---- 6. Dirty expansion, tile-parallel over state stripes.
            if tau == 0 {
                // Seeding sweep: workers read a pre-sweep snapshot and
                // write only their stripe. The snapshot is equivalent to
                // the serial in-place sweep because the probe only reads
                // immutable low-half ranks and the `< DETERMINED` test,
                // which no in-sweep write can flip (blocked counts are
                // `< n ≤ u32::MAX`). Per-tile pending lists concatenate
                // in tile order = ascending = the serial push order.
                state_snap.clone_from(&cache.state);
                let snap: &[u64] = state_snap;
                let own_ref: &[Status] = own;
                run_tiles(
                    parallel,
                    split_by_cuts(&mut cache.state, cuts)
                        .zip(tile_scratch.iter_mut())
                        .enumerate(),
                    |(t, (stripe, ts))| {
                        ts.pending.clear();
                        ts.scanned = 0;
                        let base = cuts[t];
                        for (i, slot) in stripe.iter_mut().enumerate() {
                            let v = base + i;
                            if own_ref[v] != Status::Candidate {
                                continue;
                            }
                            ts.scanned += 1;
                            let rv = snap[v] as u32;
                            let mut blocked = 0u64;
                            for &u in &ball_entries[ball_offsets[v]..ball_offsets[v + 1]] {
                                let s = snap[u as usize];
                                blocked += u64::from((s as u32) < rv) & u64::from(s < DETERMINED);
                            }
                            *slot |= blocked << 32;
                            if blocked == 0 {
                                ts.pending.push(v);
                            }
                        }
                    },
                );
                for ts in tile_scratch[..tiles].iter_mut() {
                    scan_stats.candidates_scanned += ts.scanned;
                    cache.pending.extend_from_slice(&ts.pending);
                }
            } else {
                // Decrement sweep, parallel by *target* stripe: every
                // worker walks all changed vertices but touches only the
                // sub-range of each ball that lands in its stripe (the
                // balls are sorted, so the sub-range is two binary
                // searches). Changed ranks are precomputed serially so no
                // worker reads another stripe. The per-vertex decrement
                // sequences — and hence the hit-zero moments — are
                // exactly the serial ones; only the pending *order*
                // differs across tiles, which the next election's sort
                // normalizes.
                changed_ranks.clear();
                changed_ranks.extend(cache.changed.iter().map(|&u| cache.state[u] as u32));
                let changed: &[usize] = &cache.changed;
                let ranks: &[u32] = changed_ranks;
                run_tiles(
                    parallel,
                    split_by_cuts(&mut cache.state, cuts)
                        .zip(tile_scratch.iter_mut())
                        .enumerate(),
                    |(t, (stripe, ts))| {
                        ts.pending.clear();
                        ts.decrements = 0;
                        let lo = cuts[t] as u32;
                        let hi = cuts[t + 1] as u32;
                        for (i, &u) in changed.iter().enumerate() {
                            let ru = ranks[i];
                            let ball = &ball_entries[ball_offsets[u]..ball_offsets[u + 1]];
                            let a = ball.partition_point(|&x| x < lo);
                            let b = ball.partition_point(|&x| x < hi);
                            for &x in &ball[a..b] {
                                let xi = (x - lo) as usize;
                                let s = stripe[xi];
                                let dec = u64::from((s as u32) > ru) & u64::from(s < DETERMINED);
                                ts.decrements += dec;
                                let s = s - (dec << 32);
                                stripe[xi] = s;
                                if dec != 0 && s >> 32 == 0 {
                                    ts.pending.push(x as usize);
                                }
                            }
                        }
                    },
                );
                for ts in tile_scratch[..tiles].iter_mut() {
                    scan_stats.dirty_decrements += ts.decrements;
                    cache.pending.extend_from_slice(&ts.pending);
                }
            }
            lap(&mut phases.sweep_ns);
        }
        *phase_ns = phases;

        Self::finish_outcome(graph, own, engine, out);
    }

    /// Shared outcome epilogue: winners, conflict audit, counters.
    fn finish_outcome(
        graph: &mhca_graph::Graph,
        own: &[Status],
        engine: &FloodEngine<'_>,
        out: &mut DecisionOutcome,
    ) {
        out.winners
            .extend((0..own.len()).filter(|&v| own[v] == Status::Winner));
        // Adjacent Winner pairs, each counted once via its lower endpoint.
        // Adjacency-list sweep, not all-pairs `has_edge`: at n = 5×10^4
        // the quadratic audit costs more than the decision it audits.
        out.conflicts = out
            .winners
            .iter()
            .map(|&u| {
                graph
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| w > u && own[w] == Status::Winner)
                    .count()
            })
            .sum();
        out.minirounds_used = out.leaders_per_miniround.len();
        out.fallback_floods = engine.fallback_floods();
        out.counters.clone_from(engine.counters());
    }

    fn rescan_impl(&mut self, weights: &[f64], out: &mut DecisionOutcome) {
        let n = self.h.n_vertices();
        let graph = self.h.graph();
        let r = self.config.r;
        self.engine.reset_counters();
        self.scan_stats = DecideScanStats::default();
        self.phase_ns = DecidePhaseNs::default();

        // The views are lazily materialized from the flat ball CSR on the
        // reference path's first use (the incremental paths never touch
        // them, and at large `n` they would double the footprint).
        if self.views.len() != n {
            self.views = (0..n)
                .map(|v| {
                    let ball: Vec<usize> = self.ball_entries
                        [self.ball_offsets[v]..self.ball_offsets[v + 1]]
                        .iter()
                        .map(|&u| u as usize)
                        .collect();
                    let status = vec![Status::Candidate; ball.len()];
                    LocalView { ball, status }
                })
                .collect();
        }
        for view in &mut self.views {
            view.reset();
        }
        self.own.clear();
        self.own.resize(n, Status::Candidate);
        out.winners.clear();
        out.per_miniround_weight.clear();
        out.leaders_per_miniround.clear();
        out.leaders_flat.clear();
        out.all_marked = false;
        let cap = self.config.max_minirounds.unwrap_or(n.max(1));

        for _tau in 0..cap {
            // ---- 1. LocalLeader selection (Algorithm 3 lines 2–6).
            // A Candidate leads iff no other Candidate in its (2r+1)-ball
            // has a larger (weight, id) pair — the strict total order that
            // keeps same-mini-round leaders ≥ 2r+2 hops apart.
            self.leaders.clear();
            for v in 0..n {
                if self.own[v] != Status::Candidate {
                    continue;
                }
                self.scan_stats.candidates_scanned += 1;
                let view = &self.views[v];
                let leads = view.ball.iter().zip(&view.status).all(|(&u, &st)| {
                    u == v || st != Status::Candidate || (weights[u], u) < (weights[v], v)
                });
                if leads {
                    self.leaders.push(v);
                }
            }
            if self.leaders.is_empty() {
                out.all_marked = (0..n).all(|v| self.own[v] != Status::Candidate);
                break;
            }
            out.leaders_per_miniround.push(self.leaders.len());
            out.leaders_flat.extend_from_slice(&self.leaders);

            // ---- 2. Leader declaration floods (line 4; (2r+1) hops).
            self.declare_floods.clear();
            self.declare_floods
                .extend(self.leaders.iter().map(|&v| Flood {
                    origin: v,
                    ttl: 2 * r + 1,
                    payload: Msg::LeaderDeclare,
                }));
            // Declarations only need to have been broadcast (leadership is
            // evaluated from the shared weight/status knowledge); charge
            // the communication without materializing inboxes.
            self.engine.broadcast_only(&self.declare_floods);

            // ---- 3. Local MWIS per leader (lines 8–9).
            if self.det_lists.len() < self.leaders.len() {
                self.det_lists.resize_with(self.leaders.len(), Vec::new);
            }
            self.det_floods.clear();
            for slot in 0..self.leaders.len() {
                let leader = self.leaders[slot];
                let view = &self.views[leader];
                // Candidates of the r-ball, per the leader's knowledge.
                self.cand.clear();
                self.cand.extend(
                    self.balls_r[leader]
                        .iter()
                        .copied()
                        .filter(|&u| view.get(u) == Some(Status::Candidate)),
                );
                // Derived exclusion: candidates adjacent to a known Winner
                // can never join the output; they are Losers.
                self.selectable.clear();
                self.selectable
                    .extend(self.cand.iter().copied().filter(|&u| {
                        graph
                            .neighbors(u)
                            .iter()
                            .all(|&x| view.get(x) != Some(Status::Winner))
                    }));
                Self::solve_local(
                    graph,
                    &self.config,
                    &self.node_groups,
                    &mut self.solver,
                    weights,
                    &self.selectable,
                );
                let list = &mut self.det_lists[slot];
                list.clear();
                list.extend(
                    self.cand
                        .iter()
                        .map(|&u| (u, self.solver.local_mwis.binary_search(&u).is_ok())),
                );
                self.det_floods.push(Flood {
                    origin: leader,
                    ttl: 3 * r + 1,
                    payload: Msg::Determination(slot as u32),
                });
            }

            // ---- 4. Determination floods (line 10; (3r+1) hops) and
            //         local processing (lines 11–15). `Msg` is `Copy`, so
            //         the copy path skips the per-reception clone on the
            //         lossy BFS route.
            self.engine
                .deliver_copy_into(&self.det_floods, &mut self.inboxes);
            // Leaders apply their own determinations directly (they do not
            // receive their own flood).
            for flood in &self.det_floods {
                if let Msg::Determination(slot) = flood.payload {
                    Self::apply_determinations(
                        flood.origin,
                        &self.det_lists[slot as usize],
                        &mut self.own,
                        &mut self.views,
                    );
                }
            }
            for (v, inbox) in self.inboxes.iter().enumerate() {
                for received in inbox {
                    if let Msg::Determination(slot) = received.payload {
                        Self::apply_one_inbox(
                            graph,
                            v,
                            &self.det_lists[slot as usize],
                            &mut self.own,
                            &mut self.views[v],
                        );
                    }
                }
            }

            // ---- 5. Bookkeeping for the Fig. 6 series.
            let cum: f64 = (0..n)
                .filter(|&v| self.own[v] == Status::Winner)
                .map(|v| weights[v])
                .sum();
            out.per_miniround_weight.push(cum);
            if (0..n).all(|v| self.own[v] != Status::Candidate) {
                out.all_marked = true;
                break;
            }
        }

        Self::finish_outcome(graph, &self.own, &self.engine, out);
    }

    /// Applies a leader's own determination list at the leader itself.
    fn apply_determinations(
        leader: usize,
        list: &[(usize, bool)],
        own: &mut [Status],
        views: &mut [LocalView],
    ) {
        for &(u, is_winner) in list {
            let status = if is_winner {
                Status::Winner
            } else {
                Status::Loser
            };
            if u == leader {
                own[leader] = status;
            }
            views[leader].set(u, status);
        }
    }

    /// Processes one received determination list at vertex `v`.
    fn apply_one_inbox(
        graph: &mhca_graph::Graph,
        v: usize,
        list: &[(usize, bool)],
        own: &mut [Status],
        view: &mut LocalView,
    ) {
        for &(u, is_winner) in list {
            let status = if is_winner {
                Status::Winner
            } else {
                Status::Loser
            };
            if u == v {
                // Loss defense: refuse Winner when a known neighbor
                // already won (never fires under lossless delivery).
                if is_winner
                    && graph
                        .neighbors(v)
                        .iter()
                        .any(|&x| view.get(x) == Some(Status::Winner))
                {
                    own[v] = Status::Loser;
                    view.set(v, Status::Loser);
                    continue;
                }
                own[v] = status;
            }
            view.set(u, status);
        }
    }

    /// Local MWIS over the selectable candidates (grouped by master node),
    /// written sorted-ascending into `scratch.local_mwis`.
    ///
    /// The exact and greedy paths run entirely on the pooled scratch
    /// (allocation-free when warm); the local-search fallback allocates
    /// its result set — it is the cold, quality-ablation configuration.
    fn solve_local(
        graph: &mhca_graph::Graph,
        config: &DistributedPtasConfig,
        node_groups: &[usize],
        scratch: &mut SolverScratch,
        weights: &[f64],
        selectable: &[usize],
    ) {
        let out = &mut scratch.local_mwis;
        match config.local_solver {
            LocalSolver::Exact => {
                scratch
                    .mwis_ws
                    .solve_grouped_into(graph, weights, selectable, node_groups, out);
            }
            LocalSolver::Greedy => {
                greedy::max_weight_subset_into(
                    graph,
                    weights,
                    selectable,
                    &mut scratch.greedy,
                    out,
                );
            }
            LocalSolver::LocalSearch { max_passes } => {
                let s =
                    mhca_mwis::local_search::solve_subset(graph, weights, selectable, max_passes);
                out.clear();
                out.extend_from_slice(&s.vertices);
            }
            LocalSolver::Auto { max_exact_groups } => {
                let masters = &mut scratch.masters;
                masters.clear();
                masters.extend(selectable.iter().map(|&v| node_groups[v]));
                masters.sort_unstable();
                masters.dedup();
                if masters.len() <= max_exact_groups {
                    scratch.mwis_ws.solve_grouped_into(
                        graph,
                        weights,
                        selectable,
                        node_groups,
                        out,
                    );
                } else {
                    greedy::max_weight_subset_into(
                        graph,
                        weights,
                        selectable,
                        &mut scratch.greedy,
                        out,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    fn decide(
        g: &mhca_graph::Graph,
        m: usize,
        weights: &[f64],
        config: DistributedPtasConfig,
    ) -> DecisionOutcome {
        let h = ExtendedConflictGraph::new(g, m);
        let mut ptas = DistributedPtas::new(&h, config);
        ptas.decide(weights)
    }

    fn run_to_completion(r: usize) -> DistributedPtasConfig {
        DistributedPtasConfig::default()
            .with_r(r)
            .with_max_minirounds(None)
    }

    #[test]
    fn winners_are_independent_and_all_marked() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(30, 4.0, &mut rng);
            let m = 3;
            let h = ExtendedConflictGraph::new(&g, m);
            let w: Vec<f64> = (0..h.n_vertices())
                .map(|_| rng.gen_range(0.1..1.0))
                .collect();
            let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
            let out = ptas.decide(&w);
            assert!(out.all_marked, "protocol must terminate fully");
            assert_eq!(out.conflicts, 0);
            assert!(h.graph().is_independent(&out.winners));
        }
    }

    #[test]
    fn single_vertex_wins_alone() {
        let g = topology::independent(1);
        let out = decide(&g, 1, &[0.7], run_to_completion(1));
        assert_eq!(out.winners, vec![0]);
        assert_eq!(out.minirounds_used, 1);
        assert!(out.all_marked);
    }

    #[test]
    fn two_conflicting_nodes_one_channel() {
        // G: 0—1, M=1 ⇒ H is a single edge. Heavier vertex wins.
        let g = topology::line(2);
        let out = decide(&g, 1, &[0.3, 0.9], run_to_completion(2));
        assert_eq!(out.winners, vec![1]);
    }

    #[test]
    fn equal_weights_still_resolve_exactly_one_winner() {
        // Leader election ties break by id; the local MWIS then picks one
        // of the two equal-weight vertices. Either is optimal — the
        // invariant is that exactly one wins and the protocol terminates.
        let g = topology::line(2);
        let out = decide(&g, 1, &[0.5, 0.5], run_to_completion(2));
        assert_eq!(out.winners.len(), 1);
        assert!(out.all_marked);
        assert_eq!(out.conflicts, 0);
    }

    #[test]
    fn matches_good_quality_on_random_instances() {
        // Full-run distributed output should be within a modest factor of
        // the exact optimum on small instances.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(12, 3.0, &mut rng);
            let m = 2;
            let h = ExtendedConflictGraph::new(&g, m);
            let w: Vec<f64> = (0..h.n_vertices())
                .map(|_| rng.gen_range(0.1..1.0))
                .collect();
            let groups: Vec<usize> = (0..h.n_vertices()).map(|v| v / m).collect();
            let allowed: Vec<usize> = (0..h.n_vertices()).collect();
            let opt = exact::solve_grouped(h.graph(), &w, &allowed, &groups);
            let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
            let out = ptas.decide(&w);
            let achieved: f64 = out.winners.iter().map(|&v| w[v]).sum();
            assert!(
                achieved >= 0.5 * opt.weight,
                "distributed {achieved} vs opt {}",
                opt.weight
            );
        }
    }

    #[test]
    fn linear_network_needs_many_minirounds() {
        // Fig. 5: decreasing weights along a line force Θ(N) mini-rounds.
        let n = 30;
        let g = topology::line(n);
        let w: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / n as f64).collect();
        let out = decide(&g, 1, &w, run_to_completion(1));
        assert!(out.all_marked);
        assert!(
            out.minirounds_used >= n / 4,
            "expected Θ(N) mini-rounds, got {}",
            out.minirounds_used
        );
    }

    #[test]
    fn random_network_converges_fast() {
        // Theorem 4 / Fig. 6: random networks converge in few mini-rounds.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(50, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 5);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out = ptas.decide(&w);
        assert!(out.all_marked);
        assert!(
            out.minirounds_used <= 10,
            "expected fast convergence, got {}",
            out.minirounds_used
        );
    }

    #[test]
    fn capped_minirounds_still_independent() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 4);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(
            &h,
            DistributedPtasConfig::default()
                .with_r(2)
                .with_max_minirounds(Some(2)),
        );
        let out = ptas.decide(&w);
        assert!(out.minirounds_used <= 2);
        assert_eq!(out.conflicts, 0);
        assert!(h.graph().is_independent(&out.winners));
    }

    #[test]
    fn per_miniround_weight_is_nondecreasing() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out = ptas.decide(&w);
        for pair in out.per_miniround_weight.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12);
        }
        let final_weight: f64 = out.winners.iter().map(|&v| w[v]).sum();
        let last = *out.per_miniround_weight.last().unwrap();
        assert!((final_weight - last).abs() < 1e-9);
    }

    #[test]
    fn at_most_one_channel_per_node() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(25, 4.0, &mut rng);
        let m = 4;
        let h = ExtendedConflictGraph::new(&g, m);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out = ptas.decide(&w);
        let mut masters: Vec<usize> = out.winners.iter().map(|&v| v / m).collect();
        let before = masters.len();
        masters.dedup();
        assert_eq!(before, masters.len(), "a node won two channels");
    }

    #[test]
    fn decisions_depend_only_on_local_information() {
        // Two disconnected components: changing weights in one must not
        // change the winners of the other.
        let g = mhca_graph::Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let h = ExtendedConflictGraph::new(&g, 2);
        let mut w: Vec<f64> = (0..12).map(|i| 0.1 + i as f64 * 0.05).collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out1 = ptas.decide(&w);
        // Scramble the second component's weights (nodes 3..6 ⇒ vertices 6..12).
        for x in w.iter_mut().skip(6) {
            *x *= 0.37;
        }
        let out2 = ptas.decide(&w);
        let comp_a = |ws: &[usize]| ws.iter().copied().filter(|&v| v < 6).collect::<Vec<_>>();
        assert_eq!(comp_a(&out1.winners), comp_a(&out2.winners));
    }

    #[test]
    fn greedy_local_solver_is_safe() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(
            &h,
            run_to_completion(2).with_local_solver(LocalSolver::Greedy),
        );
        let out = ptas.decide(&w);
        assert!(out.all_marked);
        assert!(h.graph().is_independent(&out.winners));
    }

    #[test]
    fn local_search_solver_matches_or_beats_greedy() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(88);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let run = |solver| {
            let mut ptas = DistributedPtas::new(&h, run_to_completion(2).with_local_solver(solver));
            let out = ptas.decide(&w);
            assert!(h.graph().is_independent(&out.winners));
            out.winners.iter().map(|&v| w[v]).sum::<f64>()
        };
        let greedy_w = run(LocalSolver::Greedy);
        let ls_w = run(LocalSolver::LocalSearch { max_passes: 10 });
        assert!(
            ls_w >= 0.95 * greedy_w,
            "local search {ls_w} much worse than greedy {greedy_w}"
        );
    }

    #[test]
    fn lossy_delivery_terminates_and_reports_conflicts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(30, 4.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 2);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(
            &h,
            DistributedPtasConfig::default()
                .with_r(1)
                .with_max_minirounds(Some(20))
                .with_loss(0.2, 42),
        );
        let out = ptas.decide(&w);
        // Liveness degrades gracefully; the conflict counter quantifies
        // any safety damage instead of hiding it.
        assert!(out.minirounds_used <= 20);
        assert!(out.conflicts < out.winners.len().max(1));
    }

    #[test]
    fn counters_accumulate_communication() {
        let g = topology::line(5);
        let out = decide(&g, 2, &[0.5; 10], run_to_completion(1));
        assert!(out.counters.transmissions > 0);
        assert!(out.counters.timeslots > 0);
    }

    #[test]
    fn decide_incremental_matches_rescan_reference() {
        // Differential smoke (the full grid lives in tests/decide_parity.rs):
        // the incremental dirty-ball path and the full-rescan reference must
        // produce identical outcomes — winners, series, leaders, counters —
        // across repeated decisions on one engine pair.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..6 {
            let (g, _) = mhca_graph::unit_disk::random_with_average_degree(35, 4.5, &mut rng);
            let h = ExtendedConflictGraph::new(&g, 3);
            for r in [1, 2] {
                let cfg = run_to_completion(r);
                let mut inc = DistributedPtas::new(&h, cfg);
                let mut reference = DistributedPtas::new(&h, cfg);
                let mut a = DecisionOutcome::default();
                let mut b = DecisionOutcome::default();
                for round in 0..3 {
                    let w: Vec<f64> = (0..h.n_vertices())
                        .map(|_| rng.gen_range(0.1..1.0))
                        .collect();
                    inc.decide_into(&w, &mut a);
                    reference.decide_into_rescan(&w, &mut b);
                    assert_eq!(a, b, "trial {trial} r {r} round {round}");
                }
            }
        }
    }

    #[test]
    fn decide_force_rescan_config_routes_to_reference_path() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(30, 4.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut forced = DistributedPtas::new(&h, run_to_completion(2).with_force_rescan(true));
        let out = forced.decide(&w);
        // The rescan path never writes dirty-set instrumentation.
        assert_eq!(forced.scan_stats().fast_skips, 0);
        assert_eq!(forced.scan_stats().dirty_decrements, 0);
        let mut inc = DistributedPtas::new(&h, run_to_completion(2));
        assert_eq!(inc.decide(&w), out);
        if out.minirounds_used > 1 {
            assert!(
                inc.scan_stats().candidates_scanned < forced.scan_stats().candidates_scanned,
                "incremental path must scan fewer candidates"
            );
        }
    }

    #[test]
    fn decide_scan_stats_near_one_sweep_on_incremental_path() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(60, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 4);
        let n = h.n_vertices() as u64;
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut inc = DistributedPtas::new(&h, run_to_completion(2));
        let out = inc.decide(&w);
        assert!(out.all_marked);
        let stats = inc.scan_stats();
        // Mini-round 0 scans everyone once; later rounds only rescan
        // candidates whose blocker fell — a vertex is rescanned at most
        // once per mini-round, and in practice far less.
        assert!(stats.candidates_scanned >= n);
        assert!(
            stats.candidates_scanned <= n * out.minirounds_used as u64,
            "scanned {} with n {} over {} mini-rounds",
            stats.candidates_scanned,
            n,
            out.minirounds_used
        );
        let mut reference = DistributedPtas::new(&h, run_to_completion(2));
        reference.decide_into_rescan(&w, &mut DecisionOutcome::default());
        assert!(stats.candidates_scanned < reference.scan_stats().candidates_scanned);
    }

    #[test]
    fn decide_leaders_flat_segments_match_counts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(51);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 5.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        let out = ptas.decide(&w);
        let total: usize = out.leaders_per_miniround.iter().sum();
        assert_eq!(out.leaders_flat.len(), total);
        for tau in 0..out.minirounds_used {
            let seg = out.leaders_of_miniround(tau);
            assert_eq!(seg.len(), out.leaders_per_miniround[tau]);
            assert!(seg.windows(2).all(|p| p[0] < p[1]), "segment not ascending");
        }
    }

    #[test]
    fn tiled_decide_is_byte_identical_to_serial() {
        // Smoke differential (the full grid lives in
        // tests/partition_parity.rs): partitioned decides — serial tile
        // loop and one-thread-per-tile alike — must equal the serial
        // incremental outcome bit for bit, scan stats included.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(71);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(50, 4.5, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut serial = DistributedPtas::new(&h, run_to_completion(2));
        let expect = serial.decide(&w);
        for threads in [0, 1] {
            for tiles in [2, 3, 8] {
                let cfg = run_to_completion(2)
                    .with_partitions(tiles)
                    .with_threads(threads);
                let mut tiled = DistributedPtas::new(&h, cfg);
                assert!(tiled.partition().is_some());
                let got = tiled.decide(&w);
                assert_eq!(got, expect, "tiles {tiles} threads {threads}");
                assert_eq!(
                    tiled.scan_stats(),
                    serial.scan_stats(),
                    "tiles {tiles} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn phase_profiling_is_gated_and_sums_sanely() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(81);
        let (g, _) = mhca_graph::unit_disk::random_with_average_degree(40, 4.0, &mut rng);
        let h = ExtendedConflictGraph::new(&g, 3);
        let w: Vec<f64> = (0..h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();
        let mut ptas = DistributedPtas::new(&h, run_to_completion(2));
        ptas.decide(&w);
        assert_eq!(ptas.phase_ns(), DecidePhaseNs::default(), "off by default");
        ptas.set_profile_phases(true);
        ptas.decide(&w);
        let phases = ptas.phase_ns();
        assert!(phases.total_ns() > 0, "profiling must record something");
        // The tiled path records too, and profiling never perturbs the
        // outcome.
        let mut tiled =
            DistributedPtas::new(&h, run_to_completion(2).with_partitions(4).with_threads(1));
        tiled.set_profile_phases(true);
        assert_eq!(tiled.decide(&w), ptas.decide(&w));
        assert!(tiled.phase_ns().total_ns() > 0);
    }

    #[test]
    fn decide_outcome_reuse_alternating_big_and_small_decisions() {
        // Regression: reusing one DecisionOutcome across decisions of very
        // different shapes (many mini-rounds → few, large H → small H) must
        // behave exactly like a fresh outcome — every series is cleared, not
        // truncated against stale capacity assumptions.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let big_g = topology::line(40);
        let big_h = ExtendedConflictGraph::new(&big_g, 1);
        let big_w: Vec<f64> = (0..40).map(|i| 1.0 - i as f64 / 41.0).collect();
        let mut rng = StdRng::seed_from_u64(61);
        let (small_g, _) = mhca_graph::unit_disk::random_with_average_degree(10, 3.0, &mut rng);
        let small_h = ExtendedConflictGraph::new(&small_g, 2);
        let small_w: Vec<f64> = (0..small_h.n_vertices())
            .map(|_| rng.gen_range(0.1..1.0))
            .collect();

        let mut big = DistributedPtas::new(&big_h, run_to_completion(1));
        let mut small = DistributedPtas::new(&small_h, run_to_completion(2));
        let mut shared = DecisionOutcome::default();
        for cycle in 0..2 {
            big.decide_into(&big_w, &mut shared);
            assert!(shared.minirounds_used >= 10, "line forces many mini-rounds");
            assert_eq!(shared, big.decide(&big_w), "cycle {cycle}: big reuse");

            small.decide_into(&small_w, &mut shared);
            let fresh = small.decide(&small_w);
            assert_eq!(shared, fresh, "cycle {cycle}: small-after-big reuse");
            assert_eq!(
                shared.per_miniround_weight.len(),
                shared.minirounds_used,
                "stale per-mini-round entries survived the shrink"
            );
            assert_eq!(
                shared.counters.per_vertex_tx.len(),
                small_h.n_vertices(),
                "per-vertex counters kept the old network's size"
            );
        }
    }
}
