//! The unified experiment surface: one [`Experiment`] trait, one engine,
//! one streaming metrics pipeline.
//!
//! Every evaluation workload of the reproduction — the paper's figures
//! and tables as well as the campaign cross-product runs — implements
//! [`Experiment`]: `spec()` describes the scenario's shape and `run()`
//! executes it against an [`ExperimentCtx`] (the seed plus the registered
//! [`RoundObserver`]s). The engine entry point [`run_experiment`] drives a
//! run and folds the observers' [`MetricTable`]s into the output, so the
//! campaign layer and the figure binaries share one execution path.
//!
//! Metrics come in two layers:
//!
//! * **Headline metrics** — each experiment emits its own flat
//!   `(metric, value)` rows (the quantities its paper figure plots).
//! * **Observer metrics** — [`RoundObserver`]s stream over every Algorithm
//!   2 round via [`RoundRecord`] and contribute whatever they measured at
//!   [`RoundObserver::finish`]. New metrics (decide-phase wall time,
//!   communication totals, per-vertex transmission load, …) are new
//!   observers, not new [`RunResult`] fields; the campaign attaches
//!   exactly the sinks a scenario needs via [`ObserverKind`].
//!
//! The pre-existing free functions of [`crate::experiments`]
//! (`fig6`, `run_fig5`, `run_policy_spec`, …) remain as thin deprecated
//! shims over the implementations in this module.

use crate::{
    distributed::{DistributedPtas, DistributedPtasConfig},
    experiments::{
        ComplexityConfig, ComplexityPoint, Fig5Config, Fig6Config, Fig6Series, Fig7Config,
        Fig7Output, Fig8Config, Fig8Run, PolicyRunConfig, PolicySpec, Table2, Theorem3Config,
        Theorem3Point, WorstCasePoint,
    },
    network::Network,
    runner::{run_policy_observed, Algorithm2Config, RunResult},
    time::TimeModel,
};
use mhca_bandit::policies::{CsUcb, Llr};
use mhca_graph::{topology, ExtendedConflictGraph};

// ---------------------------------------------------------------------------
// Metric tables.
// ---------------------------------------------------------------------------

/// An ordered list of flat `(metric, value)` rows — the cross-seed
/// aggregation currency of the campaign layer. Order is emission order
/// (deterministic), so aggregated CSV artifacts are stable across runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricTable {
    rows: Vec<(String, f64)>,
}

impl MetricTable {
    /// An empty table.
    pub fn new() -> Self {
        MetricTable::default()
    }

    /// Appends one metric row.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.rows.push((name.into(), value));
    }

    /// First value recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The rows, in emission order.
    pub fn rows(&self) -> &[(String, f64)] {
        &self.rows
    }

    /// Consumes the table into its rows.
    pub fn into_rows(self) -> Vec<(String, f64)> {
        self.rows
    }

    /// Appends all of `other`'s rows.
    pub fn extend(&mut self, other: MetricTable) {
        self.rows.extend(other.rows);
    }

    /// `true` when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

// ---------------------------------------------------------------------------
// The streaming round-observer pipeline.
// ---------------------------------------------------------------------------

/// One Algorithm 2 decision period, streamed to observers as it happens.
///
/// The engine emits one record per strategy decision (one per slot when
/// `update_period == 1`); borrowed slices point into the engine's scratch
/// and are only valid for the duration of the call.
#[derive(Debug)]
pub struct RoundRecord<'a> {
    /// First slot of this period (0-based).
    pub slot: u64,
    /// Slots the period spans (`update_period`, clipped at the horizon).
    pub period_len: u64,
    /// Strategy decisions executed so far, including this one (1-based).
    pub decision: u64,
    /// Winning vertices of this period's strategy decision.
    pub winners: &'a [usize],
    /// Per-slot expected (true-mean) throughput of the strategy (kbps).
    pub expected_kbps: f64,
    /// Total raw observed throughput across the period (kbps·slots).
    pub observed_kbps: f64,
    /// The policy's own estimate of the strategy value (kbps).
    pub estimated_kbps: f64,
    /// Wall-clock nanoseconds the strategy decision took (0 when no
    /// observers are registered — the engine skips the clock then).
    pub decide_ns: u64,
    /// Relay broadcasts of this decision's floods.
    pub decide_transmissions: u64,
    /// Message copies delivered by this decision's floods.
    pub decide_delivered: u64,
    /// Pipelined mini-timeslots of this decision.
    pub decide_timeslots: u64,
    /// Candidate `(2r+1)`-ball evaluations the decision's leader election
    /// performed ([`crate::DecideScanStats::candidates_scanned`]) — the
    /// work metric the incremental dirty-ball decide path shrinks.
    pub decide_scanned: u64,
    /// Per-vertex relay broadcasts of this decision (indexed by vertex).
    pub per_vertex_tx: &'a [u64],
}

/// A streaming metrics sink over Algorithm 2 rounds.
///
/// Observers see every decision period of every [`run_policy_observed`]
/// call made while they are registered (a paired experiment like Fig. 7
/// streams both contestants' runs through the same observers), then emit
/// whatever they measured as a [`MetricTable`].
pub trait RoundObserver {
    /// Called once per decision period.
    fn on_round(&mut self, record: &RoundRecord<'_>);

    /// Called once after the experiment completes; returns the metrics.
    fn finish(&mut self) -> MetricTable;
}

/// The ordered set of observers registered for one experiment run.
#[derive(Default)]
pub struct ObserverSet {
    observers: Vec<(&'static str, Box<dyn RoundObserver>)>,
}

impl ObserverSet {
    /// An empty set (the engine then skips all streaming work).
    pub fn new() -> Self {
        ObserverSet::default()
    }

    /// Builds a set from declarative kinds.
    pub fn from_kinds(kinds: &[ObserverKind]) -> Self {
        let mut set = ObserverSet::new();
        for kind in kinds {
            set.register(kind.label(), kind.build());
        }
        set
    }

    /// Registers an observer under a label (prefixed onto its metrics, so
    /// two observers cannot silently collide).
    pub fn register(&mut self, label: &'static str, observer: Box<dyn RoundObserver>) {
        self.observers.push((label, observer));
    }

    /// `true` when no observers are registered.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Streams one record to every observer, in registration order.
    pub fn emit(&mut self, record: &RoundRecord<'_>) {
        for (_, observer) in &mut self.observers {
            observer.on_round(record);
        }
    }

    /// Finishes every observer and appends its metrics (names prefixed
    /// with the observer label) to `table`.
    pub fn finish_into(&mut self, table: &mut MetricTable) {
        for (label, observer) in &mut self.observers {
            for (name, value) in observer.finish().into_rows() {
                table.push(format!("{label}:{name}"), value);
            }
        }
        self.observers.clear();
    }
}

/// Declarative observer choice — the serializable form campaign scenario
/// specs carry, so a scenario states which metric sinks to attach without
/// naming concrete types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverKind {
    /// Wall-clock time spent in the decide phase ([`DecideTimingObserver`]).
    DecideTiming,
    /// Decision-flood communication totals ([`CommTotalsObserver`]).
    CommTotals,
    /// Per-vertex transmission load ([`PerVertexTxObserver`]).
    PerVertexTx,
    /// Observed-throughput averages ([`ThroughputObserver`]).
    Throughput,
}

impl ObserverKind {
    /// Every kind, in canonical order.
    pub const ALL: [ObserverKind; 4] = [
        ObserverKind::DecideTiming,
        ObserverKind::CommTotals,
        ObserverKind::PerVertexTx,
        ObserverKind::Throughput,
    ];

    /// Kebab-case label used in scenario JSON.
    pub fn label(self) -> &'static str {
        match self {
            ObserverKind::DecideTiming => "decide-timing",
            ObserverKind::CommTotals => "comm-totals",
            ObserverKind::PerVertexTx => "per-vertex-tx",
            ObserverKind::Throughput => "throughput",
        }
    }

    /// Inverse of [`ObserverKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Builds a fresh observer instance.
    pub fn build(self) -> Box<dyn RoundObserver> {
        match self {
            ObserverKind::DecideTiming => Box::new(DecideTimingObserver::default()),
            ObserverKind::CommTotals => Box::new(CommTotalsObserver::default()),
            ObserverKind::PerVertexTx => Box::new(PerVertexTxObserver::default()),
            ObserverKind::Throughput => Box::new(ThroughputObserver::default()),
        }
    }
}

/// Measures decide-phase wall time: total and mean per decision. This is
/// the canonical example of a metric no [`RunResult`] field carries — it
/// exists only while the round loop runs, so it must be streamed.
#[derive(Debug, Default)]
pub struct DecideTimingObserver {
    total_ns: u64,
    decisions: u64,
}

impl RoundObserver for DecideTimingObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.total_ns += record.decide_ns;
        self.decisions += 1;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push("decide_ms_total", self.total_ns as f64 / 1e6);
        t.push(
            "decide_us_mean",
            self.total_ns as f64 / 1e3 / self.decisions.max(1) as f64,
        );
        t
    }
}

/// Accumulates decision-flood communication totals across the run, plus
/// the leader election's scanned-candidate work counter — the metric the
/// incremental dirty-ball decide path shrinks while every communication
/// total stays identical.
#[derive(Debug, Default)]
pub struct CommTotalsObserver {
    transmissions: u64,
    delivered: u64,
    timeslots: u64,
    scanned: u64,
    decisions: u64,
}

impl RoundObserver for CommTotalsObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.transmissions += record.decide_transmissions;
        self.delivered += record.decide_delivered;
        self.timeslots += record.decide_timeslots;
        self.scanned += record.decide_scanned;
        self.decisions += 1;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push("decide_transmissions", self.transmissions as f64);
        t.push("decide_delivered", self.delivered as f64);
        t.push("decide_timeslots", self.timeslots as f64);
        t.push("decide_candidates_scanned", self.scanned as f64);
        t.push("decisions", self.decisions as f64);
        t
    }
}

/// Accumulates per-vertex decision-flood transmissions; reports the mean
/// and max load — the streaming counterpart of the Section IV-C
/// per-vertex communication claim.
#[derive(Debug, Default)]
pub struct PerVertexTxObserver {
    per_vertex: Vec<u64>,
}

impl RoundObserver for PerVertexTxObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        if self.per_vertex.len() < record.per_vertex_tx.len() {
            self.per_vertex.resize(record.per_vertex_tx.len(), 0);
        }
        for (acc, &c) in self.per_vertex.iter_mut().zip(record.per_vertex_tx) {
            *acc += c;
        }
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        let n = self.per_vertex.len().max(1) as f64;
        let total: u64 = self.per_vertex.iter().sum();
        t.push("tx_per_vertex_mean", total as f64 / n);
        t.push(
            "tx_per_vertex_max",
            self.per_vertex.iter().copied().max().unwrap_or(0) as f64,
        );
        t
    }
}

/// Accumulates observed throughput; reports the per-slot average. Useful
/// as a cross-check against [`RunResult::average_observed_kbps`] and as a
/// sensing-cost numerator for limited-sensing variants.
#[derive(Debug, Default)]
pub struct ThroughputObserver {
    observed_total: f64,
    slots: u64,
}

impl RoundObserver for ThroughputObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.observed_total += record.observed_kbps;
        self.slots += record.period_len;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push(
            "avg_observed_kbps",
            self.observed_total / self.slots.max(1) as f64,
        );
        t.push("slots", self.slots as f64);
        t
    }
}

// ---------------------------------------------------------------------------
// The Experiment trait and its engine.
// ---------------------------------------------------------------------------

/// The static shape of an experiment — what a scheduler or validator can
/// know without running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioShape {
    /// Short kind tag (also the campaign spec JSON tag).
    pub kind: &'static str,
    /// `true` when the workload is deterministic — seeds only replicate.
    pub deterministic: bool,
    /// `true` when the experiment drives Algorithm 2 round loops, i.e.
    /// registered [`RoundObserver`]s will actually see records.
    pub streams_rounds: bool,
}

/// Execution context handed to [`Experiment::run`]: the seed (overriding
/// any seed field the experiment's config carries) and the registered
/// observers, which experiments thread into [`run_policy_observed`].
pub struct ExperimentCtx {
    /// The seed for this run.
    pub seed: u64,
    /// Streaming metric sinks.
    pub observers: ObserverSet,
}

/// The typed payload of one experiment run — what the presentation layer
/// (`mhca_bench::report`) renders into the figure CSV.
// One value exists per experiment run (seconds of simulation), so the
// size spread between variants is irrelevant; boxing the large ones
// would only complicate every pattern match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentData {
    /// Fig. 5 worst-case points.
    Fig5(Vec<WorstCasePoint>),
    /// Fig. 6 convergence series.
    Fig6 {
        /// Mini-rounds plotted (series are padded to this length).
        minirounds: usize,
        /// One series per `(N, M)` size.
        series: Vec<Fig6Series>,
    },
    /// Fig. 7 regret comparison.
    Fig7(Fig7Output),
    /// Fig. 8 periodic-update runs.
    Fig8(Vec<Fig8Run>),
    /// Table II.
    Table2(Table2),
    /// Section IV-C complexity points.
    Complexity(Vec<ComplexityPoint>),
    /// Theorem 3 quality comparison.
    Theorem3(Vec<Theorem3Point>),
    /// One generic spec-driven Algorithm 2 run.
    PolicyRun {
        /// The configuration actually run (seed resolved).
        cfg: PolicyRunConfig,
        /// The run.
        run: RunResult,
    },
    /// A paired policy duel on identical realizations.
    PolicyDuel {
        /// Contestant A: `(config, run)`.
        a: (PolicyRunConfig, RunResult),
        /// Contestant B: `(config, run)`.
        b: (PolicyRunConfig, RunResult),
    },
}

/// What one experiment run produced: the typed figure payload plus the
/// flat headline metrics (observer metrics are appended by the engine).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// Typed payload for rendering.
    pub data: ExperimentData,
    /// Flat metrics for cross-seed aggregation.
    pub metrics: MetricTable,
}

/// One experiment: a declarative shape plus an execution against a
/// context. Implementations are plain data (a config struct), so they are
/// `Send + Sync` and can be constructed inside parallel campaign workers.
pub trait Experiment: Send + Sync {
    /// The static shape of this experiment.
    fn spec(&self) -> ScenarioShape;

    /// Runs the experiment for `ctx.seed`, streaming rounds to
    /// `ctx.observers` where the workload drives Algorithm 2.
    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput;
}

/// The engine: runs an experiment for one seed with the given observers
/// and folds the observers' metrics into the output.
pub fn run_experiment(exp: &dyn Experiment, seed: u64, observers: ObserverSet) -> ExperimentOutput {
    let mut ctx = ExperimentCtx { seed, observers };
    let mut out = exp.run(&mut ctx);
    ctx.observers.finish_into(&mut out.metrics);
    out
}

// ---------------------------------------------------------------------------
// The eight experiment kinds (plus the campaign duel), unified.
// ---------------------------------------------------------------------------

/// Fig. 5: linear-network worst case for the strategy decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Experiment(pub Fig5Config);

impl Experiment for Fig5Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig5",
            deterministic: true,
            streams_rounds: false,
        }
    }

    fn run(&self, _ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let points: Vec<WorstCasePoint> = cfg
            .ns
            .iter()
            .map(|&n| {
                let g = topology::line(n);
                let h = ExtendedConflictGraph::new(&g, 1);
                let weights: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / (n + 1) as f64).collect();
                let dcfg = DistributedPtasConfig::default()
                    .with_r(cfg.r)
                    .with_max_minirounds(None);
                let mut ptas = DistributedPtas::new(&h, dcfg);
                let out = ptas.decide(&weights);
                debug_assert!(out.all_marked);
                WorstCasePoint {
                    n,
                    minirounds_used: out.minirounds_used,
                }
            })
            .collect();
        let mut metrics = MetricTable::new();
        for p in &points {
            metrics.push(format!("minirounds_n{}", p.n), p.minirounds_used as f64);
        }
        ExperimentOutput {
            data: ExperimentData::Fig5(points),
            metrics,
        }
    }
}

/// Fig. 6: convergence of Algorithm 3 over mini-rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Experiment(pub Fig6Config);

impl Experiment for Fig6Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig6",
            deterministic: false,
            streams_rounds: false,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let series: Vec<Fig6Series> = cfg
            .sizes
            .iter()
            .enumerate()
            .map(|(i, &(n, m))| {
                let net =
                    Network::from_spec(n, m, &cfg.topology, &cfg.channel, ctx.seed + i as u64);
                let weights = net.channels().means();
                let dcfg = DistributedPtasConfig::default()
                    .with_r(cfg.r)
                    .with_max_minirounds(Some(cfg.minirounds))
                    .with_loss_spec(cfg.loss);
                let mut ptas = DistributedPtas::new(net.h(), dcfg);
                let out = ptas.decide(&weights);
                let mut weight_by_miniround = out.per_miniround_weight.clone();
                let last = weight_by_miniround.last().copied().unwrap_or(0.0);
                weight_by_miniround.resize(cfg.minirounds, last);
                Fig6Series {
                    n,
                    m,
                    weight_by_miniround,
                    converged_at: out.minirounds_used,
                }
            })
            .collect();
        let mut metrics = MetricTable::new();
        for s in &series {
            let label = format!("{}x{}", s.n, s.m);
            metrics.push(
                format!("final_weight_{label}"),
                *s.weight_by_miniround.last().unwrap_or(&0.0),
            );
            metrics.push(format!("converged_at_{label}"), s.converged_at as f64);
        }
        ExperimentOutput {
            data: ExperimentData::Fig6 {
                minirounds: cfg.minirounds,
                series,
            },
            metrics,
        }
    }
}

/// Fig. 7: practical regret and β-regret, Algorithm 2 vs LLR.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Experiment(pub Fig7Config);

impl Experiment for Fig7Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig7",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let seed = ctx.seed;
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        let optimal = net.optimal().weight;
        let dcfg = DistributedPtasConfig::default()
            .with_r(cfg.r)
            .with_max_minirounds(Some(cfg.minirounds))
            .with_loss_spec(cfg.loss);
        let base = Algorithm2Config::default()
            .with_horizon(cfg.horizon)
            .with_decision(dcfg)
            .with_seed(seed)
            .with_optimal_kbps(optimal);

        let mut cs = CsUcb::new(2.0);
        let algorithm2 = run_policy_observed(&net, &base, &mut cs, &mut ctx.observers);
        let mut llr_policy = Llr::new(cfg.n, 2.0);
        let llr = run_policy_observed(&net, &base, &mut llr_policy, &mut ctx.observers);
        let beta = algorithm2.beta;
        let out = Fig7Output {
            optimal_kbps: optimal,
            beta,
            algorithm2,
            llr,
        };

        let mut metrics = MetricTable::new();
        metrics.push("optimal_kbps", out.optimal_kbps);
        metrics.push("beta", out.beta);
        metrics.push(
            "alg2_final_regret",
            *out.algorithm2.practical_regret.last().unwrap_or(&0.0),
        );
        metrics.push(
            "llr_final_regret",
            *out.llr.practical_regret.last().unwrap_or(&0.0),
        );
        metrics.push(
            "alg2_final_beta_regret",
            *out.algorithm2.practical_beta_regret.last().unwrap_or(&0.0),
        );
        metrics.push(
            "alg2_avg_expected_kbps",
            out.algorithm2.average_expected_kbps,
        );
        metrics.push("llr_avg_expected_kbps", out.llr.average_expected_kbps);
        ExperimentOutput {
            data: ExperimentData::Fig7(out),
            metrics,
        }
    }
}

/// Fig. 8: throughput under periodic (stale-weight) updates.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Experiment(pub Fig8Config);

impl Experiment for Fig8Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig8",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let seed = ctx.seed;
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        let dcfg = DistributedPtasConfig::default()
            .with_r(cfg.r)
            .with_max_minirounds(Some(cfg.minirounds))
            .with_loss_spec(cfg.loss);
        let runs: Vec<Fig8Run> = cfg
            .update_periods
            .iter()
            .map(|&y| {
                let horizon = cfg.updates_per_run * y as u64;
                let base = Algorithm2Config::default()
                    .with_horizon(horizon)
                    .with_update_period(y)
                    .with_decision(dcfg)
                    .with_seed(seed);
                let mut cs = CsUcb::new(2.0);
                let algorithm2 = run_policy_observed(&net, &base, &mut cs, &mut ctx.observers);
                let mut llr_policy = Llr::new(cfg.n, 2.0);
                let llr = run_policy_observed(&net, &base, &mut llr_policy, &mut ctx.observers);
                Fig8Run {
                    y,
                    horizon,
                    algorithm2,
                    llr,
                }
            })
            .collect();
        let mut metrics = MetricTable::new();
        for run in &runs {
            let a_act = run.algorithm2.avg_actual_throughput.last().unwrap_or(&0.0);
            let a_est = run
                .algorithm2
                .avg_estimated_throughput
                .last()
                .unwrap_or(&0.0);
            let l_act = run.llr.avg_actual_throughput.last().unwrap_or(&0.0);
            metrics.push(format!("alg2_actual_y{}", run.y), *a_act);
            metrics.push(format!("llr_actual_y{}", run.y), *l_act);
            metrics.push(format!("alg2_estimate_gap_y{}", run.y), a_est - a_act);
        }
        ExperimentOutput {
            data: ExperimentData::Fig8(runs),
            metrics,
        }
    }
}

/// Table II: the time model as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Table2Experiment;

impl Experiment for Table2Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "table2",
            deterministic: true,
            streams_rounds: false,
        }
    }

    fn run(&self, _ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let time = TimeModel::default();
        let t = Table2 {
            miniround_ms: time.miniround_ms(),
            minirounds_per_decision: time.minirounds_per_decision(),
            theta: time.theta(),
            time,
        };
        let mut metrics = MetricTable::new();
        metrics.push("theta", t.theta);
        metrics.push("miniround_ms", t.miniround_ms);
        metrics.push("minirounds_per_decision", t.minirounds_per_decision as f64);
        ExperimentOutput {
            data: ExperimentData::Table2(t),
            metrics,
        }
    }
}

/// Section IV-C: measured communication/space complexity.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityExperiment(pub ComplexityConfig);

impl Experiment for ComplexityExperiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "complexity",
            deterministic: false,
            streams_rounds: false,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let mut points = Vec::new();
        for (i, &n) in cfg.ns.iter().enumerate() {
            let net =
                Network::from_spec(n, cfg.m, &cfg.topology, &cfg.channel, ctx.seed + i as u64);
            for &r in &cfg.rs {
                let dcfg = DistributedPtasConfig::default()
                    .with_r(r)
                    .with_max_minirounds(Some(cfg.minirounds));
                let mut ptas = DistributedPtas::new(net.h(), dcfg);
                let weights = net.channels().means();
                let outcome = ptas.decide(&weights);
                let hg = net.h().graph();
                let ball_sizes: f64 = (0..hg.n())
                    .map(|v| hg.r_hop_neighborhood(v, 2 * r + 1).len() as f64)
                    .sum::<f64>()
                    / hg.n() as f64;
                points.push(ComplexityPoint {
                    n,
                    m: cfg.m,
                    r,
                    minirounds: outcome.minirounds_used,
                    mean_tx_per_vertex: outcome.counters.mean_per_vertex_tx(),
                    max_tx_per_vertex: outcome.counters.max_per_vertex_tx(),
                    timeslots: outcome.counters.timeslots,
                    mean_ball_size: ball_sizes,
                    candidates_scanned: ptas.scan_stats().candidates_scanned,
                });
            }
        }
        let mut metrics = MetricTable::new();
        for p in &points {
            metrics.push(format!("mean_tx_n{}_r{}", p.n, p.r), p.mean_tx_per_vertex);
            metrics.push(format!("mean_ball_n{}_r{}", p.n, p.r), p.mean_ball_size);
            metrics.push(
                format!("scanned_n{}_r{}", p.n, p.r),
                p.candidates_scanned as f64,
            );
        }
        ExperimentOutput {
            data: ExperimentData::Complexity(points),
            metrics,
        }
    }
}

/// Theorem 3: distributed vs centralized approximation quality.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem3Experiment(pub Theorem3Config);

impl Experiment for Theorem3Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "theorem3",
            deterministic: false,
            streams_rounds: false,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        use mhca_mwis::{exact, robust_ptas};
        let cfg = &self.0;
        let points: Vec<Theorem3Point> = (ctx.seed..ctx.seed + cfg.instances)
            .map(|seed| {
                let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
                let w = net.channels().means();
                let allowed: Vec<usize> = (0..net.n_vertices()).collect();
                let optimal =
                    exact::solve_grouped(net.h().graph(), &w, &allowed, net.node_groups()).weight;
                let centralized = robust_ptas::solve_grouped(
                    net.h().graph(),
                    &w,
                    &robust_ptas::Config::with_epsilon(0.5),
                    net.node_groups(),
                )
                .weight;
                let weight_of = |d: Option<usize>| {
                    let cfg = DistributedPtasConfig::default()
                        .with_r(2)
                        .with_max_minirounds(d)
                        .with_local_solver(crate::distributed::LocalSolver::Exact);
                    let mut ptas = DistributedPtas::new(net.h(), cfg);
                    let out = ptas.decide(&w);
                    out.winners.iter().map(|&v| w[v]).sum::<f64>()
                };
                Theorem3Point {
                    seed,
                    optimal,
                    centralized,
                    distributed: weight_of(None),
                    distributed_capped: weight_of(Some(4)),
                }
            })
            .collect();
        let n = points.len().max(1) as f64;
        let mean = |f: fn(&Theorem3Point) -> f64| points.iter().map(f).sum::<f64>() / n;
        let mut metrics = MetricTable::new();
        metrics.push("central_ratio_mean", mean(|p| p.centralized / p.optimal));
        metrics.push("dist_ratio_mean", mean(|p| p.distributed / p.optimal));
        metrics.push(
            "capped_ratio_mean",
            mean(|p| p.distributed_capped / p.optimal),
        );
        ExperimentOutput {
            data: ExperimentData::Theorem3(points),
            metrics,
        }
    }
}

/// One generic declarative Algorithm 2 run — the campaign cross-product
/// workload; the per-figure experiments above are fixed points of it.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRunExperiment(pub PolicyRunConfig);

impl PolicyRunExperiment {
    /// Runs the config at one seed with observers — shared by the plain
    /// run and the duel.
    fn run_one(cfg: &PolicyRunConfig, seed: u64, observers: &mut ObserverSet) -> RunResult {
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        let dcfg = DistributedPtasConfig::default()
            .with_r(cfg.r)
            .with_max_minirounds(Some(cfg.minirounds))
            .with_loss_spec(cfg.loss);
        let acfg = Algorithm2Config::default()
            .with_horizon(cfg.horizon)
            .with_update_period(cfg.update_period)
            .with_decision(dcfg)
            .with_seed(seed);
        let mut policy = cfg.policy.build(&net);
        run_policy_observed(&net, &acfg, policy.as_mut(), observers)
    }
}

impl Experiment for PolicyRunExperiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "policy-run",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = PolicyRunConfig {
            seed: ctx.seed,
            ..self.0
        };
        let run = Self::run_one(&cfg, ctx.seed, &mut ctx.observers);
        let mut metrics = MetricTable::new();
        metrics.push("avg_expected_kbps", run.average_expected_kbps);
        metrics.push("avg_effective_kbps", run.average_effective_kbps);
        metrics.push("avg_observed_kbps", run.average_observed_kbps);
        metrics.push("transmissions", run.comm.transmissions as f64);
        metrics.push("decisions", run.comm.decisions as f64);
        ExperimentOutput {
            data: ExperimentData::PolicyRun { cfg, run },
            metrics,
        }
    }
}

/// Paired head-to-head: `base.policy` vs `challenger` on the same network
/// and identical channel realizations (the Fig. 7 comparison generalized).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDuelExperiment {
    /// The baseline run (its `policy` is contestant A).
    pub base: PolicyRunConfig,
    /// Contestant B, run on the identical instance.
    pub challenger: PolicySpec,
}

impl Experiment for PolicyDuelExperiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "policy-duel",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg_a = PolicyRunConfig {
            seed: ctx.seed,
            ..self.base
        };
        let cfg_b = PolicyRunConfig {
            policy: self.challenger,
            ..cfg_a
        };
        // Same seed ⇒ same network and channel realizations: a paired
        // comparison, as in the paper's Fig. 7/8.
        let run_a = PolicyRunExperiment::run_one(&cfg_a, ctx.seed, &mut ctx.observers);
        let run_b = PolicyRunExperiment::run_one(&cfg_b, ctx.seed, &mut ctx.observers);
        // A same-policy duel (e.g. cs-ucb l=2 vs cs-ucb l=1 — labels
        // ignore parameters) must not emit colliding metric names: the
        // campaign summarizer pools by name, which would silently blend
        // the two contestants into one aggregate.
        let (a, b) = (self.base.policy.label(), self.challenger.label());
        let (a, b) = if a == b {
            (format!("{a}-base"), format!("{b}-challenger"))
        } else {
            (a.to_string(), b.to_string())
        };
        let mut metrics = MetricTable::new();
        metrics.push(
            format!("{a}_avg_expected_kbps"),
            run_a.average_expected_kbps,
        );
        metrics.push(
            format!("{b}_avg_expected_kbps"),
            run_b.average_expected_kbps,
        );
        metrics.push(
            "advantage_kbps",
            run_a.average_expected_kbps - run_b.average_expected_kbps,
        );
        metrics.push(
            "a_wins",
            f64::from(u8::from(
                run_a.average_expected_kbps > run_b.average_expected_kbps,
            )),
        );
        ExperimentOutput {
            data: ExperimentData::PolicyDuel {
                a: (cfg_a, run_a),
                b: (cfg_b, run_b),
            },
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_table_preserves_order_and_lookups() {
        let mut t = MetricTable::new();
        assert!(t.is_empty());
        t.push("b", 2.0);
        t.push("a", 1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("a"), Some(1.0));
        assert_eq!(t.get("missing"), None);
        assert_eq!(
            t.rows().iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["b", "a"]
        );
    }

    #[test]
    fn observer_kinds_round_trip_labels() {
        for kind in ObserverKind::ALL {
            assert_eq!(ObserverKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ObserverKind::parse("nope"), None);
    }

    #[test]
    fn engine_runs_table2_deterministically() {
        let out = run_experiment(&Table2Experiment, 0, ObserverSet::new());
        assert_eq!(out.metrics.get("theta"), Some(0.5));
        assert!(matches!(out.data, ExperimentData::Table2(_)));
        let shape = Table2Experiment.spec();
        assert!(shape.deterministic);
        assert!(!shape.streams_rounds);
    }

    #[test]
    fn policy_run_streams_rounds_to_observers() {
        let exp = PolicyRunExperiment(PolicyRunConfig::quick());
        let observers = ObserverSet::from_kinds(&[
            ObserverKind::CommTotals,
            ObserverKind::Throughput,
            ObserverKind::DecideTiming,
        ]);
        let out = run_experiment(&exp, 3, observers);
        let ExperimentData::PolicyRun { run, .. } = &out.data else {
            panic!("wrong data variant");
        };
        // One decision per slot at y = 1.
        assert_eq!(
            out.metrics.get("comm-totals:decisions"),
            Some(run.comm.decisions as f64)
        );
        // The throughput observer recomputes the run's own average.
        let avg = out.metrics.get("throughput:avg_observed_kbps").unwrap();
        assert!((avg - run.average_observed_kbps).abs() < 1e-9);
        assert_eq!(out.metrics.get("throughput:slots"), Some(run.slots as f64));
        // Timing streamed something (non-negative, finite).
        let ms = out.metrics.get("decide-timing:decide_ms_total").unwrap();
        assert!(ms.is_finite() && ms >= 0.0);
    }

    #[test]
    fn observer_metrics_are_deterministic_where_expected() {
        let exp = PolicyRunExperiment(PolicyRunConfig::quick());
        let kinds = [ObserverKind::CommTotals, ObserverKind::PerVertexTx];
        let a = run_experiment(&exp, 5, ObserverSet::from_kinds(&kinds));
        let b = run_experiment(&exp, 5, ObserverSet::from_kinds(&kinds));
        assert_eq!(a.metrics, b.metrics);
        assert!(a.metrics.get("per-vertex-tx:tx_per_vertex_max").unwrap() > 0.0);
    }

    #[test]
    fn duel_pairs_runs_on_identical_instances() {
        let exp = PolicyDuelExperiment {
            base: PolicyRunConfig {
                horizon: 120,
                ..PolicyRunConfig::quick()
            },
            challenger: PolicySpec::Random,
        };
        let out = run_experiment(&exp, 3, ObserverSet::new());
        let a = out.metrics.get("cs-ucb_avg_expected_kbps").unwrap();
        let b = out.metrics.get("random_avg_expected_kbps").unwrap();
        assert!((out.metrics.get("advantage_kbps").unwrap() - (a - b)).abs() < 1e-9);
    }

    #[test]
    fn same_policy_duel_disambiguates_metric_names() {
        // cs-ucb vs cs-ucb (different l): labels collide, so the metric
        // names must not — the campaign summarizer pools by name.
        let exp = PolicyDuelExperiment {
            base: PolicyRunConfig {
                horizon: 60,
                ..PolicyRunConfig::quick()
            },
            challenger: PolicySpec::CsUcb { l: 0.5 },
        };
        let out = run_experiment(&exp, 3, ObserverSet::new());
        assert!(out.metrics.get("cs-ucb-base_avg_expected_kbps").is_some());
        assert!(out
            .metrics
            .get("cs-ucb-challenger_avg_expected_kbps")
            .is_some());
        let names: Vec<&str> = out.metrics.rows().iter().map(|(n, _)| n.as_str()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "colliding metric names");
    }

    #[test]
    fn seed_overrides_config_seed() {
        let cfg = PolicyRunConfig {
            seed: 999,
            ..PolicyRunConfig::quick()
        };
        let at_seed = |s| run_experiment(&PolicyRunExperiment(cfg.clone()), s, ObserverSet::new());
        let a = at_seed(5);
        let b = at_seed(5);
        let c = at_seed(6);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a.metrics, c.metrics, "different seeds must differ");
    }
}
