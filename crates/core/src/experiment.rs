//! The unified experiment surface: one [`Experiment`] trait, one engine,
//! one streaming metrics pipeline.
//!
//! Every evaluation workload of the reproduction — the paper's figures
//! and tables as well as the campaign cross-product runs — implements
//! [`Experiment`]: `spec()` describes the scenario's shape and `run()`
//! executes it against an [`ExperimentCtx`] (the seed plus the registered
//! [`RoundObserver`]s). The engine entry point [`run_experiment`] drives a
//! run and folds the observers' [`MetricTable`]s into the output, so the
//! campaign layer and the figure binaries share one execution path.
//!
//! Metrics come in two layers:
//!
//! * **Headline metrics** — each experiment emits its own flat
//!   `(metric, value)` rows (the quantities its paper figure plots).
//! * **Observer metrics** — [`RoundObserver`]s stream over every Algorithm
//!   2 round via [`RoundRecord`] and contribute whatever they measured at
//!   [`RoundObserver::finish`]. New metrics (decide-phase wall time,
//!   communication totals, per-vertex transmission load, sensing-cost
//!   budgets, capture tallies, windowed regret, …) are new observers,
//!   not new [`RunResult`] fields; the campaign attaches exactly the
//!   sinks a scenario needs via [`ObserverKind`].
//!
//! Nine observers ship built in (see [`ObserverKind::ALL`]); the
//! "observer cookbook" section of the repository README tabulates what
//! each one measures and costs. The experiment *configs* live in
//! [`crate::experiments`]; the engine here is the only execution entry
//! point (the pre-engine free functions `fig6`, `run_fig5`, … have been
//! retired).

use crate::{
    distributed::{DecidePhaseNs, DistributedPtas, DistributedPtasConfig},
    experiments::{
        ComplexityConfig, ComplexityPoint, Fig5Config, Fig6Config, Fig6Series, Fig7Config,
        Fig7Output, Fig8Config, Fig8Run, PolicyRunConfig, PolicySpec, Table2, Theorem3Config,
        Theorem3Point, WorstCasePoint,
    },
    network::Network,
    runner::{run_policy_observed, Algorithm2Config, RunResult},
    time::TimeModel,
    traffic::TrafficRound,
};
use mhca_bandit::policies::{CsUcb, Llr};
use mhca_bandit::state::{StateError, StateMap};
use mhca_graph::{topology, ExtendedConflictGraph};
use mhca_telemetry::{EventKind, FieldValue, LogHistogram, Telemetry};

// ---------------------------------------------------------------------------
// Metric tables.
// ---------------------------------------------------------------------------

/// An ordered list of flat `(metric, value)` rows — the cross-seed
/// aggregation currency of the campaign layer. Order is emission order
/// (deterministic), so aggregated CSV artifacts are stable across runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricTable {
    rows: Vec<(String, f64)>,
}

impl MetricTable {
    /// An empty table.
    pub fn new() -> Self {
        MetricTable::default()
    }

    /// Appends one metric row.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.rows.push((name.into(), value));
    }

    /// First value recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The rows, in emission order.
    pub fn rows(&self) -> &[(String, f64)] {
        &self.rows
    }

    /// Consumes the table into its rows.
    pub fn into_rows(self) -> Vec<(String, f64)> {
        self.rows
    }

    /// Appends all of `other`'s rows.
    pub fn extend(&mut self, other: MetricTable) {
        self.rows.extend(other.rows);
    }

    /// `true` when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

// ---------------------------------------------------------------------------
// The streaming round-observer pipeline.
// ---------------------------------------------------------------------------

/// One Algorithm 2 decision period, streamed to observers as it happens.
///
/// The engine emits one record per strategy decision (one per slot when
/// `update_period == 1`); borrowed slices point into the engine's scratch
/// and are only valid for the duration of the call.
#[derive(Debug)]
pub struct RoundRecord<'a> {
    /// First slot of this period (0-based).
    pub slot: u64,
    /// Slots the period spans (`update_period`, clipped at the horizon).
    pub period_len: u64,
    /// Strategy decisions executed so far, including this one (1-based).
    pub decision: u64,
    /// Winning vertices of this period's strategy decision.
    pub winners: &'a [usize],
    /// Per-slot expected (true-mean) throughput of the strategy (kbps).
    pub expected_kbps: f64,
    /// Total raw observed throughput across the period (kbps·slots).
    pub observed_kbps: f64,
    /// The policy's own estimate of the strategy value (kbps).
    pub estimated_kbps: f64,
    /// Wall-clock nanoseconds the strategy decision took (0 when no
    /// observers are registered — the engine skips the clock then).
    pub decide_ns: u64,
    /// Wall-clock nanoseconds of this decision's weight-broadcast (WB)
    /// flood phase. **Zero** unless some registered observer returns
    /// `true` from [`RoundObserver::wants_phase_timing`] (the engine
    /// skips the extra clock reads otherwise).
    pub wb_ns: u64,
    /// Wall-clock nanoseconds of this period's data-transmission /
    /// statistics-update loop. Zero under the same gate as
    /// [`RoundRecord::wb_ns`].
    pub learn_ns: u64,
    /// Per-phase breakdown of the decide (election / broadcast / MWIS /
    /// sweep), from [`crate::DistributedPtas::phase_ns`]. Zeroed unless
    /// some observer wants phase timing *and* the decide ran an
    /// instrumented path (the rescan reference leaves it zeroed).
    pub decide_phase_ns: DecidePhaseNs,
    /// Relay broadcasts of this decision's floods.
    pub decide_transmissions: u64,
    /// Message copies delivered by this decision's floods.
    pub decide_delivered: u64,
    /// Pipelined mini-timeslots of this decision.
    pub decide_timeslots: u64,
    /// Candidate `(2r+1)`-ball evaluations the decision's leader election
    /// performed ([`crate::DecideScanStats::candidates_scanned`]) — the
    /// work metric the incremental dirty-ball decide path shrinks.
    pub decide_scanned: u64,
    /// Floods of this decision the flood engine silently served through
    /// its BFS fallback because the ball-table entry cap refused the
    /// radius ([`crate::DecisionOutcome::fallback_floods`]) — nonzero
    /// means the run paid BFS costs where table scans were expected.
    pub decide_fallback_floods: u64,
    /// Per-vertex relay broadcasts of this decision (indexed by vertex).
    pub per_vertex_tx: &'a [u64],
    /// Number of channels `M` — vertex `v` transmits on channel `v % M`.
    pub n_channels: usize,
    /// Per-channel transmission attempts over this period (one per winner
    /// per slot), indexed by channel. **Empty** unless some registered
    /// observer returns `true` from
    /// [`RoundObserver::wants_channel_stats`] (the engine skips the
    /// per-slot tally otherwise).
    pub channel_attempts: &'a [u64],
    /// Per-channel attempts that observed a strictly positive rate — the
    /// "captures"; `attempts − captures` are outages (adversarial
    /// zero-rate phases, Bernoulli off-states). Empty under the same
    /// condition as [`RoundRecord::channel_attempts`].
    pub channel_captures: &'a [u64],
    /// Per-slot kbps of the exact offline optimum (branch-and-bound
    /// MWIS, the same benchmark the paper's Fig. 7 regret uses) under
    /// the channels' *instantaneous* means at this period's first slot —
    /// the moving benchmark windowed regret is measured against under
    /// drifting channels. Recomputed only when the instantaneous means
    /// change, and `0.0` unless some registered observer returns `true`
    /// from [`RoundObserver::wants_oracle`] (the engine skips the solve
    /// entirely otherwise).
    pub oracle_kbps: f64,
    /// This period's traffic view — arrivals, per-packet deliveries, and
    /// per-node queue backlogs — when the run carries a
    /// [`crate::TrafficSpec`]. `None` on traffic-free runs, so observers
    /// that ignore traffic see no change at all.
    pub traffic: Option<TrafficRound<'a>>,
}

/// A streaming metrics sink over Algorithm 2 rounds.
///
/// Observers see every decision period of every [`run_policy_observed`]
/// call made while they are registered (a paired experiment like Fig. 7
/// streams both contestants' runs through the same observers), then emit
/// whatever they measured as a [`MetricTable`].
///
/// # Example
///
/// A custom observer is a struct with per-run state:
///
/// ```
/// use mhca_core::{MetricTable, RoundObserver, RoundRecord};
///
/// /// Counts decision periods in which no vertex won.
/// #[derive(Default)]
/// struct IdlePeriods(u64);
///
/// impl RoundObserver for IdlePeriods {
///     fn on_round(&mut self, record: &RoundRecord<'_>) {
///         self.0 += u64::from(record.winners.is_empty());
///     }
///     fn finish(&mut self) -> MetricTable {
///         let mut t = MetricTable::new();
///         t.push("idle_periods", self.0 as f64);
///         t
///     }
/// }
///
/// let mut set = mhca_core::ObserverSet::new();
/// set.register("idle", Box::new(IdlePeriods::default()));
/// ```
pub trait RoundObserver {
    /// Called once per decision period.
    fn on_round(&mut self, record: &RoundRecord<'_>);

    /// Called once after the experiment completes; returns the metrics.
    fn finish(&mut self) -> MetricTable;

    /// `true` when this observer reads [`RoundRecord::oracle_kbps`]. The
    /// runner prices the drift oracle — an exact offline MWIS solve on
    /// the instantaneous means, cached between mean changes — only when
    /// some registered observer asks for it. Like [`Network::optimal`],
    /// the solve is exponential in the worst case: register such an
    /// observer on Fig. 7-sized instances (≲ 20 users × a few channels).
    fn wants_oracle(&self) -> bool {
        false
    }

    /// `true` when this observer reads [`RoundRecord::channel_attempts`]
    /// / [`RoundRecord::channel_captures`]. The runner tallies per-slot
    /// per-channel capture outcomes only when some registered observer
    /// asks for them; otherwise the slices arrive empty.
    fn wants_channel_stats(&self) -> bool {
        false
    }

    /// `true` when this observer reads [`RoundRecord::wb_ns`],
    /// [`RoundRecord::learn_ns`], or [`RoundRecord::decide_phase_ns`].
    /// The runner adds the per-phase clock reads (and switches the PTAS
    /// into phase-profiling mode) only when some registered observer asks
    /// — phase stamps are noise at large `n` but measurable in small-`n`
    /// hot loops.
    fn wants_phase_timing(&self) -> bool {
        false
    }

    /// Hands the observer a telemetry handle so it can stream events
    /// *incrementally* while the run is still going (counters every few
    /// decisions, window closes as they happen) instead of only reporting
    /// at [`finish`](RoundObserver::finish). The default keeps the
    /// observer metrics-only. Implementations must treat the handle as
    /// write-only: telemetry must never change what an observer returns
    /// from `finish` (the byte-identity contract).
    fn set_telemetry(&mut self, _telemetry: &Telemetry) {}

    /// Writes the observer's accumulated state into `out` — the
    /// mid-run checkpoint hook. Stateful observers record every field
    /// `finish` reads, so a restored observer finishes with the same
    /// metric rows an uninterrupted one would. The default writes
    /// nothing, which is correct for stateless or telemetry-only
    /// observers (a [`TelemetryObserver`] restarts its histograms after
    /// a resume; its metric table is empty either way).
    fn snapshot_state(&self, _out: &mut StateMap) {}

    /// Restores state captured by
    /// [`snapshot_state`](RoundObserver::snapshot_state) into a freshly
    /// built observer of the same kind and configuration. The default
    /// accepts anything and restores nothing.
    fn restore_state(&mut self, _state: &StateMap) -> Result<(), StateError> {
        Ok(())
    }
}

/// The ordered set of observers registered for one experiment run.
#[derive(Default)]
pub struct ObserverSet {
    observers: Vec<(&'static str, Box<dyn RoundObserver>)>,
}

impl ObserverSet {
    /// An empty set (the engine then skips all streaming work).
    pub fn new() -> Self {
        ObserverSet::default()
    }

    /// Builds a set from declarative kinds.
    pub fn from_kinds(kinds: &[ObserverKind]) -> Self {
        let mut set = ObserverSet::new();
        for kind in kinds {
            set.register(kind.label(), kind.build());
        }
        set
    }

    /// Registers an observer under a label (prefixed onto its metrics, so
    /// two observers cannot silently collide).
    pub fn register(&mut self, label: &'static str, observer: Box<dyn RoundObserver>) {
        self.observers.push((label, observer));
    }

    /// `true` when no observers are registered.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// `true` when some registered observer needs the drift oracle
    /// ([`RoundObserver::wants_oracle`]).
    pub fn wants_oracle(&self) -> bool {
        self.observers.iter().any(|(_, o)| o.wants_oracle())
    }

    /// `true` when some registered observer needs per-channel capture
    /// tallies ([`RoundObserver::wants_channel_stats`]).
    pub fn wants_channel_stats(&self) -> bool {
        self.observers.iter().any(|(_, o)| o.wants_channel_stats())
    }

    /// `true` when some registered observer needs per-phase wall clocks
    /// ([`RoundObserver::wants_phase_timing`]).
    pub fn wants_phase_timing(&self) -> bool {
        self.observers.iter().any(|(_, o)| o.wants_phase_timing())
    }

    /// Threads a telemetry handle through the set: every registered
    /// observer gets it via [`RoundObserver::set_telemetry`], and — when
    /// the handle is enabled — a [`TelemetryObserver`] is appended to
    /// record per-phase latency histograms and emit them as `hist`
    /// events. On a disabled handle this is a no-op, so untraced runs
    /// register nothing and the round loop's fast paths are untouched.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        if !telemetry.enabled() {
            return;
        }
        for (_, observer) in &mut self.observers {
            observer.set_telemetry(telemetry);
        }
        self.register(
            "telemetry",
            Box::new(TelemetryObserver::new(telemetry.clone())),
        );
    }

    /// Streams one record to every observer, in registration order.
    pub fn emit(&mut self, record: &RoundRecord<'_>) {
        for (_, observer) in &mut self.observers {
            observer.on_round(record);
        }
    }

    /// Snapshots every registered observer's state into one [`StateMap`],
    /// each observer nested under `"<index>-<label>"` (the index keeps
    /// prefixes unique even if two observers were registered under one
    /// label). Pair with [`ObserverSet::restore_states`] on a set built
    /// from the same kinds in the same order.
    pub fn snapshot_states(&self) -> StateMap {
        let mut out = StateMap::new();
        for (i, (label, observer)) in self.observers.iter().enumerate() {
            let mut child = StateMap::new();
            observer.snapshot_state(&mut child);
            out.put_nested(&format!("{i}-{label}"), child);
        }
        out
    }

    /// Restores observer state captured by
    /// [`ObserverSet::snapshot_states`]. The set must hold the same
    /// observers, registered in the same order, as the snapshotting set;
    /// each observer receives its own nested sub-map (possibly empty, for
    /// stateless observers).
    pub fn restore_states(&mut self, state: &StateMap) -> Result<(), StateError> {
        for (i, (label, observer)) in self.observers.iter_mut().enumerate() {
            let child = state.extract_nested(&format!("{i}-{label}"));
            observer.restore_state(&child)?;
        }
        Ok(())
    }

    /// Finishes every observer and appends its metrics (names prefixed
    /// with the observer label) to `table`.
    pub fn finish_into(&mut self, table: &mut MetricTable) {
        for (label, observer) in &mut self.observers {
            for (name, value) in observer.finish().into_rows() {
                table.push(format!("{label}:{name}"), value);
            }
        }
        self.observers.clear();
    }
}

/// Declarative observer choice — the serializable form campaign scenario
/// specs carry, so a scenario states which metric sinks to attach without
/// naming concrete types.
///
/// # Example
///
/// ```
/// use mhca_core::ObserverKind;
///
/// // Parameterless kinds round-trip through their labels...
/// assert_eq!(ObserverKind::parse("comm-totals"), Some(ObserverKind::CommTotals));
/// // ...and parameterized kinds parse to their defaults; scenario JSON
/// // overrides the knobs (see the campaign crate's ingest module).
/// assert_eq!(
///     ObserverKind::parse("windowed-regret"),
///     Some(ObserverKind::WindowedRegret { window: 250 }),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObserverKind {
    /// Wall-clock time spent in the decide phase ([`DecideTimingObserver`]).
    DecideTiming,
    /// Decision-flood communication totals ([`CommTotalsObserver`]).
    CommTotals,
    /// Per-vertex transmission load ([`PerVertexTxObserver`]).
    PerVertexTx,
    /// Observed-throughput averages ([`ThroughputObserver`]).
    Throughput,
    /// Per-vertex cumulative sensing/probe charges under a configurable
    /// cost model ([`SensingCostObserver`]) — the limited-sensing budget
    /// accounting of Yun et al.'s CSMA line of work.
    SensingCost {
        /// Cost of one winner sensing its channel for one slot.
        probe_cost: f64,
        /// Cost of one control-plane relay broadcast.
        report_cost: f64,
    },
    /// Per-channel capture/collision/idle tallies
    /// ([`CaptureStatsObserver`]) — the repeated-games view of slotted
    /// access under adversarial channel families (Neely).
    CaptureStats,
    /// Sliding-window regret against the per-window exact offline
    /// optimum on instantaneous means ([`WindowedRegretObserver`]) — the
    /// drifting-channel metric: regret re-grows after every mean shift.
    WindowedRegret {
        /// Window length in slots.
        window: u64,
    },
    /// Per-flow end-to-end delay distributions (p50/p99/p999 via the
    /// telemetry log-bucketed histograms) and the delay-constrained
    /// utility ([`FlowDelayObserver`]) — only meaningful on runs that
    /// carry a [`crate::TrafficSpec`].
    FlowDelay,
    /// Per-node queue-backlog distribution plus an overflow counter
    /// against a configurable bound ([`QueueTailObserver`]) — the
    /// tail-event view of König & Kwofie's large-deviations regime.
    QueueTail {
        /// Backlog (packets) above which a node-period counts as
        /// overflowed.
        bound: u64,
    },
}

impl ObserverKind {
    /// Every kind, in canonical order (parameterized kinds at their
    /// defaults).
    pub const ALL: [ObserverKind; 9] = [
        ObserverKind::DecideTiming,
        ObserverKind::CommTotals,
        ObserverKind::PerVertexTx,
        ObserverKind::Throughput,
        ObserverKind::SensingCost {
            probe_cost: 1.0,
            report_cost: 0.1,
        },
        ObserverKind::CaptureStats,
        ObserverKind::WindowedRegret { window: 250 },
        ObserverKind::FlowDelay,
        ObserverKind::QueueTail { bound: 64 },
    ];

    /// Kebab-case label used in scenario JSON. Parameterized kinds share
    /// one label across parameter values (the label prefixes the kind's
    /// metric names, so two observers with the same label cannot be
    /// registered together).
    pub fn label(self) -> &'static str {
        match self {
            ObserverKind::DecideTiming => "decide-timing",
            ObserverKind::CommTotals => "comm-totals",
            ObserverKind::PerVertexTx => "per-vertex-tx",
            ObserverKind::Throughput => "throughput",
            ObserverKind::SensingCost { .. } => "sensing-cost",
            ObserverKind::CaptureStats => "capture-stats",
            ObserverKind::WindowedRegret { .. } => "windowed-regret",
            ObserverKind::FlowDelay => "flow-delay",
            ObserverKind::QueueTail { .. } => "queue-tail",
        }
    }

    /// Inverse of [`ObserverKind::label`]; parameterized kinds come back
    /// at their default parameters.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Builds a fresh observer instance.
    pub fn build(self) -> Box<dyn RoundObserver> {
        match self {
            ObserverKind::DecideTiming => Box::new(DecideTimingObserver::default()),
            ObserverKind::CommTotals => Box::new(CommTotalsObserver::default()),
            ObserverKind::PerVertexTx => Box::new(PerVertexTxObserver::default()),
            ObserverKind::Throughput => Box::new(ThroughputObserver::default()),
            ObserverKind::SensingCost {
                probe_cost,
                report_cost,
            } => Box::new(SensingCostObserver::new(probe_cost, report_cost)),
            ObserverKind::CaptureStats => Box::new(CaptureStatsObserver::default()),
            ObserverKind::WindowedRegret { window } => {
                Box::new(WindowedRegretObserver::new(window))
            }
            ObserverKind::FlowDelay => Box::new(FlowDelayObserver::default()),
            ObserverKind::QueueTail { bound } => Box::new(QueueTailObserver::new(bound)),
        }
    }
}

/// Measures decide-phase wall time: total and mean per decision. This is
/// the canonical example of a metric no [`RunResult`] field carries — it
/// exists only while the round loop runs, so it must be streamed.
#[derive(Debug, Default)]
pub struct DecideTimingObserver {
    total_ns: u64,
    decisions: u64,
}

impl RoundObserver for DecideTimingObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.total_ns += record.decide_ns;
        self.decisions += 1;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push("decide_ms_total", self.total_ns as f64 / 1e6);
        t.push(
            "decide_us_mean",
            self.total_ns as f64 / 1e3 / self.decisions.max(1) as f64,
        );
        t
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        out.put_u64("total_ns", self.total_ns);
        out.put_u64("decisions", self.decisions);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        self.total_ns = state.get_u64("total_ns")?;
        self.decisions = state.get_u64("decisions")?;
        Ok(())
    }
}

/// Accumulates decision-flood communication totals across the run, plus
/// the leader election's scanned-candidate work counter — the metric the
/// incremental dirty-ball decide path shrinks while every communication
/// total stays identical.
///
/// With a telemetry handle attached ([`RoundObserver::set_telemetry`])
/// the cumulative totals also stream as `counter` events every
/// [`COMM_STREAM_EVERY`] decisions — the first consumer of the
/// incremental metrics path the resident-service roadmap item needs. The
/// metric rows returned at `finish` are unaffected.
#[derive(Debug, Default)]
pub struct CommTotalsObserver {
    transmissions: u64,
    delivered: u64,
    timeslots: u64,
    scanned: u64,
    fallback_floods: u64,
    decisions: u64,
    telemetry: Telemetry,
}

/// Cadence (in decisions) of [`CommTotalsObserver`]'s streamed counters.
pub const COMM_STREAM_EVERY: u64 = 64;

impl CommTotalsObserver {
    fn stream_counters(&self) {
        self.telemetry
            .counter("comm.decide_transmissions", self.transmissions);
        self.telemetry
            .counter("comm.decide_delivered", self.delivered);
        self.telemetry.counter("comm.decisions", self.decisions);
    }
}

impl RoundObserver for CommTotalsObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.transmissions += record.decide_transmissions;
        self.delivered += record.decide_delivered;
        self.timeslots += record.decide_timeslots;
        self.scanned += record.decide_scanned;
        self.fallback_floods += record.decide_fallback_floods;
        self.decisions += 1;
        if self.telemetry.enabled() && self.decisions.is_multiple_of(COMM_STREAM_EVERY) {
            self.stream_counters();
        }
    }

    fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    fn finish(&mut self) -> MetricTable {
        if self.telemetry.enabled() {
            self.stream_counters();
        }
        let mut t = MetricTable::new();
        t.push("decide_transmissions", self.transmissions as f64);
        t.push("decide_delivered", self.delivered as f64);
        t.push("decide_timeslots", self.timeslots as f64);
        t.push("decide_candidates_scanned", self.scanned as f64);
        t.push("decide_fallback_floods", self.fallback_floods as f64);
        t.push("decisions", self.decisions as f64);
        t
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        out.put_u64("transmissions", self.transmissions);
        out.put_u64("delivered", self.delivered);
        out.put_u64("timeslots", self.timeslots);
        out.put_u64("scanned", self.scanned);
        out.put_u64("fallback_floods", self.fallback_floods);
        out.put_u64("decisions", self.decisions);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        self.transmissions = state.get_u64("transmissions")?;
        self.delivered = state.get_u64("delivered")?;
        self.timeslots = state.get_u64("timeslots")?;
        self.scanned = state.get_u64("scanned")?;
        self.fallback_floods = state.get_u64("fallback_floods")?;
        self.decisions = state.get_u64("decisions")?;
        Ok(())
    }
}

/// Accumulates per-vertex decision-flood transmissions; reports the mean
/// and max load — the streaming counterpart of the Section IV-C
/// per-vertex communication claim.
#[derive(Debug, Default)]
pub struct PerVertexTxObserver {
    per_vertex: Vec<u64>,
}

impl RoundObserver for PerVertexTxObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        if self.per_vertex.len() < record.per_vertex_tx.len() {
            self.per_vertex.resize(record.per_vertex_tx.len(), 0);
        }
        for (acc, &c) in self.per_vertex.iter_mut().zip(record.per_vertex_tx) {
            *acc += c;
        }
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        let n = self.per_vertex.len().max(1) as f64;
        let total: u64 = self.per_vertex.iter().sum();
        t.push("tx_per_vertex_mean", total as f64 / n);
        t.push(
            "tx_per_vertex_max",
            self.per_vertex.iter().copied().max().unwrap_or(0) as f64,
        );
        t
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        out.put_u64_vec("per_vertex", self.per_vertex.clone());
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        // The ledger is lazily sized on the first record, so any length
        // (including empty, from a pre-first-round snapshot) is valid.
        self.per_vertex = state.get_u64_slice("per_vertex")?.to_vec();
        Ok(())
    }
}

/// Accumulates observed throughput; reports the per-slot average. Useful
/// as a cross-check against [`RunResult::average_observed_kbps`] and as a
/// sensing-cost numerator for limited-sensing variants.
#[derive(Debug, Default)]
pub struct ThroughputObserver {
    observed_total: f64,
    slots: u64,
}

impl RoundObserver for ThroughputObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.observed_total += record.observed_kbps;
        self.slots += record.period_len;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push(
            "avg_observed_kbps",
            self.observed_total / self.slots.max(1) as f64,
        );
        t.push("slots", self.slots as f64);
        t
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        out.put_f64("observed_total", self.observed_total);
        out.put_u64("slots", self.slots);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        self.observed_total = state.get_f64("observed_total")?;
        self.slots = state.get_u64("slots")?;
        Ok(())
    }
}

/// Charges every sensing action to the vertex that performed it, under a
/// configurable cost model: `probe_cost` per winner-slot (a transmitter
/// senses its channel every slot it holds it — the sensing budget of Yun
/// et al.'s limited-sensing CSMA) plus `report_cost` per control-plane
/// relay broadcast (the decision floods' per-vertex transmissions).
/// Reports totals, the per-vertex load distribution, and the delivered
/// kbps bought per unit of sensing cost.
///
/// Steady-state allocation-free: the per-vertex ledger is sized once, on
/// the first record.
#[derive(Debug)]
pub struct SensingCostObserver {
    probe_cost: f64,
    report_cost: f64,
    per_vertex: Vec<f64>,
    probe_total: f64,
    report_total: f64,
    observed_total: f64,
}

impl SensingCostObserver {
    /// Creates the observer with the given cost model.
    ///
    /// # Panics
    ///
    /// Panics if either cost is negative or non-finite.
    pub fn new(probe_cost: f64, report_cost: f64) -> Self {
        assert!(
            probe_cost >= 0.0 && probe_cost.is_finite(),
            "probe cost must be finite and non-negative"
        );
        assert!(
            report_cost >= 0.0 && report_cost.is_finite(),
            "report cost must be finite and non-negative"
        );
        SensingCostObserver {
            probe_cost,
            report_cost,
            per_vertex: Vec::new(),
            probe_total: 0.0,
            report_total: 0.0,
            observed_total: 0.0,
        }
    }
}

impl RoundObserver for SensingCostObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        if self.per_vertex.len() < record.per_vertex_tx.len() {
            self.per_vertex.resize(record.per_vertex_tx.len(), 0.0);
        }
        let probe = self.probe_cost * record.period_len as f64;
        for &v in record.winners {
            self.per_vertex[v] += probe;
            self.probe_total += probe;
        }
        for (acc, &tx) in self.per_vertex.iter_mut().zip(record.per_vertex_tx) {
            let cost = self.report_cost * tx as f64;
            *acc += cost;
            self.report_total += cost;
        }
        self.observed_total += record.observed_kbps;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        let total = self.probe_total + self.report_total;
        t.push("cost_total", total);
        t.push("probe_cost_total", self.probe_total);
        t.push("report_cost_total", self.report_total);
        let n = self.per_vertex.len().max(1) as f64;
        t.push("cost_per_vertex_mean", total / n);
        t.push(
            "cost_per_vertex_max",
            self.per_vertex.iter().copied().fold(0.0, f64::max),
        );
        // Sensing efficiency: delivered kbps·slots bought per unit cost.
        t.push(
            "kbps_per_unit_cost",
            if total > 0.0 {
                self.observed_total / total
            } else {
                0.0
            },
        );
        t
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        // `probe_cost` / `report_cost` are configuration, not state — a
        // restored observer is rebuilt with the scenario's cost model.
        out.put_f64_vec("per_vertex", self.per_vertex.clone());
        out.put_f64("probe_total", self.probe_total);
        out.put_f64("report_total", self.report_total);
        out.put_f64("observed_total", self.observed_total);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        self.per_vertex = state.get_f64_slice("per_vertex")?.to_vec();
        self.probe_total = state.get_f64("probe_total")?;
        self.report_total = state.get_f64("report_total")?;
        self.observed_total = state.get_f64("observed_total")?;
        Ok(())
    }
}

/// Tallies per-channel transmission outcomes — captures (positive
/// observed rate), outages (zero rate: an adversarial off-phase or a
/// Bernoulli bad state), and idle periods (no winner on the channel) —
/// the repeated-games accounting of slotted access under adversarial
/// channels (Neely). Protocol strategies are independent sets, so
/// same-channel attempts in one slot are spatial reuse, not collisions;
/// outages are the adversary's captures.
///
/// Steady-state allocation-free: the per-channel tallies are sized once,
/// on the first record.
#[derive(Debug, Default)]
pub struct CaptureStatsObserver {
    attempts: Vec<u64>,
    captures: Vec<u64>,
    idle_periods: Vec<u64>,
    periods: u64,
}

impl RoundObserver for CaptureStatsObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        let m = record.n_channels;
        if self.attempts.len() < m {
            self.attempts.resize(m, 0);
            self.captures.resize(m, 0);
            self.idle_periods.resize(m, 0);
        }
        for c in 0..m {
            self.attempts[c] += record.channel_attempts[c];
            self.captures[c] += record.channel_captures[c];
            self.idle_periods[c] += u64::from(record.channel_attempts[c] == 0);
        }
        self.periods += 1;
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        let attempts: u64 = self.attempts.iter().sum();
        let captures: u64 = self.captures.iter().sum();
        t.push("attempts", attempts as f64);
        t.push("captures", captures as f64);
        t.push("outages", (attempts - captures) as f64);
        t.push("capture_rate", captures as f64 / (attempts.max(1)) as f64);
        let periods = self.periods.max(1) as f64;
        for c in 0..self.attempts.len() {
            t.push(format!("ch{c}_attempts"), self.attempts[c] as f64);
            t.push(
                format!("ch{c}_capture_rate"),
                self.captures[c] as f64 / self.attempts[c].max(1) as f64,
            );
            t.push(
                format!("ch{c}_idle_frac"),
                self.idle_periods[c] as f64 / periods,
            );
        }
        t
    }

    fn wants_channel_stats(&self) -> bool {
        true
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        out.put_u64_vec("attempts", self.attempts.clone());
        out.put_u64_vec("captures", self.captures.clone());
        out.put_u64_vec("idle_periods", self.idle_periods.clone());
        out.put_u64("periods", self.periods);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        let attempts = state.get_u64_slice("attempts")?.to_vec();
        let m = attempts.len();
        self.captures = state.get_u64_vec_exact("captures", m)?;
        self.idle_periods = state.get_u64_vec_exact("idle_periods", m)?;
        self.attempts = attempts;
        self.periods = state.get_u64("periods")?;
        Ok(())
    }
}

/// Sliding-window regret against the per-window offline optimum: within
/// each window of `window` slots, the shortfall of observed throughput
/// below the exact offline optimum under the channels' *instantaneous*
/// true means ([`RoundRecord::oracle_kbps`] — the same branch-and-bound
/// benchmark as the paper's Fig. 7 regret, made time-varying). Under
/// stationary channels the per-window regret decays as the policy
/// converges; under drifting channels it **re-grows in the window after
/// every breakpoint**, which is exactly what this observer exists to
/// show. Windows close at the first decision-period boundary at or past
/// the window length, and never straddle a run boundary: on multi-run
/// experiments (Fig. 7/8, duels) each run's open window is flushed when
/// the next run starts, so the `wNN` sequence is the runs' window
/// series concatenated in execution order.
///
/// Emits one `wNN_end_slot` / `wNN_regret_per_slot` row pair per window
/// plus whole-run summary rows. Per-round work is allocation-free; the
/// per-window ledger grows amortized (one push per closed window).
///
/// With a telemetry handle attached, every window close also streams as a
/// `gauge` event (`regret.window_per_slot` with `end_slot`), so a live
/// consumer sees regret re-grow at a breakpoint without waiting for the
/// run to finish. The metric rows are unaffected.
#[derive(Debug)]
pub struct WindowedRegretObserver {
    window: u64,
    slots_in_window: u64,
    oracle_acc: f64,
    observed_acc: f64,
    end_slot: u64,
    windows: Vec<(u64, f64)>,
    telemetry: Telemetry,
}

impl WindowedRegretObserver {
    /// Creates the observer with the given window length in slots.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        WindowedRegretObserver {
            window,
            slots_in_window: 0,
            oracle_acc: 0.0,
            observed_acc: 0.0,
            end_slot: 0,
            windows: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    fn close_window(&mut self) {
        let regret_per_slot =
            (self.oracle_acc - self.observed_acc) / self.slots_in_window.max(1) as f64;
        self.windows.push((self.end_slot, regret_per_slot));
        self.telemetry.event(
            EventKind::Gauge,
            "regret.window_per_slot",
            &[
                ("end_slot", FieldValue::U64(self.end_slot)),
                ("value", FieldValue::F64(regret_per_slot)),
            ],
        );
        self.slots_in_window = 0;
        self.oracle_acc = 0.0;
        self.observed_acc = 0.0;
    }
}

impl RoundObserver for WindowedRegretObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        // Multi-run experiments (Fig. 7/8, duels) stream every
        // contestant's run through the same observers. Windows are
        // slot-indexed series, so a window must never straddle a run
        // boundary — blending two policies' slots into one window (and
        // emitting backwards-jumping end_slot rows) would make the
        // series incoherent. A record with `decision == 1` marks a new
        // run: flush whatever window the previous run left open.
        if record.decision == 1 && self.slots_in_window > 0 {
            self.close_window();
        }
        self.oracle_acc += record.oracle_kbps * record.period_len as f64;
        self.observed_acc += record.observed_kbps;
        self.slots_in_window += record.period_len;
        self.end_slot = record.slot + record.period_len;
        if self.slots_in_window >= self.window {
            self.close_window();
        }
    }

    fn finish(&mut self) -> MetricTable {
        if self.slots_in_window > 0 {
            self.close_window();
        }
        let mut t = MetricTable::new();
        t.push("window_slots", self.window as f64);
        t.push("windows", self.windows.len() as f64);
        for (i, &(end, regret)) in self.windows.iter().enumerate() {
            t.push(format!("w{:02}_end_slot", i + 1), end as f64);
            t.push(format!("w{:02}_regret_per_slot", i + 1), regret);
        }
        let max = self
            .windows
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::MIN, f64::max);
        if let Some(&(_, last)) = self.windows.last() {
            t.push("max_window_regret_per_slot", max);
            t.push("final_window_regret_per_slot", last);
        }
        self.windows.clear();
        t
    }

    fn wants_oracle(&self) -> bool {
        true
    }

    fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        // `window` is configuration; the closed-window ledger is split
        // into parallel end-slot / regret series (StateMap carries no
        // pair type).
        out.put_u64("slots_in_window", self.slots_in_window);
        out.put_f64("oracle_acc", self.oracle_acc);
        out.put_f64("observed_acc", self.observed_acc);
        out.put_u64("end_slot", self.end_slot);
        let ends: Vec<u64> = self.windows.iter().map(|&(end, _)| end).collect();
        let regrets: Vec<f64> = self.windows.iter().map(|&(_, r)| r).collect();
        out.put_u64_vec("window_end_slots", ends);
        out.put_f64_vec("window_regrets", regrets);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        let ends = state.get_u64_slice("window_end_slots")?.to_vec();
        let regrets = state.get_f64_vec_exact("window_regrets", ends.len())?;
        self.slots_in_window = state.get_u64("slots_in_window")?;
        self.oracle_acc = state.get_f64("oracle_acc")?;
        self.observed_acc = state.get_f64("observed_acc")?;
        self.end_slot = state.get_u64("end_slot")?;
        self.windows = ends.into_iter().zip(regrets).collect();
        Ok(())
    }
}

/// Per-flow end-to-end delay distributions over the run, recorded into
/// the telemetry [`LogHistogram`]s (log-bucketed, so p50/p99/p999 carry a
/// bounded ≤ 6.25 % relative quantization error and survive
/// snapshot/restore bit-exactly via sparse bucket dumps). Also
/// accumulates per-flow delivered / on-time counts and reports the
/// delay-constrained utility `Σ_f ln(1 + ontime_f)` — the Khodaian &
/// Khalaj proportional-fair objective over on-time deliveries.
///
/// On a run without a [`crate::TrafficSpec`] every record's traffic view
/// is `None`; the observer still reports its (all-zero) headline rows, so
/// registering it never changes whether metrics exist. Per-flow ledgers
/// are grown lazily to the highest flow index seen in a delivery.
///
/// All `finish` rows are derived from bucket counts and exact integer
/// counters only — never [`LogHistogram::mean`]/[`LogHistogram::max`],
/// which a restore approximates by bucket representatives — so a resumed
/// observer finishes byte-identical to an uninterrupted one.
#[derive(Debug, Default)]
pub struct FlowDelayObserver {
    hists: Vec<LogHistogram>,
    delivered: Vec<u64>,
    ontime: Vec<u64>,
}

impl FlowDelayObserver {
    fn grow_to(&mut self, flow: usize) {
        if self.hists.len() <= flow {
            self.hists.resize_with(flow + 1, LogHistogram::new);
            self.delivered.resize(flow + 1, 0);
            self.ontime.resize(flow + 1, 0);
        }
    }
}

impl RoundObserver for FlowDelayObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        let Some(traffic) = &record.traffic else {
            return;
        };
        for d in traffic.deliveries {
            let f = d.flow as usize;
            self.grow_to(f);
            self.hists[f].record(d.delay);
            self.delivered[f] += 1;
            self.ontime[f] += u64::from(d.ontime);
        }
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push("flows", self.hists.len() as f64);
        let mut delivered_total = 0u64;
        let mut ontime_total = 0u64;
        let mut utility = 0.0;
        for f in 0..self.hists.len() {
            let h = &self.hists[f];
            t.push(format!("f{f}_delivered"), self.delivered[f] as f64);
            t.push(
                format!("f{f}_ontime_frac"),
                self.ontime[f] as f64 / self.delivered[f].max(1) as f64,
            );
            t.push(format!("f{f}_p50_slots"), h.p50() as f64);
            t.push(format!("f{f}_p99_slots"), h.p99() as f64);
            t.push(format!("f{f}_p999_slots"), h.p999() as f64);
            delivered_total += self.delivered[f];
            ontime_total += self.ontime[f];
            utility += (1.0 + self.ontime[f] as f64).ln();
        }
        t.push("delivered", delivered_total as f64);
        t.push("ontime", ontime_total as f64);
        t.push("delay_utility", utility);
        t
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        out.put_u64("flows", self.hists.len() as u64);
        out.put_u64_vec("delivered", self.delivered.clone());
        out.put_u64_vec("ontime", self.ontime.clone());
        for (f, h) in self.hists.iter().enumerate() {
            let (idx, n): (Vec<u64>, Vec<u64>) =
                h.nonzero_buckets().map(|(i, c)| (i as u64, c)).unzip();
            out.put_u64_vec(format!("f{f}_bucket_idx"), idx);
            out.put_u64_vec(format!("f{f}_bucket_n"), n);
        }
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        let flows = state.get_u64("flows")? as usize;
        let delivered = state.get_u64_vec_exact("delivered", flows)?;
        let ontime = state.get_u64_vec_exact("ontime", flows)?;
        let mut hists = Vec::with_capacity(flows);
        for f in 0..flows {
            let idx = state.get_u64_slice(&format!("f{f}_bucket_idx"))?.to_vec();
            let counts = state.get_u64_vec_exact(&format!("f{f}_bucket_n"), idx.len())?;
            let mut h = LogHistogram::new();
            for (&i, &c) in idx.iter().zip(&counts) {
                h.merge_bucket(i as usize, c);
            }
            hists.push(h);
        }
        self.hists = hists;
        self.delivered = delivered;
        self.ontime = ontime;
        Ok(())
    }
}

/// Per-node queue-backlog distribution over the run: every period, every
/// node's end-of-period backlog is one sample in a [`LogHistogram`], and
/// any sample above the configured bound increments an overflow counter —
/// the queue-overflow-probability view König & Kwofie's large-deviations
/// analysis motivates (tails, not means). The engine's queues are
/// unbounded; the bound here is purely an accounting threshold.
///
/// Reports bucket-exact percentiles plus `overflows` / `overflow_frac`
/// and an exactly-tracked `backlog_max` (a separate counter, because a
/// restored histogram only approximates its max by the bucket
/// representative). Rows exist (all zero) even on traffic-free runs.
#[derive(Debug)]
pub struct QueueTailObserver {
    bound: u64,
    hist: LogHistogram,
    overflows: u64,
    max_backlog: u64,
}

impl QueueTailObserver {
    /// Creates the observer with the given backlog bound in packets.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "backlog bound must be positive");
        QueueTailObserver {
            bound,
            hist: LogHistogram::new(),
            overflows: 0,
            max_backlog: 0,
        }
    }
}

impl RoundObserver for QueueTailObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        let Some(traffic) = &record.traffic else {
            return;
        };
        for &b in traffic.backlogs {
            self.hist.record(b);
            self.overflows += u64::from(b > self.bound);
            self.max_backlog = self.max_backlog.max(b);
        }
    }

    fn finish(&mut self) -> MetricTable {
        let mut t = MetricTable::new();
        t.push("bound", self.bound as f64);
        t.push("samples", self.hist.count() as f64);
        t.push("backlog_p50", self.hist.p50() as f64);
        t.push("backlog_p99", self.hist.p99() as f64);
        t.push("backlog_p999", self.hist.p999() as f64);
        t.push("backlog_max", self.max_backlog as f64);
        t.push("overflows", self.overflows as f64);
        t.push(
            "overflow_frac",
            self.overflows as f64 / self.hist.count().max(1) as f64,
        );
        t
    }

    fn snapshot_state(&self, out: &mut StateMap) {
        // `bound` is configuration, not state.
        let (idx, n): (Vec<u64>, Vec<u64>) = self
            .hist
            .nonzero_buckets()
            .map(|(i, c)| (i as u64, c))
            .unzip();
        out.put_u64_vec("bucket_idx", idx);
        out.put_u64_vec("bucket_n", n);
        out.put_u64("overflows", self.overflows);
        out.put_u64("max_backlog", self.max_backlog);
    }

    fn restore_state(&mut self, state: &StateMap) -> Result<(), StateError> {
        let idx = state.get_u64_slice("bucket_idx")?.to_vec();
        let counts = state.get_u64_vec_exact("bucket_n", idx.len())?;
        let mut h = LogHistogram::new();
        for (&i, &c) in idx.iter().zip(&counts) {
            h.merge_bucket(i as usize, c);
        }
        self.hist = h;
        self.overflows = state.get_u64("overflows")?;
        self.max_backlog = state.get_u64("max_backlog")?;
        Ok(())
    }
}

/// Streams the run's phase timing into telemetry: fixed-size
/// [`LogHistogram`]s over every decision's WB / decide / learn wall time
/// (plus the decide's election / broadcast / MWIS / sweep breakdown when
/// an instrumented decide path ran), emitted as `hist` events at the end
/// of the job, with one sampled `span_end` event per
/// [`SPAN_SAMPLE_EVERY`] decisions carrying the full per-phase breakdown
/// of that decision.
///
/// Registered automatically by [`ObserverSet::attach_telemetry`] — never
/// by scenario specs. Its [`finish`](RoundObserver::finish) returns an
/// **empty** [`MetricTable`] by design: artifact CSVs and aggregated
/// metrics must be byte-identical whether tracing is on or off.
#[derive(Debug)]
pub struct TelemetryObserver {
    telemetry: Telemetry,
    wb: LogHistogram,
    decide: LogHistogram,
    learn: LogHistogram,
    election: LogHistogram,
    broadcast: LogHistogram,
    mwis: LogHistogram,
    sweep: LogHistogram,
    rounds: u64,
    slots: u64,
}

/// Cadence (in decisions) of [`TelemetryObserver`]'s sampled per-decision
/// phase-breakdown events. Decision 1 is always sampled, so short runs
/// still produce at least one.
pub const SPAN_SAMPLE_EVERY: u64 = 256;

impl TelemetryObserver {
    /// Creates the observer streaming into `telemetry`.
    pub fn new(telemetry: Telemetry) -> Self {
        TelemetryObserver {
            telemetry,
            wb: LogHistogram::new(),
            decide: LogHistogram::new(),
            learn: LogHistogram::new(),
            election: LogHistogram::new(),
            broadcast: LogHistogram::new(),
            mwis: LogHistogram::new(),
            sweep: LogHistogram::new(),
            rounds: 0,
            slots: 0,
        }
    }
}

impl RoundObserver for TelemetryObserver {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.rounds += 1;
        self.slots += record.period_len;
        self.decide.record(record.decide_ns);
        self.wb.record(record.wb_ns);
        self.learn.record(record.learn_ns);
        let phases = record.decide_phase_ns;
        if phases.total_ns() > 0 {
            self.election.record(phases.election_ns);
            self.broadcast.record(phases.broadcast_ns);
            self.mwis.record(phases.mwis_ns);
            self.sweep.record(phases.sweep_ns);
        }
        if record.decision == 1 || record.decision.is_multiple_of(SPAN_SAMPLE_EVERY) {
            self.telemetry.event(
                EventKind::SpanEnd,
                "phase.decide",
                &[
                    ("dur_ns", FieldValue::U64(record.decide_ns)),
                    ("slot", FieldValue::U64(record.slot)),
                    ("decision", FieldValue::U64(record.decision)),
                    ("wb_ns", FieldValue::U64(record.wb_ns)),
                    ("learn_ns", FieldValue::U64(record.learn_ns)),
                    ("election_ns", FieldValue::U64(phases.election_ns)),
                    ("broadcast_ns", FieldValue::U64(phases.broadcast_ns)),
                    ("mwis_ns", FieldValue::U64(phases.mwis_ns)),
                    ("sweep_ns", FieldValue::U64(phases.sweep_ns)),
                ],
            );
        }
    }

    fn wants_phase_timing(&self) -> bool {
        true
    }

    fn finish(&mut self) -> MetricTable {
        self.telemetry.counter("rounds", self.rounds);
        self.telemetry.counter("slots", self.slots);
        self.telemetry.hist("phase.wb", &self.wb);
        self.telemetry.hist("phase.decide", &self.decide);
        self.telemetry.hist("phase.learn", &self.learn);
        self.telemetry.hist("phase.election", &self.election);
        self.telemetry.hist("phase.broadcast", &self.broadcast);
        self.telemetry.hist("phase.mwis", &self.mwis);
        self.telemetry.hist("phase.sweep", &self.sweep);
        // Deliberately empty: telemetry must never add metric rows, or
        // trace-on artifacts would diverge from trace-off ones.
        MetricTable::new()
    }
}

// ---------------------------------------------------------------------------
// The Experiment trait and its engine.
// ---------------------------------------------------------------------------

/// The static shape of an experiment — what a scheduler or validator can
/// know without running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioShape {
    /// Short kind tag (also the campaign spec JSON tag).
    pub kind: &'static str,
    /// `true` when the workload is deterministic — seeds only replicate.
    pub deterministic: bool,
    /// `true` when the experiment drives Algorithm 2 round loops, i.e.
    /// registered [`RoundObserver`]s will actually see records.
    pub streams_rounds: bool,
}

/// Execution context handed to [`Experiment::run`]: the seed (overriding
/// any seed field the experiment's config carries) and the registered
/// observers, which experiments thread into [`run_policy_observed`].
pub struct ExperimentCtx {
    /// The seed for this run.
    pub seed: u64,
    /// Streaming metric sinks.
    pub observers: ObserverSet,
}

/// The typed payload of one experiment run — what the presentation layer
/// (`mhca_bench::report`) renders into the figure CSV.
// One value exists per experiment run (seconds of simulation), so the
// size spread between variants is irrelevant; boxing the large ones
// would only complicate every pattern match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentData {
    /// Fig. 5 worst-case points.
    Fig5(Vec<WorstCasePoint>),
    /// Fig. 6 convergence series.
    Fig6 {
        /// Mini-rounds plotted (series are padded to this length).
        minirounds: usize,
        /// One series per `(N, M)` size.
        series: Vec<Fig6Series>,
    },
    /// Fig. 7 regret comparison.
    Fig7(Fig7Output),
    /// Fig. 8 periodic-update runs.
    Fig8(Vec<Fig8Run>),
    /// Table II.
    Table2(Table2),
    /// Section IV-C complexity points.
    Complexity(Vec<ComplexityPoint>),
    /// Theorem 3 quality comparison.
    Theorem3(Vec<Theorem3Point>),
    /// One generic spec-driven Algorithm 2 run.
    PolicyRun {
        /// The configuration actually run (seed resolved).
        cfg: PolicyRunConfig,
        /// The run.
        run: RunResult,
    },
    /// A paired policy duel on identical realizations.
    PolicyDuel {
        /// Contestant A: `(config, run)`.
        a: (PolicyRunConfig, RunResult),
        /// Contestant B: `(config, run)`.
        b: (PolicyRunConfig, RunResult),
    },
}

/// What one experiment run produced: the typed figure payload plus the
/// flat headline metrics (observer metrics are appended by the engine).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// Typed payload for rendering.
    pub data: ExperimentData,
    /// Flat metrics for cross-seed aggregation.
    pub metrics: MetricTable,
}

/// One experiment: a declarative shape plus an execution against a
/// context. Implementations are plain data (a config struct), so they are
/// `Send + Sync` and can be constructed inside parallel campaign workers.
///
/// # Example
///
/// Running a paper workload through the engine with streaming observers:
///
/// ```
/// use mhca_core::experiment::{run_experiment, PolicyRunExperiment};
/// use mhca_core::{ObserverKind, ObserverSet, PolicyRunConfig};
///
/// let exp = PolicyRunExperiment(PolicyRunConfig::quick());
/// let observers = ObserverSet::from_kinds(&[ObserverKind::CommTotals]);
/// let out = run_experiment(&exp, 7, observers);
/// // Headline metrics come from the experiment, prefixed rows from the
/// // observers the engine folded in after the run.
/// assert!(out.metrics.get("avg_expected_kbps").is_some());
/// assert!(out.metrics.get("comm-totals:decisions").is_some());
/// ```
pub trait Experiment: Send + Sync {
    /// The static shape of this experiment.
    fn spec(&self) -> ScenarioShape;

    /// Runs the experiment for `ctx.seed`, streaming rounds to
    /// `ctx.observers` where the workload drives Algorithm 2.
    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput;
}

/// The engine: runs an experiment for one seed with the given observers
/// and folds the observers' metrics into the output.
pub fn run_experiment(exp: &dyn Experiment, seed: u64, observers: ObserverSet) -> ExperimentOutput {
    let mut ctx = ExperimentCtx { seed, observers };
    let mut out = exp.run(&mut ctx);
    ctx.observers.finish_into(&mut out.metrics);
    out
}

// ---------------------------------------------------------------------------
// The eight experiment kinds (plus the campaign duel), unified.
// ---------------------------------------------------------------------------

/// Fig. 5: linear-network worst case for the strategy decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Experiment(pub Fig5Config);

impl Experiment for Fig5Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig5",
            deterministic: true,
            streams_rounds: false,
        }
    }

    fn run(&self, _ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let points: Vec<WorstCasePoint> = cfg
            .ns
            .iter()
            .map(|&n| {
                let g = topology::line(n);
                let h = ExtendedConflictGraph::new(&g, 1);
                let weights: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / (n + 1) as f64).collect();
                let dcfg = DistributedPtasConfig::default()
                    .with_r(cfg.r)
                    .with_max_minirounds(None);
                let mut ptas = DistributedPtas::new(&h, dcfg);
                let out = ptas.decide(&weights);
                debug_assert!(out.all_marked);
                WorstCasePoint {
                    n,
                    minirounds_used: out.minirounds_used,
                }
            })
            .collect();
        let mut metrics = MetricTable::new();
        for p in &points {
            metrics.push(format!("minirounds_n{}", p.n), p.minirounds_used as f64);
        }
        ExperimentOutput {
            data: ExperimentData::Fig5(points),
            metrics,
        }
    }
}

/// Fig. 6: convergence of Algorithm 3 over mini-rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Experiment(pub Fig6Config);

impl Experiment for Fig6Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig6",
            deterministic: false,
            streams_rounds: false,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let series: Vec<Fig6Series> = cfg
            .sizes
            .iter()
            .enumerate()
            .map(|(i, &(n, m))| {
                let net =
                    Network::from_spec(n, m, &cfg.topology, &cfg.channel, ctx.seed + i as u64);
                let weights = net.channels().means();
                let dcfg = DistributedPtasConfig::default()
                    .with_r(cfg.r)
                    .with_max_minirounds(Some(cfg.minirounds))
                    .with_loss_spec(cfg.loss);
                let mut ptas = DistributedPtas::new(net.h(), dcfg);
                let out = ptas.decide(&weights);
                let mut weight_by_miniround = out.per_miniround_weight.clone();
                let last = weight_by_miniround.last().copied().unwrap_or(0.0);
                weight_by_miniround.resize(cfg.minirounds, last);
                Fig6Series {
                    n,
                    m,
                    weight_by_miniround,
                    converged_at: out.minirounds_used,
                }
            })
            .collect();
        let mut metrics = MetricTable::new();
        for s in &series {
            let label = format!("{}x{}", s.n, s.m);
            metrics.push(
                format!("final_weight_{label}"),
                *s.weight_by_miniround.last().unwrap_or(&0.0),
            );
            metrics.push(format!("converged_at_{label}"), s.converged_at as f64);
        }
        ExperimentOutput {
            data: ExperimentData::Fig6 {
                minirounds: cfg.minirounds,
                series,
            },
            metrics,
        }
    }
}

/// Fig. 7: practical regret and β-regret, Algorithm 2 vs LLR.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Experiment(pub Fig7Config);

impl Experiment for Fig7Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig7",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let seed = ctx.seed;
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        let optimal = net.optimal().weight;
        let dcfg = DistributedPtasConfig::default()
            .with_r(cfg.r)
            .with_max_minirounds(Some(cfg.minirounds))
            .with_loss_spec(cfg.loss);
        let base = Algorithm2Config::default()
            .with_horizon(cfg.horizon)
            .with_decision(dcfg)
            .with_seed(seed)
            .with_optimal_kbps(optimal);

        let mut cs = CsUcb::new(2.0);
        let algorithm2 = run_policy_observed(&net, &base, &mut cs, &mut ctx.observers);
        let mut llr_policy = Llr::new(cfg.n, 2.0);
        let llr = run_policy_observed(&net, &base, &mut llr_policy, &mut ctx.observers);
        let beta = algorithm2.beta;
        let out = Fig7Output {
            optimal_kbps: optimal,
            beta,
            algorithm2,
            llr,
        };

        let mut metrics = MetricTable::new();
        metrics.push("optimal_kbps", out.optimal_kbps);
        metrics.push("beta", out.beta);
        metrics.push(
            "alg2_final_regret",
            *out.algorithm2.practical_regret.last().unwrap_or(&0.0),
        );
        metrics.push(
            "llr_final_regret",
            *out.llr.practical_regret.last().unwrap_or(&0.0),
        );
        metrics.push(
            "alg2_final_beta_regret",
            *out.algorithm2.practical_beta_regret.last().unwrap_or(&0.0),
        );
        metrics.push(
            "alg2_avg_expected_kbps",
            out.algorithm2.average_expected_kbps,
        );
        metrics.push("llr_avg_expected_kbps", out.llr.average_expected_kbps);
        ExperimentOutput {
            data: ExperimentData::Fig7(out),
            metrics,
        }
    }
}

/// Fig. 8: throughput under periodic (stale-weight) updates.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Experiment(pub Fig8Config);

impl Experiment for Fig8Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "fig8",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let seed = ctx.seed;
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        let dcfg = DistributedPtasConfig::default()
            .with_r(cfg.r)
            .with_max_minirounds(Some(cfg.minirounds))
            .with_loss_spec(cfg.loss);
        let runs: Vec<Fig8Run> = cfg
            .update_periods
            .iter()
            .map(|&y| {
                let horizon = cfg.updates_per_run * y as u64;
                let base = Algorithm2Config::default()
                    .with_horizon(horizon)
                    .with_update_period(y)
                    .with_decision(dcfg)
                    .with_seed(seed);
                let mut cs = CsUcb::new(2.0);
                let algorithm2 = run_policy_observed(&net, &base, &mut cs, &mut ctx.observers);
                let mut llr_policy = Llr::new(cfg.n, 2.0);
                let llr = run_policy_observed(&net, &base, &mut llr_policy, &mut ctx.observers);
                Fig8Run {
                    y,
                    horizon,
                    algorithm2,
                    llr,
                }
            })
            .collect();
        let mut metrics = MetricTable::new();
        for run in &runs {
            let a_act = run.algorithm2.avg_actual_throughput.last().unwrap_or(&0.0);
            let a_est = run
                .algorithm2
                .avg_estimated_throughput
                .last()
                .unwrap_or(&0.0);
            let l_act = run.llr.avg_actual_throughput.last().unwrap_or(&0.0);
            metrics.push(format!("alg2_actual_y{}", run.y), *a_act);
            metrics.push(format!("llr_actual_y{}", run.y), *l_act);
            metrics.push(format!("alg2_estimate_gap_y{}", run.y), a_est - a_act);
        }
        ExperimentOutput {
            data: ExperimentData::Fig8(runs),
            metrics,
        }
    }
}

/// Table II: the time model as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Table2Experiment;

impl Experiment for Table2Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "table2",
            deterministic: true,
            streams_rounds: false,
        }
    }

    fn run(&self, _ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let time = TimeModel::default();
        let t = Table2 {
            miniround_ms: time.miniround_ms(),
            minirounds_per_decision: time.minirounds_per_decision(),
            theta: time.theta(),
            time,
        };
        let mut metrics = MetricTable::new();
        metrics.push("theta", t.theta);
        metrics.push("miniround_ms", t.miniround_ms);
        metrics.push("minirounds_per_decision", t.minirounds_per_decision as f64);
        ExperimentOutput {
            data: ExperimentData::Table2(t),
            metrics,
        }
    }
}

/// Section IV-C: measured communication/space complexity.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityExperiment(pub ComplexityConfig);

impl Experiment for ComplexityExperiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "complexity",
            deterministic: false,
            streams_rounds: false,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = &self.0;
        let mut points = Vec::new();
        for (i, &n) in cfg.ns.iter().enumerate() {
            let net =
                Network::from_spec(n, cfg.m, &cfg.topology, &cfg.channel, ctx.seed + i as u64);
            for &r in &cfg.rs {
                let dcfg = DistributedPtasConfig::default()
                    .with_r(r)
                    .with_max_minirounds(Some(cfg.minirounds));
                let mut ptas = DistributedPtas::new(net.h(), dcfg);
                let weights = net.channels().means();
                let outcome = ptas.decide(&weights);
                let hg = net.h().graph();
                let ball_sizes: f64 = (0..hg.n())
                    .map(|v| hg.r_hop_neighborhood(v, 2 * r + 1).len() as f64)
                    .sum::<f64>()
                    / hg.n() as f64;
                points.push(ComplexityPoint {
                    n,
                    m: cfg.m,
                    r,
                    minirounds: outcome.minirounds_used,
                    mean_tx_per_vertex: outcome.counters.mean_per_vertex_tx(),
                    max_tx_per_vertex: outcome.counters.max_per_vertex_tx(),
                    timeslots: outcome.counters.timeslots,
                    mean_ball_size: ball_sizes,
                    candidates_scanned: ptas.scan_stats().candidates_scanned,
                });
            }
        }
        let mut metrics = MetricTable::new();
        for p in &points {
            metrics.push(format!("mean_tx_n{}_r{}", p.n, p.r), p.mean_tx_per_vertex);
            metrics.push(format!("mean_ball_n{}_r{}", p.n, p.r), p.mean_ball_size);
            metrics.push(
                format!("scanned_n{}_r{}", p.n, p.r),
                p.candidates_scanned as f64,
            );
        }
        ExperimentOutput {
            data: ExperimentData::Complexity(points),
            metrics,
        }
    }
}

/// Theorem 3: distributed vs centralized approximation quality.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem3Experiment(pub Theorem3Config);

impl Experiment for Theorem3Experiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "theorem3",
            deterministic: false,
            streams_rounds: false,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        use mhca_mwis::{exact, robust_ptas};
        let cfg = &self.0;
        let points: Vec<Theorem3Point> = (ctx.seed..ctx.seed + cfg.instances)
            .map(|seed| {
                let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
                let w = net.channels().means();
                let allowed: Vec<usize> = (0..net.n_vertices()).collect();
                let optimal =
                    exact::solve_grouped(net.h().graph(), &w, &allowed, net.node_groups()).weight;
                let centralized = robust_ptas::solve_grouped(
                    net.h().graph(),
                    &w,
                    &robust_ptas::Config::with_epsilon(0.5),
                    net.node_groups(),
                )
                .weight;
                let weight_of = |d: Option<usize>| {
                    let cfg = DistributedPtasConfig::default()
                        .with_r(2)
                        .with_max_minirounds(d)
                        .with_local_solver(crate::distributed::LocalSolver::Exact);
                    let mut ptas = DistributedPtas::new(net.h(), cfg);
                    let out = ptas.decide(&w);
                    out.winners.iter().map(|&v| w[v]).sum::<f64>()
                };
                Theorem3Point {
                    seed,
                    optimal,
                    centralized,
                    distributed: weight_of(None),
                    distributed_capped: weight_of(Some(4)),
                }
            })
            .collect();
        let n = points.len().max(1) as f64;
        let mean = |f: fn(&Theorem3Point) -> f64| points.iter().map(f).sum::<f64>() / n;
        let mut metrics = MetricTable::new();
        metrics.push("central_ratio_mean", mean(|p| p.centralized / p.optimal));
        metrics.push("dist_ratio_mean", mean(|p| p.distributed / p.optimal));
        metrics.push(
            "capped_ratio_mean",
            mean(|p| p.distributed_capped / p.optimal),
        );
        ExperimentOutput {
            data: ExperimentData::Theorem3(points),
            metrics,
        }
    }
}

/// One generic declarative Algorithm 2 run — the campaign cross-product
/// workload; the per-figure experiments above are fixed points of it.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRunExperiment(pub PolicyRunConfig);

impl PolicyRunExperiment {
    /// Runs the config at one seed with observers — shared by the plain
    /// run and the duel.
    fn run_one(cfg: &PolicyRunConfig, seed: u64, observers: &mut ObserverSet) -> RunResult {
        let net = Network::from_spec(cfg.n, cfg.m, &cfg.topology, &cfg.channel, seed);
        let dcfg = DistributedPtasConfig::default()
            .with_r(cfg.r)
            .with_max_minirounds(Some(cfg.minirounds))
            .with_loss_spec(cfg.loss)
            .with_partitions(cfg.partitions);
        let mut acfg = Algorithm2Config::default()
            .with_horizon(cfg.horizon)
            .with_update_period(cfg.update_period)
            .with_decision(dcfg)
            .with_seed(seed);
        if let Some(traffic) = &cfg.traffic {
            acfg = acfg.with_traffic(traffic.clone());
        }
        let mut policy = cfg.policy.build(&net);
        run_policy_observed(&net, &acfg, policy.as_mut(), observers)
    }
}

impl Experiment for PolicyRunExperiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "policy-run",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg = PolicyRunConfig {
            seed: ctx.seed,
            ..self.0.clone()
        };
        let run = Self::run_one(&cfg, ctx.seed, &mut ctx.observers);
        let mut metrics = MetricTable::new();
        metrics.push("avg_expected_kbps", run.average_expected_kbps);
        metrics.push("avg_effective_kbps", run.average_effective_kbps);
        metrics.push("avg_observed_kbps", run.average_observed_kbps);
        metrics.push("transmissions", run.comm.transmissions as f64);
        metrics.push("decisions", run.comm.decisions as f64);
        // Traffic headline rows exist only when the scenario carries a
        // TrafficSpec, so traffic-free artifacts stay byte-identical.
        if let Some(t) = &run.traffic {
            metrics.push("arrivals", t.arrivals as f64);
            metrics.push("delivered", t.delivered as f64);
            metrics.push("ontime", t.ontime as f64);
            metrics.push("backlog", t.backlog as f64);
            metrics.push("mean_delay_slots", t.mean_delay());
            metrics.push("delay_utility", t.delay_utility());
        }
        ExperimentOutput {
            data: ExperimentData::PolicyRun { cfg, run },
            metrics,
        }
    }
}

/// Paired head-to-head: `base.policy` vs `challenger` on the same network
/// and identical channel realizations (the Fig. 7 comparison generalized).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDuelExperiment {
    /// The baseline run (its `policy` is contestant A).
    pub base: PolicyRunConfig,
    /// Contestant B, run on the identical instance.
    pub challenger: PolicySpec,
}

impl Experiment for PolicyDuelExperiment {
    fn spec(&self) -> ScenarioShape {
        ScenarioShape {
            kind: "policy-duel",
            deterministic: false,
            streams_rounds: true,
        }
    }

    fn run(&self, ctx: &mut ExperimentCtx) -> ExperimentOutput {
        let cfg_a = PolicyRunConfig {
            seed: ctx.seed,
            ..self.base.clone()
        };
        let cfg_b = PolicyRunConfig {
            policy: self.challenger,
            ..cfg_a.clone()
        };
        // Same seed ⇒ same network and channel realizations: a paired
        // comparison, as in the paper's Fig. 7/8.
        let run_a = PolicyRunExperiment::run_one(&cfg_a, ctx.seed, &mut ctx.observers);
        let run_b = PolicyRunExperiment::run_one(&cfg_b, ctx.seed, &mut ctx.observers);
        // A same-policy duel (e.g. cs-ucb l=2 vs cs-ucb l=1 — labels
        // ignore parameters) must not emit colliding metric names: the
        // campaign summarizer pools by name, which would silently blend
        // the two contestants into one aggregate.
        let (a, b) = (self.base.policy.label(), self.challenger.label());
        let (a, b) = if a == b {
            (format!("{a}-base"), format!("{b}-challenger"))
        } else {
            (a.to_string(), b.to_string())
        };
        let mut metrics = MetricTable::new();
        metrics.push(
            format!("{a}_avg_expected_kbps"),
            run_a.average_expected_kbps,
        );
        metrics.push(
            format!("{b}_avg_expected_kbps"),
            run_b.average_expected_kbps,
        );
        metrics.push(
            "advantage_kbps",
            run_a.average_expected_kbps - run_b.average_expected_kbps,
        );
        // Under a TrafficSpec the duel is ranked by the delay-constrained
        // utility (Khodaian & Khalaj) instead of raw kbps — a policy that
        // lands packets on time beats one that merely saturates links.
        let a_wins = match (&run_a.traffic, &run_b.traffic) {
            (Some(ta), Some(tb)) => {
                let (ua, ub) = (ta.delay_utility(), tb.delay_utility());
                metrics.push(format!("{a}_delay_utility"), ua);
                metrics.push(format!("{b}_delay_utility"), ub);
                metrics.push("delay_utility_advantage", ua - ub);
                ua > ub
            }
            _ => run_a.average_expected_kbps > run_b.average_expected_kbps,
        };
        metrics.push("a_wins", f64::from(u8::from(a_wins)));
        ExperimentOutput {
            data: ExperimentData::PolicyDuel {
                a: (cfg_a, run_a),
                b: (cfg_b, run_b),
            },
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_table_preserves_order_and_lookups() {
        let mut t = MetricTable::new();
        assert!(t.is_empty());
        t.push("b", 2.0);
        t.push("a", 1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("a"), Some(1.0));
        assert_eq!(t.get("missing"), None);
        assert_eq!(
            t.rows().iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["b", "a"]
        );
    }

    #[test]
    fn observer_kinds_round_trip_labels() {
        for kind in ObserverKind::ALL {
            assert_eq!(ObserverKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ObserverKind::parse("nope"), None);
    }

    #[test]
    fn full_observer_zoo_leaves_run_result_byte_identical() {
        // Registering every built-in observer at once — including the
        // windowed-regret sink, whose oracle runs extra counterfactual
        // strategy decisions — must not perturb the run itself: the
        // RunResult equals the observer-free `run_policy` output exactly.
        use crate::runner::{run_policy, run_policy_observed, Algorithm2Config};
        use mhca_bandit::policies::CsUcb;

        let net = crate::Network::random(10, 3, 3.0, 0.1, 9);
        let cfg = Algorithm2Config::default().with_horizon(80).with_seed(9);
        let plain = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        let mut observers = ObserverSet::from_kinds(&ObserverKind::ALL);
        assert!(observers.wants_oracle(), "windowed-regret needs the oracle");
        let observed = run_policy_observed(&net, &cfg, &mut CsUcb::new(2.0), &mut observers);
        assert_eq!(plain, observed, "observers must never perturb the run");

        // And every observer contributed at least one metric under its
        // own label prefix.
        let mut table = MetricTable::new();
        observers.finish_into(&mut table);
        for kind in ObserverKind::ALL {
            let prefix = format!("{}:", kind.label());
            assert!(
                table
                    .rows()
                    .iter()
                    .any(|(name, _)| name.starts_with(&prefix)),
                "no metrics from {prefix}"
            );
        }
    }

    #[test]
    fn observer_states_round_trip_mid_run() {
        // Snapshot the full observer zoo halfway through a stepped run,
        // restore into a freshly built set, continue — the final metric
        // table must be byte-identical to the uninterrupted run's.
        use crate::runner::{Algorithm2Config, PolicyRunner};
        use mhca_bandit::policies::CsUcb;

        let net = crate::Network::random(10, 3, 3.0, 0.1, 9);
        let cfg = Algorithm2Config::default().with_horizon(80).with_seed(9);

        let mut baseline_set = ObserverSet::from_kinds(&ObserverKind::ALL);
        let mut policy = CsUcb::new(2.0);
        let mut runner = PolicyRunner::new(&net, &cfg, &baseline_set);
        while !runner.done() {
            runner.step_period(&mut policy, &mut baseline_set);
        }
        let baseline = runner.finish(&policy);
        let mut baseline_metrics = MetricTable::new();
        baseline_set.finish_into(&mut baseline_metrics);

        // Interrupted run: step halfway, snapshot runner + policy +
        // observers, then rebuild everything from scratch and restore.
        let mut set_a = ObserverSet::from_kinds(&ObserverKind::ALL);
        let mut policy_a = CsUcb::new(2.0);
        let mut runner_a = PolicyRunner::new(&net, &cfg, &set_a);
        for _ in 0..40 {
            runner_a.step_period(&mut policy_a, &mut set_a);
        }
        let runner_state = runner_a.snapshot(&policy_a);
        let observer_state = set_a.snapshot_states();
        drop(runner_a);
        drop(set_a);

        let mut set_b = ObserverSet::from_kinds(&ObserverKind::ALL);
        let mut policy_b = CsUcb::new(2.0);
        let mut runner_b = PolicyRunner::new(&net, &cfg, &set_b);
        runner_b
            .restore(&mut policy_b, &runner_state)
            .expect("runner state must restore");
        set_b
            .restore_states(&observer_state)
            .expect("observer state must restore");
        while !runner_b.done() {
            runner_b.step_period(&mut policy_b, &mut set_b);
        }
        let resumed = runner_b.finish(&policy_b);
        let mut resumed_metrics = MetricTable::new();
        set_b.finish_into(&mut resumed_metrics);

        assert_eq!(baseline, resumed, "resumed RunResult must be identical");
        // Wall-clock observers (decide-timing, telemetry spans) are the
        // only nondeterministic rows; compare everything else exactly.
        let strip = |t: &MetricTable| -> Vec<(String, f64)> {
            t.rows()
                .iter()
                .filter(|(n, _)| !n.starts_with("decide-timing:"))
                .cloned()
                .collect()
        };
        assert_eq!(
            strip(&baseline_metrics),
            strip(&resumed_metrics),
            "resumed observer metrics must be identical"
        );
    }

    #[test]
    fn enabled_telemetry_leaves_run_result_and_metrics_byte_identical() {
        // The telemetry contract: attaching an *enabled* handle — which
        // registers the TelemetryObserver, switches on phase timing, and
        // streams incremental counters from CommTotals / WindowedRegret —
        // must change neither the RunResult nor the metric rows, while
        // actually producing events.
        use crate::runner::{run_policy_observed, Algorithm2Config};
        use mhca_bandit::policies::CsUcb;
        use mhca_telemetry::MemorySink;
        use std::sync::Arc;

        struct Fwd(Arc<MemorySink>);
        impl mhca_telemetry::TraceSink for Fwd {
            fn emit(&self, e: &mhca_telemetry::Event<'_>) {
                self.0.emit(e);
            }
        }

        let net = crate::Network::random(10, 3, 3.0, 0.1, 9);
        let cfg = Algorithm2Config::default().with_horizon(80).with_seed(9);
        let kinds = [
            ObserverKind::CommTotals,
            ObserverKind::WindowedRegret { window: 30 },
        ];

        let mut plain_set = ObserverSet::from_kinds(&kinds);
        let plain = run_policy_observed(&net, &cfg, &mut CsUcb::new(2.0), &mut plain_set);
        let mut plain_metrics = MetricTable::new();
        plain_set.finish_into(&mut plain_metrics);

        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::from_sink(Box::new(Fwd(sink.clone()))).with_scope("test/seed9");
        let mut traced_set = ObserverSet::from_kinds(&kinds);
        traced_set.attach_telemetry(&telemetry);
        assert!(traced_set.wants_phase_timing());
        let traced = run_policy_observed(&net, &cfg, &mut CsUcb::new(2.0), &mut traced_set);
        let mut traced_metrics = MetricTable::new();
        traced_set.finish_into(&mut traced_metrics);

        assert_eq!(plain, traced, "telemetry must never perturb the run");
        assert_eq!(
            plain_metrics, traced_metrics,
            "telemetry must never add or change metric rows"
        );

        let lines = sink.lines();
        assert!(
            lines.iter().any(|l| l.contains("\"name\":\"phase.decide\"")
                && l.contains("\"kind\":\"hist\"")),
            "expected a decide-phase histogram event"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"name\":\"regret.window_per_slot\"")),
            "expected incremental windowed-regret events"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"name\":\"comm.decisions\"")),
            "expected incremental comm-totals counters"
        );
        assert!(
            lines.iter().all(|l| l.contains("\"scope\":\"test/seed9\"")),
            "every event must carry the job scope"
        );
    }

    #[test]
    fn new_observer_metrics_are_deterministic() {
        let exp = PolicyRunExperiment(PolicyRunConfig {
            channel: mhca_channels::ChannelModelSpec::Drifting {
                shift_frac: 0.5,
                breakpoints: vec![40, 80],
                ramp: 0,
            },
            horizon: 120,
            ..PolicyRunConfig::quick()
        });
        let kinds = [
            ObserverKind::SensingCost {
                probe_cost: 1.0,
                report_cost: 0.1,
            },
            ObserverKind::CaptureStats,
            ObserverKind::WindowedRegret { window: 30 },
        ];
        let a = run_experiment(&exp, 5, ObserverSet::from_kinds(&kinds));
        let b = run_experiment(&exp, 5, ObserverSet::from_kinds(&kinds));
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.get("windowed-regret:windows"), Some(4.0));
    }

    #[test]
    fn windowed_regret_regrows_at_drift_breakpoints() {
        // Piecewise-stationary drift with a strong shift at slot 300: the
        // policy converges over the first three windows, then the means
        // flip and the per-window regret against the exact
        // instantaneous-means optimum re-grows in the window containing
        // the breakpoint.
        let exp = PolicyRunExperiment(PolicyRunConfig {
            channel: mhca_channels::ChannelModelSpec::Drifting {
                shift_frac: 0.5,
                breakpoints: vec![300],
                ramp: 0,
            },
            n: 12,
            m: 2,
            horizon: 600,
            // r = 2, as in the registry drift scenarios.
            r: 2,
            ..PolicyRunConfig::quick()
        });
        let observers = ObserverSet::from_kinds(&[ObserverKind::WindowedRegret { window: 100 }]);
        let out = run_experiment(&exp, 2, observers);
        assert_eq!(out.metrics.get("windowed-regret:windows"), Some(6.0));
        let w = |i: usize| {
            out.metrics
                .get(&format!("windowed-regret:w{i:02}_regret_per_slot"))
                .unwrap()
        };
        // Window 3 ends at the breakpoint; window 4 covers the shift.
        assert_eq!(out.metrics.get("windowed-regret:w03_end_slot"), Some(300.0));
        // Pre-break: learning converges (regret decays toward the floor).
        assert!(
            w(3) < w(1),
            "pre-break regret must decay: {} vs {}",
            w(3),
            w(1)
        );
        // Post-break: the stale strategy re-accumulates regret sharply.
        assert!(
            w(4) > 3.0 * w(3) && w(4) > w(3) + 100.0,
            "regret must re-grow in the breakpoint window: w3={} w4={}",
            w(3),
            w(4)
        );
    }

    #[test]
    fn windowed_regret_never_straddles_run_boundaries() {
        // Multi-run experiments (Fig. 7/8, duels) stream every
        // contestant through the same observers; a window open at the
        // end of run A must be flushed when run B's first record
        // (decision == 1) arrives, never blended into B's slots.
        let record = |slot: u64, decision: u64, observed: f64| RoundRecord {
            slot,
            period_len: 10,
            decision,
            winners: &[],
            expected_kbps: 0.0,
            observed_kbps: observed,
            estimated_kbps: 0.0,
            decide_ns: 0,
            wb_ns: 0,
            learn_ns: 0,
            decide_phase_ns: DecidePhaseNs::default(),
            decide_transmissions: 0,
            decide_delivered: 0,
            decide_timeslots: 0,
            decide_scanned: 0,
            decide_fallback_floods: 0,
            per_vertex_tx: &[],
            n_channels: 1,
            channel_attempts: &[0],
            channel_captures: &[0],
            oracle_kbps: 100.0,
            traffic: None,
        };
        let mut obs = WindowedRegretObserver::new(25);
        // Run A: 4 periods of 10 slots. The window closes at the first
        // period boundary past 25 slots (slot 30), leaving the fourth
        // period open when run B starts.
        for (i, d) in (1..=4u64).enumerate() {
            obs.on_round(&record(10 * i as u64, d, 500.0));
        }
        // Run B: slots restart at 0 with decision 1.
        for (i, d) in (1..=3u64).enumerate() {
            obs.on_round(&record(10 * i as u64, d, 0.0));
        }
        let t = obs.finish();
        // Windows: run A closes [0,30) then flushes [30,40) at the run
        // boundary; run B closes [0,30) — three windows total, and run
        // A's observations never leak into run B's window.
        assert_eq!(t.get("windows"), Some(3.0));
        assert_eq!(t.get("w01_end_slot"), Some(30.0));
        assert_eq!(t.get("w02_end_slot"), Some(40.0), "run A's tail flushed");
        assert_eq!(t.get("w03_end_slot"), Some(30.0), "run B starts fresh");
        // Run A earns 500/period against a 1000 oracle: +50/slot regret.
        assert_eq!(t.get("w01_regret_per_slot"), Some(50.0));
        assert_eq!(t.get("w02_regret_per_slot"), Some(50.0));
        // Run B earns nothing: exactly the full 100/slot oracle value —
        // any blending with run A's 500-observations would lower it.
        assert_eq!(t.get("w03_regret_per_slot"), Some(100.0));
    }

    #[test]
    fn capture_stats_tally_outages_under_full_swing_adversary() {
        // A full-swing square wave (low phase = 0 kbps): attempts split
        // into captures and outages, and the tallies are channel-complete.
        let exp = PolicyRunExperiment(PolicyRunConfig {
            channel: mhca_channels::ChannelModelSpec::AdversarialSwitching {
                swing_frac: 1.0,
                dwell: 20,
            },
            horizon: 200,
            ..PolicyRunConfig::quick()
        });
        let out = run_experiment(
            &exp,
            3,
            ObserverSet::from_kinds(&[ObserverKind::CaptureStats]),
        );
        let get = |name: &str| out.metrics.get(&format!("capture-stats:{name}")).unwrap();
        let attempts = get("attempts");
        let captures = get("captures");
        let outages = get("outages");
        assert!(attempts > 0.0);
        assert_eq!(attempts, captures + outages);
        assert!(
            outages > 0.0,
            "a full-swing adversary must produce zero-rate observations"
        );
        let rate = get("capture_rate");
        assert!((0.0..1.0).contains(&rate), "capture rate {rate}");
        // Per-channel rows exist for every channel of the 2-channel net.
        for c in 0..2 {
            assert!(out
                .metrics
                .get(&format!("capture-stats:ch{c}_capture_rate"))
                .is_some());
        }
    }

    #[test]
    fn sensing_cost_charges_follow_the_cost_model() {
        let exp = PolicyRunExperiment(PolicyRunConfig {
            horizon: 100,
            ..PolicyRunConfig::quick()
        });
        let run_with = |probe: f64, report: f64| {
            run_experiment(
                &exp,
                3,
                ObserverSet::from_kinds(&[ObserverKind::SensingCost {
                    probe_cost: probe,
                    report_cost: report,
                }]),
            )
        };
        let out = run_with(1.0, 0.1);
        let get = |name: &str| out.metrics.get(&format!("sensing-cost:{name}")).unwrap();
        let total = get("cost_total");
        assert!((total - (get("probe_cost_total") + get("report_cost_total"))).abs() < 1e-9);
        assert!(get("cost_per_vertex_max") >= get("cost_per_vertex_mean"));
        assert!(get("kbps_per_unit_cost") > 0.0);

        // The model is linear: doubling the probe price doubles the probe
        // total and leaves the report total untouched.
        let doubled = run_with(2.0, 0.1);
        let get2 = |name: &str| {
            doubled
                .metrics
                .get(&format!("sensing-cost:{name}"))
                .unwrap()
        };
        assert!((get2("probe_cost_total") - 2.0 * get("probe_cost_total")).abs() < 1e-9);
        assert_eq!(get2("report_cost_total"), get("report_cost_total"));

        // A free cost model charges nothing.
        let free = run_with(0.0, 0.0);
        assert_eq!(free.metrics.get("sensing-cost:cost_total"), Some(0.0));
    }

    #[test]
    fn engine_runs_table2_deterministically() {
        let out = run_experiment(&Table2Experiment, 0, ObserverSet::new());
        assert_eq!(out.metrics.get("theta"), Some(0.5));
        assert!(matches!(out.data, ExperimentData::Table2(_)));
        let shape = Table2Experiment.spec();
        assert!(shape.deterministic);
        assert!(!shape.streams_rounds);
    }

    #[test]
    fn policy_run_streams_rounds_to_observers() {
        let exp = PolicyRunExperiment(PolicyRunConfig::quick());
        let observers = ObserverSet::from_kinds(&[
            ObserverKind::CommTotals,
            ObserverKind::Throughput,
            ObserverKind::DecideTiming,
        ]);
        let out = run_experiment(&exp, 3, observers);
        let ExperimentData::PolicyRun { run, .. } = &out.data else {
            panic!("wrong data variant");
        };
        // One decision per slot at y = 1.
        assert_eq!(
            out.metrics.get("comm-totals:decisions"),
            Some(run.comm.decisions as f64)
        );
        // The throughput observer recomputes the run's own average.
        let avg = out.metrics.get("throughput:avg_observed_kbps").unwrap();
        assert!((avg - run.average_observed_kbps).abs() < 1e-9);
        assert_eq!(out.metrics.get("throughput:slots"), Some(run.slots as f64));
        // Timing streamed something (non-negative, finite).
        let ms = out.metrics.get("decide-timing:decide_ms_total").unwrap();
        assert!(ms.is_finite() && ms >= 0.0);
    }

    #[test]
    fn observer_metrics_are_deterministic_where_expected() {
        let exp = PolicyRunExperiment(PolicyRunConfig::quick());
        let kinds = [ObserverKind::CommTotals, ObserverKind::PerVertexTx];
        let a = run_experiment(&exp, 5, ObserverSet::from_kinds(&kinds));
        let b = run_experiment(&exp, 5, ObserverSet::from_kinds(&kinds));
        assert_eq!(a.metrics, b.metrics);
        assert!(a.metrics.get("per-vertex-tx:tx_per_vertex_max").unwrap() > 0.0);
    }

    #[test]
    fn duel_pairs_runs_on_identical_instances() {
        let exp = PolicyDuelExperiment {
            base: PolicyRunConfig {
                horizon: 120,
                ..PolicyRunConfig::quick()
            },
            challenger: PolicySpec::Random,
        };
        let out = run_experiment(&exp, 3, ObserverSet::new());
        let a = out.metrics.get("cs-ucb_avg_expected_kbps").unwrap();
        let b = out.metrics.get("random_avg_expected_kbps").unwrap();
        assert!((out.metrics.get("advantage_kbps").unwrap() - (a - b)).abs() < 1e-9);
    }

    #[test]
    fn same_policy_duel_disambiguates_metric_names() {
        // cs-ucb vs cs-ucb (different l): labels collide, so the metric
        // names must not — the campaign summarizer pools by name.
        let exp = PolicyDuelExperiment {
            base: PolicyRunConfig {
                horizon: 60,
                ..PolicyRunConfig::quick()
            },
            challenger: PolicySpec::CsUcb { l: 0.5 },
        };
        let out = run_experiment(&exp, 3, ObserverSet::new());
        assert!(out.metrics.get("cs-ucb-base_avg_expected_kbps").is_some());
        assert!(out
            .metrics
            .get("cs-ucb-challenger_avg_expected_kbps")
            .is_some());
        let names: Vec<&str> = out.metrics.rows().iter().map(|(n, _)| n.as_str()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "colliding metric names");
    }

    /// A quick policy-run config carrying traffic: two flows on a line
    /// network, one deadline-bounded.
    fn traffic_cfg() -> PolicyRunConfig {
        PolicyRunConfig {
            topology: mhca_graph::TopologySpec::Line,
            traffic: Some(crate::TrafficSpec::poisson(
                0.4,
                vec![
                    crate::FlowSpec {
                        src: 0,
                        dst: 3,
                        deadline: Some(30),
                    },
                    crate::FlowSpec {
                        src: 5,
                        dst: 2,
                        deadline: None,
                    },
                ],
            )),
            horizon: 200,
            ..PolicyRunConfig::quick()
        }
    }

    #[test]
    fn flow_delay_and_queue_tail_report_per_flow_tails() {
        let exp = PolicyRunExperiment(traffic_cfg());
        let kinds = [
            ObserverKind::FlowDelay,
            ObserverKind::QueueTail { bound: 4 },
        ];
        let out = run_experiment(&exp, 7, ObserverSet::from_kinds(&kinds));
        let get = |n: &str| {
            out.metrics
                .get(n)
                .unwrap_or_else(|| panic!("missing metric {n}"))
        };
        // Headline rows from the run summary.
        assert!(get("arrivals") > 0.0);
        assert!(get("delivered") > 0.0);
        assert!(get("delay_utility") > 0.0);
        // Per-flow delay tails from the observer.
        let flows = get("flow-delay:flows") as usize;
        assert!(flows >= 1);
        for f in 0..flows {
            let p50 = get(&format!("flow-delay:f{f}_p50_slots"));
            let p99 = get(&format!("flow-delay:f{f}_p99_slots"));
            let p999 = get(&format!("flow-delay:f{f}_p999_slots"));
            assert!(p50 >= 1.0, "delays are >= 1 slot");
            assert!(p99 >= p50 && p999 >= p99, "percentiles must be ordered");
        }
        // The observer's utility is computed from the same on-time counts
        // as the run summary's (undelivered flows contribute ln(1) = 0).
        assert!((get("flow-delay:delay_utility") - get("delay_utility")).abs() < 1e-9);
        // Backlog tails: one sample per node per period.
        assert!(get("queue-tail:samples") > 0.0);
        assert!(get("queue-tail:backlog_max") >= get("queue-tail:backlog_p50"));
        assert_eq!(get("queue-tail:bound"), 4.0);
    }

    #[test]
    fn traffic_duels_rank_by_delay_utility() {
        let exp = PolicyDuelExperiment {
            base: traffic_cfg(),
            challenger: PolicySpec::Random,
        };
        let out = run_experiment(&exp, 3, ObserverSet::new());
        let ua = out.metrics.get("cs-ucb_delay_utility").unwrap();
        let ub = out.metrics.get("random_delay_utility").unwrap();
        let adv = out.metrics.get("delay_utility_advantage").unwrap();
        assert!((adv - (ua - ub)).abs() < 1e-9);
        // The winner bit follows utility, not kbps.
        assert_eq!(
            out.metrics.get("a_wins"),
            Some(f64::from(u8::from(ua > ub)))
        );
    }

    #[test]
    fn traffic_observer_states_round_trip_mid_run() {
        // FlowDelay/QueueTail accumulate log-bucketed histograms; their
        // snapshot is a sparse bucket dump, and every `finish` row is
        // derived from bucket counts or exact counters — so a restored
        // observer must finish byte-identical, traffic included.
        use crate::runner::{Algorithm2Config, PolicyRunner};
        use mhca_bandit::policies::CsUcb;

        let cfg_pr = traffic_cfg();
        let net =
            crate::Network::from_spec(cfg_pr.n, cfg_pr.m, &cfg_pr.topology, &cfg_pr.channel, 11);
        let cfg = Algorithm2Config::default()
            .with_horizon(200)
            .with_seed(11)
            .with_traffic(cfg_pr.traffic.clone().unwrap());
        let kinds = [
            ObserverKind::FlowDelay,
            ObserverKind::QueueTail { bound: 4 },
        ];

        let mut baseline_set = ObserverSet::from_kinds(&kinds);
        let mut policy = CsUcb::new(2.0);
        let mut runner = PolicyRunner::new(&net, &cfg, &baseline_set);
        while !runner.done() {
            runner.step_period(&mut policy, &mut baseline_set);
        }
        let baseline = runner.finish(&policy);
        let mut baseline_metrics = MetricTable::new();
        baseline_set.finish_into(&mut baseline_metrics);
        assert!(
            baseline.traffic.as_ref().unwrap().delivered > 0,
            "need deliveries for the round-trip to be meaningful"
        );

        let mut set_a = ObserverSet::from_kinds(&kinds);
        let mut policy_a = CsUcb::new(2.0);
        let mut runner_a = PolicyRunner::new(&net, &cfg, &set_a);
        for _ in 0..100 {
            runner_a.step_period(&mut policy_a, &mut set_a);
        }
        let runner_state = runner_a.snapshot(&policy_a);
        let observer_state = set_a.snapshot_states();

        let mut set_b = ObserverSet::from_kinds(&kinds);
        let mut policy_b = CsUcb::new(2.0);
        let mut runner_b = PolicyRunner::new(&net, &cfg, &set_b);
        runner_b
            .restore(&mut policy_b, &runner_state)
            .expect("runner state must restore");
        set_b
            .restore_states(&observer_state)
            .expect("observer state must restore");
        while !runner_b.done() {
            runner_b.step_period(&mut policy_b, &mut set_b);
        }
        let resumed = runner_b.finish(&policy_b);
        let mut resumed_metrics = MetricTable::new();
        set_b.finish_into(&mut resumed_metrics);

        assert_eq!(baseline, resumed, "resumed RunResult must be identical");
        assert_eq!(
            baseline_metrics, resumed_metrics,
            "resumed traffic observer metrics must be identical"
        );
    }

    #[test]
    fn seed_overrides_config_seed() {
        let cfg = PolicyRunConfig {
            seed: 999,
            ..PolicyRunConfig::quick()
        };
        let at_seed = |s| run_experiment(&PolicyRunExperiment(cfg.clone()), s, ObserverSet::new());
        let a = at_seed(5);
        let b = at_seed(5);
        let c = at_seed(6);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a.metrics, c.metrics, "different seeds must differ");
    }
}
