//! Parameterized harnesses regenerating every figure of the paper's
//! evaluation (Section V), plus the complexity claims of Section IV-C.
//!
//! Each function returns a serde-serializable struct; the `mhca-bench`
//! binaries print them as CSV in the same rows/series the paper plots.
//! Default parameters mirror the paper; `*_quick` constructors provide
//! scaled-down variants for tests and CI.

use crate::{
    distributed::{DistributedPtas, DistributedPtasConfig},
    network::Network,
    runner::{run_policy, Algorithm2Config, RunResult},
    time::TimeModel,
};
use mhca_bandit::policies::{CsUcb, Llr};
use mhca_graph::{topology, ExtendedConflictGraph};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Fig. 6 — convergence of Algorithm 3 over mini-rounds.
// ---------------------------------------------------------------------------

/// Configuration of the Fig. 6 experiment: summed weight of all output
/// independent sets as mini-rounds advance, for several `N×M` networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Config {
    /// `(N, M)` pairs; the paper uses `{50,100,200} × {5,10}`.
    pub sizes: Vec<(usize, usize)>,
    /// Average conflict degree of the random networks (unspecified in the
    /// paper; see DESIGN.md).
    pub avg_degree: f64,
    /// Local MWIS radius (the paper uses `r = 2`).
    pub r: usize,
    /// Mini-rounds to plot (paper x-axis: 1..10).
    pub minirounds: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            sizes: vec![(50, 5), (100, 5), (200, 5), (50, 10), (100, 10), (200, 10)],
            // The paper leaves the density unspecified; d = 3.5 reproduces
            // its "converged after the 4th mini-round" observation
            // (≥ 97% of final weight by mini-round 4 for every size).
            avg_degree: 3.5,
            r: 2,
            minirounds: 10,
            seed: 61,
        }
    }
}

impl Fig6Config {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        Fig6Config {
            sizes: vec![(30, 3), (50, 5)],
            avg_degree: 5.0,
            r: 1,
            minirounds: 8,
            seed: 61,
        }
    }
}

/// One line of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Series {
    /// Users `N`.
    pub n: usize,
    /// Channels `M`.
    pub m: usize,
    /// Cumulative winner weight (kbps) after mini-round `i+1`; padded with
    /// the final value once the protocol terminates.
    pub weight_by_miniround: Vec<f64>,
    /// Mini-round after which every vertex was marked.
    pub converged_at: usize,
}

/// Runs the Fig. 6 experiment: one strategy decision per network size with
/// the *true means* as weights, recording the cumulative output weight per
/// mini-round.
pub fn fig6(cfg: &Fig6Config) -> Vec<Fig6Series> {
    cfg.sizes
        .iter()
        .enumerate()
        .map(|(i, &(n, m))| {
            let net = Network::random(n, m, cfg.avg_degree, 0.1, cfg.seed + i as u64);
            let weights = net.channels().means();
            let dcfg = DistributedPtasConfig::default()
                .with_r(cfg.r)
                .with_max_minirounds(Some(cfg.minirounds));
            let mut ptas = DistributedPtas::new(net.h(), dcfg);
            let out = ptas.decide(&weights);
            let mut series = out.per_miniround_weight.clone();
            let last = series.last().copied().unwrap_or(0.0);
            series.resize(cfg.minirounds, last);
            Fig6Series {
                n,
                m,
                weight_by_miniround: series,
                converged_at: out.minirounds_used,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 7 — practical regret and β-regret vs LLR on a 15×3 network.
// ---------------------------------------------------------------------------

/// Configuration of the Fig. 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Config {
    /// Users (paper: 15).
    pub n: usize,
    /// Channels (paper: 3).
    pub m: usize,
    /// Average conflict degree of the connected random network.
    pub avg_degree: f64,
    /// Horizon in slots (paper: 1000).
    pub horizon: u64,
    /// Local MWIS radius (paper: 2).
    pub r: usize,
    /// Mini-round budget per decision.
    pub minirounds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            n: 15,
            m: 3,
            avg_degree: 4.0,
            horizon: 1000,
            r: 2,
            minirounds: 4,
            seed: 71,
        }
    }
}

impl Fig7Config {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        Fig7Config {
            n: 8,
            m: 2,
            avg_degree: 3.0,
            horizon: 120,
            r: 1,
            minirounds: 4,
            seed: 71,
        }
    }
}

/// Per-policy regret series of Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Output {
    /// The exact optimum `R_1` in kbps (paper's instance: 7282.90).
    pub optimal_kbps: f64,
    /// β actually used for the β-regret target (`θ·α`).
    pub beta: f64,
    /// Run of the paper's policy (Algorithm 2 with CS-UCB).
    pub algorithm2: RunResult,
    /// Run of the LLR baseline (same oracle, same channels).
    pub llr: RunResult,
}

/// Runs the Fig. 7 experiment: exact optimum by branch-and-bound, then a
/// paired comparison (identical channel realizations) of CS-UCB vs LLR.
pub fn fig7(cfg: &Fig7Config) -> Fig7Output {
    let net = Network::random_connected(cfg.n, cfg.m, cfg.avg_degree, 0.1, cfg.seed);
    let optimal = net.optimal().weight;
    let dcfg = DistributedPtasConfig::default()
        .with_r(cfg.r)
        .with_max_minirounds(Some(cfg.minirounds));
    let base = Algorithm2Config::default()
        .with_horizon(cfg.horizon)
        .with_decision(dcfg)
        .with_seed(cfg.seed)
        .with_optimal_kbps(optimal);

    let mut cs = CsUcb::new(2.0);
    let algorithm2 = run_policy(&net, &base, &mut cs);
    let mut llr_policy = Llr::new(cfg.n, 2.0);
    let llr = run_policy(&net, &base, &mut llr_policy);
    let beta = algorithm2.beta;
    Fig7Output {
        optimal_kbps: optimal,
        beta,
        algorithm2,
        llr,
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 — throughput under periodic (stale-weight) updates.
// ---------------------------------------------------------------------------

/// Configuration of the Fig. 8 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Config {
    /// Users (paper: 100).
    pub n: usize,
    /// Channels (paper: 10).
    pub m: usize,
    /// Average conflict degree.
    pub avg_degree: f64,
    /// Update periods `y` (paper: 1, 5, 10, 20).
    pub update_periods: Vec<usize>,
    /// Weight updates per run (paper: 1000 ⇒ horizons `y·1000`).
    pub updates_per_run: u64,
    /// Local MWIS radius.
    pub r: usize,
    /// Mini-round budget per decision.
    pub minirounds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            n: 100,
            m: 10,
            // Same density calibration as Fig. 6: at d ≈ 3.5 the D = 4
            // mini-round budget resolves ≥ 97% of the weight, matching the
            // paper's converged-by-4 observation. Denser networks starve
            // the budget and distort the Fig. 8 comparison.
            avg_degree: 3.5,
            update_periods: vec![1, 5, 10, 20],
            updates_per_run: 1000,
            r: 2,
            minirounds: 4,
            seed: 81,
        }
    }
}

impl Fig8Config {
    /// Scaled-down variant for tests and default bench runs.
    pub fn quick() -> Self {
        Fig8Config {
            n: 30,
            m: 4,
            avg_degree: 4.0,
            update_periods: vec![1, 5],
            updates_per_run: 60,
            r: 1,
            minirounds: 4,
            seed: 81,
        }
    }
}

/// One subplot of Fig. 8 (one update period `y`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Run {
    /// Update period `y`.
    pub y: usize,
    /// Horizon in slots (`y · updates_per_run`).
    pub horizon: u64,
    /// Algorithm 2 (CS-UCB) run: estimated vs actual series inside.
    pub algorithm2: RunResult,
    /// LLR run on the same network and channel realizations.
    pub llr: RunResult,
}

/// Runs the Fig. 8 experiment: for each `y`, a paired CS-UCB vs LLR run
/// with `updates_per_run` strategy decisions.
pub fn fig8(cfg: &Fig8Config) -> Vec<Fig8Run> {
    let net = Network::random(cfg.n, cfg.m, cfg.avg_degree, 0.1, cfg.seed);
    let dcfg = DistributedPtasConfig::default()
        .with_r(cfg.r)
        .with_max_minirounds(Some(cfg.minirounds));
    cfg.update_periods
        .iter()
        .map(|&y| {
            let horizon = cfg.updates_per_run * y as u64;
            let base = Algorithm2Config::default()
                .with_horizon(horizon)
                .with_update_period(y)
                .with_decision(dcfg)
                .with_seed(cfg.seed);
            let mut cs = CsUcb::new(2.0);
            let algorithm2 = run_policy(&net, &base, &mut cs);
            let mut llr_policy = Llr::new(cfg.n, 2.0);
            let llr = run_policy(&net, &base, &mut llr_policy);
            Fig8Run {
                y,
                horizon,
                algorithm2,
                llr,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 5 — linear-network worst case for the strategy decision.
// ---------------------------------------------------------------------------

/// One point of the worst-case demonstration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCasePoint {
    /// Line length `N`.
    pub n: usize,
    /// Mini-rounds Algorithm 3 needed to mark every vertex.
    pub minirounds_used: usize,
}

/// Reproduces the Fig. 5 observation: on a line with strictly decreasing
/// weights and `M = 1`, only one new LocalLeader can emerge per
/// mini-round region, so full resolution needs `Θ(N)` mini-rounds.
pub fn fig5_worstcase(ns: &[usize], r: usize) -> Vec<WorstCasePoint> {
    ns.iter()
        .map(|&n| {
            let g = topology::line(n);
            let h = ExtendedConflictGraph::new(&g, 1);
            let weights: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / (n + 1) as f64).collect();
            let dcfg = DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(None);
            let mut ptas = DistributedPtas::new(&h, dcfg);
            let out = ptas.decide(&weights);
            debug_assert!(out.all_marked);
            WorstCasePoint {
                n,
                minirounds_used: out.minirounds_used,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Section IV-C — measured communication/space complexity.
// ---------------------------------------------------------------------------

/// One measured complexity point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexityPoint {
    /// Users `N`.
    pub n: usize,
    /// Channels `M`.
    pub m: usize,
    /// Radius `r`.
    pub r: usize,
    /// Mini-rounds executed.
    pub minirounds: usize,
    /// Mean relay broadcasts per vertex for the decision.
    pub mean_tx_per_vertex: f64,
    /// Max relay broadcasts charged to one vertex.
    pub max_tx_per_vertex: u64,
    /// Pipelined mini-timeslots for the decision.
    pub timeslots: u64,
    /// Mean `(2r+1)`-ball size — the per-vertex storage `O(m)` claim.
    pub mean_ball_size: f64,
}

/// Measures the per-vertex communication of one strategy decision across
/// network sizes and radii — the empirical check of the paper's
/// `O(r² + D)` messages / `O(m)` space claims.
pub fn complexity(
    ns: &[usize],
    m: usize,
    rs: &[usize],
    avg_degree: f64,
    minirounds: usize,
    seed: u64,
) -> Vec<ComplexityPoint> {
    let mut out = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let net = Network::random(n, m, avg_degree, 0.1, seed + i as u64);
        for &r in rs {
            let dcfg = DistributedPtasConfig::default()
                .with_r(r)
                .with_max_minirounds(Some(minirounds));
            let mut ptas = DistributedPtas::new(net.h(), dcfg);
            let weights = net.channels().means();
            let outcome = ptas.decide(&weights);
            let hg = net.h().graph();
            let ball_sizes: f64 = (0..hg.n())
                .map(|v| hg.r_hop_neighborhood(v, 2 * r + 1).len() as f64)
                .sum::<f64>()
                / hg.n() as f64;
            out.push(ComplexityPoint {
                n,
                m,
                r,
                minirounds: outcome.minirounds_used,
                mean_tx_per_vertex: outcome.counters.mean_per_vertex_tx(),
                max_tx_per_vertex: outcome.counters.max_per_vertex_tx(),
                timeslots: outcome.counters.timeslots,
                mean_ball_size: ball_sizes,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Theorem 3 — distributed vs centralized approximation quality.
// ---------------------------------------------------------------------------

/// One instance of the Theorem 3 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Theorem3Point {
    /// Seed of the instance.
    pub seed: u64,
    /// Exact optimum (branch-and-bound).
    pub optimal: f64,
    /// Centralized robust PTAS weight (ε = 0.5, unbounded radius).
    pub centralized: f64,
    /// Distributed Algorithm 3 weight, run to completion, exact local
    /// solving.
    pub distributed: f64,
    /// Distributed weight under the constant budget `D = 4`.
    pub distributed_capped: f64,
}

/// Empirically validates Theorem 3 ("Algorithm 3 achieves the same
/// approximation ratio ρ as the centralized robust PTAS"): on seeded
/// random instances small enough for exact ground truth, compares the
/// exact optimum, the centralized robust PTAS, and the distributed
/// protocol (uncapped and capped).
pub fn theorem3(
    n: usize,
    m: usize,
    avg_degree: f64,
    seeds: std::ops::Range<u64>,
) -> Vec<Theorem3Point> {
    use mhca_mwis::{exact, robust_ptas};
    seeds
        .map(|seed| {
            let net = Network::random(n, m, avg_degree, 0.1, seed);
            let w = net.channels().means();
            let allowed: Vec<usize> = (0..net.n_vertices()).collect();
            let optimal =
                exact::solve_grouped(net.h().graph(), &w, &allowed, net.node_groups()).weight;
            let centralized = robust_ptas::solve_grouped(
                net.h().graph(),
                &w,
                &robust_ptas::Config::with_epsilon(0.5),
                net.node_groups(),
            )
            .weight;
            let weight_of = |d: Option<usize>| {
                let cfg = DistributedPtasConfig::default()
                    .with_r(2)
                    .with_max_minirounds(d)
                    .with_local_solver(crate::distributed::LocalSolver::Exact);
                let mut ptas = DistributedPtas::new(net.h(), cfg);
                let out = ptas.decide(&w);
                out.winners.iter().map(|&v| w[v]).sum::<f64>()
            };
            Theorem3Point {
                seed,
                optimal,
                centralized,
                distributed: weight_of(None),
                distributed_capped: weight_of(Some(4)),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table II — the time model as data.
// ---------------------------------------------------------------------------

/// Table II rendered as data, with the derived quantities Section V uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// The timing parameters.
    pub time: TimeModel,
    /// Derived mini-round length `t_m`.
    pub miniround_ms: f64,
    /// Derived decision budget in mini-rounds.
    pub minirounds_per_decision: usize,
    /// Derived airtime fraction θ.
    pub theta: f64,
}

/// Produces Table II plus derived values.
pub fn table2() -> Table2 {
    let time = TimeModel::default();
    Table2 {
        miniround_ms: time.miniround_ms(),
        minirounds_per_decision: time.minirounds_per_decision(),
        theta: time.theta(),
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_quick_series_shape() {
        let cfg = Fig6Config::quick();
        let series = fig6(&cfg);
        assert_eq!(series.len(), cfg.sizes.len());
        for s in &series {
            assert_eq!(s.weight_by_miniround.len(), cfg.minirounds);
            // Cumulative weight never decreases.
            for w in s.weight_by_miniround.windows(2) {
                assert!(w[1] >= w[0] - 1e-9);
            }
            assert!(*s.weight_by_miniround.last().unwrap() > 0.0);
        }
    }

    #[test]
    fn fig7_quick_shows_negative_beta_regret() {
        let out = fig7(&Fig7Config::quick());
        assert!(out.optimal_kbps > 0.0);
        // β-regret converges negative (Fig. 7(b)): the achieved effective
        // throughput beats the 1/β target.
        let last = *out.algorithm2.practical_beta_regret.last().unwrap();
        assert!(last < 0.0, "beta regret should go negative, got {last}");
        // Practical regret decreases over the run (learning).
        let pr = &out.algorithm2.practical_regret;
        assert!(pr.last().unwrap() < &pr[2]);
    }

    #[test]
    fn fig8_quick_stale_updates_improve_throughput() {
        let runs = fig8(&Fig8Config::quick());
        assert_eq!(runs.len(), 2);
        let y1 = &runs[0];
        let y5 = &runs[1];
        assert_eq!(y1.y, 1);
        assert_eq!(y5.y, 5);
        let final_y1 = *y1.algorithm2.avg_actual_throughput.last().unwrap();
        let final_y5 = *y5.algorithm2.avg_actual_throughput.last().unwrap();
        assert!(
            final_y5 > final_y1,
            "y=5 effective {final_y5} should beat y=1 {final_y1}"
        );
    }

    #[test]
    fn fig5_worstcase_grows_linearly() {
        let points = fig5_worstcase(&[10, 20, 40], 1);
        assert!(points[1].minirounds_used > points[0].minirounds_used);
        assert!(points[2].minirounds_used > points[1].minirounds_used);
        // Roughly linear: doubling N should not leave mini-rounds flat.
        assert!(points[2].minirounds_used as f64 >= 1.5 * points[1].minirounds_used as f64);
    }

    #[test]
    fn complexity_is_size_independent_per_vertex() {
        let pts = complexity(&[20, 60], 3, &[1], 4.0, 4, 5);
        assert_eq!(pts.len(), 2);
        // The per-vertex message count must not scale with N (the paper's
        // O(r²+D) claim) — allow a generous factor for randomness.
        let small = pts[0].mean_tx_per_vertex.max(1e-9);
        let large = pts[1].mean_tx_per_vertex;
        assert!(
            large < 3.0 * small,
            "per-vertex tx grew with N: {small} -> {large}"
        );
    }

    #[test]
    fn theorem3_ratios_are_sane() {
        let pts = theorem3(12, 2, 3.0, 0..4);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.optimal >= p.centralized - 1e-9);
            assert!(p.optimal >= p.distributed - 1e-9);
            assert!(p.distributed_capped <= p.distributed + 1e-9);
            // Both approximations stay within a factor 2 of optimal on
            // these easy geometric instances.
            assert!(p.centralized * 2.0 >= p.optimal);
            assert!(p.distributed * 2.0 >= p.optimal);
        }
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        assert_eq!(t.theta, 0.5);
        assert_eq!(t.miniround_ms, 250.0);
        assert_eq!(t.minirounds_per_decision, 4);
    }
}
