//! Experiment configurations and output records for every figure of the
//! paper's evaluation (Section V), plus the complexity claims of Section
//! IV-C.
//!
//! This module is **data only**: the config structs (`Fig6Config`,
//! `PolicyRunConfig`, …) and the typed output records the figures plot.
//! The execution logic lives in [`crate::experiment`] — each config has
//! a corresponding [`Experiment`](crate::experiment::Experiment)
//! implementation (`Fig6Experiment`, `PolicyRunExperiment`, …) driven by
//! the unified engine [`run_experiment`](crate::experiment::run_experiment).
//! (The pre-engine free functions `fig6`, `run_fig5`, `run_policy_spec`,
//! … spent one release as deprecated shims and have been retired; the
//! engine is the only entry point.)
//!
//! Default parameters mirror the paper; `*_quick` constructors provide
//! scaled-down variants for tests and CI.

use crate::{network::Network, runner::RunResult, time::TimeModel};
use mhca_bandit::{
    policies::{CsUcb, DiscountedCsUcb, EpsilonGreedy, IndexPolicy, Llr, Oracle, Random},
    thompson::GaussianThompson,
};
use mhca_channels::ChannelModelSpec;
use mhca_graph::TopologySpec;
use mhca_sim::LossSpec;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Policy specs — declarative learning-policy construction.
// ---------------------------------------------------------------------------

/// Declarative learning-policy choice for spec-driven experiments: a
/// `(spec, network)` pair fully determines the policy instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// The paper's CS-UCB index (Algorithm 2) with exploration weight `l`.
    CsUcb {
        /// Exploration weight `l` of Eq. (3).
        l: f64,
    },
    /// The LLR baseline the paper compares against.
    Llr {
        /// Exploration weight.
        l: f64,
    },
    /// Gaussian Thompson sampling.
    Thompson {
        /// Observation-noise standard deviation (unit-reward scale).
        sigma: f64,
    },
    /// Discount-weighted CS-UCB for drifting channels.
    DiscountedCsUcb {
        /// Per-slot discount factor `γ ∈ (0, 1]`.
        gamma: f64,
    },
    /// ε-greedy over the empirical means.
    EpsilonGreedy {
        /// Exploration probability.
        eps: f64,
    },
    /// Uniformly random indices (the no-learning floor).
    Random,
    /// True-mean oracle (the no-regret ceiling).
    Oracle,
}

impl PolicySpec {
    /// Instantiates the policy for a network.
    pub fn build(&self, net: &Network) -> Box<dyn IndexPolicy> {
        match *self {
            PolicySpec::CsUcb { l } => Box::new(CsUcb::new(l)),
            PolicySpec::Llr { l } => Box::new(Llr::new(net.n_nodes(), l)),
            PolicySpec::Thompson { sigma } => Box::new(GaussianThompson::new(sigma, 2.0)),
            PolicySpec::DiscountedCsUcb { gamma } => {
                Box::new(DiscountedCsUcb::new(net.n_vertices(), gamma, 2.0))
            }
            PolicySpec::EpsilonGreedy { eps } => Box::new(EpsilonGreedy::new(eps, 2.0)),
            PolicySpec::Random => Box::new(Random),
            PolicySpec::Oracle => Box::new(Oracle::new(net.channels().means())),
        }
    }

    /// Short kebab-case name for artifact paths and CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            PolicySpec::CsUcb { .. } => "cs-ucb",
            PolicySpec::Llr { .. } => "llr",
            PolicySpec::Thompson { .. } => "thompson",
            PolicySpec::DiscountedCsUcb { .. } => "discounted-cs-ucb",
            PolicySpec::EpsilonGreedy { .. } => "epsilon-greedy",
            PolicySpec::Random => "random",
            PolicySpec::Oracle => "oracle",
        }
    }
}

impl Default for PolicySpec {
    /// The paper's policy: CS-UCB with `l = 2`.
    fn default() -> Self {
        PolicySpec::CsUcb { l: 2.0 }
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 — convergence of Algorithm 3 over mini-rounds.
// ---------------------------------------------------------------------------

/// Configuration of the Fig. 6 experiment: summed weight of all output
/// independent sets as mini-rounds advance, for several `N×M` networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Config {
    /// `(N, M)` pairs; the paper uses `{50,100,200} × {5,10}`.
    pub sizes: Vec<(usize, usize)>,
    /// Topology family. The paper's density is unspecified; the default
    /// unit-disk degree `d = 3.5` reproduces its "converged after the 4th
    /// mini-round" observation (see DESIGN.md).
    pub topology: TopologySpec,
    /// Channel-model family (only the means matter here).
    pub channel: ChannelModelSpec,
    /// Control-channel loss injection (lossless by default).
    pub loss: LossSpec,
    /// Local MWIS radius (the paper uses `r = 2`).
    pub r: usize,
    /// Mini-rounds to plot (paper x-axis: 1..10).
    pub minirounds: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            sizes: vec![(50, 5), (100, 5), (200, 5), (50, 10), (100, 10), (200, 10)],
            topology: TopologySpec::UnitDisk { avg_degree: 3.5 },
            channel: ChannelModelSpec::default(),
            loss: LossSpec::lossless(),
            r: 2,
            minirounds: 10,
            seed: 61,
        }
    }
}

impl Fig6Config {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        Fig6Config {
            sizes: vec![(30, 3), (50, 5)],
            topology: TopologySpec::UnitDisk { avg_degree: 5.0 },
            r: 1,
            minirounds: 8,
            ..Fig6Config::default()
        }
    }
}

/// One line of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Series {
    /// Users `N`.
    pub n: usize,
    /// Channels `M`.
    pub m: usize,
    /// Cumulative winner weight (kbps) after mini-round `i+1`; padded with
    /// the final value once the protocol terminates.
    pub weight_by_miniround: Vec<f64>,
    /// Mini-round after which every vertex was marked.
    pub converged_at: usize,
}

// ---------------------------------------------------------------------------
// Fig. 7 — practical regret and β-regret vs LLR on a 15×3 network.
// ---------------------------------------------------------------------------

/// Configuration of the Fig. 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Config {
    /// Users (paper: 15).
    pub n: usize,
    /// Channels (paper: 3).
    pub m: usize,
    /// Topology family (paper: a connected random network).
    pub topology: TopologySpec,
    /// Channel-model family (paper: truncated Gaussians, `σ = 0.1µ`).
    pub channel: ChannelModelSpec,
    /// Control-channel loss injection (lossless by default).
    pub loss: LossSpec,
    /// Horizon in slots (paper: 1000).
    pub horizon: u64,
    /// Local MWIS radius (paper: 2).
    pub r: usize,
    /// Mini-round budget per decision.
    pub minirounds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            n: 15,
            m: 3,
            topology: TopologySpec::UnitDiskConnected { avg_degree: 4.0 },
            channel: ChannelModelSpec::default(),
            loss: LossSpec::lossless(),
            horizon: 1000,
            r: 2,
            minirounds: 4,
            seed: 71,
        }
    }
}

impl Fig7Config {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        Fig7Config {
            n: 8,
            m: 2,
            topology: TopologySpec::UnitDiskConnected { avg_degree: 3.0 },
            horizon: 120,
            r: 1,
            ..Fig7Config::default()
        }
    }
}

/// Per-policy regret series of Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Output {
    /// The exact optimum `R_1` in kbps (paper's instance: 7282.90).
    pub optimal_kbps: f64,
    /// β actually used for the β-regret target (`θ·α`).
    pub beta: f64,
    /// Run of the paper's policy (Algorithm 2 with CS-UCB).
    pub algorithm2: RunResult,
    /// Run of the LLR baseline (same oracle, same channels).
    pub llr: RunResult,
}

// ---------------------------------------------------------------------------
// Fig. 8 — throughput under periodic (stale-weight) updates.
// ---------------------------------------------------------------------------

/// Configuration of the Fig. 8 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Config {
    /// Users (paper: 100).
    pub n: usize,
    /// Channels (paper: 10).
    pub m: usize,
    /// Topology family. Same density calibration as Fig. 6: at unit-disk
    /// degree `d ≈ 3.5` the `D = 4` mini-round budget resolves ≥ 97% of
    /// the weight, matching the paper's converged-by-4 observation;
    /// denser networks starve the budget and distort the comparison.
    pub topology: TopologySpec,
    /// Channel-model family.
    pub channel: ChannelModelSpec,
    /// Control-channel loss injection (lossless by default).
    pub loss: LossSpec,
    /// Update periods `y` (paper: 1, 5, 10, 20).
    pub update_periods: Vec<usize>,
    /// Weight updates per run (paper: 1000 ⇒ horizons `y·1000`).
    pub updates_per_run: u64,
    /// Local MWIS radius.
    pub r: usize,
    /// Mini-round budget per decision.
    pub minirounds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            n: 100,
            m: 10,
            topology: TopologySpec::UnitDisk { avg_degree: 3.5 },
            channel: ChannelModelSpec::default(),
            loss: LossSpec::lossless(),
            update_periods: vec![1, 5, 10, 20],
            updates_per_run: 1000,
            r: 2,
            minirounds: 4,
            seed: 81,
        }
    }
}

impl Fig8Config {
    /// Scaled-down variant for tests and default bench runs.
    pub fn quick() -> Self {
        Fig8Config {
            n: 30,
            m: 4,
            topology: TopologySpec::UnitDisk { avg_degree: 4.0 },
            update_periods: vec![1, 5],
            updates_per_run: 60,
            r: 1,
            ..Fig8Config::default()
        }
    }
}

/// One subplot of Fig. 8 (one update period `y`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Run {
    /// Update period `y`.
    pub y: usize,
    /// Horizon in slots (`y · updates_per_run`).
    pub horizon: u64,
    /// Algorithm 2 (CS-UCB) run: estimated vs actual series inside.
    pub algorithm2: RunResult,
    /// LLR run on the same network and channel realizations.
    pub llr: RunResult,
}

// ---------------------------------------------------------------------------
// Fig. 5 — linear-network worst case for the strategy decision.
// ---------------------------------------------------------------------------

/// One point of the worst-case demonstration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCasePoint {
    /// Line length `N`.
    pub n: usize,
    /// Mini-rounds Algorithm 3 needed to mark every vertex.
    pub minirounds_used: usize,
}

/// Configuration of the Fig. 5 worst-case experiment. The workload is
/// deterministic (a line with strictly decreasing weights), so there is no
/// seed or channel model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Line lengths `N` to measure.
    pub ns: Vec<usize>,
    /// Local MWIS radius.
    pub r: usize,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            ns: vec![10, 20, 40, 80, 160, 320],
            r: 1,
        }
    }
}

impl Fig5Config {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        Fig5Config {
            ns: vec![10, 20, 40],
            r: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Section IV-C — measured communication/space complexity.
// ---------------------------------------------------------------------------

/// One measured complexity point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexityPoint {
    /// Users `N`.
    pub n: usize,
    /// Channels `M`.
    pub m: usize,
    /// Radius `r`.
    pub r: usize,
    /// Mini-rounds executed.
    pub minirounds: usize,
    /// Mean relay broadcasts per vertex for the decision.
    pub mean_tx_per_vertex: f64,
    /// Max relay broadcasts charged to one vertex.
    pub max_tx_per_vertex: u64,
    /// Pipelined mini-timeslots for the decision.
    pub timeslots: u64,
    /// Mean `(2r+1)`-ball size — the per-vertex storage `O(m)` claim.
    pub mean_ball_size: f64,
    /// Candidate ball evaluations the decide phase performed — near one
    /// full sweep on the incremental dirty-ball path, one sweep per
    /// mini-round on the full-rescan reference.
    pub candidates_scanned: u64,
}

/// Configuration of the Section IV-C complexity measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplexityConfig {
    /// Network sizes `N`.
    pub ns: Vec<usize>,
    /// Channels `M`.
    pub m: usize,
    /// Radii to measure.
    pub rs: Vec<usize>,
    /// Topology family.
    pub topology: TopologySpec,
    /// Channel-model family (only the means matter here).
    pub channel: ChannelModelSpec,
    /// Mini-round budget per decision.
    pub minirounds: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for ComplexityConfig {
    fn default() -> Self {
        ComplexityConfig {
            ns: vec![25, 50, 100, 200],
            m: 5,
            rs: vec![1, 2],
            topology: TopologySpec::UnitDisk { avg_degree: 5.0 },
            channel: ChannelModelSpec::default(),
            minirounds: 4,
            seed: 91,
        }
    }
}

impl ComplexityConfig {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        ComplexityConfig {
            ns: vec![20, 60],
            m: 3,
            rs: vec![1],
            topology: TopologySpec::UnitDisk { avg_degree: 4.0 },
            seed: 5,
            ..ComplexityConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Theorem 3 — distributed vs centralized approximation quality.
// ---------------------------------------------------------------------------

/// One instance of the Theorem 3 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Theorem3Point {
    /// Seed of the instance.
    pub seed: u64,
    /// Exact optimum (branch-and-bound).
    pub optimal: f64,
    /// Centralized robust PTAS weight (ε = 0.5, unbounded radius).
    pub centralized: f64,
    /// Distributed Algorithm 3 weight, run to completion, exact local
    /// solving.
    pub distributed: f64,
    /// Distributed weight under the constant budget `D = 4`.
    pub distributed_capped: f64,
}

/// Configuration of the Theorem 3 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Theorem3Config {
    /// Users `N` (small enough for exact branch-and-bound).
    pub n: usize,
    /// Channels `M`.
    pub m: usize,
    /// Topology family.
    pub topology: TopologySpec,
    /// Channel-model family (only the means matter here).
    pub channel: ChannelModelSpec,
    /// First instance seed.
    pub seed: u64,
    /// Number of instances (`seed..seed + instances`).
    pub instances: u64,
}

impl Default for Theorem3Config {
    fn default() -> Self {
        Theorem3Config {
            n: 15,
            m: 3,
            topology: TopologySpec::UnitDisk { avg_degree: 3.5 },
            channel: ChannelModelSpec::default(),
            seed: 0,
            instances: 10,
        }
    }
}

impl Theorem3Config {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        Theorem3Config {
            n: 12,
            m: 2,
            topology: TopologySpec::UnitDisk { avg_degree: 3.0 },
            instances: 4,
            ..Theorem3Config::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Table II — the time model as data.
// ---------------------------------------------------------------------------

/// Table II rendered as data, with the derived quantities Section V uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// The timing parameters.
    pub time: TimeModel,
    /// Derived mini-round length `t_m`.
    pub miniround_ms: f64,
    /// Derived decision budget in mini-rounds.
    pub minirounds_per_decision: usize,
    /// Derived airtime fraction θ.
    pub theta: f64,
}

// ---------------------------------------------------------------------------
// Generic spec-driven policy run — the campaign cross-product workload.
// ---------------------------------------------------------------------------

/// A fully declarative Algorithm 2 run: topology × channel model × policy
/// × `(N, M)` × horizon × update period × loss, all from one seed. This is
/// the cross-product axis experiment campaigns sweep; the per-figure
/// configs above are fixed points of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRunConfig {
    /// Users `N`.
    pub n: usize,
    /// Channels `M`.
    pub m: usize,
    /// Topology family.
    pub topology: TopologySpec,
    /// Channel-model family.
    pub channel: ChannelModelSpec,
    /// Learning policy.
    pub policy: PolicySpec,
    /// Control-channel loss injection.
    pub loss: LossSpec,
    /// Horizon in slots.
    pub horizon: u64,
    /// Update period `y` (1 = decide every slot).
    pub update_period: usize,
    /// Local MWIS radius.
    pub r: usize,
    /// Mini-round budget per decision.
    pub minirounds: usize,
    /// Core+halo tiles of the lossless decide phase
    /// ([`crate::DistributedPtasConfig::partitions`]; `<= 1` = serial,
    /// byte-identical outcomes either way).
    pub partitions: usize,
    /// Optional traffic workload: arrival process × flows × deadlines,
    /// served from the channel-access outcome by the per-vertex queue
    /// engine ([`crate::QueueEngine`]). `None` (the default) leaves the
    /// run byte-identical to a pre-traffic-layer run.
    pub traffic: Option<crate::TrafficSpec>,
    /// Seed.
    pub seed: u64,
}

impl Default for PolicyRunConfig {
    fn default() -> Self {
        PolicyRunConfig {
            n: 15,
            m: 3,
            topology: TopologySpec::UnitDisk { avg_degree: 3.5 },
            channel: ChannelModelSpec::default(),
            policy: PolicySpec::default(),
            loss: LossSpec::lossless(),
            horizon: 500,
            update_period: 1,
            r: 2,
            minirounds: 4,
            partitions: 1,
            traffic: None,
            seed: 0,
        }
    }
}

impl PolicyRunConfig {
    /// Scaled-down variant for tests.
    pub fn quick() -> Self {
        PolicyRunConfig {
            n: 8,
            m: 2,
            horizon: 100,
            r: 1,
            ..PolicyRunConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{
        run_experiment, ComplexityExperiment, ExperimentData, Fig5Experiment, Fig6Experiment,
        Fig7Experiment, Fig8Experiment, ObserverSet, PolicyRunExperiment, Table2Experiment,
        Theorem3Experiment,
    };

    /// Engine shorthand: run an experiment observer-free at one seed and
    /// return its typed payload.
    fn run(exp: &dyn crate::experiment::Experiment, seed: u64) -> ExperimentData {
        run_experiment(exp, seed, ObserverSet::new()).data
    }

    fn fig6(cfg: &Fig6Config) -> Vec<Fig6Series> {
        match run(&Fig6Experiment(cfg.clone()), cfg.seed) {
            ExperimentData::Fig6 { series, .. } => series,
            other => panic!("wrong data variant {other:?}"),
        }
    }

    fn policy_run(cfg: &PolicyRunConfig) -> RunResult {
        match run(&PolicyRunExperiment(cfg.clone()), cfg.seed) {
            ExperimentData::PolicyRun { run, .. } => run,
            other => panic!("wrong data variant {other:?}"),
        }
    }

    #[test]
    fn fig6_quick_series_shape() {
        let cfg = Fig6Config::quick();
        let series = fig6(&cfg);
        assert_eq!(series.len(), cfg.sizes.len());
        for s in &series {
            assert_eq!(s.weight_by_miniround.len(), cfg.minirounds);
            // Cumulative weight never decreases.
            for w in s.weight_by_miniround.windows(2) {
                assert!(w[1] >= w[0] - 1e-9);
            }
            assert!(*s.weight_by_miniround.last().unwrap() > 0.0);
        }
    }

    #[test]
    fn fig7_quick_shows_negative_beta_regret() {
        let cfg = Fig7Config::quick();
        let ExperimentData::Fig7(out) = run(&Fig7Experiment(cfg.clone()), cfg.seed) else {
            panic!("wrong data variant");
        };
        assert!(out.optimal_kbps > 0.0);
        // β-regret converges negative (Fig. 7(b)): the achieved effective
        // throughput beats the 1/β target.
        let last = *out.algorithm2.practical_beta_regret.last().unwrap();
        assert!(last < 0.0, "beta regret should go negative, got {last}");
        // Practical regret decreases over the run (learning).
        let pr = &out.algorithm2.practical_regret;
        assert!(pr.last().unwrap() < &pr[2]);
    }

    #[test]
    fn fig8_quick_stale_updates_improve_throughput() {
        let cfg = Fig8Config::quick();
        let ExperimentData::Fig8(runs) = run(&Fig8Experiment(cfg.clone()), cfg.seed) else {
            panic!("wrong data variant");
        };
        assert_eq!(runs.len(), 2);
        let y1 = &runs[0];
        let y5 = &runs[1];
        assert_eq!(y1.y, 1);
        assert_eq!(y5.y, 5);
        let final_y1 = *y1.algorithm2.avg_actual_throughput.last().unwrap();
        let final_y5 = *y5.algorithm2.avg_actual_throughput.last().unwrap();
        assert!(
            final_y5 > final_y1,
            "y=5 effective {final_y5} should beat y=1 {final_y1}"
        );
    }

    #[test]
    fn fig5_worstcase_grows_linearly() {
        let exp = Fig5Experiment(Fig5Config {
            ns: vec![10, 20, 40],
            r: 1,
        });
        let ExperimentData::Fig5(points) = run(&exp, 0) else {
            panic!("wrong data variant");
        };
        assert!(points[1].minirounds_used > points[0].minirounds_used);
        assert!(points[2].minirounds_used > points[1].minirounds_used);
        // Roughly linear: doubling N should not leave mini-rounds flat.
        assert!(points[2].minirounds_used as f64 >= 1.5 * points[1].minirounds_used as f64);
    }

    #[test]
    fn complexity_is_size_independent_per_vertex() {
        let cfg = ComplexityConfig::quick();
        let ExperimentData::Complexity(pts) = run(&ComplexityExperiment(cfg.clone()), cfg.seed)
        else {
            panic!("wrong data variant");
        };
        assert_eq!(pts.len(), 2);
        // The per-vertex message count must not scale with N (the paper's
        // O(r²+D) claim) — allow a generous factor for randomness.
        let small = pts[0].mean_tx_per_vertex.max(1e-9);
        let large = pts[1].mean_tx_per_vertex;
        assert!(
            large < 3.0 * small,
            "per-vertex tx grew with N: {small} -> {large}"
        );
    }

    #[test]
    fn theorem3_ratios_are_sane() {
        let cfg = Theorem3Config::quick();
        let ExperimentData::Theorem3(pts) = run(&Theorem3Experiment(cfg.clone()), cfg.seed) else {
            panic!("wrong data variant");
        };
        assert_eq!(pts.len(), cfg.instances as usize);
        for p in &pts {
            assert!(p.optimal >= p.centralized - 1e-9);
            assert!(p.optimal >= p.distributed - 1e-9);
            assert!(p.distributed_capped <= p.distributed + 1e-9);
            // Both approximations stay within a factor 2 of optimal on
            // these easy geometric instances.
            assert!(p.centralized * 2.0 >= p.optimal);
            assert!(p.distributed * 2.0 >= p.optimal);
        }
    }

    #[test]
    fn policy_run_spec_is_reproducible_and_learns() {
        let cfg = PolicyRunConfig::quick();
        let a = policy_run(&cfg);
        let b = policy_run(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.policy, "cs-ucb");
        assert_eq!(a.slots, cfg.horizon);
        let random = policy_run(&PolicyRunConfig {
            policy: PolicySpec::Random,
            horizon: 300,
            ..PolicyRunConfig::quick()
        });
        let learned = policy_run(&PolicyRunConfig {
            horizon: 300,
            ..PolicyRunConfig::quick()
        });
        assert!(learned.average_expected_kbps > random.average_expected_kbps);
    }

    #[test]
    fn policy_specs_build_the_named_policies() {
        let net = Network::random(6, 2, 2.5, 0.1, 3);
        for (spec, name) in [
            (PolicySpec::CsUcb { l: 2.0 }, "cs-ucb"),
            (PolicySpec::Llr { l: 2.0 }, "llr"),
            (PolicySpec::Random, "random"),
            (PolicySpec::Oracle, "oracle"),
        ] {
            assert_eq!(spec.build(&net).name(), name);
            assert_eq!(spec.label(), name);
        }
    }

    #[test]
    fn lossy_fig6_still_produces_series() {
        let cfg = Fig6Config {
            loss: LossSpec::lossy(0.15, 7),
            ..Fig6Config::quick()
        };
        let series = fig6(&cfg);
        assert_eq!(series.len(), cfg.sizes.len());
        for s in &series {
            assert!(*s.weight_by_miniround.last().unwrap() > 0.0);
        }
    }

    #[test]
    fn table2_matches_paper() {
        let ExperimentData::Table2(t) = run(&Table2Experiment, 0) else {
            panic!("wrong data variant");
        };
        assert_eq!(t.theta, 0.5);
        assert_eq!(t.miniround_ms, 250.0);
        assert_eq!(t.minirounds_per_decision, 4);
    }
}
