//! `mhca-core` — the paper's contribution, assembled.
//!
//! This crate implements the full channel-access scheme of *"Almost Optimal
//! Channel Access in Multi-Hop Networks With Unknown Channel Variables"*
//! (Zhou et al., ICDCS 2014) on top of the workspace substrates:
//!
//! * [`Network`] — a conflict graph `G`, its extended conflict graph `H`,
//!   and the `N×M` stochastic channel matrix, built from one seed.
//! * [`distributed`] — **Algorithm 3**: the distributed robust PTAS for
//!   strategy decision (Candidate/LocalLeader/Winner/Loser state machine,
//!   `D` mini-rounds, hop-limited floods on the simulated control channel).
//! * [`runner`] — **Algorithm 2**: the round loop (weight broadcast →
//!   strategy decision → data transmission → estimate update), with the
//!   periodic stale-weight variant of Section V-C.
//! * [`time`] — the Table II time model and the airtime fraction
//!   `θ = t_d/t_a`.
//! * [`experiment`] — the **unified experiment surface**: one
//!   [`Experiment`] trait driven by one engine ([`run_experiment`]),
//!   with a streaming [`RoundObserver`] pipeline that turns new
//!   metrics into composable observers instead of new result fields.
//! * [`experiments`] — the experiment configurations and output records
//!   for every figure of the paper's evaluation (Fig. 5 worst case,
//!   Fig. 6 convergence, Fig. 7 regret, Fig. 8 periodic updates, plus the
//!   complexity claims of Section IV-C); its free functions are
//!   deprecated shims over the [`experiment`] engine.
//!
//! # Quickstart
//!
//! ```
//! use mhca_core::{Network, runner::{Algorithm2Config, run_policy}};
//! use mhca_bandit::policies::CsUcb;
//!
//! // Small random network: 8 users, 3 channels, average degree ~3.
//! let net = Network::random(8, 3, 3.0, 0.1, 7);
//! let cfg = Algorithm2Config::default().with_horizon(50);
//! let result = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
//! assert_eq!(result.slots, 50);
//! assert!(result.average_observed_kbps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod distributed;
pub mod experiment;
pub mod experiments;
pub mod network;
pub mod runner;
pub mod stats;
pub mod sweep;
pub mod time;
pub mod traffic;

pub use distributed::{
    DecidePhaseNs, DecideScanStats, DecisionOutcome, DistributedPtas, DistributedPtasConfig,
    LocalSolver,
};
pub use experiment::{
    run_experiment, Experiment, ExperimentCtx, ExperimentData, ExperimentOutput, MetricTable,
    ObserverKind, ObserverSet, RoundObserver, RoundRecord, ScenarioShape, TelemetryObserver,
};
pub use experiments::{PolicyRunConfig, PolicySpec};
pub use network::Network;
pub use runner::{run_policy_observed, Algorithm2Config, PolicyRunner, RunResult};
pub use time::TimeModel;
pub use traffic::{ArrivalProcess, FlowSpec, QueueEngine, TrafficSpec, TrafficSummary};
