//! The simulated multi-hop cognitive-radio network: `G`, `H`, and channels.

use mhca_channels::{ChannelMatrix, ChannelModelSpec};
use mhca_graph::{unit_disk, ExtendedConflictGraph, Graph, Layout, Strategy, TopologySpec};
use mhca_mwis::{exact, WeightedSet};

/// A complete network instance: conflict graph `G` on `N` users, extended
/// conflict graph `H`, and the `N×M` channel matrix with unknown (to the
/// learner) means.
///
/// # Example
///
/// ```
/// use mhca_core::Network;
///
/// let net = Network::random(10, 4, 3.0, 0.1, 1);
/// assert_eq!(net.n_nodes(), 10);
/// assert_eq!(net.n_channels(), 4);
/// assert_eq!(net.h().n_vertices(), 40);
/// let opt = net.optimal();
/// assert!(opt.weight > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    g: Graph,
    h: ExtendedConflictGraph,
    channels: ChannelMatrix,
    layout: Option<Layout>,
    node_groups: Vec<usize>,
}

impl Network {
    /// Builds a network from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if the channel matrix dimensions do not match `g` and `m`.
    pub fn from_parts(g: Graph, channels: ChannelMatrix, layout: Option<Layout>) -> Self {
        assert_eq!(channels.n_nodes(), g.n(), "channel matrix nodes");
        let m = channels.n_channels();
        let h = ExtendedConflictGraph::new(&g, m);
        let node_groups = (0..h.n_vertices()).map(|v| v / m).collect();
        Network {
            g,
            h,
            channels,
            layout,
            node_groups,
        }
    }

    /// Random unit-disk network with `n` users, `m` channels, target
    /// average degree `avg_degree`, truncated-Gaussian channels with
    /// `sigma = sigma_frac · mean` drawn from the paper's rate classes.
    /// Everything is determined by `seed`.
    pub fn random(n: usize, m: usize, avg_degree: f64, sigma_frac: f64, seed: u64) -> Self {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, layout) = unit_disk::random_with_average_degree(n, avg_degree, &mut rng);
        let channels = ChannelMatrix::gaussian_from_rate_classes(n, m, sigma_frac, seed);
        Network::from_parts(g, channels, Some(layout))
    }

    /// Like [`Network::random`] but retries until the conflict graph is
    /// connected (the Fig. 7 workload: "a randomly generated connected
    /// network").
    ///
    /// # Panics
    ///
    /// Panics if no connected instance is found in 1000 tries.
    pub fn random_connected(
        n: usize,
        m: usize,
        avg_degree: f64,
        sigma_frac: f64,
        seed: u64,
    ) -> Self {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, layout) =
            unit_disk::random_connected_with_average_degree(n, avg_degree, 1000, &mut rng)
                .expect("no connected instance found in 1000 tries");
        let channels = ChannelMatrix::gaussian_from_rate_classes(n, m, sigma_frac, seed);
        Network::from_parts(g, channels, Some(layout))
    }

    /// Spec-driven construction: builds the conflict graph from a
    /// [`TopologySpec`] and the channel matrix from a [`ChannelModelSpec`],
    /// both derived from the same seed. With the default specs
    /// (`UnitDisk` + `GaussianRateClasses`) this reproduces
    /// [`Network::random`] bit-for-bit, so registry scenarios and the
    /// historical harnesses agree on every instance.
    ///
    /// # Panics
    ///
    /// Propagates the spec constructors' panics (see
    /// [`TopologySpec::build`] and [`ChannelModelSpec::build`]).
    pub fn from_spec(
        n: usize,
        m: usize,
        topology: &TopologySpec,
        channel: &ChannelModelSpec,
        seed: u64,
    ) -> Self {
        let (g, layout) = topology.build(n, seed);
        let channels = channel.build(n, m, seed);
        Network::from_parts(g, channels, layout)
    }

    /// Number of users `N`.
    pub fn n_nodes(&self) -> usize {
        self.g.n()
    }

    /// Number of channels `M`.
    pub fn n_channels(&self) -> usize {
        self.channels.n_channels()
    }

    /// Number of arms `K = N·M`.
    pub fn n_vertices(&self) -> usize {
        self.h.n_vertices()
    }

    /// The original conflict graph `G`.
    pub fn g(&self) -> &Graph {
        &self.g
    }

    /// The extended conflict graph `H`.
    pub fn h(&self) -> &ExtendedConflictGraph {
        &self.h
    }

    /// The channel matrix.
    pub fn channels(&self) -> &ChannelMatrix {
        &self.channels
    }

    /// Node placement, when the network was geometrically generated.
    pub fn layout(&self) -> Option<&Layout> {
        self.layout.as_ref()
    }

    /// Master-node labels for the grouped MWIS solvers
    /// (`group_of[vertex] = vertex / M`).
    pub fn node_groups(&self) -> &[usize] {
        &self.node_groups
    }

    /// The static optimum: exact MWIS of `H` under the true means —
    /// `R_1` of Eq. (2), computed by branch-and-bound (the paper's
    /// brute-force optimum for the Fig. 7 instance).
    ///
    /// Worst-case exponential; intended for instances up to roughly
    /// 20 users × a few channels.
    pub fn optimal(&self) -> WeightedSet {
        let means = self.channels.means();
        let allowed: Vec<usize> = (0..self.h.n_vertices()).collect();
        exact::solve_grouped(self.h.graph(), &means, &allowed, &self.node_groups)
    }

    /// Converts a vertex set of `H` into a [`Strategy`].
    ///
    /// # Panics
    ///
    /// Panics if the set is not independent in `H`.
    pub fn strategy_from_is(&self, is_: &[usize]) -> Strategy {
        self.h.strategy_from_is(is_)
    }

    /// Expected (true-mean) throughput of a vertex set, in kbps.
    pub fn expected_throughput(&self, is_: &[usize]) -> f64 {
        is_.iter().map(|&v| self.channels.mean(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_channels::process::Constant;
    use mhca_channels::ChannelProcess;
    use mhca_graph::topology;

    fn constant_net(g: Graph, m: usize, rates: &[f64]) -> Network {
        let procs: Vec<Box<dyn ChannelProcess>> = rates
            .iter()
            .map(|&r| Box::new(Constant::new(r)) as Box<dyn ChannelProcess>)
            .collect();
        let channels = ChannelMatrix::from_processes(g.n(), m, procs, 0);
        Network::from_parts(g, channels, None)
    }

    #[test]
    fn random_network_is_reproducible() {
        let a = Network::random(12, 3, 3.0, 0.1, 5);
        let b = Network::random(12, 3, 3.0, 0.1, 5);
        assert_eq!(a.g(), b.g());
        assert_eq!(a.channels().means(), b.channels().means());
    }

    #[test]
    fn from_spec_defaults_match_random() {
        let legacy = Network::random(12, 3, 3.0, 0.1, 5);
        let spec = Network::from_spec(
            12,
            3,
            &TopologySpec::UnitDisk { avg_degree: 3.0 },
            &ChannelModelSpec::GaussianRateClasses { sigma_frac: 0.1 },
            5,
        );
        assert_eq!(legacy.g(), spec.g());
        assert_eq!(legacy.channels().means(), spec.channels().means());
        for v in 0..legacy.n_vertices() {
            assert_eq!(legacy.channels().value(9, v), spec.channels().value(9, v));
        }

        let legacy = Network::random_connected(15, 3, 4.0, 0.1, 2);
        let spec = Network::from_spec(
            15,
            3,
            &TopologySpec::UnitDiskConnected { avg_degree: 4.0 },
            &ChannelModelSpec::GaussianRateClasses { sigma_frac: 0.1 },
            2,
        );
        assert_eq!(legacy.g(), spec.g());
        assert_eq!(legacy.channels().means(), spec.channels().means());
    }

    #[test]
    fn from_spec_deterministic_topologies() {
        let net = Network::from_spec(
            6,
            2,
            &TopologySpec::Line,
            &ChannelModelSpec::ConstantRateClasses,
            0,
        );
        assert_eq!(net.g(), &topology::line(6));
        assert!(net.layout().is_none());
    }

    #[test]
    fn connected_network_is_connected() {
        let net = Network::random_connected(15, 3, 4.0, 0.1, 2);
        assert!(net.g().is_connected());
    }

    #[test]
    fn optimal_on_two_conflicting_nodes() {
        // G: 0—1 with 2 channels. Rates: node0 = [5, 1], node1 = [4, 3].
        // Best: node0→c0 (5), node1→c1 (3) = 8.
        let net = constant_net(topology::line(2), 2, &[5.0, 1.0, 4.0, 3.0]);
        let opt = net.optimal();
        assert_eq!(opt.weight, 8.0);
        let s = net.strategy_from_is(&opt.vertices);
        assert_eq!(s.assigned_count(), 2);
    }

    #[test]
    fn optimal_respects_conflicts() {
        // Single channel, two conflicting nodes: only one can transmit.
        let net = constant_net(topology::line(2), 1, &[5.0, 4.0]);
        let opt = net.optimal();
        assert_eq!(opt.weight, 5.0);
        assert_eq!(opt.vertices, vec![0]);
    }

    #[test]
    fn node_groups_label_masters() {
        let net = constant_net(topology::line(3), 2, &[1.0; 6]);
        assert_eq!(net.node_groups(), &[0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn expected_throughput_sums_means() {
        let net = constant_net(topology::independent(2), 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(net.expected_throughput(&[1, 2]), 5.0);
    }
}
