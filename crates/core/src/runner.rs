//! Algorithm 2 — the main round loop of the channel-access scheme.
//!
//! Each round: the previous round's transmitters broadcast their updated
//! estimates within `(2r+1)` hops (WB phase), every vertex recomputes the
//! learning indices (Eq. (3) — only `(µ̃_k, m_k)` need to travel; the index
//! is a public formula of them and `t`), the distributed robust PTAS picks
//! a strategy (Algorithm 3), the winners transmit and observe realized
//! rates, and the estimates update via Eqs. (5)–(6).
//!
//! The runner also implements the **periodic update** variant of
//! Section V-C: strategy decision only every `y` slots, with the
//! first slot of a period paying the decision airtime (`t_d` of `t_a`) and
//! the remaining `y−1` slots transmitting the full round.
//!
//! The loop lives in [`PolicyRunner`], a *resumable* runner that advances
//! one decision period per [`PolicyRunner::step_period`] call and can
//! serialize its complete mutable state between periods
//! ([`PolicyRunner::snapshot`] / [`PolicyRunner::restore`]) — the
//! round-granularity checkpointing behind `mhca-campaign serve`. The
//! batch entry points [`run_policy`] / [`run_policy_observed`] are thin
//! wrappers (construct, step to the horizon, finish), so batch behavior —
//! including the allocation-free steady state pinned by
//! `tests/alloc_free.rs` — is the stepwise loop's behavior.

use crate::{
    distributed::{DecisionOutcome, DistributedPtas, DistributedPtasConfig},
    experiment::{ObserverSet, RoundRecord},
    network::Network,
    time::TimeModel,
    traffic::{QueueEngine, TrafficSpec, TrafficSummary},
};
use mhca_bandit::{
    bounds,
    policies::IndexPolicy,
    state::{StateError, StateMap},
    ArmStats, RegretTracker,
};
use mhca_channels::rates;
use mhca_sim::{Counters, Flood, FloodEngine};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Aggregate communication cost across a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommTotals {
    /// Total relay broadcasts (WB + LD + LB phases).
    pub transmissions: u64,
    /// Total message copies delivered.
    pub delivered: u64,
    /// Total pipelined mini-timeslots.
    pub timeslots: u64,
    /// Strategy decisions executed.
    pub decisions: u64,
}

/// Configuration of an Algorithm 2 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Algorithm2Config {
    /// Horizon in time slots (`n`).
    pub horizon: u64,
    /// Update period `y` (Section V-C); `1` = decide every slot.
    pub update_period: usize,
    /// Strategy-decision (Algorithm 3) parameters.
    pub decision: DistributedPtasConfig,
    /// Round timing (Table II).
    pub time: TimeModel,
    /// RNG seed for policy randomness.
    pub seed: u64,
    /// Observation normalization: rewards are divided by this before
    /// entering the policy (`None` = the paper's maximum rate class,
    /// 1350 kbps).
    pub reward_scale: Option<f64>,
    /// Known optimum `R_1` in kbps; enables the regret series
    /// (exponential to compute, so caller-supplied).
    pub optimal_kbps: Option<f64>,
    /// Approximation factor `α` for the β-regret target `R_1/(θ·α)`;
    /// `None` = the Theorem 2 value `(M·(2r+1)²)^{1/r}`.
    pub alpha: Option<f64>,
    /// Optional traffic workload: arrival processes feeding per-vertex
    /// FIFO queues served from the capture outcome (see
    /// [`crate::traffic`]). `None` (the default) runs the saturation
    /// workload with zero queueing overhead — the observer-free path is
    /// pinned byte-identical and allocation-free either way.
    pub traffic: Option<TrafficSpec>,
}

impl Default for Algorithm2Config {
    fn default() -> Self {
        Algorithm2Config {
            horizon: 1000,
            update_period: 1,
            decision: DistributedPtasConfig::default(),
            time: TimeModel::default(),
            seed: 0,
            reward_scale: None,
            optimal_kbps: None,
            alpha: None,
            traffic: None,
        }
    }
}

impl Algorithm2Config {
    /// Builder-style horizon override.
    pub fn with_horizon(mut self, n: u64) -> Self {
        self.horizon = n;
        self
    }

    /// Builder-style update-period override.
    pub fn with_update_period(mut self, y: usize) -> Self {
        assert!(y > 0, "update period must be positive");
        self.update_period = y;
        self
    }

    /// Builder-style decision-config override.
    pub fn with_decision(mut self, d: DistributedPtasConfig) -> Self {
        self.decision = d;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style optimum (enables regret series).
    pub fn with_optimal_kbps(mut self, r1: f64) -> Self {
        self.optimal_kbps = Some(r1);
        self
    }

    /// Builder-style traffic workload (enables the queueing layer).
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = Some(traffic);
        self
    }
}

/// Output of one Algorithm 2 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Policy name.
    pub policy: String,
    /// Slots simulated.
    pub slots: u64,
    /// Slot index at the end of each period (x-axis of the series below).
    pub period_end_slots: Vec<u64>,
    /// Running average of *actual effective* throughput `R̃_P(z)` in kbps
    /// (Section V-C) — the solid lines of Fig. 8.
    pub avg_actual_throughput: Vec<f64>,
    /// Running average of *estimated effective* throughput `W̃_P(z)` in
    /// kbps — the estimated lines of Fig. 8.
    pub avg_estimated_throughput: Vec<f64>,
    /// Per-slot practical regret `R_1 − θ·(avg observed)` (Fig. 7(a));
    /// empty unless `optimal_kbps` was supplied and `update_period == 1`.
    pub practical_regret: Vec<f64>,
    /// Per-slot practical β-regret `R_1/(θα) − θ·(avg observed)`
    /// (Fig. 7(b)); empty unless `optimal_kbps` was supplied and
    /// `update_period == 1`.
    pub practical_beta_regret: Vec<f64>,
    /// Winners of the final strategy decision.
    pub final_strategy_vertices: Vec<usize>,
    /// Relay broadcasts charged to each vertex across the whole run (WB
    /// phase plus strategy-decision floods) — the measurable counterpart
    /// of the paper's per-vertex `O(r² + D)` communication claim. Earlier
    /// revisions rebuilt the WB flood engine every round and threw this
    /// away, keeping only scalar totals.
    pub per_vertex_tx: Vec<u64>,
    /// Mean raw observed throughput per slot (kbps).
    pub average_observed_kbps: f64,
    /// Mean *effective* (airtime-scaled) throughput per slot (kbps).
    pub average_effective_kbps: f64,
    /// Mean expected (true-mean) throughput of the played strategies (kbps).
    pub average_expected_kbps: f64,
    /// The β-regret target factor actually used (`β = θ·α`, clamped ≥ 1).
    pub beta: f64,
    /// Communication totals across the run.
    pub comm: CommTotals,
    /// The seed the run used (for reproducibility records).
    pub seed: u64,
    /// Traffic totals (per-flow deliveries, deadlines met, standing
    /// backlog); `Some` iff the config carried a [`TrafficSpec`]. Every
    /// other field is unaffected by traffic — pinned by
    /// `traffic_leaves_the_untraced_run_byte_identical`.
    pub traffic: Option<TrafficSummary>,
}

/// Runs Algorithm 2 with the given learning policy on a network.
///
/// Equivalent to [`run_policy_observed`] with no observers registered —
/// the steady-state loop is identical (no clocks, no record emission).
///
/// # Panics
///
/// Panics if `cfg.horizon == 0` or `cfg.update_period == 0`.
pub fn run_policy(
    net: &Network,
    cfg: &Algorithm2Config,
    policy: &mut dyn IndexPolicy,
) -> RunResult {
    run_policy_observed(net, cfg, policy, &mut ObserverSet::new())
}

/// Runs Algorithm 2, streaming one [`RoundRecord`] per strategy decision
/// to the registered observers (see [`crate::experiment`]).
///
/// With an empty [`ObserverSet`] this adds no work to the steady-state
/// loop: the decide-phase clock and the record emission are skipped, so
/// the lossless path stays allocation-free (`tests/alloc_free.rs`).
///
/// # Panics
///
/// Panics if `cfg.horizon == 0` or `cfg.update_period == 0`.
pub fn run_policy_observed(
    net: &Network,
    cfg: &Algorithm2Config,
    policy: &mut dyn IndexPolicy,
    observers: &mut ObserverSet,
) -> RunResult {
    let mut runner = PolicyRunner::new(net, cfg, observers);
    while !runner.done() {
        runner.step_period(policy, observers);
    }
    runner.finish(policy)
}

/// Observer-only drift-oracle scratch: the exact offline optimum
/// (branch-and-bound MWIS, the same benchmark the paper's Fig. 7 regret
/// uses) on the channels' *instantaneous* means, recomputed only when the
/// mean vector changes.
struct OracleState {
    weights: Vec<f64>,
    prev_weights: Vec<f64>,
    allowed: Vec<usize>,
    cached_kbps: f64,
}

/// The Algorithm 2 round loop as a long-lived, resumable state machine.
///
/// One [`PolicyRunner::step_period`] call advances exactly one decision
/// period (WB phase, index computation, strategy decision, `y` data
/// slots, bookkeeping, observer emission). Between steps the runner is at
/// a period boundary, where its complete mutable state — round counter,
/// RNG stream position, shared arm statistics, regret history, result
/// series, communication counters, and the loss stream position — can be
/// captured with [`PolicyRunner::snapshot`] and later re-injected with
/// [`PolicyRunner::restore`] into a freshly built runner over the same
/// network/config. A restored run continues the original bit for bit:
/// the final [`RunResult`] is byte-identical to an uninterrupted run
/// (floats are checkpointed by bit pattern; see `mhca_bandit::state`).
///
/// The policy is *not* owned: callers pass it to each call so the same
/// trait object can serve snapshotting ([`IndexPolicy::snapshot_state`])
/// and session ownership in the service layer.
pub struct PolicyRunner<'n> {
    net: &'n Network,
    cfg: Algorithm2Config,
    scale: f64,
    beta: f64,
    y: u64,
    wb_ttl: usize,
    m_channels: usize,
    stats: ArmStats,
    ptas: DistributedPtas<'n>,
    rng: StdRng,
    means: Vec<f64>,
    tracker: Option<RegretTracker>,
    comm: CommTotals,
    per_vertex_tx: Vec<u64>,
    period_end_slots: Vec<u64>,
    avg_actual: Vec<f64>,
    avg_estimated: Vec<f64>,
    practical_regret: Vec<f64>,
    practical_beta_regret: Vec<f64>,
    sum_rp: f64,
    sum_wp: f64,
    n_periods: u64,
    observed_total: f64,
    expected_total: f64,
    effective_total: f64,
    wb_engine: FloodEngine<'n>,
    wb_floods: Vec<Flood<()>>,
    indices: Vec<f64>,
    outcome: DecisionOutcome,
    obs: Vec<(usize, f64)>,
    period_obs: Vec<f64>,
    prev_winners: Vec<usize>,
    observing: bool,
    tally_channels: bool,
    phase_timing: bool,
    chan_attempts: Vec<u64>,
    chan_captures: Vec<u64>,
    oracle: Option<OracleState>,
    /// Present iff the config carries a traffic spec — the queueing layer
    /// is gated exactly like the observer scratch, so the no-traffic
    /// path is untouched (byte-identical and allocation-free).
    queue: Option<QueueEngine>,
    t: u64,
}

impl<'n> PolicyRunner<'n> {
    /// Builds a runner at slot 0. `observers` is inspected (not stored)
    /// to decide which observer-only instrumentation the loop prices —
    /// pass the same set to every [`PolicyRunner::step_period`] call.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.horizon == 0`, `cfg.update_period == 0`, or the
    /// reward scale is not positive.
    pub fn new(net: &'n Network, cfg: &Algorithm2Config, observers: &ObserverSet) -> Self {
        assert!(cfg.horizon > 0, "horizon must be positive");
        assert!(cfg.update_period > 0, "update period must be positive");
        let k = net.n_vertices();
        let scale = cfg.reward_scale.unwrap_or(rates::MAX_RATE);
        assert!(scale > 0.0, "reward scale must be positive");
        let theta = cfg.time.theta();
        let alpha = cfg
            .alpha
            .unwrap_or_else(|| bounds::theorem2_rho(net.n_channels(), cfg.decision.r.max(1)));
        let beta = (theta * alpha).max(1.0);

        let stats = ArmStats::new(k);
        let mut ptas = DistributedPtas::new(net.h(), cfg.decision);
        let rng = StdRng::seed_from_u64(cfg.seed);
        let means = net.channels().means();
        let tracker = cfg
            .optimal_kbps
            .map(|r1| RegretTracker::new(r1, beta, theta));

        let y = cfg.update_period as u64;
        // Series lengths are known up front: one entry per period (and per
        // slot for the regret series) — reserve once so the steady-state
        // loop never reallocates them.
        let n_periods_total = cfg.horizon.div_ceil(y) as usize;
        let regret_len = if tracker.is_some() && cfg.update_period == 1 {
            cfg.horizon as usize
        } else {
            0
        };

        // ---- Long-lived engine and per-round scratch, hoisted out of the
        // loop: the steady-state round performs no heap allocation on the
        // lossless path (see `tests/alloc_free.rs`).
        let wb_ttl = 2 * cfg.decision.r + 1;
        let mut wb_engine = FloodEngine::new(net.h().graph());
        // The decision engine already prewarmed the (2r+1)-hop table on
        // this graph; adopt it instead of building a second copy. The
        // prewarm is a no-op then, and a real build only when the ptas
        // runs lossy.
        wb_engine.adopt_tables(ptas.flood_engine());
        wb_engine.prewarm(wb_ttl);

        // ---- Observer-only scratch (all empty/skipped with no observers,
        // so the plain `run_policy` path is untouched): per-channel
        // capture tallies for the CaptureStats sink, and the drift oracle
        // for sinks that request it (WindowedRegret). Like
        // `Network::optimal`, the oracle is intended for Fig. 7-sized
        // instances (≲ 20 users × a few channels).
        let observing = !observers.is_empty();
        let tally_channels = observers.wants_channel_stats();
        // Per-phase wall clocks (WB / learn, plus the PTAS's internal
        // decide breakdown) are priced only when a sink asks: the extra
        // Instant reads are noise at large n but measurable in small-n
        // hot loops, and set_profile_phases adds stamps inside the decide
        // itself.
        let phase_timing = observers.wants_phase_timing();
        if phase_timing {
            ptas.set_profile_phases(true);
        }
        let m_channels = net.n_channels();
        let oracle = observers.wants_oracle().then(|| OracleState {
            weights: Vec::with_capacity(k),
            prev_weights: Vec::new(),
            allowed: (0..k).collect(),
            cached_kbps: 0.0,
        });
        let queue = cfg
            .traffic
            .as_ref()
            .map(|spec| QueueEngine::new(spec, net.g(), m_channels));

        PolicyRunner {
            net,
            cfg: cfg.clone(),
            scale,
            beta,
            y,
            wb_ttl,
            m_channels,
            stats,
            ptas,
            rng,
            means,
            tracker,
            comm: CommTotals::default(),
            per_vertex_tx: vec![0u64; k],
            period_end_slots: Vec::with_capacity(n_periods_total),
            avg_actual: Vec::with_capacity(n_periods_total),
            avg_estimated: Vec::with_capacity(n_periods_total),
            practical_regret: Vec::with_capacity(regret_len),
            practical_beta_regret: Vec::with_capacity(regret_len),
            sum_rp: 0.0,
            sum_wp: 0.0,
            n_periods: 0,
            observed_total: 0.0,
            expected_total: 0.0,
            effective_total: 0.0,
            wb_engine,
            wb_floods: Vec::new(),
            indices: Vec::with_capacity(k),
            outcome: DecisionOutcome::default(),
            obs: Vec::new(),
            period_obs: Vec::with_capacity(y.min(cfg.horizon) as usize),
            prev_winners: Vec::new(),
            observing,
            tally_channels,
            phase_timing,
            chan_attempts: vec![0u64; if tally_channels { m_channels } else { 0 }],
            chan_captures: vec![0u64; if tally_channels { m_channels } else { 0 }],
            oracle,
            queue,
            t: 0,
        }
    }

    /// `true` once the horizon is reached — [`PolicyRunner::step_period`]
    /// must not be called again and [`PolicyRunner::finish`] may be.
    pub fn done(&self) -> bool {
        self.t >= self.cfg.horizon
    }

    /// The next slot to simulate (equals the horizon when done). Between
    /// steps this is always a period boundary.
    pub fn slot(&self) -> u64 {
        self.t
    }

    /// The configured horizon in slots.
    pub fn horizon(&self) -> u64 {
        self.cfg.horizon
    }

    /// Decision periods completed so far.
    pub fn periods(&self) -> u64 {
        self.n_periods
    }

    /// Advances one decision period: WB phase, index computation, strategy
    /// decision, `y` data slots (fewer at the horizon tail), bookkeeping,
    /// and — when observers are registered — one [`RoundRecord`] emission.
    ///
    /// # Panics
    ///
    /// Panics if the run is already [`PolicyRunner::done`].
    pub fn step_period(&mut self, policy: &mut dyn IndexPolicy, observers: &mut ObserverSet) {
        assert!(self.t < self.cfg.horizon, "run already complete");
        let t = self.t;

        // ---- WB phase: previous transmitters broadcast updated stats.
        // The simulation models the learning state directly (the policy's
        // ArmStats are global), so only the broadcast's cost is needed —
        // counters advance without materializing inboxes.
        let wb_start = self.phase_timing.then(Instant::now);
        if !self.prev_winners.is_empty() {
            self.wb_floods.clear();
            let wb_ttl = self.wb_ttl;
            self.wb_floods
                .extend(self.prev_winners.iter().map(|&v| Flood {
                    origin: v,
                    ttl: wb_ttl,
                    payload: (),
                }));
            self.wb_engine.broadcast_only(&self.wb_floods);
        }
        let wb_ns = wb_start.map_or(0, |s| s.elapsed().as_nanos() as u64);

        // ---- Strategy decision with the policy's current indices.
        policy.indices_into(t + 1, &self.stats, &mut self.rng, &mut self.indices);
        let decide_start = self.observing.then(Instant::now);
        self.ptas.decide_into(&self.indices, &mut self.outcome);
        let decide_ns = decide_start.map_or(0, |s| s.elapsed().as_nanos() as u64);
        self.comm.transmissions += self.outcome.counters.transmissions;
        self.comm.delivered += self.outcome.counters.delivered;
        self.comm.timeslots += self.outcome.counters.timeslots;
        self.comm.decisions += 1;
        for (v, &c) in self.outcome.counters.per_vertex_tx.iter().enumerate() {
            self.per_vertex_tx[v] += c;
        }
        let winners = &self.outcome.winners;
        let estimated_kbps: f64 =
            winners.iter().map(|&v| self.indices[v]).sum::<f64>() * self.scale;

        // ---- Data transmission for the whole period (y slots).
        let period_len = self.y.min(self.cfg.horizon - t);
        self.period_obs.clear();
        if let Some(q) = self.queue.as_mut() {
            q.begin_period();
        }
        if self.tally_channels {
            self.chan_attempts.fill(0);
            self.chan_captures.fill(0);
        }
        let mut period_expected = 0.0;
        let learn_start = self.phase_timing.then(Instant::now);
        for s in t..t + period_len {
            self.net.channels().observe_into(s, winners, &mut self.obs);
            let raw: f64 = self.obs.iter().map(|&(_, x)| x).sum();
            self.period_obs.push(raw);
            self.observed_total += raw;
            let expected: f64 = winners.iter().map(|&v| self.means[v]).sum();
            self.expected_total += expected;
            period_expected = expected;
            for &(v, x) in &self.obs {
                self.stats.update(v, x / self.scale);
                policy.observe(v, x / self.scale);
            }
            if self.tally_channels {
                // Per-channel capture bookkeeping, only when a sink
                // (CaptureStats) asked for it: vertex v transmits on
                // channel v % M; a positive observed rate is a capture,
                // zero is an outage.
                for &(v, x) in &self.obs {
                    let c = v % self.m_channels;
                    self.chan_attempts[c] += 1;
                    self.chan_captures[c] += u64::from(x > 0.0);
                }
            }
            if let Some(tr) = self.tracker.as_mut() {
                tr.record(expected, raw);
                if self.cfg.update_period == 1 {
                    self.practical_regret.push(tr.practical_regret());
                    self.practical_beta_regret.push(tr.practical_beta_regret());
                }
            }
            // Queueing layer: the slot's capture outcome is this slot's
            // service opportunity. Draws come from the dedicated arrival
            // stream, so the run RNG (and everything above) is untouched.
            if let Some(q) = self.queue.as_mut() {
                q.step_slot(s, &self.obs);
            }
        }
        let learn_ns = learn_start.map_or(0, |s| s.elapsed().as_nanos() as u64);

        // ---- Period bookkeeping (Section V-C identities).
        let rp = self.cfg.time.period_effective_throughput(&self.period_obs);
        let wp = self
            .cfg
            .time
            .period_effective_estimate(estimated_kbps, period_len as usize);
        self.effective_total += rp * period_len as f64;
        self.n_periods += 1;
        self.sum_rp += rp;
        self.sum_wp += wp;
        self.period_end_slots.push(t + period_len);
        self.avg_actual.push(self.sum_rp / self.n_periods as f64);
        self.avg_estimated.push(self.sum_wp / self.n_periods as f64);

        // ---- Stream the period to registered observers (skipped — and
        // allocation-free — when none are registered).
        if self.observing {
            // The drift oracle: the exact offline optimum per slot under
            // the channels' instantaneous true means at this period's
            // first slot, recomputed only when those means change (a
            // counterfactual — it never touches the run's communication
            // totals). Computed only when an observer asked for it.
            let oracle_kbps = match self.oracle.as_mut() {
                Some(st) => {
                    self.net.channels().means_at_into(t, &mut st.weights);
                    if st.weights != st.prev_weights {
                        st.cached_kbps = mhca_mwis::exact::solve_grouped(
                            self.net.h().graph(),
                            &st.weights,
                            &st.allowed,
                            self.net.node_groups(),
                        )
                        .weight;
                        st.prev_weights.clone_from(&st.weights);
                    }
                    st.cached_kbps
                }
                None => 0.0,
            };
            observers.emit(&RoundRecord {
                slot: t,
                period_len,
                decision: self.comm.decisions,
                winners,
                expected_kbps: period_expected,
                observed_kbps: self.period_obs.iter().sum(),
                estimated_kbps,
                decide_ns,
                wb_ns,
                learn_ns,
                decide_phase_ns: self.ptas.phase_ns(),
                decide_transmissions: self.outcome.counters.transmissions,
                decide_delivered: self.outcome.counters.delivered,
                decide_timeslots: self.outcome.counters.timeslots,
                decide_scanned: self.ptas.scan_stats().candidates_scanned,
                decide_fallback_floods: self.outcome.fallback_floods,
                per_vertex_tx: &self.outcome.counters.per_vertex_tx,
                n_channels: self.m_channels,
                channel_attempts: &self.chan_attempts,
                channel_captures: &self.chan_captures,
                oracle_kbps,
                traffic: self.queue.as_ref().map(|q| q.round()),
            });
        }

        self.prev_winners.clone_from(&self.outcome.winners);
        self.t += period_len;
    }

    /// Folds the WB engine's whole-run totals into the communication
    /// record and assembles the [`RunResult`].
    ///
    /// # Panics
    ///
    /// Panics unless the run is [`PolicyRunner::done`].
    pub fn finish(mut self, policy: &dyn IndexPolicy) -> RunResult {
        assert!(self.done(), "finish called before the horizon");
        let wb = self.wb_engine.counters();
        self.comm.transmissions += wb.transmissions;
        self.comm.delivered += wb.delivered;
        self.comm.timeslots += wb.timeslots;
        for (v, &c) in wb.per_vertex_tx.iter().enumerate() {
            self.per_vertex_tx[v] += c;
        }

        RunResult {
            policy: policy.name().to_string(),
            slots: self.cfg.horizon,
            period_end_slots: self.period_end_slots,
            avg_actual_throughput: self.avg_actual,
            avg_estimated_throughput: self.avg_estimated,
            practical_regret: self.practical_regret,
            practical_beta_regret: self.practical_beta_regret,
            final_strategy_vertices: self.prev_winners,
            per_vertex_tx: self.per_vertex_tx,
            average_observed_kbps: self.observed_total / self.cfg.horizon as f64,
            average_effective_kbps: self.effective_total / self.cfg.horizon as f64,
            average_expected_kbps: self.expected_total / self.cfg.horizon as f64,
            beta: self.beta,
            comm: self.comm,
            seed: self.cfg.seed,
            traffic: self.queue.as_ref().map(|q| q.summary()),
        }
    }

    /// Captures the runner's complete mutable state at the current period
    /// boundary, including the policy's own state
    /// ([`IndexPolicy::snapshot_state`], nested under `policy.`). A fresh
    /// runner over the same network/config/observer kinds that
    /// [`PolicyRunner::restore`]s this map continues the run
    /// bit-identically. Observer state is *not* included — the observer
    /// pipeline snapshots separately (`ObserverSet::snapshot_states`).
    pub fn snapshot(&self, policy: &dyn IndexPolicy) -> StateMap {
        let mut out = StateMap::new();
        out.put_u64("t", self.t);
        out.put_u64_vec("rng", self.rng.state().to_vec());
        out.put_f64_vec("stats.means", self.stats.means().to_vec());
        out.put_u64_vec("stats.counts", self.stats.counts().to_vec());
        let mut pol = StateMap::new();
        policy.snapshot_state(&mut pol);
        out.put_nested("policy", pol);
        if let Some(tr) = &self.tracker {
            let mut trs = StateMap::new();
            tr.snapshot_state(&mut trs);
            out.put_nested("tracker", trs);
        }
        out.put_u64_vec("period_end_slots", self.period_end_slots.clone());
        out.put_f64_vec("avg_actual", self.avg_actual.clone());
        out.put_f64_vec("avg_estimated", self.avg_estimated.clone());
        out.put_f64_vec("practical_regret", self.practical_regret.clone());
        out.put_f64_vec("practical_beta_regret", self.practical_beta_regret.clone());
        out.put_f64("sum_rp", self.sum_rp);
        out.put_f64("sum_wp", self.sum_wp);
        out.put_u64("n_periods", self.n_periods);
        out.put_f64("observed_total", self.observed_total);
        out.put_f64("expected_total", self.expected_total);
        out.put_f64("effective_total", self.effective_total);
        out.put_u64("comm.transmissions", self.comm.transmissions);
        out.put_u64("comm.delivered", self.comm.delivered);
        out.put_u64("comm.timeslots", self.comm.timeslots);
        out.put_u64("comm.decisions", self.comm.decisions);
        out.put_u64_vec("per_vertex_tx", self.per_vertex_tx.clone());
        out.put_u64_vec(
            "prev_winners",
            self.prev_winners
                .iter()
                .map(|&v| v as u64)
                .collect::<Vec<_>>(),
        );
        let wb = self.wb_engine.counters();
        out.put_u64("wb.transmissions", wb.transmissions);
        out.put_u64("wb.delivered", wb.delivered);
        out.put_u64("wb.timeslots", wb.timeslots);
        out.put_u64_vec("wb.per_vertex_tx", wb.per_vertex_tx.clone());
        out.put_u64("wb.fallback_floods", self.wb_engine.fallback_floods());
        out.put_u64("ptas.loss_flood", self.ptas.loss_flood_index());
        if let Some(q) = &self.queue {
            q.snapshot_into(&mut out, "traffic");
        }
        out
    }

    /// Re-injects a [`PolicyRunner::snapshot`] into a freshly constructed
    /// runner (same network, config, and observer kinds) and its freshly
    /// built policy. Validates lengths and ranges; on error the runner
    /// must be discarded (it may be partially restored).
    pub fn restore(
        &mut self,
        policy: &mut dyn IndexPolicy,
        state: &StateMap,
    ) -> Result<(), StateError> {
        let k = self.net.n_vertices();
        let t = state.get_u64("t")?;
        if t > self.cfg.horizon {
            return Err(StateError::invalid("t", "slot beyond the horizon"));
        }
        let rng = state.get_u64_vec_exact("rng", 4)?;
        if rng.iter().all(|&w| w == 0) {
            return Err(StateError::invalid("rng", "all-zero generator state"));
        }
        self.rng = StdRng::from_state([rng[0], rng[1], rng[2], rng[3]]);
        self.t = t;
        self.stats = ArmStats::from_parts(
            state.get_f64_vec_exact("stats.means", k)?,
            state.get_u64_vec_exact("stats.counts", k)?,
        );
        policy.restore_state(&state.extract_nested("policy"))?;
        if let Some(tr) = self.tracker.as_mut() {
            tr.restore_state(&state.extract_nested("tracker"))?;
        }
        self.n_periods = state.get_u64("n_periods")?;
        let periods = usize::try_from(self.n_periods)
            .map_err(|_| StateError::invalid("n_periods", "period count overflows usize"))?;
        // Refill the preallocated series in place so the reserved
        // capacities from construction survive the restore.
        self.period_end_slots.clear();
        self.period_end_slots
            .extend_from_slice(state.get_u64_slice("period_end_slots")?);
        self.avg_actual.clear();
        self.avg_actual
            .extend_from_slice(state.get_f64_slice("avg_actual")?);
        self.avg_estimated.clear();
        self.avg_estimated
            .extend_from_slice(state.get_f64_slice("avg_estimated")?);
        if self.period_end_slots.len() != periods
            || self.avg_actual.len() != periods
            || self.avg_estimated.len() != periods
        {
            return Err(StateError::invalid(
                "period_end_slots",
                "series length disagrees with n_periods",
            ));
        }
        let regret_len = if self.tracker.is_some() && self.cfg.update_period == 1 {
            t as usize
        } else {
            0
        };
        self.practical_regret.clear();
        self.practical_regret.extend_from_slice(
            state
                .get_f64_vec_exact("practical_regret", regret_len)?
                .as_slice(),
        );
        self.practical_beta_regret.clear();
        self.practical_beta_regret.extend_from_slice(
            state
                .get_f64_vec_exact("practical_beta_regret", regret_len)?
                .as_slice(),
        );
        self.sum_rp = state.get_f64("sum_rp")?;
        self.sum_wp = state.get_f64("sum_wp")?;
        self.observed_total = state.get_f64("observed_total")?;
        self.expected_total = state.get_f64("expected_total")?;
        self.effective_total = state.get_f64("effective_total")?;
        self.comm = CommTotals {
            transmissions: state.get_u64("comm.transmissions")?,
            delivered: state.get_u64("comm.delivered")?,
            timeslots: state.get_u64("comm.timeslots")?,
            decisions: state.get_u64("comm.decisions")?,
        };
        self.per_vertex_tx = state.get_u64_vec_exact("per_vertex_tx", k)?;
        self.prev_winners.clear();
        for &v in state.get_u64_slice("prev_winners")? {
            let v = usize::try_from(v)
                .ok()
                .filter(|&v| v < k)
                .ok_or_else(|| StateError::invalid("prev_winners", "vertex out of range"))?;
            self.prev_winners.push(v);
        }
        let mut wb = Counters::new(k);
        wb.transmissions = state.get_u64("wb.transmissions")?;
        wb.delivered = state.get_u64("wb.delivered")?;
        wb.timeslots = state.get_u64("wb.timeslots")?;
        wb.per_vertex_tx = state.get_u64_vec_exact("wb.per_vertex_tx", k)?;
        self.wb_engine.restore_counters(&wb);
        self.wb_engine
            .set_fallback_floods(state.get_u64("wb.fallback_floods")?);
        self.ptas
            .set_loss_flood_index(state.get_u64("ptas.loss_flood")?);
        if let Some(q) = self.queue.as_mut() {
            q.restore_from(state, "traffic")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_bandit::policies::{CsUcb, Llr, Oracle, Random};

    fn small_net() -> Network {
        Network::random(6, 3, 2.5, 0.1, 11)
    }

    #[test]
    fn run_produces_consistent_lengths() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(40);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.slots, 40);
        assert_eq!(res.period_end_slots.len(), 40); // y = 1
        assert_eq!(res.avg_actual_throughput.len(), 40);
        assert_eq!(res.avg_estimated_throughput.len(), 40);
        assert!(res.comm.decisions == 40);
    }

    #[test]
    fn periodic_updates_decide_less_often() {
        let net = small_net();
        let cfg = Algorithm2Config::default()
            .with_horizon(40)
            .with_update_period(10);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.comm.decisions, 4);
        assert_eq!(res.period_end_slots, vec![10, 20, 30, 40]);
    }

    #[test]
    fn oracle_achieves_near_optimal_expected_throughput() {
        let net = small_net();
        let opt = net.optimal();
        let cfg = Algorithm2Config::default().with_horizon(30);
        let mut oracle = Oracle::new(net.channels().means());
        let res = run_policy(&net, &cfg, &mut oracle);
        // The distributed PTAS may lose a little vs the exact optimum, but
        // with true means it should be close on this tiny instance.
        assert!(
            res.average_expected_kbps >= 0.8 * opt.weight,
            "oracle expected {} vs optimal {}",
            res.average_expected_kbps,
            opt.weight
        );
    }

    #[test]
    fn learning_beats_random() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(300);
        let learned = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        let random = run_policy(&net, &cfg, &mut Random);
        assert!(
            learned.average_expected_kbps > random.average_expected_kbps,
            "cs-ucb {} vs random {}",
            learned.average_expected_kbps,
            random.average_expected_kbps
        );
    }

    #[test]
    fn regret_series_only_with_optimum() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(20);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert!(res.practical_regret.is_empty());

        let opt = net.optimal().weight;
        let cfg = cfg.with_optimal_kbps(opt);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.practical_regret.len(), 20);
        // Practical regret is bounded below by R1·(1 − θ·max/opt); just
        // check it is finite and decreasing-ish over the run.
        assert!(res.practical_regret.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(25).with_seed(3);
        let a = run_policy(&net, &cfg, &mut Llr::new(net.n_nodes(), 2.0));
        let b = run_policy(&net, &cfg, &mut Llr::new(net.n_nodes(), 2.0));
        assert_eq!(a, b);
    }

    #[test]
    fn longer_periods_raise_effective_throughput_late() {
        // With stale weights the fraction of airtime spent deciding drops:
        // y=10 must beat y=1 in effective throughput for the same policy
        // once learning has mostly settled.
        let net = small_net();
        let base = Algorithm2Config::default().with_horizon(400);
        let frequent = run_policy(&net, &base.clone(), &mut CsUcb::new(2.0));
        let stale = run_policy(&net, &base.with_update_period(10), &mut CsUcb::new(2.0));
        assert!(
            stale.average_effective_kbps > frequent.average_effective_kbps,
            "stale {} vs frequent {}",
            stale.average_effective_kbps,
            frequent.average_effective_kbps
        );
    }

    #[test]
    fn per_vertex_tx_survives_the_whole_run() {
        // Regression: the WB-phase engine used to be rebuilt every round,
        // so per-vertex transmission counts were discarded each slot and
        // only scalar totals survived.
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(50);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.per_vertex_tx.len(), net.n_vertices());
        let sum: u64 = res.per_vertex_tx.iter().sum();
        // Every relay broadcast is charged to exactly one vertex.
        assert_eq!(sum, res.comm.transmissions);
        assert!(sum > 0, "a 50-slot run must transmit");
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(0);
        let _ = run_policy(&net, &cfg, &mut Random);
    }

    #[test]
    fn stepwise_runner_matches_batch_entry_point() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(60).with_seed(5);
        let batch = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        let mut observers = ObserverSet::new();
        let mut policy = CsUcb::new(2.0);
        let mut runner = PolicyRunner::new(&net, &cfg, &observers);
        let mut steps = 0;
        while !runner.done() {
            runner.step_period(&mut policy, &mut observers);
            steps += 1;
        }
        assert_eq!(steps, 60);
        assert_eq!(runner.finish(&policy), batch);
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let net = small_net();
        let opt = net.optimal().weight;
        let cfg = Algorithm2Config::default()
            .with_horizon(50)
            .with_seed(9)
            .with_optimal_kbps(opt);
        let uninterrupted = run_policy(&net, &cfg, &mut CsUcb::new(2.0));

        // Run 20 periods, snapshot, throw the runner away, restore into a
        // fresh one, and finish.
        let observers = ObserverSet::new();
        let mut policy = CsUcb::new(2.0);
        let mut first = PolicyRunner::new(&net, &cfg, &observers);
        let mut obs = ObserverSet::new();
        for _ in 0..20 {
            first.step_period(&mut policy, &mut obs);
        }
        let snap = first.snapshot(&policy);
        drop(first);

        let mut policy2 = CsUcb::new(2.0);
        let mut second = PolicyRunner::new(&net, &cfg, &observers);
        second.restore(&mut policy2, &snap).unwrap();
        assert_eq!(second.slot(), 20);
        let mut obs = ObserverSet::new();
        while !second.done() {
            second.step_period(&mut policy2, &mut obs);
        }
        assert_eq!(second.finish(&policy2), uninterrupted);
    }

    fn line_net(n: usize) -> Network {
        Network::from_spec(
            n,
            2,
            &mhca_graph::TopologySpec::Line,
            &mhca_channels::ChannelModelSpec::default(),
            4,
        )
    }

    fn line_traffic() -> TrafficSpec {
        crate::traffic::TrafficSpec::poisson(
            0.4,
            vec![crate::traffic::FlowSpec {
                src: 0,
                dst: 3,
                deadline: Some(30),
            }],
        )
    }

    #[test]
    fn traffic_leaves_the_untraced_run_byte_identical() {
        // Satellite pin: the arrival stream is dedicated and the queue
        // step reads (never writes) the capture outcome, so enabling
        // traffic must leave every pre-existing RunResult field — series,
        // regret, comm counters, RNG-driven decisions — byte-identical.
        let net = line_net(6);
        let cfg = Algorithm2Config::default().with_horizon(120).with_seed(7);
        let plain = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert!(plain.traffic.is_none());

        let cfg_t = cfg.clone().with_traffic(line_traffic());
        let with = run_policy(&net, &cfg_t, &mut CsUcb::new(2.0));
        let summary = with.traffic.clone().expect("traffic config must summarize");
        assert!(summary.arrivals > 0, "a 120-slot Poisson run must arrive");
        assert!(summary.delivered > 0, "line flow must deliver");
        assert_eq!(
            summary.arrivals - summary.delivered,
            summary.backlog,
            "Lindley conservation at the horizon"
        );

        let mut stripped = with.clone();
        stripped.traffic = None;
        assert_eq!(stripped, plain, "traffic perturbed the base run");
    }

    #[test]
    fn snapshot_restore_with_traffic_continues_bit_identically() {
        // Checkpoint/resume must round-trip the queue state: packets in
        // flight, fractional credits, and per-flow totals.
        let net = line_net(6);
        let cfg = Algorithm2Config::default()
            .with_horizon(80)
            .with_seed(3)
            .with_traffic(line_traffic());
        let uninterrupted = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert!(uninterrupted.traffic.as_ref().unwrap().delivered > 0);

        let observers = ObserverSet::new();
        let mut policy = CsUcb::new(2.0);
        let mut first = PolicyRunner::new(&net, &cfg, &observers);
        let mut obs = ObserverSet::new();
        for _ in 0..37 {
            first.step_period(&mut policy, &mut obs);
        }
        let snap = first.snapshot(&policy);
        drop(first);

        let mut policy2 = CsUcb::new(2.0);
        let mut second = PolicyRunner::new(&net, &cfg, &observers);
        second.restore(&mut policy2, &snap).unwrap();
        let mut obs = ObserverSet::new();
        while !second.done() {
            second.step_period(&mut policy2, &mut obs);
        }
        assert_eq!(second.finish(&policy2), uninterrupted);

        // A snapshot without traffic keys must not restore into a
        // traffic-configured runner.
        let plain_cfg = Algorithm2Config::default().with_horizon(80).with_seed(3);
        let mut plain_policy = CsUcb::new(2.0);
        let mut plain = PolicyRunner::new(&net, &plain_cfg, &observers);
        let mut obs = ObserverSet::new();
        plain.step_period(&mut plain_policy, &mut obs);
        let plain_snap = plain.snapshot(&plain_policy);
        let mut fresh = PolicyRunner::new(&net, &cfg, &observers);
        assert!(fresh.restore(&mut policy2, &plain_snap).is_err());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(10);
        let observers = ObserverSet::new();
        let mut policy = CsUcb::new(2.0);
        let mut runner = PolicyRunner::new(&net, &cfg, &observers);
        let mut obs = ObserverSet::new();
        runner.step_period(&mut policy, &mut obs);
        let good = runner.snapshot(&policy);

        let mut fresh = PolicyRunner::new(&net, &cfg, &observers);
        assert!(fresh.restore(&mut policy, &StateMap::new()).is_err());

        // Tamper: t beyond the horizon.
        let mut bad = StateMap::new();
        for (k, v) in good.iter() {
            if k == "t" {
                bad.put_u64("t", 99);
            } else {
                bad.put(k.to_string(), v.clone());
            }
        }
        let mut fresh = PolicyRunner::new(&net, &cfg, &observers);
        assert!(fresh.restore(&mut policy, &bad).is_err());
    }
}
