//! Algorithm 2 — the main round loop of the channel-access scheme.
//!
//! Each round: the previous round's transmitters broadcast their updated
//! estimates within `(2r+1)` hops (WB phase), every vertex recomputes the
//! learning indices (Eq. (3) — only `(µ̃_k, m_k)` need to travel; the index
//! is a public formula of them and `t`), the distributed robust PTAS picks
//! a strategy (Algorithm 3), the winners transmit and observe realized
//! rates, and the estimates update via Eqs. (5)–(6).
//!
//! The runner also implements the **periodic update** variant of
//! Section V-C: strategy decision only every `y` slots, with the
//! first slot of a period paying the decision airtime (`t_d` of `t_a`) and
//! the remaining `y−1` slots transmitting the full round.

use crate::{
    distributed::{DecisionOutcome, DistributedPtas, DistributedPtasConfig},
    experiment::{ObserverSet, RoundRecord},
    network::Network,
    time::TimeModel,
};
use mhca_bandit::{bounds, policies::IndexPolicy, ArmStats, RegretTracker};
use mhca_channels::rates;
use mhca_sim::{Flood, FloodEngine};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Aggregate communication cost across a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommTotals {
    /// Total relay broadcasts (WB + LD + LB phases).
    pub transmissions: u64,
    /// Total message copies delivered.
    pub delivered: u64,
    /// Total pipelined mini-timeslots.
    pub timeslots: u64,
    /// Strategy decisions executed.
    pub decisions: u64,
}

/// Configuration of an Algorithm 2 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Algorithm2Config {
    /// Horizon in time slots (`n`).
    pub horizon: u64,
    /// Update period `y` (Section V-C); `1` = decide every slot.
    pub update_period: usize,
    /// Strategy-decision (Algorithm 3) parameters.
    pub decision: DistributedPtasConfig,
    /// Round timing (Table II).
    pub time: TimeModel,
    /// RNG seed for policy randomness.
    pub seed: u64,
    /// Observation normalization: rewards are divided by this before
    /// entering the policy (`None` = the paper's maximum rate class,
    /// 1350 kbps).
    pub reward_scale: Option<f64>,
    /// Known optimum `R_1` in kbps; enables the regret series
    /// (exponential to compute, so caller-supplied).
    pub optimal_kbps: Option<f64>,
    /// Approximation factor `α` for the β-regret target `R_1/(θ·α)`;
    /// `None` = the Theorem 2 value `(M·(2r+1)²)^{1/r}`.
    pub alpha: Option<f64>,
}

impl Default for Algorithm2Config {
    fn default() -> Self {
        Algorithm2Config {
            horizon: 1000,
            update_period: 1,
            decision: DistributedPtasConfig::default(),
            time: TimeModel::default(),
            seed: 0,
            reward_scale: None,
            optimal_kbps: None,
            alpha: None,
        }
    }
}

impl Algorithm2Config {
    /// Builder-style horizon override.
    pub fn with_horizon(mut self, n: u64) -> Self {
        self.horizon = n;
        self
    }

    /// Builder-style update-period override.
    pub fn with_update_period(mut self, y: usize) -> Self {
        assert!(y > 0, "update period must be positive");
        self.update_period = y;
        self
    }

    /// Builder-style decision-config override.
    pub fn with_decision(mut self, d: DistributedPtasConfig) -> Self {
        self.decision = d;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style optimum (enables regret series).
    pub fn with_optimal_kbps(mut self, r1: f64) -> Self {
        self.optimal_kbps = Some(r1);
        self
    }
}

/// Output of one Algorithm 2 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Policy name.
    pub policy: String,
    /// Slots simulated.
    pub slots: u64,
    /// Slot index at the end of each period (x-axis of the series below).
    pub period_end_slots: Vec<u64>,
    /// Running average of *actual effective* throughput `R̃_P(z)` in kbps
    /// (Section V-C) — the solid lines of Fig. 8.
    pub avg_actual_throughput: Vec<f64>,
    /// Running average of *estimated effective* throughput `W̃_P(z)` in
    /// kbps — the estimated lines of Fig. 8.
    pub avg_estimated_throughput: Vec<f64>,
    /// Per-slot practical regret `R_1 − θ·(avg observed)` (Fig. 7(a));
    /// empty unless `optimal_kbps` was supplied and `update_period == 1`.
    pub practical_regret: Vec<f64>,
    /// Per-slot practical β-regret `R_1/(θα) − θ·(avg observed)`
    /// (Fig. 7(b)); empty unless `optimal_kbps` was supplied and
    /// `update_period == 1`.
    pub practical_beta_regret: Vec<f64>,
    /// Winners of the final strategy decision.
    pub final_strategy_vertices: Vec<usize>,
    /// Relay broadcasts charged to each vertex across the whole run (WB
    /// phase plus strategy-decision floods) — the measurable counterpart
    /// of the paper's per-vertex `O(r² + D)` communication claim. Earlier
    /// revisions rebuilt the WB flood engine every round and threw this
    /// away, keeping only scalar totals.
    pub per_vertex_tx: Vec<u64>,
    /// Mean raw observed throughput per slot (kbps).
    pub average_observed_kbps: f64,
    /// Mean *effective* (airtime-scaled) throughput per slot (kbps).
    pub average_effective_kbps: f64,
    /// Mean expected (true-mean) throughput of the played strategies (kbps).
    pub average_expected_kbps: f64,
    /// The β-regret target factor actually used (`β = θ·α`, clamped ≥ 1).
    pub beta: f64,
    /// Communication totals across the run.
    pub comm: CommTotals,
    /// The seed the run used (for reproducibility records).
    pub seed: u64,
}

/// Runs Algorithm 2 with the given learning policy on a network.
///
/// Equivalent to [`run_policy_observed`] with no observers registered —
/// the steady-state loop is identical (no clocks, no record emission).
///
/// # Panics
///
/// Panics if `cfg.horizon == 0` or `cfg.update_period == 0`.
pub fn run_policy(
    net: &Network,
    cfg: &Algorithm2Config,
    policy: &mut dyn IndexPolicy,
) -> RunResult {
    run_policy_observed(net, cfg, policy, &mut ObserverSet::new())
}

/// Runs Algorithm 2, streaming one [`RoundRecord`] per strategy decision
/// to the registered observers (see [`crate::experiment`]).
///
/// With an empty [`ObserverSet`] this adds no work to the steady-state
/// loop: the decide-phase clock and the record emission are skipped, so
/// the lossless path stays allocation-free (`tests/alloc_free.rs`).
///
/// # Panics
///
/// Panics if `cfg.horizon == 0` or `cfg.update_period == 0`.
pub fn run_policy_observed(
    net: &Network,
    cfg: &Algorithm2Config,
    policy: &mut dyn IndexPolicy,
    observers: &mut ObserverSet,
) -> RunResult {
    assert!(cfg.horizon > 0, "horizon must be positive");
    assert!(cfg.update_period > 0, "update period must be positive");
    let k = net.n_vertices();
    let scale = cfg.reward_scale.unwrap_or(rates::MAX_RATE);
    assert!(scale > 0.0, "reward scale must be positive");
    let theta = cfg.time.theta();
    let alpha = cfg
        .alpha
        .unwrap_or_else(|| bounds::theorem2_rho(net.n_channels(), cfg.decision.r.max(1)));
    let beta = (theta * alpha).max(1.0);

    let mut stats = ArmStats::new(k);
    let mut ptas = DistributedPtas::new(net.h(), cfg.decision);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let means = net.channels().means();
    let mut tracker = cfg
        .optimal_kbps
        .map(|r1| RegretTracker::new(r1, beta, theta));
    let mut comm = CommTotals::default();
    let mut per_vertex_tx = vec![0u64; k];

    let y = cfg.update_period as u64;
    // Series lengths are known up front: one entry per period (and per
    // slot for the regret series) — reserve once so the steady-state loop
    // never reallocates them.
    let n_periods_total = cfg.horizon.div_ceil(y) as usize;
    let mut period_end_slots = Vec::with_capacity(n_periods_total);
    let mut avg_actual = Vec::with_capacity(n_periods_total);
    let mut avg_estimated = Vec::with_capacity(n_periods_total);
    let regret_len = if tracker.is_some() && cfg.update_period == 1 {
        cfg.horizon as usize
    } else {
        0
    };
    let mut practical_regret = Vec::with_capacity(regret_len);
    let mut practical_beta_regret = Vec::with_capacity(regret_len);
    let mut sum_rp = 0.0;
    let mut sum_wp = 0.0;
    let mut n_periods = 0u64;
    let mut observed_total = 0.0;
    let mut expected_total = 0.0;
    let mut effective_total = 0.0;

    // ---- Long-lived engine and per-round scratch, hoisted out of the
    // loop: the steady-state round performs no heap allocation on the
    // lossless path (see `tests/alloc_free.rs`).
    let wb_ttl = 2 * cfg.decision.r + 1;
    let mut wb_engine = FloodEngine::new(net.h().graph());
    // The decision engine already prewarmed the (2r+1)-hop table on this
    // graph; adopt it instead of building a second copy. The prewarm is a
    // no-op then, and a real build only when the ptas runs lossy.
    wb_engine.adopt_tables(ptas.flood_engine());
    wb_engine.prewarm(wb_ttl);
    let mut wb_floods: Vec<Flood<()>> = Vec::new();
    let mut indices: Vec<f64> = Vec::with_capacity(k);
    let mut outcome = DecisionOutcome::default();
    let mut obs: Vec<(usize, f64)> = Vec::new();
    let mut period_obs: Vec<f64> = Vec::with_capacity(y.min(cfg.horizon) as usize);
    let mut prev_winners: Vec<usize> = Vec::new();

    // ---- Observer-only scratch (all empty/skipped with no observers, so
    // the plain `run_policy` path is untouched): per-channel capture
    // tallies for the CaptureStats sink, and the drift oracle — the
    // exact offline optimum (branch-and-bound MWIS, the same benchmark
    // the paper's Fig. 7 regret uses) on the channels' *instantaneous*
    // means — for sinks that request it (WindowedRegret). The optimum is
    // recomputed only when the instantaneous mean vector changes, so
    // piecewise-stationary drift costs one solve per segment and
    // stationary channels one per run; like `Network::optimal`, it is
    // intended for Fig. 7-sized instances (≲ 20 users × a few channels).
    let observing = !observers.is_empty();
    let tally_channels = observers.wants_channel_stats();
    // Per-phase wall clocks (WB / learn, plus the PTAS's internal decide
    // breakdown) are priced only when a sink asks: the extra Instant
    // reads are noise at large n but measurable in small-n hot loops,
    // and set_profile_phases adds stamps inside the decide itself.
    let phase_timing = observers.wants_phase_timing();
    if phase_timing {
        ptas.set_profile_phases(true);
    }
    let m_channels = net.n_channels();
    let mut chan_attempts = vec![0u64; if tally_channels { m_channels } else { 0 }];
    let mut chan_captures = vec![0u64; if tally_channels { m_channels } else { 0 }];
    struct OracleState {
        weights: Vec<f64>,
        prev_weights: Vec<f64>,
        allowed: Vec<usize>,
        cached_kbps: f64,
    }
    let mut oracle = observers.wants_oracle().then(|| OracleState {
        weights: Vec::with_capacity(k),
        prev_weights: Vec::new(),
        allowed: (0..k).collect(),
        cached_kbps: 0.0,
    });

    let mut t = 0u64;
    while t < cfg.horizon {
        // ---- WB phase: previous transmitters broadcast updated stats.
        // The simulation models the learning state directly (the policy's
        // ArmStats are global), so only the broadcast's cost is needed —
        // counters advance without materializing inboxes.
        let wb_start = phase_timing.then(Instant::now);
        if !prev_winners.is_empty() {
            wb_floods.clear();
            wb_floods.extend(prev_winners.iter().map(|&v| Flood {
                origin: v,
                ttl: wb_ttl,
                payload: (),
            }));
            wb_engine.broadcast_only(&wb_floods);
        }
        let wb_ns = wb_start.map_or(0, |s| s.elapsed().as_nanos() as u64);

        // ---- Strategy decision with the policy's current indices.
        policy.indices_into(t + 1, &stats, &mut rng, &mut indices);
        let decide_start = observing.then(Instant::now);
        ptas.decide_into(&indices, &mut outcome);
        let decide_ns = decide_start.map_or(0, |s| s.elapsed().as_nanos() as u64);
        comm.transmissions += outcome.counters.transmissions;
        comm.delivered += outcome.counters.delivered;
        comm.timeslots += outcome.counters.timeslots;
        comm.decisions += 1;
        for (v, &c) in outcome.counters.per_vertex_tx.iter().enumerate() {
            per_vertex_tx[v] += c;
        }
        let winners = &outcome.winners;
        let estimated_kbps: f64 = winners.iter().map(|&v| indices[v]).sum::<f64>() * scale;

        // ---- Data transmission for the whole period (y slots).
        let period_len = y.min(cfg.horizon - t);
        period_obs.clear();
        if tally_channels {
            chan_attempts.fill(0);
            chan_captures.fill(0);
        }
        let mut period_expected = 0.0;
        let learn_start = phase_timing.then(Instant::now);
        for s in t..t + period_len {
            net.channels().observe_into(s, winners, &mut obs);
            let raw: f64 = obs.iter().map(|&(_, x)| x).sum();
            period_obs.push(raw);
            observed_total += raw;
            let expected: f64 = winners.iter().map(|&v| means[v]).sum();
            expected_total += expected;
            period_expected = expected;
            for &(v, x) in &obs {
                stats.update(v, x / scale);
                policy.observe(v, x / scale);
            }
            if tally_channels {
                // Per-channel capture bookkeeping, only when a sink
                // (CaptureStats) asked for it: vertex v transmits on
                // channel v % M; a positive observed rate is a capture,
                // zero is an outage.
                for &(v, x) in &obs {
                    let c = v % m_channels;
                    chan_attempts[c] += 1;
                    chan_captures[c] += u64::from(x > 0.0);
                }
            }
            if let Some(tr) = tracker.as_mut() {
                tr.record(expected, raw);
                if cfg.update_period == 1 {
                    practical_regret.push(tr.practical_regret());
                    practical_beta_regret.push(tr.practical_beta_regret());
                }
            }
        }
        let learn_ns = learn_start.map_or(0, |s| s.elapsed().as_nanos() as u64);

        // ---- Period bookkeeping (Section V-C identities).
        let rp = cfg.time.period_effective_throughput(&period_obs);
        let wp = cfg
            .time
            .period_effective_estimate(estimated_kbps, period_len as usize);
        effective_total += rp * period_len as f64;
        n_periods += 1;
        sum_rp += rp;
        sum_wp += wp;
        period_end_slots.push(t + period_len);
        avg_actual.push(sum_rp / n_periods as f64);
        avg_estimated.push(sum_wp / n_periods as f64);

        // ---- Stream the period to registered observers (skipped — and
        // allocation-free — when none are registered).
        if observing {
            // The drift oracle: the exact offline optimum per slot under
            // the channels' instantaneous true means at this period's
            // first slot, recomputed only when those means change (a
            // counterfactual — it never touches the run's communication
            // totals). Computed only when an observer asked for it.
            let oracle_kbps = match oracle.as_mut() {
                Some(st) => {
                    net.channels().means_at_into(t, &mut st.weights);
                    if st.weights != st.prev_weights {
                        st.cached_kbps = mhca_mwis::exact::solve_grouped(
                            net.h().graph(),
                            &st.weights,
                            &st.allowed,
                            net.node_groups(),
                        )
                        .weight;
                        st.prev_weights.clone_from(&st.weights);
                    }
                    st.cached_kbps
                }
                None => 0.0,
            };
            observers.emit(&RoundRecord {
                slot: t,
                period_len,
                decision: comm.decisions,
                winners,
                expected_kbps: period_expected,
                observed_kbps: period_obs.iter().sum(),
                estimated_kbps,
                decide_ns,
                wb_ns,
                learn_ns,
                decide_phase_ns: ptas.phase_ns(),
                decide_transmissions: outcome.counters.transmissions,
                decide_delivered: outcome.counters.delivered,
                decide_timeslots: outcome.counters.timeslots,
                decide_scanned: ptas.scan_stats().candidates_scanned,
                decide_fallback_floods: outcome.fallback_floods,
                per_vertex_tx: &outcome.counters.per_vertex_tx,
                n_channels: m_channels,
                channel_attempts: &chan_attempts,
                channel_captures: &chan_captures,
                oracle_kbps,
            });
        }

        prev_winners.clone_from(winners);
        t += period_len;
    }

    // Fold the WB engine's whole-run totals into the communication record.
    let wb = wb_engine.counters();
    comm.transmissions += wb.transmissions;
    comm.delivered += wb.delivered;
    comm.timeslots += wb.timeslots;
    for (v, &c) in wb.per_vertex_tx.iter().enumerate() {
        per_vertex_tx[v] += c;
    }

    RunResult {
        policy: policy.name().to_string(),
        slots: cfg.horizon,
        period_end_slots,
        avg_actual_throughput: avg_actual,
        avg_estimated_throughput: avg_estimated,
        practical_regret,
        practical_beta_regret,
        final_strategy_vertices: prev_winners,
        per_vertex_tx,
        average_observed_kbps: observed_total / cfg.horizon as f64,
        average_effective_kbps: effective_total / cfg.horizon as f64,
        average_expected_kbps: expected_total / cfg.horizon as f64,
        beta,
        comm,
        seed: cfg.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_bandit::policies::{CsUcb, Llr, Oracle, Random};

    fn small_net() -> Network {
        Network::random(6, 3, 2.5, 0.1, 11)
    }

    #[test]
    fn run_produces_consistent_lengths() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(40);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.slots, 40);
        assert_eq!(res.period_end_slots.len(), 40); // y = 1
        assert_eq!(res.avg_actual_throughput.len(), 40);
        assert_eq!(res.avg_estimated_throughput.len(), 40);
        assert!(res.comm.decisions == 40);
    }

    #[test]
    fn periodic_updates_decide_less_often() {
        let net = small_net();
        let cfg = Algorithm2Config::default()
            .with_horizon(40)
            .with_update_period(10);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.comm.decisions, 4);
        assert_eq!(res.period_end_slots, vec![10, 20, 30, 40]);
    }

    #[test]
    fn oracle_achieves_near_optimal_expected_throughput() {
        let net = small_net();
        let opt = net.optimal();
        let cfg = Algorithm2Config::default().with_horizon(30);
        let mut oracle = Oracle::new(net.channels().means());
        let res = run_policy(&net, &cfg, &mut oracle);
        // The distributed PTAS may lose a little vs the exact optimum, but
        // with true means it should be close on this tiny instance.
        assert!(
            res.average_expected_kbps >= 0.8 * opt.weight,
            "oracle expected {} vs optimal {}",
            res.average_expected_kbps,
            opt.weight
        );
    }

    #[test]
    fn learning_beats_random() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(300);
        let learned = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        let random = run_policy(&net, &cfg, &mut Random);
        assert!(
            learned.average_expected_kbps > random.average_expected_kbps,
            "cs-ucb {} vs random {}",
            learned.average_expected_kbps,
            random.average_expected_kbps
        );
    }

    #[test]
    fn regret_series_only_with_optimum() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(20);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert!(res.practical_regret.is_empty());

        let opt = net.optimal().weight;
        let cfg = cfg.with_optimal_kbps(opt);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.practical_regret.len(), 20);
        // Practical regret is bounded below by R1·(1 − θ·max/opt); just
        // check it is finite and decreasing-ish over the run.
        assert!(res.practical_regret.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(25).with_seed(3);
        let a = run_policy(&net, &cfg, &mut Llr::new(net.n_nodes(), 2.0));
        let b = run_policy(&net, &cfg, &mut Llr::new(net.n_nodes(), 2.0));
        assert_eq!(a, b);
    }

    #[test]
    fn longer_periods_raise_effective_throughput_late() {
        // With stale weights the fraction of airtime spent deciding drops:
        // y=10 must beat y=1 in effective throughput for the same policy
        // once learning has mostly settled.
        let net = small_net();
        let base = Algorithm2Config::default().with_horizon(400);
        let frequent = run_policy(&net, &base.clone(), &mut CsUcb::new(2.0));
        let stale = run_policy(&net, &base.with_update_period(10), &mut CsUcb::new(2.0));
        assert!(
            stale.average_effective_kbps > frequent.average_effective_kbps,
            "stale {} vs frequent {}",
            stale.average_effective_kbps,
            frequent.average_effective_kbps
        );
    }

    #[test]
    fn per_vertex_tx_survives_the_whole_run() {
        // Regression: the WB-phase engine used to be rebuilt every round,
        // so per-vertex transmission counts were discarded each slot and
        // only scalar totals survived.
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(50);
        let res = run_policy(&net, &cfg, &mut CsUcb::new(2.0));
        assert_eq!(res.per_vertex_tx.len(), net.n_vertices());
        let sum: u64 = res.per_vertex_tx.iter().sum();
        // Every relay broadcast is charged to exactly one vertex.
        assert_eq!(sum, res.comm.transmissions);
        assert!(sum > 0, "a 50-slot run must transmit");
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let net = small_net();
        let cfg = Algorithm2Config::default().with_horizon(0);
        let _ = run_policy(&net, &cfg, &mut Random);
    }
}
