//! Small statistics helpers for experiment outputs.

/// Arithmetic mean (`0` for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (`0` for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Downsamples a series to at most `max_points` evenly spaced points
/// (always keeping the last point). Returns `(index, value)` pairs.
pub fn downsample(xs: &[f64], max_points: usize) -> Vec<(usize, f64)> {
    if xs.is_empty() || max_points == 0 {
        return Vec::new();
    }
    if xs.len() <= max_points {
        return xs.iter().copied().enumerate().collect();
    }
    let stride = xs.len() as f64 / max_points as f64;
    let mut out: Vec<(usize, f64)> = (0..max_points)
        .map(|i| {
            let idx = ((i as f64 + 0.5) * stride) as usize;
            let idx = idx.min(xs.len() - 1);
            (idx, xs[idx])
        })
        .collect();
    let last = xs.len() - 1;
    if out.last().map(|&(i, _)| i) != Some(last) {
        out.push((last, xs[last]));
    }
    out.dedup_by_key(|&mut (i, _)| i);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn downsample_short_series_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(downsample(&xs, 10), vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
    }

    #[test]
    fn downsample_keeps_last_point_and_bounds_size() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let ds = downsample(&xs, 10);
        assert!(ds.len() <= 11);
        assert_eq!(*ds.last().unwrap(), (999, 999.0));
        for w in ds.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn downsample_degenerate_inputs() {
        assert!(downsample(&[], 5).is_empty());
        assert!(downsample(&[1.0], 0).is_empty());
    }
}
