//! Multi-seed sweeps: aggregate experiment outputs across random
//! instances.
//!
//! The paper reports single-instance simulations; this module adds the
//! missing statistical layer — run any per-seed measurement across a seed
//! range and report mean ± standard deviation, so claims like "Algorithm 2
//! outperforms LLR" can be checked for robustness rather than luck.

use crate::{
    network::Network,
    runner::{run_policy, Algorithm2Config},
    stats,
};
use mhca_bandit::policies::IndexPolicy;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Mean ± population standard deviation of a measurement across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Aggregate {
    /// Aggregates a slice of per-seed observations.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "need at least one sample");
        Aggregate {
            runs: xs.len(),
            mean: stats::mean(xs),
            std_dev: stats::std_dev(xs),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Runs `measure` once per seed in `seeds` — **in parallel**, one rayon
/// task per seed — and aggregates the results.
///
/// `measure` must be a pure function of the seed (`Fn + Sync`): every
/// workload in this repository derives its network, channel realizations,
/// and policy randomness from the seed alone, so per-seed runs are
/// embarrassingly parallel and the aggregate is identical to a serial
/// sweep (results are collected in seed order).
///
/// For stateful measurements, see [`sweep_serial`].
pub fn sweep<F: Fn(u64) -> f64 + Sync>(
    seeds: impl IntoIterator<Item = u64>,
    measure: F,
) -> Aggregate {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let xs: Vec<f64> = seeds.into_par_iter().map(measure).collect();
    Aggregate::from_samples(&xs)
}

/// Serial variant of [`sweep`] for measurements that mutate shared state
/// between seeds (`FnMut`).
pub fn sweep_serial<F: FnMut(u64) -> f64>(
    seeds: impl IntoIterator<Item = u64>,
    mut measure: F,
) -> Aggregate {
    let xs: Vec<f64> = seeds.into_iter().map(&mut measure).collect();
    Aggregate::from_samples(&xs)
}

/// Runs `work` over `items` on at most `workers` threads, delivering each
/// `(index, result)` to `sink` **on the calling thread** as results
/// complete (completion order, not index order).
///
/// Unlike the even chunking of the rayon substrate, this is a shared work
/// queue: a slow item stalls one worker, not a whole chunk — which is
/// what a heterogeneous campaign job matrix needs. `sink` returning
/// `false` cancels the run: items not yet started are dropped, in-flight
/// results are drained but no longer delivered.
///
/// `workers == 0` is treated as 1.
pub fn for_each_bounded<T, R, F, S>(items: Vec<T>, workers: usize, work: F, mut sink: S)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    S: FnMut(usize, R) -> bool,
{
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Mutex};

    let n = items.len();
    if n == 0 {
        return;
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        // Strictly in-order serial execution — bit-identical to the
        // historical serial paths.
        for (i, item) in items.into_iter().enumerate() {
            if !sink(i, work(i, item)) {
                return;
            }
        }
        return;
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let cancelled = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (queue, cancelled, work) = (&queue, &cancelled, &work);
            scope.spawn(move || loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let next = queue.lock().expect("work queue poisoned").pop_front();
                let Some((i, item)) = next else { break };
                // A closed channel means the receiver gave up; stop.
                if tx.send((i, work(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut open = true;
        for (i, result) in rx {
            if open && !sink(i, result) {
                open = false;
                cancelled.store(true, Ordering::Relaxed);
            }
        }
    });
}

/// Order-preserving variant of [`for_each_bounded`]: runs every item on
/// at most `workers` threads and returns the results in item order.
pub fn run_bounded<T, R, F>(items: Vec<T>, workers: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for_each_bounded(items, workers, work, |i, r| {
        out[i] = Some(r);
        true
    });
    out.into_iter()
        .map(|r| r.expect("every item completes"))
        .collect()
}

/// Head-to-head comparison of two policies across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Name of policy A.
    pub policy_a: String,
    /// Name of policy B.
    pub policy_b: String,
    /// Aggregate expected throughput of policy A (kbps).
    pub a: Aggregate,
    /// Aggregate expected throughput of policy B (kbps).
    pub b: Aggregate,
    /// Fraction of seeds where A strictly beat B.
    pub a_win_rate: f64,
}

/// Compares two policy constructors across seeded random networks: each
/// seed builds one network (`n` users, `m` channels, degree `d`) and runs
/// both policies on identical channel realizations (paired comparison).
/// Seeds run in parallel (each seed's pair of runs shares a rayon task so
/// the pairing — and hence the win rate — is exact).
///
/// The measured quantity is average expected throughput over the horizon.
#[allow(clippy::too_many_arguments)]
pub fn compare_policies<A, B>(
    n: usize,
    m: usize,
    d: f64,
    horizon: u64,
    seeds: std::ops::Range<u64>,
    cfg: &Algorithm2Config,
    make_a: A,
    make_b: B,
) -> PolicyComparison
where
    A: Fn(&Network) -> Box<dyn IndexPolicy> + Sync,
    B: Fn(&Network) -> Box<dyn IndexPolicy> + Sync,
{
    let total = (seeds.end.saturating_sub(seeds.start)) as usize;
    let per_seed: Vec<(f64, f64, String, String)> = seeds
        .into_par_iter()
        .map(|seed| {
            let net = Network::random(n, m, d, 0.1, seed);
            let run_cfg = cfg.clone().with_horizon(horizon).with_seed(seed);
            let mut pa = make_a(&net);
            let mut pb = make_b(&net);
            let name_a = pa.name().to_string();
            let name_b = pb.name().to_string();
            let ra = run_policy(&net, &run_cfg, pa.as_mut());
            let rb = run_policy(&net, &run_cfg, pb.as_mut());
            (
                ra.average_expected_kbps,
                rb.average_expected_kbps,
                name_a,
                name_b,
            )
        })
        .collect();
    let xs_a: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
    let xs_b: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
    let wins = per_seed.iter().filter(|r| r.0 > r.1).count();
    let (name_a, name_b) = per_seed
        .last()
        .map(|r| (r.2.clone(), r.3.clone()))
        .unwrap_or_default();
    PolicyComparison {
        policy_a: name_a,
        policy_b: name_b,
        a: Aggregate::from_samples(&xs_a),
        b: Aggregate::from_samples(&xs_b),
        a_win_rate: wins as f64 / total.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_bandit::policies::{CsUcb, Random};

    #[test]
    fn aggregate_statistics() {
        let a = Aggregate::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a.runs, 3);
        assert_eq!(a.mean, 2.0);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert!((a.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sweep_applies_measure_per_seed() {
        let agg = sweep(0..5, |seed| seed as f64);
        assert_eq!(agg.runs, 5);
        assert_eq!(agg.mean, 2.0);
        assert_eq!(agg.max, 4.0);
    }

    #[test]
    fn cs_ucb_beats_random_across_seeds() {
        let cfg = Algorithm2Config::default();
        let cmp = compare_policies(
            8,
            2,
            2.5,
            150,
            0..4,
            &cfg,
            |_net| Box::new(CsUcb::new(2.0)),
            |_net| Box::new(Random),
        );
        assert_eq!(cmp.policy_a, "cs-ucb");
        assert_eq!(cmp.policy_b, "random");
        assert!(cmp.a.mean > cmp.b.mean);
        assert!(cmp.a_win_rate >= 0.75, "win rate {}", cmp.a_win_rate);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_aggregate_rejected() {
        let _ = Aggregate::from_samples(&[]);
    }

    #[test]
    fn run_bounded_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [0, 1, 2, 7, 64] {
            let got = run_bounded(items.clone(), workers, |_, x| x * 3 + 1);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn for_each_bounded_delivers_every_result_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let started = AtomicUsize::new(0);
        let mut seen = [0u32; 40];
        for_each_bounded(
            (0..40usize).collect(),
            4,
            |_, i| {
                started.fetch_add(1, Ordering::Relaxed);
                i
            },
            |idx, i| {
                assert_eq!(idx, i);
                seen[i] += 1;
                true
            },
        );
        assert_eq!(started.load(Ordering::Relaxed), 40);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn for_each_bounded_cancellation_stops_unstarted_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ran = AtomicUsize::new(0);
        let mut delivered = 0;
        for_each_bounded(
            (0..1000usize).collect(),
            2,
            |_, i| {
                ran.fetch_add(1, Ordering::Relaxed);
                // Non-instant work, so the sink's cancel lands while the
                // queue still holds unstarted items.
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            },
            |_, _| {
                delivered += 1;
                delivered < 5 // cancel after five deliveries
            },
        );
        assert_eq!(delivered, 5, "sink stops being called after cancel");
        let ran = ran.load(Ordering::Relaxed);
        assert!(
            ran < 1000,
            "cancellation must drop unstarted items, ran {ran}"
        );
    }

    #[test]
    fn bounded_pool_matches_rayon_sweep() {
        // The campaign runner's pool and the rayon-based sweep must agree
        // on a pure per-seed measurement.
        let seeds: Vec<u64> = (0..16).collect();
        let measure = |seed: u64| (seed as f64).sqrt();
        let pooled = run_bounded(seeds.clone(), 3, |_, s| measure(s));
        let agg = sweep(seeds, measure);
        assert_eq!(Aggregate::from_samples(&pooled), agg);
    }
}
