//! The Table II time model and practical-throughput arithmetic.

use serde::{Deserialize, Serialize};

/// Timing parameters of a single round (paper Table II and Fig. 2).
///
/// A round of length `t_a` splits into a strategy-decision part `t_s` and a
/// data-transmission part `t_d`. The decision part consists of mini-rounds
/// of length `t_m = 2·t_b + t_l` (two local broadcasts plus local
/// computation); the paper's simulations use `t_s = 4·t_m`.
///
/// Defaults reproduce Table II exactly:
/// `t_a = 2000 ms`, `t_b = 100 ms`, `t_l = 50 ms`, `t_d = 1000 ms`,
/// hence `t_m = 250 ms`, `t_s = 1000 ms`, and `θ = t_d/t_a = 0.5`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    /// Round length `t_a` in milliseconds.
    pub round_ms: f64,
    /// Local broadcast time `t_b` in milliseconds.
    pub broadcast_ms: f64,
    /// Local computation time `t_l` in milliseconds.
    pub compute_ms: f64,
    /// Data transmission time `t_d` in milliseconds.
    pub data_ms: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            round_ms: 2000.0,
            broadcast_ms: 100.0,
            compute_ms: 50.0,
            data_ms: 1000.0,
        }
    }
}

impl TimeModel {
    /// Mini-round length `t_m = 2·t_b + t_l` (one leader-declaration
    /// broadcast, one determination broadcast, plus local MWIS computation).
    pub fn miniround_ms(&self) -> f64 {
        2.0 * self.broadcast_ms + self.compute_ms
    }

    /// Strategy-decision length `t_s = t_a − t_d`.
    pub fn decision_ms(&self) -> f64 {
        self.round_ms - self.data_ms
    }

    /// Number of mini-rounds that fit in the decision part
    /// (`t_s / t_m`; 4 under Table II — one for weight update, the rest
    /// for strategy decision, per Section V).
    pub fn minirounds_per_decision(&self) -> usize {
        (self.decision_ms() / self.miniround_ms()).floor() as usize
    }

    /// Airtime fraction `θ = t_d / t_a` — the effective-throughput scaling
    /// of Section IV-E.
    ///
    /// # Panics
    ///
    /// Panics if `round_ms <= 0`.
    pub fn theta(&self) -> f64 {
        assert!(self.round_ms > 0.0, "round length must be positive");
        self.data_ms / self.round_ms
    }

    /// Effective throughput of a period of `y` slots under stale-weight
    /// updates (Section V-C): the first slot pays the decision overhead
    /// (contributes `t_d`), the remaining `y−1` slots transmit the whole
    /// round (`t_a` each):
    ///
    /// ```text
    /// R_P(z) = ( R_x(zy+1)·t_d + Σ_{t=zy+2}^{(z+1)y} R_x(t)·t_a ) / (y·t_a)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `observed.is_empty()`.
    pub fn period_effective_throughput(&self, observed: &[f64]) -> f64 {
        assert!(!observed.is_empty(), "need at least one slot per period");
        let y = observed.len() as f64;
        let first = observed[0] * self.data_ms;
        let rest: f64 = observed[1..].iter().map(|r| r * self.round_ms).sum();
        (first + rest) / (y * self.round_ms)
    }

    /// Effective *estimated* throughput of a period under stale weights
    /// (Section V-C): `W_P(z) = ((y−1)·t_a + t_d)·W_x(zy+1) / (y·t_a)`.
    ///
    /// # Panics
    ///
    /// Panics if `y == 0`.
    pub fn period_effective_estimate(&self, estimated: f64, y: usize) -> f64 {
        assert!(y > 0, "period must contain at least one slot");
        ((y as f64 - 1.0) * self.round_ms + self.data_ms) * estimated / (y as f64 * self.round_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let t = TimeModel::default();
        assert_eq!(t.round_ms, 2000.0);
        assert_eq!(t.miniround_ms(), 250.0);
        assert_eq!(t.decision_ms(), 1000.0);
        assert_eq!(t.minirounds_per_decision(), 4);
        assert_eq!(t.theta(), 0.5);
    }

    #[test]
    fn single_slot_period_is_theta_scaled() {
        let t = TimeModel::default();
        let r = t.period_effective_throughput(&[100.0]);
        assert!((r - 50.0).abs() < 1e-12); // 0.5 · R_x, as in Section V
    }

    #[test]
    fn long_periods_approach_full_throughput() {
        let t = TimeModel::default();
        let obs = vec![100.0; 20];
        let r20 = t.period_effective_throughput(&obs);
        let r5 = t.period_effective_throughput(&obs[..5]);
        let r1 = t.period_effective_throughput(&obs[..1]);
        assert!(r1 < r5 && r5 < r20);
        // y=20 ⇒ 39/40 of the ideal (paper Section V-C).
        assert!((r20 - 100.0 * 39.0 / 40.0).abs() < 1e-9);
        // y=5 ⇒ 9/10.
        assert!((r5 - 100.0 * 9.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_scaling_matches_paper_fraction() {
        let t = TimeModel::default();
        // y=1: (0·ta + td)/ta = θ.
        assert!((t.period_effective_estimate(100.0, 1) - 50.0).abs() < 1e-12);
        // y=10: (9·2000+1000)/20000 = 19/20.
        assert!((t.period_effective_estimate(100.0, 10) - 95.0).abs() < 1e-12);
    }

    #[test]
    fn custom_model_theta() {
        let t = TimeModel {
            round_ms: 1000.0,
            broadcast_ms: 50.0,
            compute_ms: 25.0,
            data_ms: 750.0,
        };
        assert_eq!(t.theta(), 0.75);
        assert_eq!(t.miniround_ms(), 125.0);
        assert_eq!(t.minirounds_per_decision(), 2);
    }
}
