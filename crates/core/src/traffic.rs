//! Traffic and queueing layer: arrival processes, per-vertex FIFO queues,
//! and multi-hop flow forwarding over the conflict graph.
//!
//! Every other metric in the stack is per-link saturation throughput; this
//! module turns the channel-access outcome into a *serving* model. A
//! [`TrafficSpec`] names an arrival process, a set of end-to-end flows
//! (source node, destination node, optional per-packet deadline), and the
//! packet size in kbps-slots. The [`QueueEngine`] advances per-vertex FIFO
//! queues once per data slot from the round loop's capture outcome: a
//! vertex that captured a channel earns service credit proportional to its
//! observed rate, and whole packets are forwarded hop-by-hop along
//! shortest paths precomputed on the CSR conflict graph until they reach
//! the flow's destination.
//!
//! Determinism contract: arrival draws come from a **dedicated
//! counter-based stream** (the same SplitMix64 construction as the
//! `mhca_sim` loss stream), a pure function of `(traffic seed, flow,
//! slot)`. The main run RNG is never touched, so enabling traffic leaves
//! every existing artifact byte-identical — pinned by
//! `traffic_leaves_the_untraced_run_byte_identical` in `runner.rs`.
//! Forwarded packets become serviceable only at the *next* slot
//! (`available_from = slot + 1`), which removes any dependence on the
//! order vertices appear in the per-slot capture list.
//!
//! Delay semantics: a packet delivered in its arrival slot has delay 1
//! (delays count occupied slots, so they are strictly positive and
//! log-bucket cleanly). Delivery happens when the packet is *served at the
//! penultimate hop* — the last transmission is what lands it on the
//! destination.

use mhca_graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// SplitMix64 finalizer — the same bijective avalanche mix the loss
/// stream uses (`mhca_sim::loss`), replicated here so the arrival stream
/// is a private, documented construction rather than a cross-crate
/// dependency on a sampler internal.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Weyl increment of SplitMix64 (odd, so every counter maps to a distinct
/// pre-mix state).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Uniform value in the open interval `(0, 1)` for slot `slot` of flow
/// `flow` — one draw per (flow, slot), independent of every other stream
/// in the run.
#[inline]
fn unit(seed: u64, flow: u64, slot: u64) -> f64 {
    let x = mix(seed
        .wrapping_add(flow.wrapping_mul(GOLDEN))
        .wrapping_add(mix(slot.wrapping_mul(GOLDEN))));
    ((x >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Packet-arrival process shared by every flow of a [`TrafficSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: `rate` packets per slot in expectation, sampled
    /// by inverse CDF from one uniform per (flow, slot).
    Poisson {
        /// Mean packets per slot (positive, finite).
        rate: f64,
    },
    /// One packet every `period` slots, starting at slot 0. Uses no
    /// randomness at all — the closed-form test workload.
    Deterministic {
        /// Slots between consecutive packets.
        period: u64,
    },
    /// Bursty on/off arrivals: with probability `rate / burst` per slot a
    /// burst of `burst` packets arrives at once, so the mean rate matches
    /// the Poisson process of the same `rate` while the tail behaves very
    /// differently (the König & Kwofie large-deviations regime).
    Bursty {
        /// Mean packets per slot (positive, at most `burst`).
        rate: f64,
        /// Packets per burst.
        burst: u64,
    },
}

impl ArrivalProcess {
    /// Packets arriving for `flow` at `slot` — a pure function of the
    /// dedicated stream, so any slot of any flow can be sampled in any
    /// order with identical results.
    pub fn arrivals_at(&self, seed: u64, flow: u64, slot: u64) -> u64 {
        match *self {
            ArrivalProcess::Poisson { rate } => {
                let u = unit(seed, flow, slot);
                // Inverse-CDF walk; for per-slot rates well under the
                // ~700 where exp(-rate) underflows, this terminates in
                // O(rate) steps.
                let mut k = 0u64;
                let mut p = (-rate).exp();
                let mut cum = p;
                while u > cum && k < 1_000 {
                    k += 1;
                    p *= rate / k as f64;
                    cum += p;
                }
                k
            }
            ArrivalProcess::Deterministic { period } => {
                u64::from(slot.is_multiple_of(period.max(1)))
            }
            ArrivalProcess::Bursty { rate, burst } => {
                let burst = burst.max(1);
                let p = (rate / burst as f64).min(1.0);
                if unit(seed, flow, slot) < p {
                    burst
                } else {
                    0
                }
            }
        }
    }

    /// Short kebab-case name for spec JSON and CSV commentary.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Deterministic { .. } => "deterministic",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }
}

/// One end-to-end flow: packets arrive at `src` and are forwarded
/// hop-by-hop to `dst` along a shortest conflict-graph path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source node (index into the conflict graph `G`, not `H`).
    pub src: usize,
    /// Destination node (must differ from `src`).
    pub dst: usize,
    /// Optional delay bound in slots: a delivery with `delay > deadline`
    /// still counts as delivered, but not as on-time.
    pub deadline: Option<u64>,
}

/// Declarative traffic workload: arrival process × flows × packet size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Arrival process shared by every flow.
    pub arrivals: ArrivalProcess,
    /// The flows (at least one).
    pub flows: Vec<FlowSpec>,
    /// Packet size expressed as the kbps-slots one packet costs: a vertex
    /// that captured a channel observed at `x` kbps earns `x /
    /// packet_kbps` packets of service that slot.
    pub packet_kbps: f64,
    /// Seed of the dedicated arrival stream (independent of the run
    /// seed, the loss stream, and the channel processes).
    pub seed: u64,
}

impl TrafficSpec {
    /// A Poisson workload at `rate` packets/slot over `flows`, with the
    /// default packet size of 100 kbps-slots and arrival-stream seed 0.
    pub fn poisson(rate: f64, flows: Vec<FlowSpec>) -> Self {
        TrafficSpec {
            arrivals: ArrivalProcess::Poisson { rate },
            flows,
            packet_kbps: 100.0,
            seed: 0,
        }
    }
}

/// One delivered packet, as reported to observers for the current period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Flow index into [`TrafficSpec::flows`].
    pub flow: u32,
    /// End-to-end delay in slots (≥ 1; see the module docs).
    pub delay: u64,
    /// Whether the delay met the flow's deadline (always true for flows
    /// without one).
    pub ontime: bool,
}

/// The per-period traffic view carried on a `RoundRecord`: what arrived,
/// what was delivered (with per-packet delays), and the backlog standing
/// in every per-node queue at period end.
#[derive(Debug, Clone, Copy)]
pub struct TrafficRound<'a> {
    /// Packets that arrived this period (all flows).
    pub arrivals: u64,
    /// Deliveries this period, one entry per packet.
    pub deliveries: &'a [Delivery],
    /// Per-node queue backlog at period end (`len == n_nodes`).
    pub backlogs: &'a [u64],
}

/// Lifetime totals for one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowTotals {
    /// Packets that arrived at the source.
    pub arrivals: u64,
    /// Packets delivered end-to-end.
    pub delivered: u64,
    /// Deliveries that met the deadline.
    pub ontime: u64,
    /// Sum of delivery delays (slots), for mean-delay reporting.
    pub delay_sum: u64,
    /// Largest delivery delay seen.
    pub max_delay: u64,
}

impl FlowTotals {
    /// Mean end-to-end delay over delivered packets (0 when none).
    pub fn mean_delay(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.delay_sum as f64 / self.delivered as f64
        }
    }
}

/// End-of-run traffic totals attached to a `RunResult`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSummary {
    /// Per-flow lifetime totals, indexed like [`TrafficSpec::flows`].
    pub flows: Vec<FlowTotals>,
    /// Total arrivals across flows.
    pub arrivals: u64,
    /// Total deliveries across flows.
    pub delivered: u64,
    /// Total on-time deliveries across flows.
    pub ontime: u64,
    /// Packets still queued somewhere when the run ended.
    pub backlog: u64,
}

impl TrafficSummary {
    /// Delay-constrained utility: `Σ_f ln(1 + ontime_f)`, the
    /// proportional-fair (log-utility) objective of Khodaian & Khalaj
    /// applied to on-time delivered packets. Concave per flow, so a
    /// policy that starves one flow to fatten another scores worse than
    /// one that serves both — the metric PolicyDuel ranks by when
    /// traffic is configured.
    pub fn delay_utility(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| (1.0 + f.ontime as f64).ln())
            .sum()
    }

    /// Mean end-to-end delay over all delivered packets (0 when none).
    pub fn mean_delay(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.flows.iter().map(|f| f.delay_sum).sum::<u64>() as f64 / self.delivered as f64
        }
    }
}

/// A packet in flight: which flow it belongs to, when it was born, which
/// hop of its path it currently queues at, and the first slot it may be
/// served (forwarded packets wait one slot; see the module docs).
#[derive(Debug, Clone, Copy)]
struct Packet {
    flow: u32,
    hop: u32,
    born: u64,
    available_from: u64,
}

/// Per-vertex FIFO queue state advanced once per data slot from the
/// channel-access outcome. Queues are unbounded — the `QueueTail`
/// observer judges backlogs against its configurable bound; the engine
/// itself never drops a packet, so Lindley conservation
/// (`arrivals − deliveries == backlog`) holds exactly at every slot.
#[derive(Debug, Clone)]
pub struct QueueEngine {
    arrivals: ArrivalProcess,
    seed: u64,
    packet_kbps: f64,
    /// Channels per node: capture outcomes name `H`-vertices, and
    /// `vertex / m` is the owning node.
    m: usize,
    /// Per-flow shortest path (nodes, `src..=dst`); empty when the
    /// destination is unreachable — such a flow generates no packets and
    /// is reported with zero totals (see [`QueueEngine::routed`]).
    paths: Vec<Vec<usize>>,
    deadlines: Vec<Option<u64>>,
    queues: Vec<VecDeque<Packet>>,
    /// Fractional service credit per node (kbps-slots / packet_kbps).
    credit: Vec<f64>,
    /// Per-node queue lengths, maintained incrementally.
    backlogs: Vec<u64>,
    totals: Vec<FlowTotals>,
    period_arrivals: u64,
    period_deliveries: Vec<Delivery>,
}

impl QueueEngine {
    /// Builds the engine for a traffic spec on conflict graph `g` with
    /// `m` channels per node, precomputing one shortest path per flow by
    /// BFS (ties broken toward the lowest-indexed neighbor, so paths are
    /// deterministic).
    ///
    /// # Panics
    ///
    /// Panics if a flow's endpoints are out of range or equal — the spec
    /// layers validate both up front.
    pub fn new(spec: &TrafficSpec, g: &Graph, m: usize) -> Self {
        let n = g.n();
        let paths = spec
            .flows
            .iter()
            .map(|f| {
                assert!(f.src < n && f.dst < n, "flow endpoint out of range");
                assert_ne!(f.src, f.dst, "flow src == dst");
                shortest_path(g, f.src, f.dst)
            })
            .collect();
        QueueEngine {
            arrivals: spec.arrivals,
            seed: spec.seed,
            packet_kbps: spec.packet_kbps,
            m: m.max(1),
            paths,
            deadlines: spec.flows.iter().map(|f| f.deadline).collect(),
            queues: vec![VecDeque::new(); n],
            credit: vec![0.0; n],
            backlogs: vec![0; n],
            totals: vec![FlowTotals::default(); spec.flows.len()],
            period_arrivals: 0,
            period_deliveries: Vec::new(),
        }
    }

    /// Whether flow `f`'s destination was reachable from its source (an
    /// unreachable flow is inert: no arrivals, zero totals).
    pub fn routed(&self, f: usize) -> bool {
        !self.paths[f].is_empty()
    }

    /// Number of flows.
    pub fn n_flows(&self) -> usize {
        self.paths.len()
    }

    /// Clears the per-period delivery scratch; the runner calls this at
    /// the start of every decision period.
    pub fn begin_period(&mut self) {
        self.period_arrivals = 0;
        self.period_deliveries.clear();
    }

    /// Advances one data slot: draws arrivals for every flow from the
    /// dedicated stream, then serves the captured vertices. `served` is
    /// the per-slot capture outcome — `(H-vertex, observed kbps)` pairs —
    /// exactly as the round loop's observation buffer holds them.
    pub fn step_slot(&mut self, slot: u64, served: &[(usize, f64)]) {
        // Arrivals first: a packet born this slot may be served this slot
        // (delay 1 end-to-end on a one-hop flow with spare capacity).
        for f in 0..self.paths.len() {
            if self.paths[f].is_empty() {
                continue;
            }
            let count = self.arrivals.arrivals_at(self.seed, f as u64, slot);
            if count == 0 {
                continue;
            }
            let v = self.paths[f][0];
            for _ in 0..count {
                self.queues[v].push_back(Packet {
                    flow: f as u32,
                    hop: 0,
                    born: slot,
                    available_from: slot,
                });
            }
            self.backlogs[v] += count;
            self.totals[f].arrivals += count;
            self.period_arrivals += count;
        }
        // Service: each captured vertex earns credit proportional to its
        // observed rate and serves whole packets FIFO. Forwarded packets
        // carry `available_from = slot + 1`, so nothing here depends on
        // the order of `served`.
        for &(vertex, kbps) in served {
            let v = vertex / self.m;
            if self.queues[v].is_empty() {
                continue; // no banking service while idle
            }
            self.credit[v] += kbps / self.packet_kbps;
            while self.credit[v] >= 1.0 {
                let Some(front) = self.queues[v].front() else {
                    break;
                };
                if front.available_from > slot {
                    break;
                }
                let pkt = self.queues[v].pop_front().expect("front just checked");
                self.credit[v] -= 1.0;
                self.backlogs[v] -= 1;
                let path = &self.paths[pkt.flow as usize];
                let next = pkt.hop as usize + 1;
                if next == path.len() - 1 {
                    // Served at the penultimate hop: the packet lands on
                    // the destination this slot.
                    let f = pkt.flow as usize;
                    let delay = slot - pkt.born + 1;
                    let ontime = self.deadlines[f].is_none_or(|d| delay <= d);
                    let t = &mut self.totals[f];
                    t.delivered += 1;
                    t.ontime += u64::from(ontime);
                    t.delay_sum += delay;
                    t.max_delay = t.max_delay.max(delay);
                    self.period_deliveries.push(Delivery {
                        flow: pkt.flow,
                        delay,
                        ontime,
                    });
                } else {
                    let w = path[next];
                    self.queues[w].push_back(Packet {
                        hop: next as u32,
                        available_from: slot + 1,
                        ..pkt
                    });
                    self.backlogs[w] += 1;
                }
            }
            if self.queues[v].is_empty() {
                self.credit[v] = 0.0;
            }
        }
    }

    /// The current period's traffic view for observer emission.
    pub fn round(&self) -> TrafficRound<'_> {
        TrafficRound {
            arrivals: self.period_arrivals,
            deliveries: &self.period_deliveries,
            backlogs: &self.backlogs,
        }
    }

    /// Total packets currently queued anywhere.
    pub fn backlog(&self) -> u64 {
        self.backlogs.iter().sum()
    }

    /// Lifetime totals for the run summary.
    pub fn summary(&self) -> TrafficSummary {
        TrafficSummary {
            flows: self.totals.clone(),
            arrivals: self.totals.iter().map(|t| t.arrivals).sum(),
            delivered: self.totals.iter().map(|t| t.delivered).sum(),
            ontime: self.totals.iter().map(|t| t.ontime).sum(),
            backlog: self.backlog(),
        }
    }

    /// Serializes the queue state into `state` under `prefix`-prefixed
    /// keys — packets flattened in (vertex, FIFO) order into parallel
    /// vectors, plus credits and per-flow totals. Called at decision
    /// boundaries only, so the per-period scratch is empty by contract
    /// and never persisted.
    pub fn snapshot_into(&self, state: &mut mhca_bandit::StateMap, prefix: &str) {
        let mut lens = Vec::with_capacity(self.queues.len());
        let mut flow = Vec::new();
        let mut hop = Vec::new();
        let mut born = Vec::new();
        let mut avail = Vec::new();
        for q in &self.queues {
            lens.push(q.len() as u64);
            for p in q {
                flow.push(p.flow as u64);
                hop.push(p.hop as u64);
                born.push(p.born);
                avail.push(p.available_from);
            }
        }
        state.put_u64_vec(format!("{prefix}.queue_lens"), lens);
        state.put_u64_vec(format!("{prefix}.pkt_flow"), flow);
        state.put_u64_vec(format!("{prefix}.pkt_hop"), hop);
        state.put_u64_vec(format!("{prefix}.pkt_born"), born);
        state.put_u64_vec(format!("{prefix}.pkt_avail"), avail);
        state.put_f64_vec(format!("{prefix}.credit"), self.credit.clone());
        state.put_u64_vec(
            format!("{prefix}.flow_arrivals"),
            self.totals.iter().map(|t| t.arrivals).collect::<Vec<_>>(),
        );
        state.put_u64_vec(
            format!("{prefix}.flow_delivered"),
            self.totals.iter().map(|t| t.delivered).collect::<Vec<_>>(),
        );
        state.put_u64_vec(
            format!("{prefix}.flow_ontime"),
            self.totals.iter().map(|t| t.ontime).collect::<Vec<_>>(),
        );
        state.put_u64_vec(
            format!("{prefix}.flow_delay_sum"),
            self.totals.iter().map(|t| t.delay_sum).collect::<Vec<_>>(),
        );
        state.put_u64_vec(
            format!("{prefix}.flow_max_delay"),
            self.totals.iter().map(|t| t.max_delay).collect::<Vec<_>>(),
        );
    }

    /// Restores the state written by [`QueueEngine::snapshot_into`],
    /// validating every length against this engine's configuration.
    pub fn restore_from(
        &mut self,
        state: &mhca_bandit::StateMap,
        prefix: &str,
    ) -> Result<(), mhca_bandit::StateError> {
        let n = self.queues.len();
        let n_flows = self.totals.len();
        let lens = state.get_u64_vec_exact(&format!("{prefix}.queue_lens"), n)?;
        let total: u64 = lens.iter().sum();
        let total = total as usize;
        let flow = state.get_u64_vec_exact(&format!("{prefix}.pkt_flow"), total)?;
        let hop = state.get_u64_vec_exact(&format!("{prefix}.pkt_hop"), total)?;
        let born = state.get_u64_vec_exact(&format!("{prefix}.pkt_born"), total)?;
        let avail = state.get_u64_vec_exact(&format!("{prefix}.pkt_avail"), total)?;
        let credit = state.get_f64_vec_exact(&format!("{prefix}.credit"), n)?;
        let arrivals = state.get_u64_vec_exact(&format!("{prefix}.flow_arrivals"), n_flows)?;
        let delivered = state.get_u64_vec_exact(&format!("{prefix}.flow_delivered"), n_flows)?;
        let ontime = state.get_u64_vec_exact(&format!("{prefix}.flow_ontime"), n_flows)?;
        let delay_sum = state.get_u64_vec_exact(&format!("{prefix}.flow_delay_sum"), n_flows)?;
        let max_delay = state.get_u64_vec_exact(&format!("{prefix}.flow_max_delay"), n_flows)?;
        let mut k = 0usize;
        for (v, q) in self.queues.iter_mut().enumerate() {
            q.clear();
            self.backlogs[v] = lens[v];
            for _ in 0..lens[v] {
                q.push_back(Packet {
                    flow: flow[k] as u32,
                    hop: hop[k] as u32,
                    born: born[k],
                    available_from: avail[k],
                });
                k += 1;
            }
        }
        self.credit = credit;
        for (f, t) in self.totals.iter_mut().enumerate() {
            *t = FlowTotals {
                arrivals: arrivals[f],
                delivered: delivered[f],
                ontime: ontime[f],
                delay_sum: delay_sum[f],
                max_delay: max_delay[f],
            };
        }
        self.period_arrivals = 0;
        self.period_deliveries.clear();
        Ok(())
    }
}

/// Shortest path `src..=dst` on `g` (BFS from `dst`; each step goes to
/// the lowest-indexed neighbor one closer to the destination). Empty when
/// `dst` is unreachable.
fn shortest_path(g: &Graph, src: usize, dst: usize) -> Vec<usize> {
    let dist = g.bfs_distances(dst);
    let Some(mut d) = dist[src] else {
        return Vec::new();
    };
    let mut path = Vec::with_capacity(d + 1);
    let mut v = src;
    path.push(v);
    while d > 0 {
        // Neighbor lists are sorted, so `find` picks the lowest index —
        // the deterministic tie-break.
        let next = g
            .neighbors(v)
            .iter()
            .copied()
            .find(|&w| dist[w] == Some(d - 1))
            .expect("BFS distance must decrease along some neighbor");
        v = next;
        d -= 1;
        path.push(v);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhca_graph::topology;

    fn line_flow(n: usize, src: usize, dst: usize, arrivals: ArrivalProcess) -> QueueEngine {
        let spec = TrafficSpec {
            arrivals,
            flows: vec![FlowSpec {
                src,
                dst,
                deadline: None,
            }],
            packet_kbps: 100.0,
            seed: 7,
        };
        QueueEngine::new(&spec, &topology::line(n), 1)
    }

    /// Full service at every node: every node captures its channel at
    /// exactly one packet of credit per slot.
    fn serve_all(n: usize) -> Vec<(usize, f64)> {
        (0..n).map(|v| (v, 100.0)).collect()
    }

    #[test]
    fn arrival_stream_is_a_pure_function_of_flow_and_slot() {
        let p = ArrivalProcess::Poisson { rate: 0.4 };
        // Any order, identical draws.
        let forward: Vec<u64> = (0..200).map(|s| p.arrivals_at(5, 1, s)).collect();
        let backward: Vec<u64> = (0..200).rev().map(|s| p.arrivals_at(5, 1, s)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "stream must be counter-based"
        );
        // Distinct flows and seeds get distinct streams.
        let other_flow: Vec<u64> = (0..200).map(|s| p.arrivals_at(5, 2, s)).collect();
        let other_seed: Vec<u64> = (0..200).map(|s| p.arrivals_at(6, 1, s)).collect();
        assert_ne!(forward, other_flow);
        assert_ne!(forward, other_seed);
        // Mean roughly matches the rate.
        let total: u64 = (0..10_000).map(|s| p.arrivals_at(5, 1, s)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((mean - 0.4).abs() < 0.05, "Poisson mean drifted: {mean}");
    }

    #[test]
    fn bursty_matches_poisson_mean_with_fatter_bursts() {
        let b = ArrivalProcess::Bursty {
            rate: 0.4,
            burst: 8,
        };
        let draws: Vec<u64> = (0..20_000).map(|s| b.arrivals_at(3, 0, s)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((mean - 0.4).abs() < 0.1, "bursty mean drifted: {mean}");
        assert!(draws.iter().all(|&d| d == 0 || d == 8));
    }

    #[test]
    fn two_hop_line_closed_form_delay() {
        // Line 0—1—2, flow 0→2 (path [0, 1, 2]), one deterministic packet
        // every 4 slots, full service everywhere: each packet is served
        // at node 0 in its arrival slot and forwarded, then served at
        // node 1 the next slot — end-to-end delay exactly 2, no queueing.
        let mut q = line_flow(3, 0, 2, ArrivalProcess::Deterministic { period: 4 });
        let served = serve_all(3);
        let mut delays = Vec::new();
        for slot in 0..40 {
            q.begin_period();
            q.step_slot(slot, &served);
            delays.extend(q.round().deliveries.iter().map(|d| d.delay));
        }
        assert_eq!(delays.len(), 10, "arrivals at slots 0, 4, …, 36");
        assert!(delays.iter().all(|&d| d == 2), "delays: {delays:?}");
        assert_eq!(q.summary().delivered, 10);
        assert_eq!(q.backlog(), 0, "no queueing under full service");
    }

    #[test]
    fn lindley_conservation_under_overload() {
        // Heavy Poisson load, service only at the source, single-hop flow:
        // arrivals − deliveries == backlog at every slot, exactly.
        let mut q = line_flow(4, 1, 0, ArrivalProcess::Poisson { rate: 1.7 });
        for slot in 0..500 {
            q.begin_period();
            // Node 1 captures at half a packet per slot — overloaded.
            q.step_slot(slot, &[(1, 50.0)]);
            let s = q.summary();
            assert_eq!(
                s.arrivals - s.delivered,
                q.backlog(),
                "conservation broke at slot {slot}"
            );
        }
        let s = q.summary();
        assert!(s.arrivals > 700, "load sanity: {}", s.arrivals);
        assert!(q.backlog() > 0, "overload must leave a standing queue");
    }

    #[test]
    fn multi_hop_forwarding_waits_one_slot_per_hop() {
        // 5-node line, flow 0→4: minimum end-to-end delay is 4 (one
        // served hop per slot across path [0,1,2,3,4]).
        let mut q = line_flow(5, 0, 4, ArrivalProcess::Deterministic { period: 10 });
        let served = serve_all(5);
        let mut min_delay = u64::MAX;
        for slot in 0..60 {
            q.begin_period();
            q.step_slot(slot, &served);
            for d in q.round().deliveries {
                min_delay = min_delay.min(d.delay);
            }
        }
        assert_eq!(min_delay, 4);
    }

    #[test]
    fn deadlines_partition_deliveries() {
        let spec = TrafficSpec {
            arrivals: ArrivalProcess::Deterministic { period: 1 },
            flows: vec![FlowSpec {
                src: 0,
                dst: 2,
                deadline: Some(4),
            }],
            packet_kbps: 100.0,
            seed: 0,
        };
        // Serve only every third slot: queueing pushes many deliveries
        // past the 2-slot deadline.
        let mut q = QueueEngine::new(&spec, &topology::line(3), 1);
        for slot in 0..300 {
            q.begin_period();
            if slot % 3 == 0 {
                q.step_slot(slot, &[(0, 300.0), (1, 300.0)]);
            } else {
                q.step_slot(slot, &[]);
            }
        }
        let s = q.summary();
        assert!(s.delivered > 0);
        assert!(
            s.ontime < s.delivered,
            "expected late deliveries: {} ontime of {}",
            s.ontime,
            s.delivered
        );
        assert!(s.delay_utility() > 0.0);
        assert!(s.delay_utility() < (1.0 + s.delivered as f64).ln() + 1e-9);
    }

    #[test]
    fn unreachable_flows_are_inert() {
        let spec = TrafficSpec::poisson(
            0.9,
            vec![FlowSpec {
                src: 0,
                dst: 3,
                deadline: None,
            }],
        );
        // independent(4): no edges, dst unreachable.
        let mut q = QueueEngine::new(&spec, &topology::independent(4), 1);
        assert!(!q.routed(0));
        for slot in 0..50 {
            q.begin_period();
            q.step_slot(slot, &serve_all(4));
        }
        assert_eq!(q.summary().arrivals, 0);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_backlog() {
        let mk = || line_flow(4, 0, 3, ArrivalProcess::Poisson { rate: 0.8 });
        let served = vec![(0usize, 80.0), (2usize, 120.0)];
        let mut a = mk();
        for slot in 0..100 {
            a.begin_period();
            a.step_slot(slot, &served);
        }
        assert!(a.backlog() > 0, "need standing state to round-trip");
        let mut state = mhca_bandit::StateMap::new();
        a.snapshot_into(&mut state, "traffic");
        let mut b = mk();
        b.restore_from(&state, "traffic").unwrap();
        // Continue both engines identically; every observable must match.
        for slot in 100..200 {
            a.begin_period();
            b.begin_period();
            a.step_slot(slot, &served);
            b.step_slot(slot, &served);
            assert_eq!(a.round().deliveries, b.round().deliveries, "slot {slot}");
            assert_eq!(a.round().backlogs, b.round().backlogs, "slot {slot}");
        }
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn restore_rejects_wrong_shapes() {
        let mut q = line_flow(3, 0, 2, ArrivalProcess::Poisson { rate: 0.5 });
        let empty = mhca_bandit::StateMap::new();
        assert!(q.restore_from(&empty, "traffic").is_err());
        let mut wrong = mhca_bandit::StateMap::new();
        q.snapshot_into(&mut wrong, "traffic");
        let mut bigger = line_flow(4, 0, 2, ArrivalProcess::Poisson { rate: 0.5 });
        assert!(
            bigger.restore_from(&wrong, "traffic").is_err(),
            "queue_lens length mismatch must be rejected"
        );
    }
}
