//! Precomputed `r`-hop neighborhood tables.
//!
//! The conflict graph is static across a whole simulation horizon, so any
//! TTL-bounded flood on it reaches a fixed set of vertices at fixed hop
//! distances. [`BallTable`] precomputes, for one radius, every vertex's
//! ball `J_{G,r}(v) \ {v}` together with the hop distance of each member —
//! turning the per-round BFS of the flood engine into a contiguous table
//! scan. Entries are stored CSR-style (one flat array plus offsets), in
//! BFS order (non-decreasing distance), which is exactly the delivery
//! order of a synchronous flood wave.

use crate::graph::Graph;

/// One ball member: `(vertex, hop distance from the origin)`.
///
/// Distances are at least 1 (the origin itself is not stored) and at most
/// the table's radius.
pub type BallEntry = (u32, u32);

/// All `r`-hop balls of a graph for one fixed radius.
///
/// # Example
///
/// ```
/// use mhca_graph::{topology, BallTable};
///
/// let g = topology::line(5); // 0 — 1 — 2 — 3 — 4
/// let t = BallTable::build(&g, 2);
/// let ball: Vec<_> = t.ball(0).to_vec();
/// assert_eq!(ball, vec![(1, 1), (2, 2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BallTable {
    radius: usize,
    /// `offsets[v]..offsets[v + 1]` delimits `v`'s entries.
    offsets: Vec<usize>,
    /// Ball members in BFS (non-decreasing distance) order, origins
    /// excluded.
    entries: Vec<BallEntry>,
}

impl BallTable {
    /// Precomputes every vertex's `radius`-hop ball of `graph`.
    ///
    /// Cost: one BFS per vertex, sharing scratch buffers — `O(n·(n + m))`
    /// time, `Σ_v |J_r(v)| − n` entries of storage.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` vertices.
    pub fn build(graph: &Graph, radius: usize) -> Self {
        Self::build_capped(graph, radius, usize::MAX)
            .expect("uncapped BallTable build cannot overflow")
    }

    /// As [`BallTable::build`], but gives up — returning `None` — as soon
    /// as the table would exceed `max_entries` total entries.
    ///
    /// On dense graphs with large TTLs the saturated table is
    /// `O(n²)` entries; callers with a memory budget (the flood engine's
    /// large-N path) probe with a cap and fall back to per-flood BFS when
    /// the build bails out. The partial work is discarded, so a failed
    /// probe costs at most `O(max_entries)` time.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` vertices.
    pub fn build_capped(graph: &Graph, radius: usize, max_entries: usize) -> Option<Self> {
        let n = graph.n();
        assert!(u32::try_from(n).is_ok(), "graph too large for BallTable");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        // Epoch-stamped visit marks shared across origins: a vertex is
        // "visited in this BFS" iff stamp[v] == current epoch.
        let mut stamp = vec![0u32; n];
        let mut dist = vec![0u32; n];
        let mut queue = std::collections::VecDeque::new();
        for origin in 0..n {
            let epoch = origin as u32 + 1;
            stamp[origin] = epoch;
            dist[origin] = 0;
            queue.push_back(origin);
            while let Some(u) = queue.pop_front() {
                if dist[u] as usize == radius {
                    continue;
                }
                for &w in graph.neighbors(u) {
                    if stamp[w] != epoch {
                        if entries.len() == max_entries {
                            return None;
                        }
                        stamp[w] = epoch;
                        dist[w] = dist[u] + 1;
                        entries.push((w as u32, dist[w]));
                        queue.push_back(w);
                    }
                }
            }
            offsets.push(entries.len());
        }
        Some(BallTable {
            radius,
            offsets,
            entries,
        })
    }

    /// The radius this table was built for.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of vertices covered.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `v`'s ball members (origin excluded) in BFS order: non-decreasing
    /// distance, each member exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn ball(&self, v: usize) -> &[BallEntry] {
        &self.entries[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of entries across all balls (storage diagnostic).
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }
}

/// Largest vertex id a [`CompactBallTable`] can encode (24 bits).
pub const COMPACT_MAX_VERTEX: usize = (1 << 24) - 1;

/// Largest hop distance a [`CompactBallTable`] can encode (8 bits).
pub const COMPACT_MAX_DISTANCE: usize = u8::MAX as usize;

/// A packed ball-member word: vertex in the high 24 bits, hop distance in
/// the low 8. Decode with [`CompactBallTable::entry_vertex`] /
/// [`CompactBallTable::entry_distance`].
pub type CompactEntry = u32;

/// [`BallTable`] in half the memory: each `(vertex, distance)` pair packs
/// into one `u32` — vertex in the high 24 bits, distance in the low 8.
///
/// The flood engine's lossless fast path is a pure table scan, and at
/// large N it is memory-bound: halving the entry width doubles how much
/// of the graph fits under the engine's table-memory cap before floods
/// degrade to per-flood BFS. Entries keep the same BFS
/// (non-decreasing-distance) order as [`BallTable`], and because the
/// distance lives in the low bits, the "members still holding TTL budget"
/// prefix is still one `partition_point` over the raw words.
///
/// The packing limits tables to `2^24` vertices and hop distance 255;
/// [`CompactBallTable::build_capped`] returns `None` beyond either limit,
/// which callers treat exactly like a blown memory cap (BFS fallback).
///
/// # Example
///
/// ```
/// use mhca_graph::{topology, CompactBallTable};
///
/// let g = topology::line(5); // 0 — 1 — 2 — 3 — 4
/// let t = CompactBallTable::build_capped(&g, 2, usize::MAX).unwrap();
/// let ball = t.ball_packed(0);
/// assert_eq!(ball.len(), 2);
/// assert_eq!(CompactBallTable::entry_vertex(ball[0]), 1);
/// assert_eq!(CompactBallTable::entry_distance(ball[1]), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactBallTable {
    radius: usize,
    /// `offsets[v]..offsets[v + 1]` delimits `v`'s entries.
    offsets: Vec<usize>,
    /// Packed ball members in BFS (non-decreasing distance) order,
    /// origins excluded.
    entries: Vec<CompactEntry>,
}

impl CompactBallTable {
    /// Vertex id of a packed entry.
    #[inline]
    pub fn entry_vertex(e: CompactEntry) -> usize {
        (e >> 8) as usize
    }

    /// Hop distance of a packed entry.
    #[inline]
    pub fn entry_distance(e: CompactEntry) -> usize {
        (e & 0xff) as usize
    }

    /// As [`BallTable::build_capped`], in the packed layout: `None` when
    /// the build would exceed `max_entries` total entries, when the graph
    /// has more than [`COMPACT_MAX_VERTEX`] + 1 vertices, or when the
    /// effective radius exceeds [`COMPACT_MAX_DISTANCE`] — all three are
    /// "this radius cannot be table-served" to the flood engine.
    pub fn build_capped(graph: &Graph, radius: usize, max_entries: usize) -> Option<Self> {
        let n = graph.n();
        if n > COMPACT_MAX_VERTEX + 1 || radius.min(n) > COMPACT_MAX_DISTANCE {
            return None;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries: Vec<CompactEntry> = Vec::new();
        let mut stamp = vec![0u32; n];
        let mut dist = vec![0u32; n];
        let mut queue = std::collections::VecDeque::new();
        for origin in 0..n {
            let epoch = origin as u32 + 1;
            stamp[origin] = epoch;
            dist[origin] = 0;
            queue.push_back(origin);
            while let Some(u) = queue.pop_front() {
                if dist[u] as usize == radius {
                    continue;
                }
                for &w in graph.neighbors(u) {
                    if stamp[w] != epoch {
                        if entries.len() == max_entries {
                            return None;
                        }
                        stamp[w] = epoch;
                        dist[w] = dist[u] + 1;
                        entries.push(((w as u32) << 8) | dist[w]);
                        queue.push_back(w);
                    }
                }
            }
            offsets.push(entries.len());
        }
        Some(CompactBallTable {
            radius,
            offsets,
            entries,
        })
    }

    /// The radius this table was built for.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of vertices covered.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `v`'s packed ball members (origin excluded) in BFS order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn ball_packed(&self, v: usize) -> &[CompactEntry] {
        &self.entries[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of entries across all balls (each entry is 4 bytes — half a
    /// [`BallTable`] entry).
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Length of the prefix of `v`'s ball whose members sit strictly
    /// closer than `ttl` hops — the members that relay in a TTL-`ttl`
    /// flood. One `partition_point` over the packed words (distances are
    /// non-decreasing and live in the low bits).
    pub fn relays_within(&self, v: usize, ttl: usize) -> usize {
        self.ball_packed(v)
            .partition_point(|&e| Self::entry_distance(e) < ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{graph::Graph, topology};

    #[test]
    fn matches_fresh_bfs_on_grid() {
        let g = topology::grid(4, 5);
        for r in 0..5 {
            let t = BallTable::build(&g, r);
            for v in 0..g.n() {
                let dist = g.bfs_distances(v);
                let mut expect: Vec<(u32, u32)> = dist
                    .iter()
                    .enumerate()
                    .filter_map(|(u, d)| {
                        d.filter(|&d| d >= 1 && d <= r)
                            .map(|d| (u as u32, d as u32))
                    })
                    .collect();
                let mut got = t.ball(v).to_vec();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "v={v} r={r}");
            }
        }
    }

    #[test]
    fn entries_are_in_bfs_order() {
        let g = topology::grid(3, 6);
        let t = BallTable::build(&g, 4);
        for v in 0..g.n() {
            let ds: Vec<u32> = t.ball(v).iter().map(|&(_, d)| d).collect();
            assert!(ds.windows(2).all(|w| w[0] <= w[1]), "v={v}: {ds:?}");
        }
    }

    #[test]
    fn radius_zero_means_empty_balls() {
        let g = topology::complete(4);
        let t = BallTable::build(&g, 0);
        for v in 0..4 {
            assert!(t.ball(v).is_empty());
        }
        assert_eq!(t.total_entries(), 0);
    }

    #[test]
    fn capped_build_bails_out_or_matches() {
        let g = topology::grid(4, 5);
        let full = BallTable::build(&g, 3);
        // A cap at the exact size succeeds and matches the uncapped build.
        let fits = BallTable::build_capped(&g, 3, full.total_entries()).unwrap();
        assert_eq!(fits, full);
        // One entry less must bail out.
        assert!(BallTable::build_capped(&g, 3, full.total_entries() - 1).is_none());
        assert!(BallTable::build_capped(&g, 3, 0).is_none());
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let t = BallTable::build(&g, 10);
        assert_eq!(t.ball(0), &[(1, 1)]);
        assert_eq!(t.ball(4), &[]);
    }

    #[test]
    fn compact_table_decodes_to_the_wide_table() {
        for (g, r) in [
            (topology::grid(4, 5), 3),
            (topology::line(9), 4),
            (topology::complete(6), 2),
        ] {
            let wide = BallTable::build(&g, r);
            let compact = CompactBallTable::build_capped(&g, r, usize::MAX).unwrap();
            assert_eq!(compact.n(), wide.n());
            assert_eq!(compact.radius(), wide.radius());
            assert_eq!(compact.total_entries(), wide.total_entries());
            for v in 0..g.n() {
                let decoded: Vec<(u32, u32)> = compact
                    .ball_packed(v)
                    .iter()
                    .map(|&e| {
                        (
                            CompactBallTable::entry_vertex(e) as u32,
                            CompactBallTable::entry_distance(e) as u32,
                        )
                    })
                    .collect();
                assert_eq!(decoded.as_slice(), wide.ball(v), "v={v}");
            }
        }
    }

    #[test]
    fn compact_relays_within_matches_wide_partition_point() {
        let g = topology::grid(3, 6);
        let r = 4;
        let wide = BallTable::build(&g, r);
        let compact = CompactBallTable::build_capped(&g, r, usize::MAX).unwrap();
        for v in 0..g.n() {
            for ttl in 0..=r + 1 {
                let expect = wide.ball(v).partition_point(|&(_, d)| (d as usize) < ttl);
                assert_eq!(compact.relays_within(v, ttl), expect, "v={v} ttl={ttl}");
            }
        }
    }

    #[test]
    fn compact_capped_build_bails_out_like_the_wide_one() {
        let g = topology::grid(4, 5);
        let full = CompactBallTable::build_capped(&g, 3, usize::MAX).unwrap();
        let fits = CompactBallTable::build_capped(&g, 3, full.total_entries()).unwrap();
        assert_eq!(fits, full);
        assert!(CompactBallTable::build_capped(&g, 3, full.total_entries() - 1).is_none());
        assert!(CompactBallTable::build_capped(&g, 3, 0).is_none());
    }

    #[test]
    fn compact_build_refuses_oversized_radius() {
        // Effective radius is min(radius, n): a huge nominal radius on a
        // small graph still encodes, a genuinely deep graph would not.
        let g = topology::line(5);
        assert!(CompactBallTable::build_capped(&g, usize::MAX, usize::MAX).is_some());
        let deep = topology::line(300);
        assert!(CompactBallTable::build_capped(&deep, 299, usize::MAX).is_none());
        assert!(CompactBallTable::build_capped(&deep, 200, usize::MAX).is_some());
    }
}
