//! Precomputed `r`-hop neighborhood tables.
//!
//! The conflict graph is static across a whole simulation horizon, so any
//! TTL-bounded flood on it reaches a fixed set of vertices at fixed hop
//! distances. [`BallTable`] precomputes, for one radius, every vertex's
//! ball `J_{G,r}(v) \ {v}` together with the hop distance of each member —
//! turning the per-round BFS of the flood engine into a contiguous table
//! scan. Entries are stored CSR-style (one flat array plus offsets), in
//! BFS order (non-decreasing distance), which is exactly the delivery
//! order of a synchronous flood wave.

use crate::graph::Graph;

/// One ball member: `(vertex, hop distance from the origin)`.
///
/// Distances are at least 1 (the origin itself is not stored) and at most
/// the table's radius.
pub type BallEntry = (u32, u32);

/// All `r`-hop balls of a graph for one fixed radius.
///
/// # Example
///
/// ```
/// use mhca_graph::{topology, BallTable};
///
/// let g = topology::line(5); // 0 — 1 — 2 — 3 — 4
/// let t = BallTable::build(&g, 2);
/// let ball: Vec<_> = t.ball(0).to_vec();
/// assert_eq!(ball, vec![(1, 1), (2, 2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BallTable {
    radius: usize,
    /// `offsets[v]..offsets[v + 1]` delimits `v`'s entries.
    offsets: Vec<usize>,
    /// Ball members in BFS (non-decreasing distance) order, origins
    /// excluded.
    entries: Vec<BallEntry>,
}

impl BallTable {
    /// Precomputes every vertex's `radius`-hop ball of `graph`.
    ///
    /// Cost: one BFS per vertex, sharing scratch buffers — `O(n·(n + m))`
    /// time, `Σ_v |J_r(v)| − n` entries of storage.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` vertices.
    pub fn build(graph: &Graph, radius: usize) -> Self {
        Self::build_capped(graph, radius, usize::MAX)
            .expect("uncapped BallTable build cannot overflow")
    }

    /// As [`BallTable::build`], but gives up — returning `None` — as soon
    /// as the table would exceed `max_entries` total entries.
    ///
    /// On dense graphs with large TTLs the saturated table is
    /// `O(n²)` entries; callers with a memory budget (the flood engine's
    /// large-N path) probe with a cap and fall back to per-flood BFS when
    /// the build bails out. The partial work is discarded, so a failed
    /// probe costs at most `O(max_entries)` time.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` vertices.
    pub fn build_capped(graph: &Graph, radius: usize, max_entries: usize) -> Option<Self> {
        let n = graph.n();
        assert!(u32::try_from(n).is_ok(), "graph too large for BallTable");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        // Epoch-stamped visit marks shared across origins: a vertex is
        // "visited in this BFS" iff stamp[v] == current epoch.
        let mut stamp = vec![0u32; n];
        let mut dist = vec![0u32; n];
        let mut queue = std::collections::VecDeque::new();
        for origin in 0..n {
            let epoch = origin as u32 + 1;
            stamp[origin] = epoch;
            dist[origin] = 0;
            queue.push_back(origin);
            while let Some(u) = queue.pop_front() {
                if dist[u] as usize == radius {
                    continue;
                }
                for &w in graph.neighbors(u) {
                    if stamp[w] != epoch {
                        if entries.len() == max_entries {
                            return None;
                        }
                        stamp[w] = epoch;
                        dist[w] = dist[u] + 1;
                        entries.push((w as u32, dist[w]));
                        queue.push_back(w);
                    }
                }
            }
            offsets.push(entries.len());
        }
        Some(BallTable {
            radius,
            offsets,
            entries,
        })
    }

    /// The radius this table was built for.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of vertices covered.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `v`'s ball members (origin excluded) in BFS order: non-decreasing
    /// distance, each member exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn ball(&self, v: usize) -> &[BallEntry] {
        &self.entries[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of entries across all balls (storage diagnostic).
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{graph::Graph, topology};

    #[test]
    fn matches_fresh_bfs_on_grid() {
        let g = topology::grid(4, 5);
        for r in 0..5 {
            let t = BallTable::build(&g, r);
            for v in 0..g.n() {
                let dist = g.bfs_distances(v);
                let mut expect: Vec<(u32, u32)> = dist
                    .iter()
                    .enumerate()
                    .filter_map(|(u, d)| {
                        d.filter(|&d| d >= 1 && d <= r)
                            .map(|d| (u as u32, d as u32))
                    })
                    .collect();
                let mut got = t.ball(v).to_vec();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "v={v} r={r}");
            }
        }
    }

    #[test]
    fn entries_are_in_bfs_order() {
        let g = topology::grid(3, 6);
        let t = BallTable::build(&g, 4);
        for v in 0..g.n() {
            let ds: Vec<u32> = t.ball(v).iter().map(|&(_, d)| d).collect();
            assert!(ds.windows(2).all(|w| w[0] <= w[1]), "v={v}: {ds:?}");
        }
    }

    #[test]
    fn radius_zero_means_empty_balls() {
        let g = topology::complete(4);
        let t = BallTable::build(&g, 0);
        for v in 0..4 {
            assert!(t.ball(v).is_empty());
        }
        assert_eq!(t.total_entries(), 0);
    }

    #[test]
    fn capped_build_bails_out_or_matches() {
        let g = topology::grid(4, 5);
        let full = BallTable::build(&g, 3);
        // A cap at the exact size succeeds and matches the uncapped build.
        let fits = BallTable::build_capped(&g, 3, full.total_entries()).unwrap();
        assert_eq!(fits, full);
        // One entry less must bail out.
        assert!(BallTable::build_capped(&g, 3, full.total_entries() - 1).is_none());
        assert!(BallTable::build_capped(&g, 3, 0).is_none());
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let t = BallTable::build(&g, 10);
        assert_eq!(t.ball(0), &[(1, 1)]);
        assert_eq!(t.ball(4), &[]);
    }
}
