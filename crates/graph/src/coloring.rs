//! Greedy graph coloring.
//!
//! Section III of the paper remarks that "the independence number of `H`
//! is less than `N` if the chromatic number of `G` is greater than `M`,
//! and is `N` otherwise": with enough channels to properly color the
//! conflict graph, every user can transmit simultaneously. A greedy
//! coloring gives a cheap upper bound on the chromatic number, which the
//! experiment harness uses to pick channel counts and which tests use to
//! verify that remark on concrete instances.

use crate::graph::Graph;

/// A proper vertex coloring: `color[v]` for every vertex, colors `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Color assigned to each vertex.
    pub color: Vec<usize>,
    /// Number of distinct colors used.
    pub colors_used: usize,
}

impl Coloring {
    /// Vertices of one color class (an independent set).
    pub fn class(&self, c: usize) -> Vec<usize> {
        (0..self.color.len())
            .filter(|&v| self.color[v] == c)
            .collect()
    }
}

/// Greedy coloring in the given vertex order: each vertex takes the
/// smallest color unused by its already-colored neighbors.
///
/// Uses at most `Δ + 1` colors.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n`.
pub fn greedy_in_order(graph: &Graph, order: &[usize]) -> Coloring {
    let n = graph.n();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(v < n && !seen[v], "order must be a permutation");
        seen[v] = true;
    }
    let mut color = vec![usize::MAX; n];
    let mut used = 0;
    let mut forbidden = vec![usize::MAX; n + 1]; // stamped by vertex
    for &v in order {
        for &u in graph.neighbors(v) {
            if color[u] != usize::MAX {
                forbidden[color[u]] = v;
            }
        }
        let c = (0..).find(|&c| forbidden[c] != v).expect("some color free");
        color[v] = c;
        used = used.max(c + 1);
    }
    Coloring {
        color,
        colors_used: used,
    }
}

/// Greedy coloring in descending-degree order (Welsh–Powell) — usually
/// fewer colors than arbitrary order.
pub fn welsh_powell(graph: &Graph) -> Coloring {
    let mut order: Vec<usize> = (0..graph.n()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    greedy_in_order(graph, &order)
}

/// `true` if `coloring` is proper for `graph`.
pub fn is_proper(graph: &Graph, coloring: &Coloring) -> bool {
    graph
        .edges()
        .all(|(u, v)| coloring.color[u] != coloring.color[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, ExtendedConflictGraph};

    #[test]
    fn empty_graph_needs_one_color() {
        let g = topology::independent(4);
        let c = welsh_powell(&g);
        assert_eq!(c.colors_used, 1);
        assert!(is_proper(&g, &c));
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = topology::complete(5);
        let c = welsh_powell(&g);
        assert_eq!(c.colors_used, 5);
        assert!(is_proper(&g, &c));
    }

    #[test]
    fn path_needs_two_colors() {
        let g = topology::line(7);
        let c = welsh_powell(&g);
        assert_eq!(c.colors_used, 2);
        assert!(is_proper(&g, &c));
    }

    #[test]
    fn odd_cycle_needs_three() {
        let g = topology::ring(5);
        let c = welsh_powell(&g);
        assert_eq!(c.colors_used, 3);
        assert!(is_proper(&g, &c));
    }

    #[test]
    fn color_classes_are_independent() {
        let g = topology::grid(4, 5);
        let c = welsh_powell(&g);
        assert!(is_proper(&g, &c));
        for cls in 0..c.colors_used {
            assert!(g.is_independent(&c.class(cls)));
        }
    }

    #[test]
    fn never_more_than_max_degree_plus_one() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let n = rng.gen_range(1..40);
            let mut g = Graph::builder(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen::<f64>() < 0.2 {
                        g.add_edge(u, v);
                    }
                }
            }
            let g = g.build();
            let c = welsh_powell(&g);
            assert!(is_proper(&g, &c));
            assert!(c.colors_used <= g.max_degree() + 1);
        }
    }

    #[test]
    fn paper_remark_chromatic_vs_independence_number() {
        // Section III: if χ(G) ≤ M, the independence number of H is N —
        // a proper M-coloring of G gives every node a conflict-free
        // channel. Verify constructively on a grid (χ = 2).
        let g = topology::grid(3, 3);
        let coloring = welsh_powell(&g);
        assert!(coloring.colors_used <= 2);
        let m = coloring.colors_used;
        let h = ExtendedConflictGraph::new(&g, m);
        // Assign each node the channel equal to its color: this is an IS
        // of H with N vertices.
        let is_: Vec<usize> = (0..g.n()).map(|v| v * m + coloring.color[v]).collect();
        assert!(h.graph().is_independent(&is_));
        assert_eq!(is_.len(), g.n());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_rejected() {
        let g = topology::line(3);
        let _ = greedy_in_order(&g, &[0, 0, 1]);
    }
}
