//! The extended conflict graph `H` of Section III.
//!
//! Given the original conflict graph `G = (V, E)` on `N` nodes and `M`
//! channels, `H = (Ṽ, Ẽ)` has a *virtual vertex* `v_{i,j}` per (node `i`,
//! channel `j`) pair, with
//!
//! 1. a clique over `{v_{i,1}, …, v_{i,M}}` for every node `i` (a node can
//!    use at most one channel at a time), and
//! 2. an edge `{v_{i,j}, v_{p,j}}` whenever `{i, p} ∈ E` (conflicting nodes
//!    cannot share a channel).
//!
//! An independent set of `H` is then exactly a feasible strategy of `G`, and
//! a maximum weighted independent set (with weights `µ_{i,j}`) is a
//! throughput-optimal channel allocation (paper Eq. (2)).

use crate::{
    graph::Graph,
    ids::{ChannelId, NodeId, VertexId},
    strategy::Strategy,
};
use serde::{Deserialize, Serialize};

/// The extended conflict graph `H` plus master/slave bookkeeping.
///
/// Vertices are packed as `vertex = node · M + channel`, so conversions are
/// O(1) arithmetic.
///
/// # Example
///
/// ```
/// use mhca_graph::{topology, ExtendedConflictGraph};
///
/// let g = topology::line(3); // 0 — 1 — 2
/// let h = ExtendedConflictGraph::new(&g, 2);
/// // Non-adjacent nodes 0 and 2 may share a channel…
/// assert!(h.graph().is_independent(&[0, 4])); // v(0,c0), v(2,c0)
/// // …adjacent nodes 0 and 1 may not.
/// assert!(!h.graph().is_independent(&[0, 2])); // v(0,c0), v(1,c0)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtendedConflictGraph {
    graph: Graph,
    n_nodes: usize,
    n_channels: usize,
}

impl ExtendedConflictGraph {
    /// Builds `H` from the conflict graph `g` and channel count `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(g: &Graph, m: usize) -> Self {
        assert!(m > 0, "need at least one channel");
        let n = g.n();
        let mut h = crate::GraphBuilder::with_edge_capacity(
            n * m,
            n * m * (m - 1) / 2 + g.edge_count() * m,
        );
        for node in 0..n {
            // Clique among this node's slave vertices.
            for a in 0..m {
                for b in (a + 1)..m {
                    h.add_edge(node * m + a, node * m + b);
                }
            }
            // Same-channel conflicts mirroring G.
            for &other in g.neighbors(node) {
                if other > node {
                    for ch in 0..m {
                        h.add_edge(node * m + ch, other * m + ch);
                    }
                }
            }
        }
        ExtendedConflictGraph {
            graph: h.build(),
            n_nodes: n,
            n_channels: m,
        }
    }

    /// The underlying graph structure of `H`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes `N` of the original graph.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of channels `M`.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Number of virtual vertices `N·M` (the paper's arm count `K`).
    pub fn n_vertices(&self) -> usize {
        self.n_nodes * self.n_channels
    }

    /// The virtual vertex `v_{node, channel}`.
    ///
    /// # Panics
    ///
    /// Panics if `node ≥ N` or `channel ≥ M`.
    pub fn vertex(&self, node: NodeId, channel: ChannelId) -> VertexId {
        assert!(node.0 < self.n_nodes, "node out of range");
        assert!(channel.0 < self.n_channels, "channel out of range");
        VertexId(node.0 * self.n_channels + channel.0)
    }

    /// Master node of a virtual vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn master(&self, v: VertexId) -> NodeId {
        assert!(v.0 < self.n_vertices(), "vertex out of range");
        NodeId(v.0 / self.n_channels)
    }

    /// Channel index of a virtual vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn channel(&self, v: VertexId) -> ChannelId {
        assert!(v.0 < self.n_vertices(), "vertex out of range");
        ChannelId(v.0 % self.n_channels)
    }

    /// Converts an independent set of `H` (raw vertex indices) into a
    /// [`Strategy`].
    ///
    /// # Panics
    ///
    /// Panics if `is_` is not an independent set of `H` (in particular, if
    /// two vertices share a master node) or contains out-of-range vertices.
    pub fn strategy_from_is(&self, is_: &[usize]) -> Strategy {
        assert!(
            self.graph.is_independent(is_),
            "vertex set is not independent in H"
        );
        let mut s = Strategy::new(self.n_nodes);
        for &v in is_ {
            let vid = VertexId(v);
            s.assign(self.master(vid), self.channel(vid));
        }
        s
    }

    /// Converts a strategy into the corresponding vertex set of `H`
    /// (sorted ascending). The result is independent iff the strategy is
    /// feasible.
    pub fn is_from_strategy(&self, s: &Strategy) -> Vec<usize> {
        s.assignments().map(|(n, c)| self.vertex(n, c).0).collect()
    }

    /// `true` when the strategy is feasible, i.e. its vertex set is
    /// independent in `H` (no conflicting nodes share a channel).
    pub fn is_feasible(&self, s: &Strategy) -> bool {
        self.graph.is_independent(&self.is_from_strategy(s))
    }

    /// Total weight of a strategy under per-vertex weights (length `N·M`,
    /// indexed by packed vertex id).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != N·M`.
    pub fn strategy_weight(&self, s: &Strategy, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.n_vertices(), "weight vector length");
        self.is_from_strategy(s).iter().map(|&v| weights[v]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    /// The Fig. 1 instance: triangle G, 3 channels.
    fn fig1() -> ExtendedConflictGraph {
        ExtendedConflictGraph::new(&topology::complete(3), 3)
    }

    #[test]
    fn fig1_vertex_count_and_cliques() {
        let h = fig1();
        assert_eq!(h.n_vertices(), 9);
        // Each node's 3 slave vertices form a clique: C(3,2)=3 edges per node.
        // Each G-edge contributes M=3 same-channel edges; triangle has 3 edges.
        assert_eq!(h.graph().edge_count(), 3 * 3 + 3 * 3);
    }

    #[test]
    fn master_and_channel_invert_vertex() {
        let h = fig1();
        for node in 0..3 {
            for ch in 0..3 {
                let v = h.vertex(NodeId(node), ChannelId(ch));
                assert_eq!(h.master(v), NodeId(node));
                assert_eq!(h.channel(v), ChannelId(ch));
            }
        }
    }

    #[test]
    fn same_channel_conflict_edges_mirror_g() {
        let g = topology::line(3);
        let h = ExtendedConflictGraph::new(&g, 2);
        let v0c0 = h.vertex(NodeId(0), ChannelId(0)).0;
        let v1c0 = h.vertex(NodeId(1), ChannelId(0)).0;
        let v2c0 = h.vertex(NodeId(2), ChannelId(0)).0;
        assert!(h.graph().has_edge(v0c0, v1c0));
        assert!(!h.graph().has_edge(v0c0, v2c0)); // 0 and 2 not adjacent in G
                                                  // Different channels never conflict across nodes.
        let v1c1 = h.vertex(NodeId(1), ChannelId(1)).0;
        assert!(!h.graph().has_edge(v0c0, v1c1));
    }

    #[test]
    fn strategy_is_roundtrip() {
        let h = ExtendedConflictGraph::new(&topology::line(3), 2);
        let mut s = Strategy::new(3);
        s.assign(NodeId(0), ChannelId(0));
        s.assign(NodeId(1), ChannelId(1));
        s.assign(NodeId(2), ChannelId(0));
        assert!(h.is_feasible(&s));
        let is_ = h.is_from_strategy(&s);
        let s2 = h.strategy_from_is(&is_);
        assert_eq!(s, s2);
    }

    #[test]
    fn infeasible_strategy_detected() {
        let h = ExtendedConflictGraph::new(&topology::line(2), 2);
        let mut s = Strategy::new(2);
        s.assign(NodeId(0), ChannelId(1));
        s.assign(NodeId(1), ChannelId(1)); // adjacent nodes, same channel
        assert!(!h.is_feasible(&s));
    }

    #[test]
    #[should_panic(expected = "not independent")]
    fn strategy_from_dependent_set_panics() {
        let h = ExtendedConflictGraph::new(&topology::line(2), 2);
        // v(0,c0) and v(1,c0) conflict.
        let _ = h.strategy_from_is(&[0, 2]);
    }

    #[test]
    fn strategy_weight_sums_selected_vertices() {
        let h = ExtendedConflictGraph::new(&topology::independent(2), 2);
        let mut s = Strategy::new(2);
        s.assign(NodeId(0), ChannelId(1));
        s.assign(NodeId(1), ChannelId(0));
        let w = h.strategy_weight(&s, &[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(w, 2.0 + 4.0);
    }

    #[test]
    fn independence_number_capped_by_chromatic_argument() {
        // Complete G on 4 nodes with 2 channels: at most 2 nodes can
        // transmit (one per channel) — "independence number of H is less
        // than N if the chromatic number of G is greater than M".
        let h = ExtendedConflictGraph::new(&topology::complete(4), 2);
        // Any 3 vertices must contain a conflict.
        let hg = h.graph();
        let n = h.n_vertices();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    assert!(
                        !hg.is_independent(&[a, b, c]),
                        "found independent triple {a},{b},{c}"
                    );
                }
            }
        }
    }
}
