//! Planar geometry used by unit-disk conflict graphs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the Euclidean plane.
///
/// Node locations are points; two nodes conflict in a unit-disk graph when
/// their distance is at most the conflict radius (the paper uses `‖u,v‖ ≤ 2`
/// for unit disks of radius 1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other` (cheaper than [`Point::distance`]).
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(2.0, 3.0);
        assert_eq!(a.distance(&a), 0.0);
    }
}
