//! Compact undirected graph with the neighborhood queries of Table I.
//!
//! The graph is stored in **CSR (compressed sparse row)** form: one flat
//! `targets` array holding every adjacency list back to back, and an
//! `offsets` array with one entry per vertex delimiting its slice. This
//! makes neighbor iteration a single contiguous scan (the hot operation of
//! the flood engine and every BFS in the workspace) and costs two `Vec`s
//! total instead of one `Vec` per vertex.
//!
//! CSR is immutable by construction; the mutation phase lives in
//! [`GraphBuilder`], which buffers raw edges and sorts/dedups once in
//! [`GraphBuilder::build`] — O(E log E) overall instead of the O(deg)
//! sorted-insert per edge the old `Vec<Vec<usize>>` representation paid.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An undirected simple graph over vertices `0..n`, stored as CSR.
///
/// Adjacency slices are sorted, so [`Graph::has_edge`] is a binary search
/// and neighbor iteration is one cache-friendly scan. The structure is
/// used both for the original conflict graph `G` and the extended conflict
/// graph `H` of the paper.
///
/// Construction goes through [`GraphBuilder`] (or the [`Graph::from_edges`]
/// shorthand); a built graph never changes.
///
/// # Example
///
/// ```
/// use mhca_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.hop_distance(0, 3), Some(3));
/// assert_eq!(g.r_hop_neighborhood(0, 2), vec![0, 1, 2]);
/// assert!(g.is_independent(&[0, 2]));
/// assert!(!g.is_independent(&[1, 2]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` delimits `v`'s slice of `targets`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    targets: Vec<usize>,
    /// Number of vertices (`offsets.len() - 1` when non-empty; kept
    /// explicit so the `Default` empty graph needs no special case).
    n: usize,
    edge_count: usize,
}

/// Incremental edge buffer that [`Graph`]s are built from.
///
/// `add_edge` is O(1) amortized (it pushes onto a raw edge list);
/// [`GraphBuilder::build`] sorts and dedups once. Self-loops and duplicate
/// edges are tolerated and dropped at build time, matching the old
/// `Graph::add_edge` semantics.
///
/// # Example
///
/// ```
/// use mhca_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, dropped at build
/// b.add_edge(2, 2); // self-loop, dropped at build
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    /// Directed half-edges `(u, v)`; both directions are materialized here
    /// so the build pass is a single counting sort over sources.
    half_edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices with no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            half_edges: Vec::new(),
        }
    }

    /// Like [`GraphBuilder::new`], pre-sizing the edge buffer.
    pub fn with_edge_capacity(n: usize, edges: usize) -> Self {
        GraphBuilder {
            n,
            half_edges: Vec::with_capacity(2 * edges),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Records the undirected edge `{u, v}`. Duplicates and self-loops are
    /// dropped at [`GraphBuilder::build`] time.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u == v {
            return;
        }
        self.half_edges.push((u, v));
        self.half_edges.push((v, u));
    }

    /// Finalizes into an immutable CSR [`Graph`].
    pub fn build(mut self) -> Graph {
        let n = self.n;
        // Sort half-edges by (source, target); dedup kills duplicate edges
        // in both directions at once.
        self.half_edges.sort_unstable();
        self.half_edges.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &self.half_edges {
            offsets[u + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<usize> = self.half_edges.iter().map(|&(_, v)| v).collect();
        let edge_count = targets.len() / 2;
        Graph {
            offsets,
            targets,
            n,
            edge_count,
        }
    }
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            n,
            edge_count: 0,
        }
    }

    /// A [`GraphBuilder`] for a graph on `n` vertices.
    pub fn builder(n: usize) -> GraphBuilder {
        GraphBuilder::new(n)
    }

    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut b = GraphBuilder::with_edge_capacity(n, edges.len());
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Mean vertex degree (`0` for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.n as f64
        }
    }

    /// Maximum vertex degree (`0` for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && v < self.n && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// BFS hop distances from `src`; `None` for unreachable vertices.
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.n];
        dist[src] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued vertex has distance");
            for &w in self.neighbors(u) {
                if dist[w].is_none() {
                    dist[w] = Some(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Minimum hop count between `u` and `v` (`d_G(u, v)` in the paper),
    /// or `None` when disconnected.
    pub fn hop_distance(&self, u: usize, v: usize) -> Option<usize> {
        if u == v {
            return Some(0);
        }
        // Early-exit BFS.
        let mut dist = vec![usize::MAX; self.n];
        dist[u] = 0;
        let mut queue = VecDeque::from([u]);
        while let Some(x) = queue.pop_front() {
            for &w in self.neighbors(x) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[x] + 1;
                    if w == v {
                        return Some(dist[w]);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// The `r`-hop neighborhood `J_{G,r}(v) = {u : d_G(u,v) ≤ r}`,
    /// sorted ascending and always containing `v` itself.
    pub fn r_hop_neighborhood(&self, v: usize, r: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[v] = 0;
        let mut queue = VecDeque::from([v]);
        let mut out = vec![v];
        while let Some(u) = queue.pop_front() {
            if dist[u] == r {
                continue;
            }
            for &w in self.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// `true` when no two vertices of `set` are adjacent.
    ///
    /// Duplicates in `set` are tolerated (a vertex is never adjacent to
    /// itself in a simple graph).
    pub fn is_independent(&self, set: &[usize]) -> bool {
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                if self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Induced subgraph on `verts`.
    ///
    /// Returns the subgraph (with vertices relabelled `0..verts.len()` in
    /// the order given) and the local→global vertex map.
    ///
    /// # Panics
    ///
    /// Panics if `verts` contains duplicates or out-of-range vertices.
    pub fn induced_subgraph(&self, verts: &[usize]) -> (Graph, Vec<usize>) {
        let mut global_to_local = vec![usize::MAX; self.n];
        for (i, &v) in verts.iter().enumerate() {
            assert!(v < self.n, "vertex out of range");
            assert!(global_to_local[v] == usize::MAX, "duplicate vertex");
            global_to_local[v] = i;
        }
        let mut sub = GraphBuilder::new(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            for &w in self.neighbors(v) {
                let j = global_to_local[w];
                if j != usize::MAX && j > i {
                    sub.add_edge(i, j);
                }
            }
        }
        (sub.build(), verts.to_vec())
    }

    /// Connected components, each sorted ascending; components ordered by
    /// their smallest vertex.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([s]);
            seen[s] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &w in self.neighbors(u) {
                    if !seen[w] {
                        seen[w] = true;
                        queue.push_back(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// `true` when every vertex is reachable from every other
    /// (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Iterator over all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| v > u)
                .map(move |&v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn builder_dedups_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn default_graph_is_empty() {
        let g = Graph::default();
        assert!(g.is_empty());
        assert_eq!(g.n(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn csr_layout_is_contiguous() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (2, 3)]);
        // Degrees: 3, 1, 2, 2 → 8 half-edges in one flat array.
        let total: usize = (0..4).map(|v| g.neighbors(v).len()).sum();
        assert_eq!(total, 8);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn hop_distance_disconnected_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(g.hop_distance(0, 3), None);
        assert_eq!(g.hop_distance(0, 1), Some(1));
        assert_eq!(g.hop_distance(2, 2), Some(0));
    }

    #[test]
    fn r_hop_neighborhood_matches_definition() {
        let g = path(6);
        assert_eq!(g.r_hop_neighborhood(2, 0), vec![2]);
        assert_eq!(g.r_hop_neighborhood(2, 1), vec![1, 2, 3]);
        assert_eq!(g.r_hop_neighborhood(2, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.r_hop_neighborhood(2, 100), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn independence_checks() {
        let g = path(5);
        assert!(g.is_independent(&[]));
        assert!(g.is_independent(&[0]));
        assert!(g.is_independent(&[0, 2, 4]));
        assert!(!g.is_independent(&[0, 1]));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.edge_count(), 1); // only (0,1) survives
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        let g = path(3);
        let _ = g.induced_subgraph(&[0, 0]);
    }

    #[test]
    fn connected_components_and_connectivity() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
        assert!(!g.is_connected());
        assert!(path(4).is_connected());
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn average_and_max_degree() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }
}
