//! Typed identifiers for nodes, channels, and virtual vertices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (secondary user) in the original conflict graph `G`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

/// Identifier of a channel, `0 ≤ ChannelId < M`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ChannelId(pub usize);

/// Identifier of a virtual vertex `v_{i,j}` in the extended conflict graph `H`.
///
/// The canonical packing is `vertex = node · M + channel`; see
/// [`crate::ExtendedConflictGraph::vertex`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VertexId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

impl From<usize> for ChannelId {
    fn from(i: usize) -> Self {
        ChannelId(i)
    }
}

impl From<usize> for VertexId {
    fn from(i: usize) -> Self {
        VertexId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ChannelId(1).to_string(), "c1");
        assert_eq!(VertexId(10).to_string(), "v10");
    }

    #[test]
    fn ordering_follows_inner() {
        assert!(NodeId(1) < NodeId(2));
        assert!(VertexId(0) < VertexId(1));
    }

    #[test]
    fn from_usize_roundtrip() {
        let n: NodeId = 7usize.into();
        assert_eq!(n, NodeId(7));
    }
}
