//! Graph substrate for multi-hop channel access.
//!
//! This crate provides every graph-structural piece the paper
//! *"Almost Optimal Channel Access in Multi-Hop Networks With Unknown
//! Channel Variables"* (Zhou et al., ICDCS 2014) relies on:
//!
//! * [`Graph`] — a compact undirected graph with the neighborhood and
//!   hop-distance queries (`J_{G,r}(v)`, `d_G(u,v)`) used throughout the
//!   paper (Table I notation).
//! * [`unit_disk`] — random geometric (unit-disk) conflict graphs `G`,
//!   including generation targeting a prescribed average degree `d`
//!   (Section IV-D studies random networks with average degree `d`).
//! * [`topology`] — deterministic topologies, including the linear network
//!   of Fig. 5 that forces `Θ(N)` mini-rounds.
//! * [`ExtendedConflictGraph`] — the extended conflict graph `H`
//!   (Section III, Fig. 1): `N·M` virtual vertices, one clique per node,
//!   same-channel edges mirroring conflicts of `G`.
//! * [`Strategy`] — a feasible channel assignment, bijective with
//!   independent sets of `H`.
//!
//! # Example
//!
//! ```
//! use mhca_graph::{topology, ExtendedConflictGraph, NodeId, ChannelId};
//!
//! // Triangle conflict graph with 3 channels — the instance of Fig. 1.
//! let g = topology::complete(3);
//! let h = ExtendedConflictGraph::new(&g, 3);
//! assert_eq!(h.n_vertices(), 9);
//!
//! // Vertices of the same master node form a clique in H.
//! let v0 = h.vertex(NodeId(0), ChannelId(0));
//! let v1 = h.vertex(NodeId(0), ChannelId(1));
//! assert!(h.graph().has_edge(v0.0, v1.0));
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod balls;
pub mod coloring;
pub mod extended;
pub mod geometry;
pub mod graph;
pub mod metrics;
pub mod partition;
pub mod strategy;
pub mod topology;
pub mod unit_disk;

mod ids;

pub use balls::{BallTable, CompactBallTable};
pub use extended::ExtendedConflictGraph;
pub use geometry::Point;
pub use graph::{Graph, GraphBuilder};
pub use ids::{ChannelId, NodeId, VertexId};
pub use partition::Partition;
pub use strategy::Strategy;
pub use topology::TopologySpec;
pub use unit_disk::Layout;
