//! Structural metrics of conflict graphs, used by the experiment
//! harnesses to characterize the random workloads they generate.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub edges: usize,
    /// Mean degree.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of connected components.
    pub components: usize,
    /// Diameter of the largest component (hops), 0 for singleton graphs.
    pub diameter: usize,
}

/// Computes [`GraphMetrics`].
///
/// Diameter is exact (BFS from every vertex of the largest component), so
/// this is `O(V·E)` — fine for the simulation scales of this workspace.
pub fn metrics(graph: &Graph) -> GraphMetrics {
    let comps = graph.connected_components();
    let largest = comps
        .iter()
        .max_by_key(|c| c.len())
        .cloned()
        .unwrap_or_default();
    let mut diameter = 0;
    for &v in &largest {
        let dist = graph.bfs_distances(v);
        for &u in &largest {
            if let Some(d) = dist[u] {
                diameter = diameter.max(d);
            }
        }
    }
    GraphMetrics {
        n: graph.n(),
        edges: graph.edge_count(),
        average_degree: graph.average_degree(),
        max_degree: graph.max_degree(),
        components: comps.len(),
        diameter,
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0; graph.max_degree() + 1];
    for v in 0..graph.n() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn path_metrics() {
        let g = topology::line(5);
        let m = metrics(&g);
        assert_eq!(m.n, 5);
        assert_eq!(m.edges, 4);
        assert_eq!(m.max_degree, 2);
        assert_eq!(m.components, 1);
        assert_eq!(m.diameter, 4);
    }

    #[test]
    fn disconnected_metrics_use_largest_component() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let m = metrics(&g);
        assert_eq!(m.components, 2);
        assert_eq!(m.diameter, 3); // path 0-1-2-3
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = topology::complete(4);
        assert_eq!(metrics(&g).diameter, 1);
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::new(1);
        let m = metrics(&g);
        assert_eq!(m.diameter, 0);
        assert_eq!(m.components, 1);
    }

    #[test]
    fn degree_histogram_star() {
        let g = topology::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4); // four leaves
        assert_eq!(h[4], 1); // one hub
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    fn histogram_of_edgeless_graph() {
        let g = topology::independent(3);
        assert_eq!(degree_histogram(&g), vec![3]);
    }
}
