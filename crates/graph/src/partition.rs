//! Core + halo tiling of the vertex set for partition-parallel rounds.
//!
//! The protocol is local by construction: every decide-phase verdict is a
//! function of statuses inside a `(2r+1)`-ball, every determination flood
//! dies within `(3r+1)` hops. A [`Partition`] makes that locality
//! operational for one giant network — it splits the CSR vertex range into
//! contiguous **core** stripes (balanced by degree-weighted size, so tiles
//! carry comparable sweep work) and attaches to each core the **halo**:
//! every vertex outside the core but within `radius` hops of it. A
//! tile-local worker that reads core ∪ halo and writes only its core sees
//! exactly what the distributed vertices themselves would see, so the
//! partition-parallel round loop is faithful to the message-passing model
//! rather than a shared-memory shortcut.
//!
//! Stripes are index-contiguous on purpose: the sweeps of the decide phase
//! stream per-vertex state arrays, and contiguous cores mean each worker's
//! writes land in one cache-resident window. The honesty caveat is the
//! flip side: halo *width* depends on how well vertex indices track graph
//! locality. Index-local topologies (lines, grids, rings) get thin halos;
//! randomly indexed unit-disk graphs get halos approaching the whole
//! graph. The shared-memory sweeps stay evenly split regardless — only
//! the hypothetical per-tile message traffic degrades — and
//! [`Partition::halo_entries`] makes the width measurable instead of
//! assumed.

use crate::graph::Graph;
use std::collections::VecDeque;
use std::ops::Range;

/// A core + halo tiling of a graph's vertex range.
///
/// # Example
///
/// ```
/// use mhca_graph::{topology, Partition};
///
/// let g = topology::line(10);
/// let p = Partition::stripes(&g, 2, 1);
/// assert_eq!(p.tile_count(), 2);
/// // Tile 0's core is a prefix stripe; its 1-hop halo is the first
/// // vertex of the next stripe.
/// assert_eq!(p.core(0), 0..5);
/// assert_eq!(p.halo(0), &[5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Halo radius the tiling was built for.
    radius: usize,
    /// Stripe boundaries: tile `t`'s core is `cuts[t]..cuts[t + 1]`.
    cuts: Vec<usize>,
    /// Per-tile halo vertices (outside the core, within `radius` hops of
    /// it), sorted ascending.
    halos: Vec<Vec<u32>>,
}

impl Partition {
    /// Splits `graph`'s vertex range into `tiles` contiguous stripes,
    /// balanced by degree-weighted size (`1 + deg(v)` per vertex — the
    /// cost model of the decide phase's ball sweeps), and computes each
    /// stripe's `radius`-hop halo by one bounded multi-source BFS per
    /// tile.
    ///
    /// `tiles` is clamped to `1..=n` (an empty graph yields one empty
    /// tile), so every tile's core is non-empty whenever the graph is.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` vertices.
    pub fn stripes(graph: &Graph, tiles: usize, radius: usize) -> Self {
        let n = graph.n();
        assert!(u32::try_from(n).is_ok(), "graph too large for Partition");
        let tiles = tiles.clamp(1, n.max(1));
        let total: usize = (0..n).map(|v| 1 + graph.neighbors(v).len()).sum();
        let mut cuts = Vec::with_capacity(tiles + 1);
        cuts.push(0);
        let mut acc = 0usize;
        let mut v = 0usize;
        for t in 0..tiles {
            // Remaining weight split evenly over the remaining tiles, so
            // rounding error never starves the last stripe.
            let remaining_tiles = tiles - t;
            let target = acc + (total - acc).div_ceil(remaining_tiles);
            // Leave at least one vertex per remaining tile.
            let max_end = n - (tiles - t - 1);
            while v < max_end && (acc < target || v <= cuts[t]) {
                acc += 1 + graph.neighbors(v).len();
                v += 1;
            }
            cuts.push(v);
        }
        debug_assert_eq!(*cuts.last().unwrap(), n);

        let mut halos = Vec::with_capacity(tiles);
        let mut stamp = vec![0u32; n];
        let mut dist = vec![0u32; n];
        let mut queue = VecDeque::new();
        for t in 0..tiles {
            let core = cuts[t]..cuts[t + 1];
            let epoch = t as u32 + 1;
            let mut halo: Vec<u32> = Vec::new();
            // Multi-source BFS from the whole core, bounded at `radius`.
            queue.clear();
            for u in core.clone() {
                stamp[u] = epoch;
                dist[u] = 0;
                queue.push_back(u);
            }
            while let Some(u) = queue.pop_front() {
                if dist[u] as usize == radius {
                    continue;
                }
                for &w in graph.neighbors(u) {
                    if stamp[w] != epoch {
                        stamp[w] = epoch;
                        dist[w] = dist[u] + 1;
                        if !core.contains(&w) {
                            halo.push(w as u32);
                        }
                        queue.push_back(w);
                    }
                }
            }
            halo.sort_unstable();
            halos.push(halo);
        }
        Partition {
            radius,
            cuts,
            halos,
        }
    }

    /// The halo radius this tiling was built for.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> usize {
        self.halos.len()
    }

    /// Tile `t`'s core vertex range (contiguous, non-empty on non-empty
    /// graphs).
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    pub fn core(&self, t: usize) -> Range<usize> {
        self.cuts[t]..self.cuts[t + 1]
    }

    /// Tile `t`'s halo: the vertices outside its core within `radius`
    /// hops of it, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    pub fn halo(&self, t: usize) -> &[u32] {
        &self.halos[t]
    }

    /// The stripe boundaries (`tile_count() + 1` entries, first `0`, last
    /// `n`) — the cut vector the partition-parallel sweeps split state
    /// arrays by.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// Total halo vertices across all tiles — the boundary-handoff volume
    /// a per-tile message-passing execution would replicate, and the
    /// honesty metric for how well the index order tracks graph locality
    /// (see the module docs).
    pub fn halo_entries(&self) -> usize {
        self.halos.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology, unit_disk};
    use rand::{rngs::StdRng, SeedableRng};

    /// Oracle: the halo must be exactly the set of vertices outside the
    /// core whose hop distance to some core vertex is ≤ radius.
    fn check_halos_exact(g: &Graph, p: &Partition) {
        for t in 0..p.tile_count() {
            let core = p.core(t);
            let mut expect: Vec<u32> = Vec::new();
            for v in 0..g.n() {
                if core.contains(&v) {
                    continue;
                }
                let near = core
                    .clone()
                    .any(|c| g.hop_distance(c, v).is_some_and(|d| d <= p.radius()));
                if near {
                    expect.push(v as u32);
                }
            }
            assert_eq!(p.halo(t), expect.as_slice(), "tile {t}");
        }
    }

    #[test]
    fn halos_match_hop_distance_oracle_on_small_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for tiles in [1, 2, 3, 5] {
            for radius in [0, 1, 3] {
                let (g, _) = unit_disk::random_with_average_degree(18, 3.5, &mut rng);
                let p = Partition::stripes(&g, tiles, radius);
                check_halos_exact(&g, &p);
                let g = topology::grid(3, 6);
                let p = Partition::stripes(&g, tiles, radius);
                check_halos_exact(&g, &p);
            }
        }
    }

    #[test]
    fn cores_cover_the_vertex_range_disjointly() {
        let g = topology::grid(5, 8);
        for tiles in [1, 2, 4, 7, 40, 100] {
            let p = Partition::stripes(&g, tiles, 2);
            assert_eq!(p.cuts()[0], 0);
            assert_eq!(*p.cuts().last().unwrap(), g.n());
            let mut covered = 0;
            for t in 0..p.tile_count() {
                let core = p.core(t);
                assert!(!core.is_empty(), "tile {t} core empty");
                assert_eq!(core.start, covered, "cores must be contiguous");
                covered = core.end;
            }
            assert_eq!(covered, g.n());
            // Tile count is clamped to n.
            assert!(p.tile_count() <= g.n());
            assert_eq!(p.tile_count(), tiles.min(g.n()));
        }
    }

    #[test]
    fn halo_covers_every_ball_of_the_core() {
        // The property the partition-parallel decide relies on: for any
        // core vertex v, ball(v, radius) ⊆ core ∪ halo.
        let mut rng = StdRng::seed_from_u64(23);
        let (g, _) = unit_disk::random_with_average_degree(40, 4.0, &mut rng);
        let radius = 3;
        let p = Partition::stripes(&g, 4, radius);
        for t in 0..p.tile_count() {
            let core = p.core(t);
            let halo = p.halo(t);
            for v in core.clone() {
                for u in g.r_hop_neighborhood(v, radius) {
                    assert!(
                        core.contains(&u) || halo.binary_search(&(u as u32)).is_ok(),
                        "tile {t}: ball({v}) member {u} outside core ∪ halo"
                    );
                }
            }
        }
    }

    #[test]
    fn degree_balanced_cuts_beat_worst_case_imbalance() {
        // A star-heavy prefix: plain equal-count stripes would put all
        // the work in tile 0; degree weighting moves the cut.
        let n = 40;
        let mut b = Graph::builder(n);
        for v in 1..30 {
            b.add_edge(0, v); // vertex 0 is a hub
        }
        for v in 30..n - 1 {
            b.add_edge(v, v + 1); // light tail
        }
        let g = b.build();
        let p = Partition::stripes(&g, 2, 1);
        // The heavy hub stripe must end well before the midpoint.
        assert!(p.core(0).end < n / 2, "cut at {:?}", p.cuts());
    }

    #[test]
    fn line_halos_are_thin_and_random_index_halos_are_wide() {
        let line = topology::line(60);
        let thin = Partition::stripes(&line, 4, 2);
        // Interior tiles of a line see at most 2·radius halo vertices.
        for t in 0..thin.tile_count() {
            assert!(thin.halo(t).len() <= 4, "line halo too wide");
        }
        let mut rng = StdRng::seed_from_u64(7);
        let (disk, _) = unit_disk::random_with_average_degree(60, 5.0, &mut rng);
        let wide = Partition::stripes(&disk, 4, 2);
        // Not an assertion of wideness (instances vary) — just that the
        // diagnostic is measurable and sane.
        assert!(wide.halo_entries() <= 4 * disk.n());
    }

    #[test]
    fn single_tile_has_empty_halo() {
        let g = topology::ring(12);
        let p = Partition::stripes(&g, 1, 5);
        assert_eq!(p.tile_count(), 1);
        assert_eq!(p.core(0), 0..12);
        assert!(p.halo(0).is_empty());
    }

    #[test]
    fn radius_zero_halos_are_empty() {
        let g = topology::grid(4, 4);
        let p = Partition::stripes(&g, 3, 0);
        for t in 0..p.tile_count() {
            assert!(p.halo(t).is_empty());
        }
    }
}
